package repro_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/trace"
)

// runJournalPass streams every producer slice through a fresh gateway —
// journaling to dir when non-empty, journal-less otherwise — and digests
// the protected output exactly like runObsPass: per-user FNV-1a in
// arrival order, folded in sorted-user order, so the digest is
// independent of shard interleaving. Identical protected output ⇒
// identical digest; the benchmark asserts journaling never perturbs it.
func runJournalPass(b *testing.B, shards int, slices [][]trace.Record, total int, seed int64, dir string) uint64 {
	b.Helper()
	cfg := service.Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     shards,
		QueueSize:  512,
		FlushEvery: 8,
		Seed:       seed,
		Obs:        obs.Nop(), // price the journal alone, not the metrics
	}
	var g *service.Gateway
	var err error
	if dir == "" {
		g, err = service.New(context.Background(), cfg)
	} else {
		g, _, err = service.Recover(context.Background(), cfg, service.JournalConfig{Dir: dir, SyncEvery: 1024})
	}
	if err != nil {
		b.Fatal(err)
	}
	type drainResult struct {
		n      int
		digest uint64
	}
	consumed := make(chan drainResult)
	go func() {
		per := make(map[string]uint64, 256)
		n := 0
		for wnd := range g.Output() {
			batch := wnd.Records
			for i := range batch {
				rec := &batch[i]
				h, ok := per[rec.User]
				if !ok {
					h = fnvMixString(fnvOffset, rec.User)
				}
				h = fnvMix64(h, uint64(rec.Time.UnixNano()))
				h = fnvMix64(h, math.Float64bits(rec.Point.Lat))
				h = fnvMix64(h, math.Float64bits(rec.Point.Lng))
				per[rec.User] = h
			}
			n += len(batch)
		}
		users := make([]string, 0, len(per))
		for u := range per {
			users = append(users, u)
		}
		sort.Strings(users)
		digest := fnvOffset
		for _, u := range users {
			digest = fnvMixString(digest, u)
			digest = fnvMix64(digest, per[u])
		}
		consumed <- drainResult{n: n, digest: digest}
	}()
	errs := make(chan error, len(slices))
	for _, recs := range slices {
		go func(recs []trace.Record) {
			errs <- g.IngestAll(recs)
		}(recs)
	}
	for range slices {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}
	res := <-consumed
	if res.n != total {
		b.Fatalf("protected %d of %d records", res.n, total)
	}
	return res.digest
}

// BenchmarkJournalOverhead prices crash safety on the serving hot path:
// the same workload with the write-behind journal on (a checkpoint
// enqueued at every window boundary, encoded and persisted by the pump
// goroutine) and off, interleaved within each iteration with alternating
// order — the same discipline as BenchmarkObsOverhead, because journal-on
// and journal-off numbers from separate runs confound with machine state.
//
// Two contracts are enforced, not just printed: the protected output must
// be bit-identical between the modes (the journal observes windows, it
// never feeds back into protection), and on a sample long enough to
// outweigh scheduler noise the journaled run must cost < 5% throughput —
// the acceptance budget CI also gates on via the emitted JSON. The budget
// presumes a spare core for the pump to overlap onto: on a single-CPU
// host the encode/write work serializes with protection and the floor is
// set by the disk, not the design, so the in-process gate arms only on
// multicore runs.
//
// With BENCH_JOURNAL_JSON=<path> (make bench-journal sets it) the metrics
// are written as JSON for the CI artifact trail.
func BenchmarkJournalOverhead(b *testing.B) {
	const (
		users     = 192
		perUser   = 250
		producers = 4
		shards    = 4
	)
	slices := gatewayWorkload(users, perUser, producers)
	total := users * perUser
	freshDir := func() string {
		dir, err := os.MkdirTemp("", "lppm-bench-journal-*")
		if err != nil {
			b.Fatal(err)
		}
		return dir
	}
	runMode := func(mode int, seed int64) uint64 {
		if mode == 0 {
			return runJournalPass(b, shards, slices, total, seed, "")
		}
		dir := freshDir()
		defer os.RemoveAll(dir)
		return runJournalPass(b, shards, slices, total, seed, dir)
	}
	var elapsed [2]time.Duration
	var digests [2]uint64
	for mode := 0; mode < 2; mode++ {
		runMode(mode, 0) // warm up both paths before timing
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		// Alternate which mode goes first: a fixed order would let slow
		// host-load oscillations masquerade as a mode difference.
		for k := 0; k < 2; k++ {
			mode := (iter + k) % 2
			start := time.Now()
			digests[mode] = runMode(mode, int64(iter+1))
			elapsed[mode] += time.Since(start)
		}
		if digests[0] != digests[1] {
			b.Fatalf("journaling perturbed the output: digest off=%016x on=%016x",
				digests[0], digests[1])
		}
	}
	off := float64(total*b.N) / elapsed[0].Seconds()
	on := float64(total*b.N) / elapsed[1].Seconds()
	overheadPct := (elapsed[1] - elapsed[0]).Seconds() / elapsed[0].Seconds() * 100
	b.ReportMetric(off, "points/sec:off")
	b.ReportMetric(on, "points/sec:on")
	b.ReportMetric(overheadPct, "overhead:%")

	// Wall-clock from a single -benchtime=1x smoke pass is scheduler
	// noise; assert the budget once the sample carries signal — and only
	// with a core for the pump to run on (see the doc comment above).
	if elapsed[0]+elapsed[1] >= 2*time.Second && runtime.GOMAXPROCS(0) >= 2 && overheadPct > 5 {
		b.Fatalf("journaling costs %.2f%% throughput, budget is 5%%", overheadPct)
	}

	if path := os.Getenv("BENCH_JOURNAL_JSON"); path != "" {
		payload := struct {
			Benchmark string             `json:"benchmark"`
			Users     int                `json:"users"`
			Records   int                `json:"records"`
			Iters     int                `json:"iterations"`
			Procs     int                `json:"gomaxprocs"`
			Metrics   map[string]float64 `json:"metrics"`
		}{"BenchmarkJournalOverhead", users, total, b.N, runtime.GOMAXPROCS(0), map[string]float64{
			"points/sec:off": off,
			"points/sec:on":  on,
			"overhead_pct":   overheadPct,
		}}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
