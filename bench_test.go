// Package repro's top-level benchmarks regenerate every evaluation artefact
// of the paper (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkFigure1aPrivacyVsEpsilon  – Figure 1(a): privacy metric vs ε
//	BenchmarkFigure1bUtilityVsEpsilon  – Figure 1(b): utility metric vs ε
//	BenchmarkEquation2ModelFit         – Equation 2 constants a, b, α, β
//	BenchmarkHeadlineConfiguration     – §2 headline: objectives → ε ≈ 0.01
//	BenchmarkPCAPropertySelection      – §3 step 1 property screening
//	BenchmarkOtherLPPMSweeps           – §4 future work: other mechanisms
//	BenchmarkALPVersusModelInversion   – §1 related work: ALP baseline
//	BenchmarkAblationNoiseKind         – design ablation: Laplace vs Gauss
//	BenchmarkAblationCellSize          – design ablation: city-block size
//
// Run with `go test -bench=. -benchmem` from the repository root. Series are
// printed once per benchmark (use -v to see them); headline numbers are also
// exported as benchmark metrics so harnesses can scrape them.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alp"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/synth"
	"repro/internal/trace"
)

// fixture holds the shared dataset and the completed GEO-I sweep; building
// them once keeps the per-benchmark loops focused on the phase each
// benchmark measures.
type fixture struct {
	dataset  *trace.Dataset
	fleet    *synth.Fleet
	sweep    *eval.Result
	analysis *core.Analysis
}

var (
	fixtureOnce sync.Once
	shared      *fixture
	fixtureErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixtureOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.NumDrivers = 25
		cfg.Duration = 12 * time.Hour
		fleet, err := synth.Generate(cfg, nil)
		if err != nil {
			fixtureErr = err
			return
		}
		def := core.Definition{
			Mechanism:  lppm.NewGeoIndistinguishability(),
			Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
			GridPoints: 25,
			Repeats:    2,
			Seed:       42,
		}
		analysis, err := core.Analyze(context.Background(), def, fleet.Dataset)
		if err != nil {
			fixtureErr = err
			return
		}
		shared = &fixture{
			dataset:  fleet.Dataset,
			fleet:    fleet,
			sweep:    analysis.Sweep,
			analysis: analysis,
		}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return shared
}

// logSeries prints a metric-vs-parameter series as the paper's figure rows.
func logSeries(b *testing.B, title, param string, xs, ys []float64) {
	b.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i := range xs {
		fmt.Fprintf(&sb, "  %s=%-12.6g %.4f\n", param, xs[i], ys[i])
	}
	b.Log(sb.String())
}

// BenchmarkFigure1aPrivacyVsEpsilon regenerates Figure 1(a): the privacy
// metric (POI retrieval fraction) against ε on a log axis. Paper shape: ~0
// below ε≈0.007, rising to its plateau by ε≈0.08.
func BenchmarkFigure1aPrivacyVsEpsilon(b *testing.B) {
	f := getFixture(b)
	xs, ys, err := f.sweep.Series("poi_retrieval")
	if err != nil {
		b.Fatal(err)
	}
	logSeries(b, "Figure 1(a): privacy metric vs epsilon", "eps", xs, ys)

	// Shape assertions: saturated-low start, saturated-high end,
	// transition bracketing the paper's zone.
	if ys[0] > 0.05 {
		b.Fatalf("low-ε privacy = %v, want ~0", ys[0])
	}
	if ys[len(ys)-1] < 0.9 {
		b.Fatalf("high-ε privacy = %v, want saturated high", ys[len(ys)-1])
	}
	b.ReportMetric(f.analysis.PrivacyModel.XMin, "transition-start-eps")
	b.ReportMetric(f.analysis.PrivacyModel.XMax, "transition-end-eps")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The measured unit of work: one full sweep point (protect +
		// both metrics) at the transition center.
		runSweepPoint(b, f.dataset, 0.0147, int64(i))
	}
}

// BenchmarkFigure1bUtilityVsEpsilon regenerates Figure 1(b): the utility
// metric (area-coverage similarity) against ε. Paper shape: evolves slowly
// across the full four decades, low at 10⁻⁴ and ~1 at 10⁰.
func BenchmarkFigure1bUtilityVsEpsilon(b *testing.B) {
	f := getFixture(b)
	xs, ys, err := f.sweep.Series("area_coverage")
	if err != nil {
		b.Fatal(err)
	}
	logSeries(b, "Figure 1(b): utility metric vs epsilon", "eps", xs, ys)

	if ys[0] > 0.3 {
		b.Fatalf("low-ε utility = %v, want low", ys[0])
	}
	if ys[len(ys)-1] < 0.95 {
		b.Fatalf("high-ε utility = %v, want ~1", ys[len(ys)-1])
	}
	// The paper's core observation: utility reacts over a wider ε range
	// than privacy.
	prW := decades(f.analysis.PrivacyModel)
	utW := decades(f.analysis.UtilityModel)
	if utW <= prW {
		b.Fatalf("utility active zone (%.2f decades) should exceed privacy's (%.2f)", utW, prW)
	}
	b.ReportMetric(utW, "active-zone-decades")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepPoint(b, f.dataset, 0.001, int64(i))
	}
}

// BenchmarkEquation2ModelFit regenerates Equation 2: the log-linear fit of
// both metrics on the non-saturated zone. Paper constants (natural log):
// a=0.84, b=0.17, α=1.21, β=0.09 — ours differ in magnitude (different
// substrate) but must keep sign, ordering (b > β) and R² quality.
func BenchmarkEquation2ModelFit(b *testing.B) {
	f := getFixture(b)
	pm, um := f.analysis.PrivacyModel, f.analysis.UtilityModel
	b.Logf("Equation 2 (measured): Pr = %.3f + %.3f·ln(ε)  [R²=%.3f]", pm.A, pm.B, pm.R2)
	b.Logf("Equation 2 (measured): Ut = %.3f + %.3f·ln(ε)  [R²=%.3f]", um.A, um.B, um.R2)
	b.Logf("Equation 2 (paper):    Pr = 0.840 + 0.170·ln(ε); Ut = 1.210 + 0.090·ln(ε)")

	if pm.B <= 0 || um.B <= 0 {
		b.Fatalf("both slopes must be positive: b=%v β=%v", pm.B, um.B)
	}
	if pm.B <= um.B {
		b.Fatalf("privacy slope b=%v must exceed utility slope β=%v (paper: 0.17 > 0.09)", pm.B, um.B)
	}
	if pm.R2 < 0.85 || um.R2 < 0.85 {
		b.Fatalf("fit quality: privacy R²=%v utility R²=%v", pm.R2, um.R2)
	}
	b.ReportMetric(pm.B, "b-privacy-slope")
	b.ReportMetric(um.B, "beta-utility-slope")
	b.ReportMetric(pm.R2, "privacy-R2")
	b.ReportMetric(um.R2, "utility-R2")

	xs, pr, err := f.sweep.Series("poi_retrieval")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.FitLogLinear(xs, pr, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineConfiguration regenerates the paper's §2 headline: with
// objectives "≤10 % POIs retrieved" and "≥80 % utility", inversion must
// return an ε in the 0.01 decade, and protecting at that ε must meet both
// objectives empirically.
func BenchmarkHeadlineConfiguration(b *testing.B) {
	f := getFixture(b)
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	cfg, err := f.analysis.Configure(obj)
	if err != nil {
		b.Fatal(err)
	}
	if !cfg.Feasible {
		b.Fatalf("paper objectives must be feasible: %+v", cfg)
	}
	if cfg.Value < 0.001 || cfg.Value > 0.1 {
		b.Fatalf("recommended ε = %v, want the paper's decade (~0.01)", cfg.Value)
	}
	pr, ut := measureAt(b, f.dataset, cfg.Value)
	b.Logf("headline: objectives (Pr≤0.10, Ut≥0.80) → ε=%.4g (paper: 0.01)", cfg.Value)
	b.Logf("verification at ε=%.4g: measured privacy %.3f, measured utility %.3f", cfg.Value, pr, ut)
	if pr > obj.MaxPrivacy+0.05 {
		b.Fatalf("measured privacy %v violates objective", pr)
	}
	if ut < obj.MinUtility-0.05 {
		b.Fatalf("measured utility %v violates objective", ut)
	}
	b.ReportMetric(cfg.Value, "recommended-eps")
	b.ReportMetric(pr, "measured-privacy")
	b.ReportMetric(ut, "measured-utility")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.analysis.Configure(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCAPropertySelection regenerates framework step 1's dataset
// screening: for GEO-I the paper retains no dataset properties, and the PCA
// screening must agree.
func BenchmarkPCAPropertySelection(b *testing.B) {
	f := getFixture(b)
	names := f.analysis.Properties.SelectedNames()
	b.Logf("selected dataset properties: %v (paper: none)", names)
	if len(names) > 1 {
		b.Fatalf("GEO-I should need at most a marginal property, selected %v", names)
	}
	b.ReportMetric(float64(len(names)), "selected-properties")

	props := trace.DatasetProperties(f.dataset, 500)
	rows := make([][]float64, len(props))
	for i, p := range props {
		rows[i] = p.PropertyVector()
	}
	mid := f.sweep.Points[len(f.sweep.Points)/2]
	perUser := mid.PerUser["poi_retrieval"]
	users := f.dataset.Users()
	mvals := make([]float64, len(users))
	for i, u := range users {
		mvals[i] = perUser[u]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.SelectProperties(trace.PropertyNames(), rows, mvals, 0.2, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOtherLPPMSweeps runs the paper's future-work extension (§4):
// the same pipeline over the other registered mechanisms. Each must produce
// a modelable utility curve; the privacy response differs per mechanism.
func BenchmarkOtherLPPMSweeps(b *testing.B) {
	f := getFixture(b)
	ms := []metrics.Metric{
		metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	mechanisms := []lppm.Mechanism{
		lppm.NewGaussianPerturbation(),
		lppm.NewGridCloaking(),
		lppm.NewTemporalSampling(),
	}
	for _, mech := range mechanisms {
		spec := mech.Params()[0]
		sweep := &eval.Sweep{
			Mechanism: mech,
			Param:     spec.Name,
			Values:    stat.LogSpace(spec.Min, spec.Max, 13),
			Metrics:   ms,
			Repeats:   1,
			Seed:      11,
		}
		res, err := eval.Run(context.Background(), sweep, f.dataset)
		if err != nil {
			b.Fatal(err)
		}
		xs, pr, err := res.Series("poi_retrieval")
		if err != nil {
			b.Fatal(err)
		}
		_, ut, err := res.Series("area_coverage")
		if err != nil {
			b.Fatal(err)
		}
		logSeries(b, "X1 privacy: "+mech.Name(), spec.Name, xs, pr)
		logSeries(b, "X1 utility: "+mech.Name(), spec.Name, xs, ut)
		if _, err := model.FitLogLinear(xs, ut, 0.05); err != nil {
			b.Fatalf("%s utility curve not modelable: %v", mech.Name(), err)
		}
	}

	small := smallSubset(f.dataset, 5)
	spec := lppm.NewGaussianPerturbation().Params()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep := &eval.Sweep{
			Mechanism: lppm.NewGaussianPerturbation(),
			Param:     spec.Name,
			Values:    stat.LogSpace(spec.Min, spec.Max, 5),
			Metrics:   ms,
			Repeats:   1,
			Seed:      int64(i),
		}
		if _, err := eval.Run(context.Background(), sweep, small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkALPVersusModelInversion regenerates experiment X2: configuration
// cost of the greedy prior art versus our one-shot model inversion.
func BenchmarkALPVersusModelInversion(b *testing.B) {
	f := getFixture(b)
	obj := model.Objectives{MaxPrivacy: 0.20, MinUtility: 0.70}

	cfgModel, err := f.analysis.Configure(obj)
	if err != nil {
		b.Fatal(err)
	}

	alpCfg := &alp.Config{
		Mechanism:         lppm.NewGeoIndistinguishability(),
		Param:             lppm.EpsilonParam,
		PrivacyMetric:     metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		UtilityMetric:     metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		MaxPrivacy:        obj.MaxPrivacy,
		MinUtility:        obj.MinUtility,
		MaxEvaluations:    40,
		InitialStepFactor: 4,
		InitialValue:      1,
		Seed:              9,
	}
	res, err := alp.Run(context.Background(), alpCfg, f.dataset)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("X2: model inversion → ε=%.4g feasible=%v (+0 evaluations after the offline sweep)",
		cfgModel.Value, cfgModel.Feasible)
	b.Logf("X2: ALP greedy     → ε=%.4g satisfied=%v after %d evaluations",
		res.Best.Value, res.Satisfied, res.Evaluations)
	b.ReportMetric(float64(res.Evaluations), "alp-evaluations")

	small := smallSubset(f.dataset, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := *alpCfg
		c.Seed = int64(i)
		c.MaxEvaluations = 10
		if _, err := alp.Run(context.Background(), &c, small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoiseKind contrasts GEO-I's exact planar Laplace with a
// Gaussian of matched mean displacement: at the headline ε the privacy
// outcome should be comparable, but Laplace's heavier tail costs more
// utility for equal mean noise — the reason GEO-I's guarantee is not free.
func BenchmarkAblationNoiseKind(b *testing.B) {
	f := getFixture(b)
	const eps = 0.01
	// Matched mean displacement: E[r] = 2/ε for planar Laplace; for an
	// isotropic Gaussian E[r] = σ·√(π/2), so σ = (2/ε)/√(π/2).
	sigma := (2 / eps) / 1.2533141373155003

	prL, utL := measureAt(b, f.dataset, eps)
	prG, utG := measureGaussianAt(b, f.dataset, sigma)
	b.Logf("ablation (matched mean displacement %.0f m):", 2/eps)
	b.Logf("  planar Laplace ε=%v:  privacy %.3f, utility %.3f", eps, prL, utL)
	b.Logf("  Gaussian σ=%.1f m:    privacy %.3f, utility %.3f", sigma, prG, utG)
	b.ReportMetric(prL-prG, "privacy-delta-laplace-minus-gauss")
	b.ReportMetric(utL-utG, "utility-delta-laplace-minus-gauss")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepPoint(b, f.dataset, eps, int64(i))
	}
}

// BenchmarkAblationCellSize shows how the city-block discretization of the
// utility metric rescales Figure 1(b): bigger blocks are more forgiving, so
// the curve shifts left.
func BenchmarkAblationCellSize(b *testing.B) {
	f := getFixture(b)
	xs, _, err := f.sweep.Series("area_coverage")
	if err != nil {
		b.Fatal(err)
	}
	prev := 0.0
	for _, size := range []float64{100, 200, 400} {
		m := metrics.MustAreaCoverage(metrics.AreaCoverageConfig{CellSizeMeters: size, ToleranceCells: 1})
		sweep := &eval.Sweep{
			Mechanism: lppm.NewGeoIndistinguishability(),
			Param:     lppm.EpsilonParam,
			Values:    xs[:18], // the informative low-ε range
			Metrics:   []metrics.Metric{m},
			Repeats:   1,
			Seed:      13,
		}
		res, err := eval.Run(context.Background(), sweep, f.dataset)
		if err != nil {
			b.Fatal(err)
		}
		_, ut, err := res.Series(m.Name())
		if err != nil {
			b.Fatal(err)
		}
		logSeries(b, fmt.Sprintf("ablation: utility with %v m blocks", size), "eps", xs[:18], ut)
		// Bigger blocks ⇒ higher utility at the paper's ε=0.01 (index
		// of 0.01 in the 25-point grid over [1e-4, 1] is 12).
		at001 := ut[12]
		if at001 < prev {
			b.Fatalf("utility at ε=0.01 decreased from %v to %v when blocks grew", prev, at001)
		}
		prev = at001
		b.ReportMetric(at001, fmt.Sprintf("utility-at-0.01-cell%v", size))
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepPoint(b, f.dataset, 0.01, int64(i))
	}
}

// --- helpers ---

// runSweepPoint is the benchmark unit of work: protect the dataset at one ε
// and evaluate both paper metrics.
func runSweepPoint(b *testing.B, d *trace.Dataset, eps float64, seed int64) {
	b.Helper()
	sweep := &eval.Sweep{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Param:     lppm.EpsilonParam,
		Values:    []float64{eps},
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 1,
		Seed:    seed,
	}
	if _, err := eval.Run(context.Background(), sweep, d); err != nil {
		b.Fatal(err)
	}
}

// measureAt protects at one GEO-I ε and returns mean privacy and utility.
func measureAt(b *testing.B, d *trace.Dataset, eps float64) (pr, ut float64) {
	b.Helper()
	return measureWith(b, d, lppm.NewGeoIndistinguishability(), lppm.Params{lppm.EpsilonParam: eps})
}

func measureGaussianAt(b *testing.B, d *trace.Dataset, sigma float64) (pr, ut float64) {
	b.Helper()
	return measureWith(b, d, lppm.NewGaussianPerturbation(), lppm.Params{lppm.SigmaParam: sigma})
}

func measureWith(b *testing.B, d *trace.Dataset, mech lppm.Mechanism, params lppm.Params) (pr, ut float64) {
	b.Helper()
	sweep := &eval.Sweep{
		Mechanism: mech,
		Param:     mech.Params()[0].Name,
		Values:    []float64{params[mech.Params()[0].Name]},
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 3,
		Seed:    77,
	}
	res, err := eval.Run(context.Background(), sweep, d)
	if err != nil {
		b.Fatal(err)
	}
	return res.Points[0].Mean["poi_retrieval"], res.Points[0].Mean["area_coverage"]
}

// smallSubset keeps the first n users to bound per-iteration cost.
func smallSubset(d *trace.Dataset, n int) *trace.Dataset {
	out := trace.NewDataset()
	for i, u := range d.Users() {
		if i >= n {
			break
		}
		out.Add(d.Trace(u))
	}
	return out
}

// decades returns the width of a model's active zone in log10 decades.
func decades(m model.LogLinear) float64 {
	return stat.Clamp(math.Log10(m.XMax)-math.Log10(m.XMin), 0, 10)
}
