package repro_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/service"
	"repro/internal/trace"
)

// FNV-1a constants for the output digest below.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// runObsPass streams every producer slice through a fresh gateway wired to
// reg and digests the protected output: each user's records hash in arrival
// order (per-user order is deterministic), then the per-user hashes fold in
// sorted-user order into one value that is independent of how the shards'
// batches interleaved. Identical protected output ⇒ identical digest.
func runObsPass(b *testing.B, shards int, slices [][]trace.Record, total int, seed int64, reg *obs.Registry, tr *tracing.Tracer) uint64 {
	b.Helper()
	cfg := service.Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     shards,
		QueueSize:  512,
		FlushEvery: 8,
		Seed:       seed,
		Obs:        reg,
		Tracer:     tr,
	}
	g, err := service.New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	type drainResult struct {
		n      int
		digest uint64
	}
	consumed := make(chan drainResult)
	go func() {
		per := make(map[string]uint64, 256)
		n := 0
		for wnd := range g.Output() {
			batch := wnd.Records
			for i := range batch {
				rec := &batch[i]
				h, ok := per[rec.User]
				if !ok {
					h = fnvMixString(fnvOffset, rec.User)
				}
				h = fnvMix64(h, uint64(rec.Time.UnixNano()))
				h = fnvMix64(h, math.Float64bits(rec.Point.Lat))
				h = fnvMix64(h, math.Float64bits(rec.Point.Lng))
				per[rec.User] = h
			}
			n += len(batch)
		}
		users := make([]string, 0, len(per))
		for u := range per {
			users = append(users, u)
		}
		sort.Strings(users)
		digest := fnvOffset
		for _, u := range users {
			digest = fnvMixString(digest, u)
			digest = fnvMix64(digest, per[u])
		}
		consumed <- drainResult{n: n, digest: digest}
	}()
	errs := make(chan error, len(slices))
	for _, recs := range slices {
		go func(recs []trace.Record) {
			errs <- g.IngestAll(recs)
		}(recs)
	}
	for range slices {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}
	res := <-consumed
	if res.n != total {
		b.Fatalf("protected %d of %d records", res.n, total)
	}
	return res.digest
}

// BenchmarkObsOverhead prices the observability subsystem on the serving
// hot path: the same workload with collection on — a registry (counters,
// gauges, stage histograms, wall-clock stamps) plus a fully-sampled span
// tracer — and with everything off (obs.Nop(), nil tracer), interleaved
// within each iteration with alternating order — the same single-CPU
// discipline as BenchmarkGatewayControllerOverhead.
// Two contracts are enforced, not just printed: the protected output must
// be bit-identical between the modes (instrumentation reads clocks and
// bumps atomics but feeds nothing back into protection), and on a sample
// long enough to outweigh scheduler noise the collecting run must cost
// < 2% throughput (CI applies a looser 5% red line to the emitted JSON).
//
// With BENCH_OBS_JSON=<path> (make bench-obs sets it) the metrics are also
// written as JSON, so CI records the overhead trajectory over time.
func BenchmarkObsOverhead(b *testing.B) {
	const (
		users     = 192
		perUser   = 250
		producers = 4
		shards    = 4
	)
	slices := gatewayWorkload(users, perUser, producers)
	total := users * perUser
	modes := []func() (*obs.Registry, *tracing.Tracer){
		func() (*obs.Registry, *tracing.Tracer) { return obs.Nop(), nil },
		func() (*obs.Registry, *tracing.Tracer) {
			return obs.NewRegistry(), tracing.New(tracing.Config{RingSize: 1024})
		},
	}
	var elapsed [2]time.Duration
	var digests [2]uint64
	for _, mk := range modes {
		reg, tr := mk()
		runObsPass(b, shards, slices, total, 0, reg, tr)
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		// Alternate which mode goes first: with only two configs, a fixed
		// order would let slow host-load oscillations masquerade as a
		// systematic mode difference.
		for k := range modes {
			mi := (iter + k) % len(modes)
			reg, tr := modes[mi]()
			start := time.Now()
			digests[mi] = runObsPass(b, shards, slices, total, int64(iter+1), reg, tr)
			elapsed[mi] += time.Since(start)
		}
		if digests[0] != digests[1] {
			b.Fatalf("instrumentation perturbed the output: digest off=%016x on=%016x",
				digests[0], digests[1])
		}
	}
	off := float64(total*b.N) / elapsed[0].Seconds()
	on := float64(total*b.N) / elapsed[1].Seconds()
	overheadPct := (elapsed[1] - elapsed[0]).Seconds() / elapsed[0].Seconds() * 100
	b.ReportMetric(off, "points/sec:off")
	b.ReportMetric(on, "points/sec:on")
	b.ReportMetric(overheadPct, "overhead:%")

	// Wall-clock out of a single -benchtime=1x smoke pass is dominated by
	// scheduling noise; the budget is asserted once the sample is long
	// enough for a 2% difference to be signal.
	if elapsed[0]+elapsed[1] >= 2*time.Second && overheadPct > 2 {
		b.Fatalf("observability costs %.2f%% throughput, budget is 2%%", overheadPct)
	}

	if path := os.Getenv("BENCH_OBS_JSON"); path != "" {
		payload := struct {
			Benchmark  string             `json:"benchmark"`
			Users      int                `json:"users"`
			Records    int                `json:"records"`
			Iters      int                `json:"iterations"`
			Gomaxprocs int                `json:"gomaxprocs"`
			Metrics    map[string]float64 `json:"metrics"`
		}{"BenchmarkObsOverhead", users, total, b.N, runtime.GOMAXPROCS(0), map[string]float64{
			"points/sec:off": off,
			"points/sec:on":  on,
			"overhead_pct":   overheadPct,
		}}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
