// Multi-parameter benchmarks: the full Equation 1 story. X7 maps the
// response surface of a two-knob deployment (temporal sampling × GEO-I) and
// configures both parameters jointly; X8 fits the property-aware model
// (coefficients linear in dataset properties d_i) and transfers a
// configuration to users it never swept. X9 injects signal-loss gaps and
// checks the decision survives.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/poi"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// BenchmarkX7ResponseSurface runs the factorial sweep over the
// sampling+GEO-I pipeline, fits the bilinear surface of Equation 1 for
// both metrics, and configures the two parameters jointly.
func BenchmarkX7ResponseSurface(b *testing.B) {
	f := getFixture(b)
	pipe, err := lppm.NewPipeline("sampled-geoi", lppm.NewTemporalSampling(), lppm.NewGeoIndistinguishability())
	if err != nil {
		b.Fatal(err)
	}
	epsGrid := stat.LogSpace(1e-3, 1e-1, 7)
	periodGrid := stat.LogSpace(60, 1800, 4)
	sweep := &eval.Sweep2D{
		Mechanism: pipe,
		ParamX:    "geoi.epsilon",
		ParamY:    "sampling.period_sec",
		ValuesX:   epsGrid,
		ValuesY:   periodGrid,
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: 1,
		Seed:    29,
	}
	res, err := eval.RunGrid(context.Background(), sweep, f.dataset)
	if err != nil {
		b.Fatal(err)
	}
	priv, err := res.Surface("poi_retrieval")
	if err != nil {
		b.Fatal(err)
	}
	util, err := res.Surface("area_coverage")
	if err != nil {
		b.Fatal(err)
	}
	pSurf, err := model.FitSurface(epsGrid, periodGrid, priv, true, true)
	if err != nil {
		b.Fatal(err)
	}
	uSurf, err := model.FitSurface(epsGrid, periodGrid, util, true, true)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("X7 privacy surface: %v", pSurf)
	b.Logf("X7 utility surface: %v", uSurf)
	if pSurf.Bx <= 0 {
		b.Fatalf("privacy must rise with ε: Bx=%v", pSurf.Bx)
	}
	if uSurf.Bx <= 0 {
		b.Fatalf("utility must rise with ε: Bx=%v", uSurf.Bx)
	}

	obj := model.Objectives{MaxPrivacy: 0.20, MinUtility: 0.60}
	cells, best, ok := model.FeasiblePairs(epsGrid, periodGrid, priv, util, obj)
	if len(cells) != len(epsGrid)*len(periodGrid) {
		b.Fatalf("cells = %d, want %d", len(cells), len(epsGrid)*len(periodGrid))
	}
	if !ok {
		b.Fatal("expected a feasible (ε, period) pair at relaxed objectives")
	}
	b.Logf("X7 joint configuration: ε=%.4g, period=%.0fs (privacy %.3f, utility %.3f)",
		best.X, best.Y, best.Privacy, best.Utility)
	b.ReportMetric(best.X, "joint-eps")
	b.ReportMetric(best.Y, "joint-period-sec")

	// Partial inversion: at the chosen period, the surface's ε for the
	// privacy bound must be in the same decade as the grid search's.
	eps, err := pSurf.InvertX(obj.MaxPrivacy, best.Y)
	if err != nil {
		b.Fatal(err)
	}
	if eps < best.X/10 || eps > best.X*10 {
		b.Fatalf("surface inversion ε=%v disagrees with grid search ε=%v beyond a decade", eps, best.X)
	}

	small := smallSubset(f.dataset, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2 := *sweep
		s2.ValuesX = epsGrid[:3]
		s2.ValuesY = periodGrid[:2]
		s2.Seed = int64(i)
		if _, err := eval.RunGrid(context.Background(), &s2, small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX8PropertyModelTransfer fits Equation 1's property-aware form on
// a mixed taxi+commuter population and predicts per-user response curves
// from properties alone, checking that held-out users' configurations
// follow their dataset properties (Eq. 1's d_i earning their place).
func BenchmarkX8PropertyModelTransfer(b *testing.B) {
	f := getFixture(b)
	// Per-user privacy series from the canonical sweep.
	xs, _, err := f.sweep.Series("poi_retrieval")
	if err != nil {
		b.Fatal(err)
	}
	perUser := make(map[string][]float64, len(f.sweep.Users))
	for _, u := range f.sweep.Users {
		series := make([]float64, len(f.sweep.Points))
		for i, p := range f.sweep.Points {
			series[i] = p.PerUser["poi_retrieval"][u]
		}
		perUser[u] = series
	}
	props := make(map[string][]float64, len(f.sweep.Users))
	for _, up := range trace.DatasetProperties(f.dataset, 500) {
		props[up.User] = up.PropertyVector()
	}

	pm, err := model.FitPropertyModel(trace.PropertyNames(), xs, perUser, props, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("X8: property model over %d users: intercept R²=%.3f slope R²=%.3f",
		pm.Users, pm.InterceptR2, pm.SlopeR2)
	meanProps, err := model.MeanProperties(props)
	if err != nil {
		b.Fatal(err)
	}
	curve, err := pm.CurveFor(meanProps)
	if err != nil {
		b.Fatal(err)
	}
	// The dataset-mean curve must agree with the population fit within
	// the active zone.
	popModel := f.analysis.PrivacyModel
	mid := (popModel.XMin + popModel.XMax) / 2
	gap := curve.Predict(mid) - popModel.Predict(mid)
	b.Logf("X8: mean-property curve vs population fit at ε=%.4g: Δ=%.3f", mid, gap)
	if gap < -0.25 || gap > 0.25 {
		b.Fatalf("property model diverges from the population fit: Δ=%v", gap)
	}
	b.ReportMetric(pm.InterceptR2, "intercept-R2")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.FitPropertyModel(trace.PropertyNames(), xs, perUser, props, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX9GapRobustness injects signal-loss gaps into every trace and
// re-runs the headline configuration: the recommended ε must stay in the
// same decade — the framework's answer should not hinge on perfect GPS
// coverage.
func BenchmarkX9GapRobustness(b *testing.B) {
	f := getFixture(b)
	r := rng.New(41)
	damaged := trace.NewDataset()
	for _, tr := range f.dataset.Traces() {
		damaged.Add(tr.InjectGaps(3, 45*time.Minute, r.Float64))
	}
	if damaged.NumRecords() >= f.dataset.NumRecords() {
		b.Fatal("gap injection removed nothing")
	}
	def := f.analysis.Definition
	analysis, err := core.Analyze(context.Background(), def, damaged)
	if err != nil {
		b.Fatal(err)
	}
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	clean, err := f.analysis.Configure(obj)
	if err != nil {
		b.Fatal(err)
	}
	dirty, err := analysis.Configure(obj)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("X9: clean ε=%.4g (feasible=%v) vs gap-damaged ε=%.4g (feasible=%v); %d → %d records",
		clean.Value, clean.Feasible, dirty.Value, dirty.Feasible,
		f.dataset.NumRecords(), damaged.NumRecords())
	if !dirty.Feasible {
		b.Fatal("objectives must stay feasible under moderate signal loss")
	}
	ratio := dirty.Value / clean.Value
	if ratio < 0.1 || ratio > 10 {
		b.Fatalf("recommendation moved beyond a decade under gaps: %v vs %v", clean.Value, dirty.Value)
	}
	b.ReportMetric(ratio, "gap-over-clean-eps-ratio")

	user := damaged.Users()[0]
	tr := damaged.Trace(user)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Gaps(5 * time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExtractorKind (A6) contrasts the two POI extraction
// algorithms against the dummy-injection LPPM: the paper-style sequential
// stay-point extractor is blinded by interleaved decoy records (retrieval
// ≈ 0), while the density-based extractor — the realistic adversary —
// recovers the user's places regardless of record order. Metrics encode
// threat models; the framework must be run with the adversary's, not the
// weakest, extractor.
func BenchmarkAblationExtractorKind(b *testing.B) {
	f := getFixture(b)
	seq := metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig())
	den, err := poi.NewDensityExtractor(poi.DefaultDensityExtractorConfig())
	if err != nil {
		b.Fatal(err)
	}
	denMetric, err := metrics.NewFinderRetrieval("density_poi_retrieval", den, 100)
	if err != nil {
		b.Fatal(err)
	}

	dummies := lppm.NewDummyInjection()
	prot, err := lppm.ProtectDataset(f.dataset, dummies, lppm.Params{lppm.WalkersParam: 4}, rng.New(19))
	if err != nil {
		b.Fatal(err)
	}
	var seqSum, denSum float64
	users := f.dataset.Users()
	for _, u := range users {
		at, pt := f.dataset.Trace(u), prot.Trace(u)
		vs, err := seq.Evaluate(at, pt)
		if err != nil {
			b.Fatal(err)
		}
		vd, err := denMetric.Evaluate(at, pt)
		if err != nil {
			b.Fatal(err)
		}
		seqSum += vs
		denSum += vd
	}
	seqMean := seqSum / float64(len(users))
	denMean := denSum / float64(len(users))
	b.Logf("A6: dummy release (4 walkers): sequential retrieval %.3f, density retrieval %.3f", seqMean, denMean)
	if seqMean > 0.15 {
		b.Fatalf("sequential extractor should be blinded by decoys, got %v", seqMean)
	}
	if denMean < 0.5 {
		b.Fatalf("density extractor should still recover places, got %v", denMean)
	}
	b.ReportMetric(denMean-seqMean, "density-minus-sequential-retrieval")

	tr := f.dataset.Trace(users[0])
	ptr := prot.Trace(users[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := denMetric.Evaluate(tr, ptr); err != nil {
			b.Fatal(err)
		}
	}
}
