package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/server/client"
	"repro/internal/trace"
)

// writeInput produces a small CSV stream of nUsers × perUser records.
func writeInput(t *testing.T, path string, nUsers, perUser int) int {
	t.Helper()
	var b strings.Builder
	b.WriteString("user,timestamp,lat,lng\n")
	n := 0
	for i := 0; i < perUser; i++ {
		for u := 0; u < nUsers; u++ {
			fmt.Fprintf(&b, "u%02d,%d,%.6f,%.6f\n", u, 1211025600+60*i,
				37.7749+float64(i)*0.0004, -122.4194+float64(u)*0.0003)
			n++
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return n
}

func baseOpts(in, out string) serveOpts {
	return serveOpts{
		mechName: "geoi", params: lppm.Params{},
		inPath: in, outPath: out, formatName: "csv",
		shards: 2, flushEvery: 4, seed: 7,
	}
}

func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	n := writeInput(t, in, 5, 12)
	if err := run(lppm.NewRegistry(), baseOpts(in, out)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := 0
	if err := trace.ScanRecords(f, trace.FormatCSV, func(trace.Record) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("output carries %d records, want %d", got, n)
	}
}

// TestRunPropagatesWriteFailure is the exit-path audit's regression test:
// an output sink that fails mid-stream must surface as a non-nil error (a
// truncated -out file may never exit zero).
func TestRunPropagatesWriteFailure(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	writeInput(t, in, 8, 40)
	if err := run(lppm.NewRegistry(), baseOpts(in, "/dev/full")); err == nil {
		t.Fatal("write failure to /dev/full exited clean")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte("not,a,valid,header\nx,y,z,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(lppm.NewRegistry(), baseOpts(in, filepath.Join(dir, "out.csv"))); err == nil {
		t.Fatal("malformed input exited clean")
	}
}

func TestParseObjectives(t *testing.T) {
	obj, err := parseObjectives("privacy=0.25,utility=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if obj.MaxPrivacy != 0.25 || obj.MinUtility != 0.6 {
		t.Errorf("parsed %+v", obj)
	}
	for _, bad := range []string{"privacy=x", "leakage=0.1", "privacy",
		"privacy=0.1", "utility=0.8"} { // partial specs would zero the other bound
		if _, err := parseObjectives(bad); err == nil {
			t.Errorf("parseObjectives(%q) accepted", bad)
		}
	}
}

// TestRunWithController smoke-tests the reconfiguration path end to end:
// the loop is wired, samples the stream, and the process still exits clean
// with every record protected.
func TestRunWithController(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	n := writeInput(t, in, 6, 24)
	o := baseOpts(in, out)
	o.reconfEvery = 10 * time.Millisecond
	o.objectives = model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	o.sampleFrac = 1
	if err := run(lppm.NewRegistry(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := 0
	if err := trace.ScanRecords(f, trace.FormatCSV, func(trace.Record) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("controller run emitted %d records, want %d", got, n)
	}
}

// TestRunRejectsBadFlags is the fail-fast audit: flag nonsense must
// surface as one validation error before any file or goroutine work.
func TestRunRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	writeInput(t, in, 2, 4)
	out := filepath.Join(dir, "out.csv")
	cases := []struct {
		name   string
		mutate func(*serveOpts)
		want   string
	}{
		{"negative queue", func(o *serveOpts) { o.queue = -1 }, "-queue"},
		{"negative flush", func(o *serveOpts) { o.flushEvery = -4 }, "-flush"},
		{"negative shards", func(o *serveOpts) { o.shards = -2 }, "-shards"},
		{"sample above one", func(o *serveOpts) { o.sampleFrac = 1.5 }, "-sample"},
		{"negative sample", func(o *serveOpts) { o.sampleFrac = -0.1 }, "-sample"},
		{"unknown format", func(o *serveOpts) { o.formatName = "xml" }, "-format"},
		{"negative reconfigure", func(o *serveOpts) { o.reconfEvery = -time.Second }, "-reconfigure-every"},
		{"negative rate limit", func(o *serveOpts) { o.rateLimit = -1 }, "-rate-limit"},
		{"negative burst", func(o *serveOpts) { o.burst = -1 }, "-burst"},
		{"negative checkpoint cadence", func(o *serveOpts) { o.journal = "j"; o.checkpointEvery = -1 }, "-checkpoint-every"},
		{"negative journal sync", func(o *serveOpts) { o.journal = "j"; o.journalSync = -1 }, "-journal-sync"},
		{"journal knobs without journal", func(o *serveOpts) { o.checkpointEvery = 16 }, "-journal"},
	}
	for _, tc := range cases {
		o := baseOpts(in, out)
		tc.mutate(&o)
		err := run(lppm.NewRegistry(), o)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: error is not a single line: %q", tc.name, err)
		}
	}
}

// promSeriesSum parses a Prometheus text page with a scraper's eye — every
// non-comment line must split into series and float — and sums the series
// of the named metric, failing if none exist.
func promSeriesSum(t *testing.T, page, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	sc := bufio.NewScanner(strings.NewReader(page))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			base = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced label braces in %q", line)
			}
		}
		if base != name {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		found = true
		sum += v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("metric %s absent from page", name)
	}
	return sum
}

// TestAdminPlane exercises the -admin side-car against a real gateway:
// /metrics parses and quotes the gateway's counters, /metrics.json decodes,
// pprof answers, and writes are refused.
func TestAdminPlane(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := baseOpts("-", "-")
	g, _, _, err := buildServing(ctx, lppm.NewRegistry(), o)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range g.Output() {
		}
	}()
	const n = 16
	for i := 0; i < n; i++ {
		rec := trace.Record{
			User:  "admin-user",
			Time:  time.Unix(1211025600+int64(i)*60, 0).UTC(),
			Point: geo.Point{Lat: 37.7749, Lng: -122.4194 + float64(i)*0.0003},
		}
		if err := g.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Close first so every counter is final before the scrape — the
	// registry outlives the gateway it instruments.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	<-drained

	admin, err := startAdmin("127.0.0.1:0", g.Obs(), g.Tracer())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + admin.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if got := promSeriesSum(t, string(page), "lppm_shard_ingested_total"); got != n {
		t.Errorf("scraped ingested sum = %v, want %d", got, n)
	}

	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var series []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	err = json.NewDecoder(resp.Body).Decode(&series)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json does not decode: %v", err)
	}
	found := false
	for _, s := range series {
		if s.Name == "lppm_shard_ingested_total" {
			found = true
		}
	}
	if !found {
		t.Error("/metrics.json misses lppm_shard_ingested_total")
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
	}

	if err := admin.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeListenRoundTrip runs the daemon mode end to end on a loopback
// listener: stream records over HTTP, read stats and deployment, then shut
// down via context cancellation and verify the drain exits clean.
func TestServeListenRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o := baseOpts("-", "-")
	o.listen = ln.Addr().String()
	o.admin = "127.0.0.1:0" // exercise the side-car's daemon wiring and shutdown
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveListener(ctx, nil, lppm.NewRegistry(), o, ln) }()

	cl := client.New("http://" + ln.Addr().String())
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := cl.WaitHealthy(wctx); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		rec := trace.Record{
			User:  "net-user",
			Time:  time.Unix(1211025600+int64(i)*60, 0).UTC(),
			Point: geo.Point{Lat: 37.7749 + float64(i)*0.0004, Lng: -122.4194},
		}
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != n {
		t.Errorf("daemon returned %d records, want %d", got, n)
	}
	dep, err := cl.Deployment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dep.Mechanism != "geoi" {
		t.Errorf("daemon serves %q, want geoi", dep.Mechanism)
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gateway.Emitted != n || stats.Gateway.Dropped != 0 {
		t.Errorf("daemon stats %+v", stats.Gateway)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after cancellation")
	}
}

// TestServeListenJournalDrainOrdering pins the daemon's shutdown sequence
// with -journal attached: drain first (the partial tail window is flushed
// and checkpointed), journal close second, exit-code join last. After a
// clean exit the on-disk journal must cover every record the daemon ever
// ingested — including the pending records only the drain flushed — and a
// second daemon start must resume from it.
func TestServeListenJournalDrainOrdering(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "wal")
	rec := func(i int) trace.Record {
		return trace.Record{
			User:  "net-user",
			Time:  time.Unix(1211025600+int64(i)*60, 0).UTC(),
			Point: geo.Point{Lat: 37.7749 + float64(i)*0.0004, Lng: -122.4194},
		}
	}
	start := func() (*client.Client, context.CancelFunc, chan error) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		o := baseOpts("-", "-")
		o.listen = ln.Addr().String()
		o.journal = jdir
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- serveListener(ctx, nil, lppm.NewRegistry(), o, ln) }()
		cl := client.New("http://" + ln.Addr().String())
		wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer wcancel()
		if err := cl.WaitHealthy(wctx); err != nil {
			t.Fatal(err)
		}
		return cl, cancel, done
	}
	waitExit := func(cancel context.CancelFunc, done chan error) {
		t.Helper()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never exited after cancellation")
		}
	}

	cl, cancel, done := start()
	st, err := cl.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 6 records against flushEvery=4: one window flushes live, two stay
	// pending — only the drain can checkpoint them.
	for i := 0; i < 6; i++ {
		if err := st.Send(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Gateway.Emitted >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first window never flushed: %+v", stats.Gateway)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitExit(cancel, done) // drain mid-stream; exit code must stay clean
	_ = st.Close()

	// The journal on disk is the ordering witness: In=6 proves the drain's
	// tail flush checkpointed before the journal closed, Corrupted=false
	// proves the close was clean, and a decodable snapshot-headed segment
	// proves the exit-code join ran after both.
	w, jst, info, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !info.Resumed || info.Corrupted {
		t.Fatalf("journal after clean exit: %+v, want resumed and uncorrupted", info)
	}
	u := jst.Users["net-user"]
	if u == nil {
		t.Fatal("journal lost the user checkpoint")
	}
	if u.In != 6 || u.Out != 6 || u.Windows != 2 {
		t.Errorf("journal checkpoint in=%d out=%d windows=%d, want 6/6/2 (drain tail not checkpointed before close?)",
			u.In, u.Out, u.Windows)
	}

	// Second start resumes from the journal and says so on /healthz.
	cl2, cancel2, done2 := start()
	resp, err := http.Get(cl2.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Recovery *struct {
			Resumed bool `json:"resumed"`
			Users   int  `json:"users"`
		} `json:"recovery"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Recovery == nil || !health.Recovery.Resumed || health.Recovery.Users != 1 {
		t.Errorf("healthz recovery after restart: %+v, want resumed with 1 user", health.Recovery)
	}
	res, err := cl2.Resume(context.Background(), "net-user")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Known || res.In != 6 {
		t.Errorf("resume after restart: %+v, want known in=6", res)
	}
	waitExit(cancel2, done2)
}
