package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/trace"
)

// writeInput produces a small CSV stream of nUsers × perUser records.
func writeInput(t *testing.T, path string, nUsers, perUser int) int {
	t.Helper()
	var b strings.Builder
	b.WriteString("user,timestamp,lat,lng\n")
	n := 0
	for i := 0; i < perUser; i++ {
		for u := 0; u < nUsers; u++ {
			fmt.Fprintf(&b, "u%02d,%d,%.6f,%.6f\n", u, 1211025600+60*i,
				37.7749+float64(i)*0.0004, -122.4194+float64(u)*0.0003)
			n++
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return n
}

func baseOpts(in, out string) serveOpts {
	return serveOpts{
		mechName: "geoi", params: lppm.Params{},
		inPath: in, outPath: out, formatName: "csv",
		shards: 2, flushEvery: 4, seed: 7,
	}
}

func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	n := writeInput(t, in, 5, 12)
	if err := run(lppm.NewRegistry(), baseOpts(in, out)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := 0
	if err := trace.ScanRecords(f, trace.FormatCSV, func(trace.Record) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("output carries %d records, want %d", got, n)
	}
}

// TestRunPropagatesWriteFailure is the exit-path audit's regression test:
// an output sink that fails mid-stream must surface as a non-nil error (a
// truncated -out file may never exit zero).
func TestRunPropagatesWriteFailure(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	writeInput(t, in, 8, 40)
	if err := run(lppm.NewRegistry(), baseOpts(in, "/dev/full")); err == nil {
		t.Fatal("write failure to /dev/full exited clean")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte("not,a,valid,header\nx,y,z,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(lppm.NewRegistry(), baseOpts(in, filepath.Join(dir, "out.csv"))); err == nil {
		t.Fatal("malformed input exited clean")
	}
}

func TestParseObjectives(t *testing.T) {
	obj, err := parseObjectives("privacy=0.25,utility=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if obj.MaxPrivacy != 0.25 || obj.MinUtility != 0.6 {
		t.Errorf("parsed %+v", obj)
	}
	for _, bad := range []string{"privacy=x", "leakage=0.1", "privacy",
		"privacy=0.1", "utility=0.8"} { // partial specs would zero the other bound
		if _, err := parseObjectives(bad); err == nil {
			t.Errorf("parseObjectives(%q) accepted", bad)
		}
	}
}

// TestRunWithController smoke-tests the reconfiguration path end to end:
// the loop is wired, samples the stream, and the process still exits clean
// with every record protected.
func TestRunWithController(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	n := writeInput(t, in, 6, 24)
	o := baseOpts(in, out)
	o.reconfEvery = 10 * time.Millisecond
	o.objectives = model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	o.sampleFrac = 1
	if err := run(lppm.NewRegistry(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := 0
	if err := trace.ScanRecords(f, trace.FormatCSV, func(trace.Record) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("controller run emitted %d records, want %d", got, n)
	}
}
