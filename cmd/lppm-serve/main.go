// Command lppm-serve runs the online protection gateway over a record
// stream: it reads location records (JSONL or CSV) from stdin or a file,
// routes them through N shards applying the configured mechanism, and
// streams the protected records out — the serving counterpart of the batch
// lppm-apply.
//
// Usage:
//
//	lppm-tracegen -drivers 50 -out day.csv
//	lppm-serve -in day.csv -format csv -mech geoi -set epsilon=0.01 -shards 8 -out protected.csv -stats
//	cat stream.jsonl | lppm-serve -mech rounding > protected.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lppm-serve: ")

	var (
		mechName   = flag.String("mech", "geoi", "mechanism to apply (see -list)")
		list       = flag.Bool("list", false, "list available mechanisms and exit")
		inPath     = flag.String("in", "-", "input path, - for stdin")
		outPath    = flag.String("out", "-", "output path, - for stdout")
		formatName = flag.String("format", "jsonl", "record format: jsonl or csv")
		shards     = flag.Int("shards", 0, "worker shards, 0 for GOMAXPROCS")
		queue      = flag.Int("queue", 0, "per-shard queue size, 0 for default")
		flushEvery = flag.Int("flush", 0, "per-user window size, 0 for default")
		seed       = flag.Int64("seed", 42, "master random seed")
		stats      = flag.Bool("stats", false, "print gateway stats to stderr on exit")
	)
	params := lppm.Params{}
	flag.Func("set", "parameter override as name=value (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", s, err)
		}
		params[name] = v
		return nil
	})
	flag.Parse()

	reg := lppm.NewRegistry()
	if *list {
		fmt.Println(strings.Join(reg.Names(), "\n"))
		return
	}
	if err := run(reg, *mechName, params, *inPath, *outPath, *formatName,
		*shards, *queue, *flushEvery, *seed, *stats); err != nil {
		log.Fatal(err)
	}
}

func run(reg *lppm.Registry, mechName string, params lppm.Params, inPath, outPath, formatName string,
	shards, queue, flushEvery int, seed int64, stats bool) error {
	format, err := trace.ParseFormat(formatName)
	if err != nil {
		return err
	}
	mech, err := reg.Get(mechName)
	if err != nil {
		return err
	}
	// Defaults plus -set overrides, validated once up front.
	dep, err := core.NewDeployment(mech, params)
	if err != nil {
		return err
	}

	in := io.Reader(os.Stdin)
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	var outFile *os.File
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		outFile = f
		out = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A dead output also cancels ingestion — no point protecting a
	// multi-gigabyte stream whose writer failed on the first window.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	cfg := service.ConfigFromDeployment(dep, seed)
	cfg.Shards = shards
	cfg.QueueSize = queue
	cfg.FlushEvery = flushEvery
	g, err := service.New(ctx, cfg)
	if err != nil {
		return err
	}

	rw, err := trace.NewRecordWriter(out, format)
	if err != nil {
		return err
	}
	writeDone := make(chan error, 1)
	go func() {
		for batch := range g.Output() {
			for _, rec := range batch {
				if err := rw.Write(rec); err != nil {
					writeDone <- err
					cancel()
					// Keep draining so the gateway can finish.
					for range g.Output() {
					}
					return
				}
			}
		}
		writeDone <- rw.Flush()
	}()

	scanErr := trace.ScanRecords(in, format, g.Ingest)
	if closeErr := g.Close(); scanErr == nil {
		scanErr = closeErr
	}
	// A writer failure outranks the scan error it induced (the cancel
	// above surfaces to Ingest as context.Canceled).
	if writeErr := <-writeDone; writeErr != nil {
		scanErr = writeErr
	}
	// Close explicitly: a delayed write-back failure surfaces here, and
	// exiting 0 with a truncated output would hide it.
	if outFile != nil {
		if cerr := outFile.Close(); scanErr == nil {
			scanErr = cerr
		}
	}
	if stats {
		st := g.Stats()
		fmt.Fprintf(os.Stderr, "ingested=%d emitted=%d dropped=%d users=%d flushes=%d shards=%d\n",
			st.Ingested, st.Emitted, st.Dropped, st.Users, st.Flushes, len(st.PerShard))
		for i, ss := range st.PerShard {
			fmt.Fprintf(os.Stderr, "  shard %d: ingested=%d emitted=%d users=%d\n",
				i, ss.Ingested, ss.Emitted, ss.Users)
		}
	}
	// A canceled scan (SIGINT) still drained above; report it only if
	// nothing else failed.
	return scanErr
}
