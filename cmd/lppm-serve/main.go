// Command lppm-serve runs the online protection gateway over a record
// stream: it reads location records (JSONL or CSV) from stdin or a file,
// routes them through N shards applying the configured mechanism, and
// streams the protected records out — the serving counterpart of the batch
// lppm-apply. With -reconfigure-every it also closes the loop: a
// reconfiguration controller samples the served stream, estimates the live
// privacy/utility, and hot-swaps a re-configured deployment when the
// observed values drift outside the -objectives.
//
// With -listen the same binary runs as a network daemon instead: the
// gateway is exposed over HTTP (POST /v1/stream and friends — see
// internal/server) until SIGINT/SIGTERM triggers a graceful drain.
//
// With -admin (either mode) an observability side-car serves GET /metrics
// (Prometheus text format), GET /metrics.json and /debug/pprof on its own
// listener, so scraping and profiling never contend with — and pprof is
// never reachable from — the serving address. Adding -trace records a
// span tree per sampled window and mounts GET /trace (JSON),
// GET /trace.chrome (Chrome trace_event, loadable in Perfetto) and
// GET /debug/flight (the flight recorder) on the same admin plane.
//
// Usage:
//
//	lppm-tracegen -drivers 50 -out day.csv
//	lppm-serve -in day.csv -format csv -mech geoi -set epsilon=0.01 -shards 8 -out protected.csv -stats
//	cat stream.jsonl | lppm-serve -mech rounding > protected.jsonl
//	lppm-serve -in day.csv -format csv -mech geoi -reconfigure-every 30s -objectives privacy=0.1,utility=0.8
//	lppm-serve -listen :8080 -mech geoi -set epsilon=0.01 -shards 8 -stats
//	lppm-serve -listen :8080 -admin 127.0.0.1:6060 -mech geoi
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/trace"
)

// logger is the process-wide structured logger. main installs a plain
// one immediately; buildServing replaces it with a gateway-correlated
// one (deployment generation on every line, trace/span IDs from request
// contexts, events teed into the flight recorder) as soon as a gateway
// exists.
var logger *slog.Logger

// fatal reports a terminal error through the structured logger and
// exits non-zero — the slog replacement for log.Fatal.
func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{ContextAttrs: tracing.ContextAttrs})

	var (
		mechName   = flag.String("mech", "geoi", "mechanism to apply (see -list)")
		list       = flag.Bool("list", false, "list available mechanisms and exit")
		inPath     = flag.String("in", "-", "input path, - for stdin")
		outPath    = flag.String("out", "-", "output path, - for stdout")
		formatName = flag.String("format", "jsonl", "record format: jsonl or csv")
		shards     = flag.Int("shards", 0, "worker shards, 0 for GOMAXPROCS")
		queue      = flag.Int("queue", 0, "per-shard queue size, 0 for default")
		flushEvery = flag.Int("flush", 0, "per-user window size, 0 for default")
		seed       = flag.Int64("seed", 42, "master random seed")
		stats      = flag.Bool("stats", false, "print gateway stats to stderr on exit")
		admin      = flag.String("admin", "", "serve /metrics, /metrics.json and /debug/pprof on this address (e.g. 127.0.0.1:6060); empty disables")

		traceOn = flag.Bool("trace", false,
			"record per-window span trees; mounts /trace, /trace.chrome and /debug/flight on the -admin plane")
		traceSample = flag.Float64("trace-sample", 1.0,
			"fraction of windows traced, in (0, 1] — deterministic in the trace ID (with -trace)")

		journal = flag.String("journal", "",
			"append-only journal directory: checkpoint per-user stream state for crash-safe resume; auto-recovers on start (empty disables)")
		checkpointEvery = flag.Int("checkpoint-every", 0,
			"journal appends between compacted snapshots, 0 for default (with -journal)")
		journalSync = flag.Int("journal-sync", 0,
			"fsync the journal every Nth append; 0 or 1 sync every append — the setting the kill-and-resume equivalence proof assumes (with -journal)")

		listen     = flag.String("listen", "", "serve the gateway over HTTP on this address (e.g. :8080) instead of -in/-out")
		maxStreams = flag.Int("max-streams", 0, "max concurrent /v1/stream connections (0 default, negative unlimited; with -listen)")
		rateLimit  = flag.Float64("rate-limit", 0, "per-tenant request rate limit in req/s, 0 disables (with -listen)")
		burst      = flag.Int("burst", 0, "per-tenant rate-limit burst, 0 for default (with -listen)")

		reconfEvery = flag.Duration("reconfigure-every", 0,
			"run the reconfiguration controller at this interval (0 disables the loop)")
		objectives = flag.String("objectives", "privacy=0.10,utility=0.80",
			"drift targets as privacy=MAX,utility=MIN (used with -reconfigure-every)")
		sampleFrac = flag.Float64("sample", 0.05,
			"fraction of flushed windows the controller observes, in (0, 1] (0 also means the 5% default; drop -reconfigure-every to disable the loop)")
		paramName = flag.String("param", "",
			"parameter the controller re-models; empty = the mechanism's sole parameter")
	)
	params := lppm.Params{}
	flag.Func("set", "parameter override as name=value (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", s, err)
		}
		params[name] = v
		return nil
	})
	flag.Parse()

	reg := lppm.NewRegistry()
	if *list {
		fmt.Println(strings.Join(reg.Names(), "\n"))
		return
	}
	obj, err := parseObjectives(*objectives)
	if err != nil {
		fatal(err)
	}
	opts := serveOpts{
		mechName: *mechName, params: params,
		inPath: *inPath, outPath: *outPath, formatName: *formatName,
		shards: *shards, queue: *queue, flushEvery: *flushEvery,
		seed: *seed, stats: *stats, admin: *admin,
		traceOn: *traceOn, traceSample: *traceSample,
		journal: *journal, checkpointEvery: *checkpointEvery, journalSync: *journalSync,
		reconfEvery: *reconfEvery, objectives: obj,
		sampleFrac: *sampleFrac, paramName: *paramName,
		listen: *listen, maxStreams: *maxStreams,
		rateLimit: *rateLimit, burst: *burst,
	}
	if opts.listen != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		// stop is forwarded so the drain path restores default signal
		// handling the moment the first signal lands: a second SIGTERM
		// then kills the process outright instead of being swallowed
		// while a stuck drain runs out its timeout.
		if err := runListen(ctx, stop, reg, opts); err != nil {
			fatal(err)
		}
		return
	}
	if err := run(reg, opts); err != nil {
		fatal(err)
	}
}

// parseObjectives reads "privacy=0.1,utility=0.8" into model.Objectives.
// Both bounds are required: a missing one would silently default to zero
// and turn the drift check into a perpetually-failing reconfiguration.
func parseObjectives(s string) (model.Objectives, error) {
	var obj model.Objectives
	var havePriv, haveUtil bool
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return obj, fmt.Errorf("bad -objectives part %q, want name=value", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return obj, fmt.Errorf("bad -objectives value in %q: %v", part, err)
		}
		switch name {
		case "privacy":
			obj.MaxPrivacy, havePriv = v, true
		case "utility":
			obj.MinUtility, haveUtil = v, true
		default:
			return obj, fmt.Errorf("unknown -objectives name %q (want privacy or utility)", name)
		}
	}
	if !havePriv || !haveUtil {
		return obj, fmt.Errorf("-objectives must set both privacy and utility, got %q", s)
	}
	return obj, obj.Validate()
}

type serveOpts struct {
	mechName   string
	params     lppm.Params
	inPath     string
	outPath    string
	formatName string
	shards     int
	queue      int
	flushEvery int
	seed       int64
	stats      bool
	admin      string

	traceOn     bool
	traceSample float64

	journal         string
	checkpointEvery int
	journalSync     int

	reconfEvery time.Duration
	objectives  model.Objectives
	sampleFrac  float64
	paramName   string

	listen     string
	maxStreams int
	rateLimit  float64
	burst      int
}

// validate fails fast on flag nonsense with a single-line error, before
// any file is opened or goroutine started — a bad -queue must not surface
// as a failure deep in the pipeline.
func (o *serveOpts) validate() error {
	switch {
	case o.queue < 0:
		return fmt.Errorf("-queue must be non-negative, got %d", o.queue)
	case o.flushEvery < 0:
		return fmt.Errorf("-flush must be non-negative, got %d", o.flushEvery)
	case o.shards < 0:
		return fmt.Errorf("-shards must be non-negative, got %d", o.shards)
	case o.sampleFrac < 0 || o.sampleFrac > 1:
		return fmt.Errorf("-sample must be in [0, 1], got %v", o.sampleFrac)
	case o.reconfEvery < 0:
		return fmt.Errorf("-reconfigure-every must be non-negative, got %v", o.reconfEvery)
	case o.rateLimit < 0:
		return fmt.Errorf("-rate-limit must be non-negative, got %v", o.rateLimit)
	case o.burst < 0:
		return fmt.Errorf("-burst must be non-negative, got %d", o.burst)
	case o.checkpointEvery < 0:
		return fmt.Errorf("-checkpoint-every must be non-negative, got %d", o.checkpointEvery)
	case o.journalSync < 0:
		return fmt.Errorf("-journal-sync must be non-negative, got %d", o.journalSync)
	case o.journal == "" && (o.checkpointEvery != 0 || o.journalSync != 0):
		return fmt.Errorf("-checkpoint-every/-journal-sync require -journal")
	case o.traceSample < 0 || o.traceSample > 1:
		return fmt.Errorf("-trace-sample must be in (0, 1], got %v", o.traceSample)
	case !o.traceOn && o.traceSample != 0 && o.traceSample != 1.0:
		return fmt.Errorf("-trace-sample requires -trace")
	}
	if _, err := trace.ParseFormat(o.formatName); err != nil {
		return fmt.Errorf("-format: %v", err)
	}
	return nil
}

// buildServing turns the flags into the serving stack shared by the file
// and network modes: deployment → gateway → optional controller. With
// -journal the gateway is built by service.Recover instead: a fresh
// directory starts a journal, an existing one resumes every
// checkpointed user stream bit-identically (the journaled deployment wins
// over the flags — the journal is authoritative for what was serving).
func buildServing(ctx context.Context, reg *lppm.Registry, o serveOpts) (*service.Gateway, *service.Controller, *service.RecoveryInfo, error) {
	mech, err := reg.Get(o.mechName)
	if err != nil {
		return nil, nil, nil, err
	}
	// Defaults plus -set overrides, validated once up front.
	dep, err := core.NewDeployment(mech, o.params)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := service.ConfigFromDeployment(dep, o.seed)
	cfg.Shards = o.shards
	cfg.QueueSize = o.queue
	cfg.FlushEvery = o.flushEvery
	if o.traceOn {
		cfg.Tracer = tracing.New(tracing.Config{SampleFrac: o.traceSample})
	}
	var g *service.Gateway
	var info *service.RecoveryInfo
	if o.journal != "" {
		g, info, err = service.Recover(ctx, cfg, service.JournalConfig{
			Dir:          o.journal,
			SyncEvery:    o.journalSync,
			CompactEvery: o.checkpointEvery,
			Resolve:      reg.Get,
		})
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		g, err = service.New(ctx, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	// The gateway exists: runtime self-metrics join its registry, and the
	// process logger is rebuilt correlated — deployment generation on
	// every line, trace/span IDs from request contexts, and every event
	// teed into the flight recorder (nil-safe when tracing is off).
	obs.RegisterRuntimeMetrics(g.Obs())
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{
		ContextAttrs: tracing.ContextAttrs,
		Generation:   g.Generation,
		Sink:         g.Tracer().Flight(),
	})
	if info != nil {
		if info.Resumed {
			logger.Info("journal resumed",
				"dir", o.journal, "users", info.Users, "generation", info.Generation,
				"segments", info.Segments, "entries", info.Entries, "torn_tail", info.Corrupted)
		} else {
			logger.Info("journal started fresh", "dir", o.journal)
		}
	}
	var ctrl *service.Controller
	if o.reconfEvery > 0 {
		ctrl, err = service.NewController(g, dep, service.ControllerConfig{
			Definition: core.Definition{
				Mechanism: mech,
				Param:     o.paramName,
				Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
				Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
				// Online re-analysis trades grid resolution for
				// latency: it runs against live traffic.
				GridPoints: 9,
				Repeats:    1,
			},
			Objectives: o.objectives,
			SampleFrac: o.sampleFrac,
			Seed:       o.seed,
		})
		if err != nil {
			return nil, nil, nil, errors.Join(err, g.Close())
		}
		go ctrl.Run(ctx, o.reconfEvery)
	}
	return g, ctrl, info, nil
}

// adminServer is the observability side-car: /metrics, /metrics.json and
// net/http/pprof on their own listener — never the serving one, so a
// scraper or a profile download cannot contend with stream admission and
// the serving surface never exposes pprof.
type adminServer struct {
	hs *http.Server
	ln net.Listener
}

// startAdmin binds addr and serves the admin mux over reg in the
// background, mounting the tracing endpoints when a tracer is attached.
// Callers own the returned server and must Close it on exit.
func startAdmin(addr string, reg *obs.Registry, t *tracing.Tracer) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listener: %w", err)
	}
	mux := obs.AdminMux(reg)
	if t != nil {
		mux.Handle("/trace", tracing.TraceHandler(t))
		mux.Handle("/trace.chrome", tracing.ChromeHandler(t))
		mux.Handle("/debug/flight", tracing.FlightHandler(t))
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	logger.Info("admin plane up", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()), "tracing", t != nil)
	return &adminServer{hs: hs, ln: ln}, nil
}

// Addr reports the bound address (useful with -admin 127.0.0.1:0).
func (a *adminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin plane down, giving in-flight scrapes a short
// grace before the listener goes away.
func (a *adminServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return a.hs.Shutdown(ctx)
}

// runListen is the network daemon: the serving stack behind an HTTP
// front-end until the context (SIGINT/SIGTERM) ends it, then a graceful
// drain that flushes every user stream exactly once and — when a journal
// is attached — closes the journal only after the last tail window has
// been checkpointed, so the on-disk state a later -journal start resumes
// from covers everything the drain delivered.
func runListen(ctx context.Context, stop context.CancelFunc, reg *lppm.Registry, o serveOpts) error {
	if err := o.validate(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	return serveListener(ctx, stop, reg, o, ln)
}

// serveListener runs the daemon on an existing listener (split from
// runListen so tests can bind :0 and learn the port). stop, when non-nil,
// is called as soon as the shutdown begins, restoring default signal
// disposition so a second signal kills a wedged drain outright.
func serveListener(ctx context.Context, stop context.CancelFunc, reg *lppm.Registry, o serveOpts, ln net.Listener) error {
	gctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g, ctrl, info, err := buildServing(gctx, reg, o)
	if err != nil {
		return errors.Join(err, ln.Close())
	}
	var admin *adminServer
	if o.admin != "" {
		admin, err = startAdmin(o.admin, g.Obs(), g.Tracer())
		if err != nil {
			return errors.Join(err, ln.Close(), g.Close())
		}
	}
	srv, err := server.New(server.Config{
		Gateway:    g,
		Controller: ctrl,
		MaxStreams: o.maxStreams,
		RatePerSec: o.rateLimit,
		Burst:      o.burst,
		Seed:       o.seed,
		Recovery:   info,
	})
	if err != nil {
		if admin != nil {
			err = errors.Join(err, admin.Close())
		}
		return errors.Join(err, ln.Close(), g.Close())
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())

	var runErr error
	select {
	case <-ctx.Done():
	case runErr = <-serveErr:
		// The listener died under us; still drain what is in flight.
	}
	if stop != nil {
		stop()
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	drainErr := srv.Drain(dctx)
	// Shutdown, not Close: Drain returns once every tail window has been
	// routed into its connection's buffer, but handlers may still be
	// writing those buffers onto the wire — severing the TCP connections
	// here would lose the very tails the drain just flushed.
	closeErr := hs.Shutdown(dctx)
	if errors.Is(closeErr, context.DeadlineExceeded) {
		closeErr = errors.Join(closeErr, hs.Close())
	}
	// The admin plane outlives the drain so the final counters stay
	// scrapeable until the very end of the shutdown.
	var adminErr error
	if admin != nil {
		adminErr = admin.Close()
	}
	if o.stats {
		printStats(g, ctrl)
	}
	if errors.Is(runErr, http.ErrServerClosed) {
		runErr = nil
	}
	return errors.Join(runErr, drainErr, closeErr, adminErr)
}

func run(reg *lppm.Registry, o serveOpts) error {
	if err := o.validate(); err != nil {
		return err
	}
	format, err := trace.ParseFormat(o.formatName)
	if err != nil {
		return err
	}

	in := io.Reader(os.Stdin)
	if o.inPath != "-" {
		f, err := os.Open(o.inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	var outFile *os.File
	if o.outPath != "-" {
		f, err := os.Create(o.outPath)
		if err != nil {
			return err
		}
		outFile = f
		out = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A dead output also cancels ingestion — no point protecting a
	// multi-gigabyte stream whose writer failed on the first window.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	g, ctrl, _, err := buildServing(ctx, reg, o)
	if err != nil {
		return err
	}
	var admin *adminServer
	if o.admin != "" {
		admin, err = startAdmin(o.admin, g.Obs(), g.Tracer())
		if err != nil {
			return errors.Join(err, g.Close())
		}
	}

	rw, err := trace.NewRecordWriter(out, format)
	if err != nil {
		return err
	}
	writeDone := make(chan error, 1)
	go func() {
		for wnd := range g.Output() {
			for _, rec := range wnd.Records {
				if err := rw.Write(rec); err != nil {
					writeDone <- err
					cancel()
					// Keep draining so the gateway can finish.
					for range g.Output() {
					}
					return
				}
			}
		}
		// The buffered writer's flush is a success-path concern: a
		// failure here means the tail of the output never hit the sink.
		writeDone <- rw.Flush()
	}()

	// Every failure below must reach the exit code — a gateway error, a
	// writer flush/close error or an output-file close error each mean
	// the -out file may be truncated, and exiting zero would hide it.
	scanErr := trace.ScanRecords(in, format, g.Ingest)
	gwErr := g.Close()
	writeErr := <-writeDone
	if writeErr != nil && errors.Is(scanErr, context.Canceled) {
		// The writer failure induced the cancellation; reporting the
		// scan's context error too would only obscure the cause.
		scanErr = nil
	}
	var outCloseErr error
	if outFile != nil {
		// Close explicitly: a delayed write-back failure surfaces here.
		outCloseErr = outFile.Close()
	}
	var adminErr error
	if admin != nil {
		adminErr = admin.Close()
	}
	if o.stats {
		printStats(g, ctrl)
	}
	// A canceled scan (SIGINT) still drained above and is worth
	// reporting; Join drops the nils and keeps every real failure.
	return errors.Join(writeErr, scanErr, gwErr, outCloseErr, adminErr)
}

// printStats reports the gateway (and controller) counters on stderr.
func printStats(g *service.Gateway, ctrl *service.Controller) {
	st := g.Stats()
	fmt.Fprintf(os.Stderr, "ingested=%d emitted=%d dropped=%d users=%d flushes=%d shards=%d generation=%d swaps=%d\n",
		st.Ingested, st.Emitted, st.Dropped, st.Users, st.Flushes, len(st.PerShard), st.Generation, st.Swaps)
	for i, ss := range st.PerShard {
		fmt.Fprintf(os.Stderr, "  shard %d: ingested=%d emitted=%d users=%d\n",
			i, ss.Ingested, ss.Emitted, ss.Users)
	}
	if ctrl != nil {
		cs := ctrl.Stats()
		fmt.Fprintf(os.Stderr, "controller: windows=%d records=%d users=%d evals=%d swaps=%d privacy=%.3f utility=%.3f\n",
			cs.WindowsObserved, cs.RecordsObserved, cs.UsersTracked,
			cs.Evaluations, cs.Swaps, cs.LastPrivacy, cs.LastUtility)
		if cs.LastErr != nil {
			fmt.Fprintf(os.Stderr, "controller: last error: %v\n", cs.LastErr)
		}
	}
}
