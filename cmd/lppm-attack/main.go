// Command lppm-attack mounts the adversary's side of the framework: it
// protects a dataset with a configured mechanism and reports how well the
// inference attacks in internal/attack still work on the release —
// re-identification, top-POI (home/depot) inference, mobility-profile
// predictability and trajectory denoising. It is the operational
// counterpart of the privacy metrics: "ε = 0.01" is abstract, "4 of 25
// drivers re-identified" is not.
//
// Usage:
//
//	lppm-attack -in traces.csv -mechanism geoi -params epsilon=0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/lppm"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input dataset CSV (required)")
		mechanism = flag.String("mechanism", "geoi", "LPPM name")
		params    = flag.String("params", "", "comma-separated name=value parameter assignments (default: mechanism defaults)")
		seed      = flag.Int64("seed", 42, "protection seed")
		window    = flag.Int("window", 9, "smoothing-attack window (odd)")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	actual, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	registry := lppm.NewRegistry()
	mech, err := registry.Get(*mechanism)
	if err != nil {
		return err
	}
	p := lppm.Defaults(mech)
	if *params != "" {
		if err := parseParams(p, *params); err != nil {
			return err
		}
	}

	protected, err := lppm.ProtectDataset(actual, mech, p, rng.New(*seed))
	if err != nil {
		return err
	}

	reident, err := attack.Reidentify(actual, protected, attack.DefaultReidentConfig())
	if err != nil {
		return err
	}

	users := actual.Users()
	var topHits, topPossible int
	var markovSum, smoothSum float64
	var markovN, smoothN int
	markov := attack.MarkovPredictability{}
	smoothing := attack.SmoothingAdvantage{Window: *window}
	for _, u := range users {
		at, pt := actual.Trace(u), protected.Trace(u)
		hit, possible, err := attack.InferTopPOI(at, pt, attack.DefaultTopPOIConfig())
		if err != nil {
			return fmt.Errorf("top-POI attack on %s: %w", u, err)
		}
		if possible {
			topPossible++
			if hit {
				topHits++
			}
		}
		if at.Len() >= 2 {
			v, err := markov.Evaluate(at, pt)
			if err != nil {
				return fmt.Errorf("markov attack on %s: %w", u, err)
			}
			markovSum += v
			markovN++
		}
		v, err := smoothing.Evaluate(at, pt)
		if err != nil {
			return fmt.Errorf("smoothing attack on %s: %w", u, err)
		}
		smoothSum += v
		smoothN++
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "attack\tresult\tinterpretation\n")
	fmt.Fprintf(w, "re-identification\t%.1f%% (%d users)\tfingerprint linkage across the release\n",
		reident.SuccessRate*100, reident.Candidates)
	if topPossible > 0 {
		fmt.Fprintf(w, "top-POI inference\t%d/%d hits\thome/depot located within tolerance\n", topHits, topPossible)
	} else {
		fmt.Fprintf(w, "top-POI inference\tno POIs exposed\trelease leaks no stay points\n")
	}
	if markovN > 0 {
		fmt.Fprintf(w, "mobility profile\t%.3f\tper-step predictability vs background profile (1 = intact)\n", markovSum/float64(markovN))
	}
	if smoothN > 0 {
		fmt.Fprintf(w, "trajectory denoising\t%.3f\tfraction of noise removed by a window-%d moving average\n", smoothSum/float64(smoothN), *window)
	}
	return w.Flush()
}

// parseParams merges "name=value,name=value" assignments into p.
func parseParams(p lppm.Params, s string) error {
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("malformed parameter assignment %q (want name=value)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return fmt.Errorf("parameter %q: %w", parts[0], err)
		}
		p[parts[0]] = v
	}
	return nil
}
