package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lppm"
)

func baseLoadOpts() loadOpts {
	return loadOpts{
		selfServe:  true,
		mechName:   "geoi",
		params:     lppm.Params{},
		flushEvery: 8,
		users:      4,
		points:     24,
		conns:      2,
		seed:       7,
	}
}

// TestRunSelfServeLoopback drives a small fleet through an in-process
// server and checks the report accounts for every record.
func TestRunSelfServeLoopback(t *testing.T) {
	o := baseLoadOpts()
	report, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Configs) != 1 {
		t.Fatalf("report has %d configs, want 1", len(report.Configs))
	}
	c := report.Configs[0]
	if c.Records != o.users*o.points {
		t.Errorf("report counts %d records, want %d", c.Records, o.users*o.points)
	}
	if c.PointsPerSec <= 0 {
		t.Errorf("points/sec = %v, want > 0", c.PointsPerSec)
	}
	if c.P50Millis < 0 || c.P99Millis < c.P50Millis {
		t.Errorf("latency percentiles implausible: p50=%v p99=%v", c.P50Millis, c.P99Millis)
	}
}

// TestRunCompareShardsInterleaved compares two shard layouts in one
// process and writes the JSON report.
func TestRunCompareShardsInterleaved(t *testing.T) {
	o := baseLoadOpts()
	o.compareShards = "1,2"
	o.rounds = 1
	o.outPath = filepath.Join(t.TempDir(), "BENCH_serve.json")
	report, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Configs) != 2 {
		t.Fatalf("report has %d configs, want 2", len(report.Configs))
	}
	for _, c := range report.Configs {
		if c.Records != o.users*o.points {
			t.Errorf("%s counts %d records, want %d", c.Name, c.Records, o.users*o.points)
		}
	}
	if err := report.write(o.outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.outPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed benchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed.Users != o.users || len(parsed.Configs) != 2 {
		t.Errorf("round-tripped report %+v", parsed)
	}
}

// TestLoadOptsValidate fails fast on nonsense flags with one-line errors.
func TestLoadOptsValidate(t *testing.T) {
	cases := []func(*loadOpts){
		func(o *loadOpts) { o.selfServe = false },        // no addr either
		func(o *loadOpts) { o.addr = "http://x"; _ = o }, // addr + self-serve
		func(o *loadOpts) { o.users = 0 },
		func(o *loadOpts) { o.points = -1 },
		func(o *loadOpts) { o.conns = 0 },
		func(o *loadOpts) { o.rate = -1 },
		func(o *loadOpts) { o.flushEvery = 0 },
		func(o *loadOpts) { o.selfServe = false; o.addr = "http://x"; o.compareShards = "1,2" },
	}
	for i, mutate := range cases {
		o := baseLoadOpts()
		mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	o := baseLoadOpts()
	o.conns = 99 // more conns than users collapses to users
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if o.conns != o.users {
		t.Errorf("conns = %d after validate, want %d", o.conns, o.users)
	}
}
