package main

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/obs"
)

func baseLoadOpts() loadOpts {
	return loadOpts{
		selfServe:  true,
		mechName:   "geoi",
		params:     lppm.Params{},
		flushEvery: 8,
		users:      4,
		points:     24,
		conns:      2,
		seed:       7,
	}
}

// TestRunSelfServeLoopback drives a small fleet through an in-process
// server and checks the report accounts for every record.
func TestRunSelfServeLoopback(t *testing.T) {
	o := baseLoadOpts()
	report, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Configs) != 1 {
		t.Fatalf("report has %d configs, want 1", len(report.Configs))
	}
	c := report.Configs[0]
	if c.Records != o.users*o.points {
		t.Errorf("report counts %d records, want %d", c.Records, o.users*o.points)
	}
	if c.PointsPerSec <= 0 {
		t.Errorf("points/sec = %v, want > 0", c.PointsPerSec)
	}
	if c.P50Millis < 0 || c.P99Millis < c.P50Millis {
		t.Errorf("latency percentiles implausible: p50=%v p99=%v", c.P50Millis, c.P99Millis)
	}
}

// TestRunCompareShardsInterleaved compares two shard layouts in one
// process and writes the JSON report.
func TestRunCompareShardsInterleaved(t *testing.T) {
	o := baseLoadOpts()
	o.compareShards = "1,2"
	o.rounds = 1
	o.outPath = filepath.Join(t.TempDir(), "BENCH_serve.json")
	report, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Configs) != 2 {
		t.Fatalf("report has %d configs, want 2", len(report.Configs))
	}
	for _, c := range report.Configs {
		if c.Records != o.users*o.points {
			t.Errorf("%s counts %d records, want %d", c.Name, c.Records, o.users*o.points)
		}
	}
	if err := report.write(o.outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.outPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed benchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed.Users != o.users || len(parsed.Configs) != 2 {
		t.Errorf("round-tripped report %+v", parsed)
	}
}

// sortPercentileNS is the exact order-statistic computation the histogram
// replaced: sort every sample and index rank ⌈q·n⌉. Kept here as the
// reference the bounded-memory estimate is checked against.
func sortPercentileNS(lat []time.Duration, q float64) int64 {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return int64(sorted[idx])
}

// TestQuantileAgreesWithSortedPercentiles pins the rework's accuracy
// contract: for random latency populations the histogram's p50/p99 must sit
// within one bucket width of the exact sorted percentile — the resolution
// obs.BucketWidthAt quotes for the bucket covering the true value.
func TestQuantileAgreesWithSortedPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		h := new(obs.Histogram)
		n := 200 + rng.Intn(1800)
		lat := make([]time.Duration, n)
		for i := range lat {
			// 1µs .. ~80ms, the realistic loopback-latency range.
			lat[i] = time.Microsecond + time.Duration(rng.Int63n(int64(80*time.Millisecond)))
			h.Observe(int64(lat[i]))
		}
		for _, q := range []float64{0.50, 0.99} {
			exact := sortPercentileNS(lat, q)
			got := h.Quantile(q)
			width := obs.BucketWidthAt(exact)
			if diff := got - exact; diff > width || diff < -width {
				t.Errorf("trial %d q=%.2f: histogram %dns vs sorted %dns, |diff| %d > bucket width %d",
					trial, q, got, exact, diff, width)
			}
		}
	}
}

// TestQuantileMillisEmpty keeps the no-data convention of the old
// sort-based helper: zero, not NaN.
func TestQuantileMillisEmpty(t *testing.T) {
	if got := quantileMillis(new(obs.Histogram), 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
}

// TestLoadOptsValidate fails fast on nonsense flags with one-line errors.
func TestLoadOptsValidate(t *testing.T) {
	cases := []func(*loadOpts){
		func(o *loadOpts) { o.selfServe = false },        // no addr either
		func(o *loadOpts) { o.addr = "http://x"; _ = o }, // addr + self-serve
		func(o *loadOpts) { o.users = 0 },
		func(o *loadOpts) { o.points = -1 },
		func(o *loadOpts) { o.conns = 0 },
		func(o *loadOpts) { o.rate = -1 },
		func(o *loadOpts) { o.flushEvery = 0 },
		func(o *loadOpts) { o.selfServe = false; o.addr = "http://x"; o.compareShards = "1,2" },
	}
	for i, mutate := range cases {
		o := baseLoadOpts()
		mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	o := baseLoadOpts()
	o.conns = 99 // more conns than users collapses to users
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if o.conns != o.users {
		t.Errorf("conns = %d after validate, want %d", o.conns, o.users)
	}
}
