// Command lppm-load is the load generator for the protection server: it
// drives a synthetic fleet (internal/synth) through POST /v1/stream at a
// configurable user count and send rate, and reports throughput
// (points/sec) and per-record latency percentiles (p50/p99). Latency is
// end-to-end: from the moment a record is sent to the moment its protected
// counterpart is received, window buffering included — the figure an LBS
// client would actually observe behind the middleware. Percentiles come
// from the same fixed-bucket histogram the server's stage clock uses
// (internal/obs), so memory stays constant however long the run and the
// two sides quote comparable numbers.
//
// With -self-serve the generator starts the server in-process on a
// loopback listener, which is also how -compare-shards benchmarks
// alternative gateway layouts: configurations run in interleaved rounds
// inside one process, so numbers stay comparable on a shared (or
// single-CPU) host. With -out the report is written as JSON
// (BENCH_serve.json in CI).
//
// Usage:
//
//	lppm-load -self-serve -users 16 -points 256 -compare-shards 1,4 -out BENCH_serve.json
//	lppm-serve -listen :8080 & lppm-load -addr http://127.0.0.1:8080 -users 50 -rate 2000
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

// logger is the generator's structured logger (stderr; the report goes
// to stdout and -out).
var logger *slog.Logger

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	logger = obs.NewLogger(os.Stderr, obs.LoggerOptions{})

	var o loadOpts
	flag.StringVar(&o.addr, "addr", "", "base URL of a running server (e.g. http://127.0.0.1:8080); empty requires -self-serve")
	flag.BoolVar(&o.selfServe, "self-serve", false, "start the server in-process on a loopback listener")
	flag.StringVar(&o.mechName, "mech", "geoi", "mechanism for -self-serve")
	flag.IntVar(&o.shards, "shards", 0, "gateway shards for -self-serve, 0 for GOMAXPROCS")
	flag.IntVar(&o.flushEvery, "flush", 32, "per-user window size for -self-serve")
	flag.IntVar(&o.users, "users", 8, "fleet size (one stream user per driver)")
	flag.IntVar(&o.points, "points", 256, "records per user")
	flag.IntVar(&o.conns, "conns", 2, "concurrent stream connections the users spread over")
	flag.Float64Var(&o.rate, "rate", 0, "total send rate in records/sec across all connections, 0 = unthrottled")
	flag.Int64Var(&o.seed, "seed", 42, "master seed (fleet generation and server randomness)")
	flag.IntVar(&o.rounds, "rounds", 0, "measurement rounds per configuration, 0 = 2 when comparing, 1 otherwise")
	flag.StringVar(&o.compareShards, "compare-shards", "", "comma-separated shard counts to compare in interleaved rounds (-self-serve only), e.g. 1,4")
	flag.StringVar(&o.outPath, "out", "", "write the report as JSON to this path")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the in-process tracer's span ring as Chrome trace_event JSON to this path at teardown (-self-serve only; with rounds the last run wins)")
	flag.IntVar(&o.exemplars, "exemplars", 3, "report the k worst-latency records as exemplars with their stream's trace ID, 0 disables")
	params := lppm.Params{}
	flag.Func("set", "mechanism parameter as name=value for -self-serve (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", s, err)
		}
		params[name] = v
		return nil
	})
	flag.Parse()
	o.params = params

	report, err := run(o)
	if err != nil {
		fatal(err)
	}
	for _, c := range report.Configs {
		fmt.Printf("%-12s  %10.0f points/sec   p50 %7.2f ms   p99 %7.2f ms   (%d records, %d rounds)\n",
			c.Name, c.PointsPerSec, c.P50Millis, c.P99Millis, c.Records, c.Rounds)
		for _, e := range c.Exemplars {
			fmt.Printf("  slow record: user=%s latency=%.2fms trace=%s\n", e.User, e.LatencyMillis, e.Trace)
		}
	}
	if o.outPath != "" {
		if err := report.write(o.outPath); err != nil {
			fatal(err)
		}
	}
}

type loadOpts struct {
	addr          string
	selfServe     bool
	mechName      string
	params        lppm.Params
	shards        int
	flushEvery    int
	users         int
	points        int
	conns         int
	rate          float64
	seed          int64
	rounds        int
	compareShards string
	outPath       string
	traceOut      string
	exemplars     int
}

// validate fails fast with a single-line error before any work starts.
func (o *loadOpts) validate() error {
	switch {
	case o.addr == "" && !o.selfServe:
		return fmt.Errorf("need -addr or -self-serve")
	case o.addr != "" && o.selfServe:
		return fmt.Errorf("-addr and -self-serve are mutually exclusive")
	case o.users < 1:
		return fmt.Errorf("-users must be >= 1, got %d", o.users)
	case o.points < 1:
		return fmt.Errorf("-points must be >= 1, got %d", o.points)
	case o.conns < 1:
		return fmt.Errorf("-conns must be >= 1, got %d", o.conns)
	case o.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", o.rate)
	case o.rounds < 0:
		return fmt.Errorf("-rounds must be non-negative, got %d", o.rounds)
	case o.flushEvery < 1:
		return fmt.Errorf("-flush must be >= 1, got %d", o.flushEvery)
	case o.compareShards != "" && !o.selfServe:
		return fmt.Errorf("-compare-shards needs -self-serve (it builds one server per configuration)")
	case o.traceOut != "" && !o.selfServe:
		return fmt.Errorf("-trace-out needs -self-serve (it dumps the in-process tracer's ring)")
	case o.exemplars < 0:
		return fmt.Errorf("-exemplars must be non-negative, got %d", o.exemplars)
	}
	if o.conns > o.users {
		o.conns = o.users
	}
	return nil
}

// exemplar is one of the k worst-latency records: who it belonged to,
// what an LBS client would have waited, and the trace ID of the stream
// that carried it — the handle to paste into GET /trace (or grep in
// trace.chrome) to see where that window's time went.
type exemplar struct {
	User          string  `json:"user"`
	LatencyMillis float64 `json:"latency_ms"`
	Trace         string  `json:"trace"`
}

// insertExemplar keeps ex sorted worst-first and capped at k entries.
func insertExemplar(ex []exemplar, e exemplar, k int) []exemplar {
	i := sort.Search(len(ex), func(i int) bool { return ex[i].LatencyMillis < e.LatencyMillis })
	if i >= k {
		return ex
	}
	ex = append(ex, exemplar{})
	copy(ex[i+1:], ex[i:])
	ex[i] = e
	if len(ex) > k {
		ex = ex[:k]
	}
	return ex
}

// benchConfig is one measured configuration's aggregate result.
type benchConfig struct {
	Name         string     `json:"name"`
	Shards       int        `json:"shards,omitempty"`
	Rounds       int        `json:"rounds"`
	Records      int        `json:"records"`
	PointsPerSec float64    `json:"points_per_sec"`
	P50Millis    float64    `json:"p50_ms"`
	P99Millis    float64    `json:"p99_ms"`
	Exemplars    []exemplar `json:"exemplars,omitempty"`
}

// benchReport is the JSON written to -out.
type benchReport struct {
	Benchmark     string        `json:"benchmark"`
	Users         int           `json:"users"`
	PointsPerUser int           `json:"points_per_user"`
	Conns         int           `json:"conns"`
	FlushEvery    int           `json:"flush_every"`
	RatePerSec    float64       `json:"rate_per_sec"`
	Go            string        `json:"go"`
	Configs       []benchConfig `json:"configs"`
}

func (r *benchReport) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(o loadOpts) (*benchReport, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	perUser, err := generateFleet(o)
	if err != nil {
		return nil, err
	}
	report := &benchReport{
		Benchmark:     "lppm-load loopback stream",
		Users:         o.users,
		PointsPerUser: o.points,
		Conns:         o.conns,
		FlushEvery:    o.flushEvery,
		RatePerSec:    o.rate,
		Go:            runtime.Version(),
	}

	type cfg struct {
		name   string
		shards int
	}
	var cfgs []cfg
	if o.compareShards != "" {
		for _, part := range strings.Split(o.compareShards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -compare-shards entry %q", part)
			}
			cfgs = append(cfgs, cfg{name: fmt.Sprintf("shards=%d", n), shards: n})
		}
	} else if o.selfServe {
		cfgs = []cfg{{name: "self-serve", shards: o.shards}}
	} else {
		cfgs = []cfg{{name: "remote"}}
	}
	rounds := o.rounds
	if rounds == 0 {
		rounds = 1
		if len(cfgs) > 1 {
			rounds = 2
		}
	}

	// Interleave configurations across rounds (A, B, A, B …) so shared-
	// host load drift cannot favor whichever runs in a quiet moment. Each
	// configuration accumulates latencies into one histogram across its
	// rounds — O(1) memory however many records flow.
	type agg struct {
		records int
		seconds float64
		lat     *obs.Histogram
		ex      []exemplar
	}
	aggs := make([]agg, len(cfgs))
	for i := range aggs {
		aggs[i].lat = new(obs.Histogram)
	}
	for round := 0; round < rounds; round++ {
		for i, c := range cfgs {
			res, err := runTrial(o, c.shards, perUser, aggs[i].lat)
			if err != nil {
				return nil, fmt.Errorf("%s round %d: %w", c.name, round+1, err)
			}
			aggs[i].records += res.records
			aggs[i].seconds += res.seconds
			for _, e := range res.exemplars {
				aggs[i].ex = insertExemplar(aggs[i].ex, e, o.exemplars)
			}
		}
	}
	for i, c := range cfgs {
		a := aggs[i]
		bc := benchConfig{
			Name:    c.name,
			Shards:  c.shards,
			Rounds:  rounds,
			Records: a.records,
		}
		if a.seconds > 0 {
			bc.PointsPerSec = float64(a.records) / a.seconds
		}
		bc.P50Millis = quantileMillis(a.lat, 0.50)
		bc.P99Millis = quantileMillis(a.lat, 0.99)
		bc.Exemplars = a.ex
		report.Configs = append(report.Configs, bc)
	}
	return report, nil
}

// generateFleet builds each user's record sequence: a synthetic fleet
// truncated to exactly -points records per driver. Heterogeneity is
// disabled so every driver reports at the base period and yields enough
// records within the simulated span.
func generateFleet(o loadOpts) (map[string][]trace.Record, error) {
	cfg := synth.DefaultConfig()
	cfg.Seed = o.seed
	cfg.NumDrivers = o.users
	cfg.Heterogeneity = 0
	cfg.SamplePeriod = time.Minute
	cfg.Duration = time.Duration(o.points+2) * cfg.SamplePeriod
	fleet, err := synth.Generate(cfg, nil)
	if err != nil {
		return nil, err
	}
	perUser := make(map[string][]trace.Record, o.users)
	for _, tr := range fleet.Dataset.Traces() {
		if tr.Len() < o.points {
			return nil, fmt.Errorf("driver %s generated %d records, need %d", tr.User, tr.Len(), o.points)
		}
		perUser[tr.User] = tr.Records[:o.points]
	}
	return perUser, nil
}

// trialResult is one measurement run.
type trialResult struct {
	records   int
	seconds   float64
	exemplars []exemplar
}

// runTrial measures one configuration once: spin up the server (self-serve)
// or reuse the remote one, stream every user's records over -conns
// connections, and collect throughput into the result and per-record
// latency into lat (shared by all connections; Observe is wait-free).
func runTrial(o loadOpts, shards int, perUser map[string][]trace.Record, lat *obs.Histogram) (res trialResult, err error) {
	base := o.addr
	var teardown func() error
	if o.selfServe {
		base, teardown, err = startSelfServe(o, shards)
		if err != nil {
			return res, err
		}
		defer func() {
			if terr := teardown(); err == nil {
				err = terr
			}
		}()
	}

	// Users spread round-robin over connections; each connection merges
	// its users' records into one time-ordered sequence.
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)
	connRecs := make([][]trace.Record, o.conns)
	for i, u := range users {
		connRecs[i%o.conns] = append(connRecs[i%o.conns], perUser[u]...)
	}
	for i := range connRecs {
		recs := connRecs[i]
		sort.SliceStable(recs, func(a, b int) bool { return recs[a].Time.Before(recs[b].Time) })
	}

	cl := client.New(base)
	ratePerConn := o.rate / float64(o.conns)
	type connResult struct {
		received  int
		exemplars []exemplar
		err       error
	}
	results := make(chan connResult, o.conns)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < o.conns; ci++ {
		wg.Add(1)
		go func(recs []trace.Record) {
			defer wg.Done()
			r := driveConn(cl, recs, ratePerConn, lat, o.exemplars)
			results <- connResult{received: r.received, exemplars: r.exemplars, err: r.err}
		}(connRecs[ci])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	for r := range results {
		if r.err != nil && err == nil {
			err = r.err
		}
		res.records += r.received
		for _, e := range r.exemplars {
			res.exemplars = insertExemplar(res.exemplars, e, o.exemplars)
		}
	}
	res.seconds = elapsed.Seconds()
	if err != nil {
		return res, err
	}
	want := 0
	for _, recs := range perUser {
		want += len(recs)
	}
	if res.records != want {
		return res, fmt.Errorf("received %d protected records, want %d", res.records, want)
	}
	return res, nil
}

// driveConn streams one connection's records and matches each received
// record to its send time by (user, arrival index) — exact for mechanisms
// that preserve count and order per user (the default GEO-I does); for
// mechanisms that inject or drop records only the matched prefix
// contributes latencies, while throughput counts everything. Matched
// latencies are observed straight into lat in nanoseconds.
//
// Each connection originates its own trace: a fresh root context is
// injected as a traceparent header, so a tracing server correlates every
// window this stream produces under one client-visible trace ID — the ID
// the k worst-latency exemplars report.
func driveConn(cl *client.Client, recs []trace.Record, rate float64, lat *obs.Histogram, k int) (out struct {
	received  int
	exemplars []exemplar
	err       error
}) {
	sc := tracing.NewRootContext()
	traceID := sc.Trace.String()
	ctx := tracing.ContextWithSpanContext(context.Background(), sc)
	st, err := cl.Stream(ctx)
	if err != nil {
		out.err = err
		return
	}
	sendTimes := make(map[string][]time.Time)
	var mu sync.Mutex
	recvDone := make(chan error, 1)
	go func() {
		recvIdx := make(map[string]int)
		for {
			rec, rerr := st.Recv()
			if rerr == io.EOF {
				recvDone <- nil
				return
			}
			if rerr != nil {
				recvDone <- rerr
				return
			}
			now := time.Now()
			out.received++
			i := recvIdx[rec.User]
			recvIdx[rec.User] = i + 1
			mu.Lock()
			sent := sendTimes[rec.User]
			mu.Unlock()
			if i < len(sent) {
				d := now.Sub(sent[i])
				lat.Observe(int64(d))
				if k > 0 {
					out.exemplars = insertExemplar(out.exemplars, exemplar{
						User:          rec.User,
						LatencyMillis: float64(d) / float64(time.Millisecond),
						Trace:         traceID,
					}, k)
				}
			}
		}
	}()
	interval := time.Duration(0)
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	for _, rec := range recs {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		mu.Lock()
		sendTimes[rec.User] = append(sendTimes[rec.User], time.Now())
		mu.Unlock()
		if err := st.Send(rec); err != nil {
			out.err = err
			st.Close() //lppm:allow droppederr -- best-effort abort: the send failure already carries the stream's error
			<-recvDone
			return
		}
	}
	if err := st.CloseSend(); err != nil {
		out.err = err
		st.Close() //lppm:allow droppederr -- best-effort abort: the close-send failure already carries the stream's error
		<-recvDone // the receiver owns out.received until it signals
		return
	}
	out.err = <-recvDone
	return
}

// startSelfServe builds deployment → gateway → server on a loopback
// listener and returns the base URL plus a teardown that drains it.
func startSelfServe(o loadOpts, shards int) (string, func() error, error) {
	reg := lppm.NewRegistry()
	mech, err := reg.Get(o.mechName)
	if err != nil {
		return "", nil, err
	}
	dep, err := core.NewDeployment(mech, o.params)
	if err != nil {
		return "", nil, err
	}
	gwCfg := service.ConfigFromDeployment(dep, o.seed)
	gwCfg.Shards = shards
	gwCfg.FlushEvery = o.flushEvery
	var tr *tracing.Tracer
	if o.traceOut != "" {
		tr = tracing.New(tracing.Config{})
		gwCfg.Tracer = tr
	}
	gw, err := service.New(context.Background(), gwCfg)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(server.Config{Gateway: gw, Seed: o.seed})
	if err != nil {
		return "", nil, errors.Join(err, gw.Close())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, errors.Join(err, gw.Close())
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	teardown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		derr := srv.Drain(ctx)
		// Shutdown waits for in-flight responses (tail windows still
		// being written); Close would sever them.
		cerr := hs.Shutdown(ctx)
		var terr error
		if tr != nil {
			// Dump after the drain so the tail windows' spans are in the
			// ring. The file is Perfetto-loadable as-is.
			f, ferr := os.Create(o.traceOut)
			if ferr != nil {
				terr = ferr
			} else {
				terr = errors.Join(tr.WriteChrome(f), f.Close())
			}
		}
		return errors.Join(derr, cerr, terr)
	}
	return "http://" + ln.Addr().String(), teardown, nil
}

// quantileMillis converts the histogram's q-quantile estimate from
// nanoseconds to milliseconds, 0 when nothing was matched. The estimate
// sits within one power-of-two bucket width of the exact order statistic
// (see obs.HistogramSnapshot.Quantile) — the old sort-based computation
// was exact but held every sample in memory and re-sorted per quantile.
func quantileMillis(h *obs.Histogram, q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	return float64(s.Quantile(q)) / float64(time.Millisecond)
}
