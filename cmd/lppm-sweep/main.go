// Command lppm-sweep runs the Figure-1 experiment: it sweeps a mechanism's
// parameter across its declared range over a dataset, evaluating the privacy
// and utility metrics at every grid value, and emits the series as CSV.
//
// Usage:
//
//	lppm-sweep -in traces.csv -mechanism geoi -points 25 -repeats 3 -out sweep.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/stat"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input dataset CSV (required)")
		out       = flag.String("out", "-", "output CSV path (- for stdout)")
		mechanism = flag.String("mechanism", "geoi", "LPPM name")
		param     = flag.String("param", "", "swept parameter (default: the mechanism's sole parameter)")
		points    = flag.Int("points", 25, "grid resolution")
		repeats   = flag.Int("repeats", 3, "protection runs averaged per grid value")
		seed      = flag.Int64("seed", 42, "sweep seed")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	dataset, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	registry := lppm.NewRegistry()
	mech, err := registry.Get(*mechanism)
	if err != nil {
		return err
	}
	specs := mech.Params()
	if len(specs) == 0 {
		return fmt.Errorf("mechanism %q has no parameters to sweep", mech.Name())
	}
	spec := specs[0]
	if *param != "" {
		found := false
		for _, s := range specs {
			if s.Name == *param {
				spec, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("mechanism %q has no parameter %q", mech.Name(), *param)
		}
	}

	var values []float64
	if spec.LogScale {
		values = stat.LogSpace(spec.Min, spec.Max, *points)
	} else {
		values = stat.LinSpace(spec.Min, spec.Max, *points)
	}

	sweep := &eval.Sweep{
		Mechanism: mech,
		Param:     spec.Name,
		Values:    values,
		Metrics: []metrics.Metric{
			metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Repeats: *repeats,
		Seed:    *seed,
		Workers: *workers,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	result, err := eval.Run(ctx, sweep, dataset)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "swept %d values × %d repeats over %d users in %v\n",
		len(values), *repeats, dataset.NumUsers(), time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return eval.WriteCSV(w, result)
}
