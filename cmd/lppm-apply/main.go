// Command lppm-apply protects a mobility dataset with a configured LPPM.
//
// Usage:
//
//	lppm-apply -in traces.csv -out protected.csv -mechanism geoi -param epsilon=0.01 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lppm"
	"repro/internal/rng"
	"repro/internal/trace"
)

// paramFlags collects repeated -param name=value flags.
type paramFlags struct {
	params lppm.Params
}

func (p *paramFlags) String() string { return fmt.Sprintf("%v", p.params) }

func (p *paramFlags) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %w", s, err)
	}
	if p.params == nil {
		p.params = make(lppm.Params)
	}
	p.params[name] = v
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-apply:", err)
		os.Exit(1)
	}
}

func run() error {
	var params paramFlags
	var (
		in        = flag.String("in", "-", "input CSV path (- for stdin)")
		out       = flag.String("out", "-", "output CSV path (- for stdout)")
		mechanism = flag.String("mechanism", "geoi", "LPPM name")
		seed      = flag.Int64("seed", 1, "noise seed")
	)
	flag.Var(&params, "param", "mechanism parameter as name=value (repeatable)")
	flag.Parse()

	registry := lppm.NewRegistry()
	mech, err := registry.Get(*mechanism)
	if err != nil {
		return err
	}
	p := params.params
	if p == nil {
		p = lppm.Defaults(mech)
		fmt.Fprintf(os.Stderr, "using default parameters %v\n", p)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dataset, err := trace.ReadCSV(r)
	if err != nil {
		return err
	}

	protected, err := lppm.ProtectDataset(dataset, mech, p, rng.New(*seed))
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteCSV(w, protected)
}
