// Command lppm-config is the full framework pipeline (paper §3): it sweeps
// the mechanism, fits the invertible privacy/utility models of Equation 2,
// inverts them under the given objectives, and prints the recommended
// configuration together with the fitted constants.
//
// Usage:
//
//	lppm-config -in traces.csv -max-privacy 0.10 -min-utility 0.80
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-config:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "input dataset CSV (required)")
		mechanism  = flag.String("mechanism", "geoi", "LPPM name")
		maxPrivacy = flag.Float64("max-privacy", 0.10, "privacy objective: max POI retrieval fraction")
		minUtility = flag.Float64("min-utility", 0.80, "utility objective: min area-coverage similarity")
		points     = flag.Int("points", 25, "sweep grid resolution")
		repeats    = flag.Int("repeats", 3, "protection runs averaged per grid value")
		seed       = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	dataset, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	registry := lppm.NewRegistry()
	mech, err := registry.Get(*mechanism)
	if err != nil {
		return err
	}

	def := core.Definition{
		Mechanism:  mech,
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: *points,
		Repeats:    *repeats,
		Seed:       *seed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	analysis, err := core.Analyze(ctx, def, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("modeled %s over %d users in %v\n",
		mech.Name(), dataset.NumUsers(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("privacy model:  Pr = %.3f + %.3f·ln(%s)   R²=%.3f  active %s∈[%.4g, %.4g]\n",
		analysis.PrivacyModel.A, analysis.PrivacyModel.B, analysis.Definition.Param,
		analysis.PrivacyModel.R2, analysis.Definition.Param,
		analysis.PrivacyModel.XMin, analysis.PrivacyModel.XMax)
	fmt.Printf("utility model:  Ut = %.3f + %.3f·ln(%s)   R²=%.3f  active %s∈[%.4g, %.4g]\n",
		analysis.UtilityModel.A, analysis.UtilityModel.B, analysis.Definition.Param,
		analysis.UtilityModel.R2, analysis.Definition.Param,
		analysis.UtilityModel.XMin, analysis.UtilityModel.XMax)
	if names := analysis.Properties.SelectedNames(); len(names) > 0 {
		fmt.Printf("impactful dataset properties: %v\n", names)
	} else {
		fmt.Println("impactful dataset properties: none (as in the paper's GEO-I case)")
	}

	cfg, err := analysis.Configure(model.Objectives{
		MaxPrivacy: *maxPrivacy,
		MinUtility: *minUtility,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nobjectives: privacy ≤ %.2f, utility ≥ %.2f\n", *maxPrivacy, *minUtility)
	if !cfg.Feasible {
		fmt.Printf("INFEASIBLE: no %s satisfies both (closest %s=%.4g → privacy %.3f, utility %.3f)\n",
			analysis.Definition.Param, analysis.Definition.Param,
			cfg.Value, cfg.PredictedPrivacy, cfg.PredictedUtility)
		return nil
	}
	fmt.Printf("feasible %s range: [%.4g, %.4g]\n", analysis.Definition.Param, rangeLo(cfg), rangeHi(cfg))
	fmt.Printf("recommended %s = %.4g  → predicted privacy %.3f, predicted utility %.3f\n",
		analysis.Definition.Param, cfg.Value, cfg.PredictedPrivacy, cfg.PredictedUtility)
	return nil
}

// rangeLo/rangeHi keep the printout readable when a side is unbounded.
func rangeLo(c model.Configuration) float64 {
	if c.Min <= math.SmallestNonzeroFloat64 {
		return 0
	}
	return c.Min
}

func rangeHi(c model.Configuration) float64 {
	if c.Max >= math.MaxFloat64 {
		return math.Inf(1)
	}
	return c.Max
}
