// Command lppm-lint runs the repository's project-invariant analyzer
// suite (see internal/analysis): determinism, error, lock, and
// float-comparison discipline, machine-checked instead of asserted in
// review. Exit status 1 means unsuppressed findings; every deliberate
// exception in the tree is a `//lppm:allow <analyzer> -- <reason>`
// pragma at the site.
//
// Usage:
//
//	lppm-lint [-C dir] [-j n] [-json] [-list]
//
// Without flags it lints the module containing dir (default ".") and
// prints findings as file:line:col: analyzer: message. -j sets the
// number of parallel type-check/analysis workers (0, the default, means
// GOMAXPROCS; -j 1 restores the serial order of operations, with
// byte-identical output either way). -json emits one JSON object per
// finding per line instead of the plain format — the contract CI
// tooling consumes. With -list it prints the analyzer roster and
// self-checks that each analyzer has a golden-file test under
// internal/analysis/testdata/<name> containing at least one `// want`
// expectation — an analyzer nobody tests is an invariant nobody checks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// Output accumulates in memory and is printed in one shot: the
	// report is small, and an in-memory writer keeps the tool clean
	// under its own droppederr analyzer without pragmas.
	var out strings.Builder
	err := run(os.Args[1:], &out)
	fmt.Print(out.String())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lppm-lint:", err)
		os.Exit(1)
	}
}

// errFindings signals a clean run of the tool over a dirty tree.
type errFindings int

func (n errFindings) Error() string {
	return fmt.Sprintf("%d finding(s)", int(n))
}

func run(args []string, out *strings.Builder) error {
	fs := flag.NewFlagSet("lppm-lint", flag.ContinueOnError)
	dir := fs.String("C", ".", "lint the module containing this directory")
	jobs := fs.Int("j", 0, "parallel type-check/analysis workers (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON objects, one per line")
	list := fs.Bool("list", false, "list analyzers and self-check golden-test coverage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q; the whole module is always linted", fs.Args())
	}
	if *list {
		return selfCheck(*dir, out)
	}
	return lint(*dir, *jobs, *jsonOut, out)
}

// jsonFinding is the -json wire format: one object per line, stable
// field set. Suppressible is false only for the "pragma" pseudo-analyzer
// findings, which no pragma can silence — CI can use it to distinguish
// "add a justified pragma or fix the code" from "fix the pragma itself".
type jsonFinding struct {
	Analyzer     string `json:"analyzer"`
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Message      string `json:"message"`
	Suppressible bool   `json:"suppressible"`
}

func lint(dir string, jobs int, jsonOut bool, out *strings.Builder) error {
	pkgs, err := analysis.LoadModule(dir, jobs)
	if err != nil {
		return err
	}
	diags := analysis.Run(pkgs, analysis.All(), jobs)
	if len(diags) == 0 {
		return nil
	}
	// Report positions relative to the module root: stable across
	// checkouts, clickable from the repository root.
	root, rerr := moduleRoot(dir)
	for _, d := range diags {
		name := d.Pos.Filename
		if rerr == nil {
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if jsonOut {
			b, err := json.Marshal(jsonFinding{
				Analyzer:     d.Analyzer,
				File:         name,
				Line:         d.Pos.Line,
				Col:          d.Pos.Column,
				Message:      d.Message,
				Suppressible: d.Analyzer != "pragma",
			})
			if err != nil {
				return err
			}
			out.WriteString(string(b))
			out.WriteString("\n")
			continue
		}
		fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return errFindings(len(diags))
}

// selfCheck lists the roster and fails if any analyzer lacks a golden
// test with at least one expectation.
func selfCheck(dir string, out *strings.Builder) error {
	root, err := moduleRoot(dir)
	if err != nil {
		return err
	}
	missing := 0
	for _, a := range analysis.All() {
		status := "golden-tested"
		if err := hasGoldenTest(filepath.Join(root, "internal", "analysis", "testdata", a.Name)); err != nil {
			status = "MISSING GOLDEN TEST: " + err.Error()
			missing++
		}
		fmt.Fprintf(out, "%-12s %s\n             %s\n", a.Name, a.Doc, status)
	}
	if missing > 0 {
		return fmt.Errorf("%d analyzer(s) without golden tests", missing)
	}
	return nil
}

// hasGoldenTest verifies dir holds at least one .go file with a
// `// want` expectation comment.
func hasGoldenTest(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("no testdata directory %s", dir)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		if strings.Contains(string(data), `want "`) {
			return nil
		}
	}
	return fmt.Errorf("no .go file with a `// want` expectation in %s", dir)
}

// moduleRoot finds the enclosing module root directory.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
		d = parent
	}
}
