package main

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// The fixture module under testdata/badmod carries exactly one
// violation (time.After in a loop), pinning both output formats and the
// exit contract without touching the real tree.

func TestPlainOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-C", "testdata/badmod"}, &out)
	var n errFindings
	if !errors.As(err, &n) || int(n) != 1 {
		t.Fatalf("run returned %v, want errFindings(1)", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "x.go:9:5: timeleak: ") {
		t.Fatalf("plain output = %q, want x.go:9:5: timeleak: prefix", got)
	}
}

func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-C", "testdata/badmod", "-json", "-j", "2"}, &out)
	var n errFindings
	if !errors.As(err, &n) || int(n) != 1 {
		t.Fatalf("run returned %v, want errFindings(1)", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSON lines, want 1: %q", len(lines), out.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("line is not JSON: %v: %q", err, lines[0])
	}
	want := jsonFinding{Analyzer: "timeleak", File: "x.go", Line: 9, Col: 5, Suppressible: true}
	if f.Analyzer != want.Analyzer || f.File != want.File || f.Line != want.Line || f.Col != want.Col || f.Suppressible != want.Suppressible {
		t.Fatalf("finding = %+v, want %+v (message aside)", f, want)
	}
	if f.Message == "" {
		t.Fatal("finding has an empty message")
	}
}

func TestListSelfCheckPasses(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("-list: %v\n%s", err, out.String())
	}
	for _, name := range []string{"goroleak", "ctxflow", "sendlock", "wgdiscipline", "timeleak"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}
