// A deliberately dirty one-package module: the CLI tests pin the plain
// and -json output formats against it.
package badmod

import "time"

func poll(ready func() bool) {
	for !ready() {
		<-time.After(time.Millisecond)
	}
}
