// Command lppm-eval scores a protected dataset against the actual one with
// the registered privacy and utility metrics.
//
// Usage:
//
//	lppm-eval -actual traces.csv -protected protected.csv [-metrics poi_retrieval,area_coverage]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stat"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		actualPath    = flag.String("actual", "", "actual dataset CSV (required)")
		protectedPath = flag.String("protected", "", "protected dataset CSV (required)")
		names         = flag.String("metrics", "poi_retrieval,area_coverage", "comma-separated metric names")
	)
	flag.Parse()
	if *actualPath == "" || *protectedPath == "" {
		return fmt.Errorf("both -actual and -protected are required")
	}

	actual, err := readCSV(*actualPath)
	if err != nil {
		return fmt.Errorf("actual: %w", err)
	}
	protected, err := readCSV(*protectedPath)
	if err != nil {
		return fmt.Errorf("protected: %w", err)
	}

	registry := metrics.NewRegistry()
	for _, name := range strings.Split(*names, ",") {
		m, err := registry.Get(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		var vals []float64
		for _, u := range actual.Users() {
			pt := protected.Trace(u)
			if pt == nil {
				return fmt.Errorf("user %s missing from protected data", u)
			}
			v, err := m.Evaluate(actual.Trace(u), pt)
			if err != nil {
				return fmt.Errorf("metric %s user %s: %w", m.Name(), u, err)
			}
			vals = append(vals, v)
		}
		s := stat.Summarize(vals)
		fmt.Printf("%-24s (%s)  mean=%.4f  std=%.4f  median=%.4f  p90=%.4f\n",
			m.Name(), m.Kind(), s.Mean, s.Std, s.Median, s.P90)
	}
	return nil
}

func readCSV(path string) (*trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}
