// Command lppm-pareto maps a mechanism's reachable privacy/utility
// trade-offs: it runs the framework's sweep, prints the empirical Pareto
// front with its knee point, checks the designer's objectives against both
// the fitted models and the raw measurements, and reports a bootstrap
// confidence interval on the recommended parameter. It is the tool to reach
// for when lppm-config reports the objectives infeasible — the front shows
// what the mechanism can actually deliver.
//
// Usage:
//
//	lppm-pareto -in traces.csv -mechanism geoi -max-privacy 0.1 -min-utility 0.8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-pareto:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "input dataset CSV (required)")
		mechanism  = flag.String("mechanism", "geoi", "LPPM name")
		param      = flag.String("param", "", "modeled parameter (default: the mechanism's sole parameter)")
		points     = flag.Int("points", 25, "sweep grid resolution")
		repeats    = flag.Int("repeats", 2, "protection runs averaged per grid value")
		seed       = flag.Int64("seed", 42, "sweep seed")
		maxPrivacy = flag.Float64("max-privacy", 0.10, "privacy objective (metric upper bound)")
		minUtility = flag.Float64("min-utility", 0.80, "utility objective (metric lower bound)")
		ciIters    = flag.Int("ci-iters", 200, "bootstrap replicates for the confidence interval (0 disables)")
		ciLevel    = flag.Float64("ci-level", 0.90, "bootstrap confidence level")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	dataset, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	registry := lppm.NewRegistry()
	mech, err := registry.Get(*mechanism)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	def := core.Definition{
		Mechanism:  mech,
		Param:      *param,
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: *points,
		Repeats:    *repeats,
		Seed:       *seed,
	}
	analysis, err := core.Analyze(ctx, def, dataset)
	if err != nil {
		return err
	}

	front, err := analysis.Pareto()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "pareto front (%d of %d sweep points)\t\t\n", len(front), *points)
	fmt.Fprintf(w, "%s\tprivacy\tutility\n", analysis.Definition.Param)
	for _, p := range front {
		fmt.Fprintf(w, "%.4g\t%.3f\t%.3f\n", p.X, p.Privacy, p.Utility)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if knee, ok := model.KneePoint(front); ok {
		fmt.Printf("\nknee (best balanced trade-off): %s=%.4g  privacy=%.3f utility=%.3f\n",
			analysis.Definition.Param, knee.X, knee.Privacy, knee.Utility)
	}

	obj := model.Objectives{MaxPrivacy: *maxPrivacy, MinUtility: *minUtility}
	cfg, err := analysis.Configure(obj)
	if err != nil {
		return err
	}
	fmt.Printf("\nobjectives: privacy ≤ %.2f, utility ≥ %.2f\n", obj.MaxPrivacy, obj.MinUtility)
	if cfg.Feasible {
		fmt.Printf("model-based window: [%.4g, %.4g], recommendation %.4g\n", cfg.Min, cfg.Max, cfg.Value)
	} else {
		fmt.Printf("model-based: INFEASIBLE (conflicting bounds %.4g vs %.4g) — consult the front above\n", cfg.Min, cfg.Max)
	}

	xs, prs, err := analysis.Sweep.Series(def.Privacy.Name())
	if err != nil {
		return err
	}
	_, uts, err := analysis.Sweep.Series(def.Utility.Name())
	if err != nil {
		return err
	}
	pts, err := model.ZipSweep(xs, prs, uts)
	if err != nil {
		return err
	}
	if lo, hi, ok := model.EmpiricalWindow(pts, obj); ok {
		fmt.Printf("empirical window (raw sweep): [%.4g, %.4g]\n", lo, hi)
	} else {
		fmt.Println("empirical window (raw sweep): no sampled point satisfies both objectives")
	}

	if cfg.Feasible && *ciIters > 0 {
		ci, err := analysis.ConfigureWithConfidence(obj, *ciIters, *ciLevel)
		if err != nil {
			fmt.Printf("confidence interval: unavailable (%v)\n", err)
			return nil
		}
		fmt.Printf("recommendation CI: %.4g [%.4g, %.4g] @%.0f%% (feasible in %.0f%% of replicates)\n",
			ci.Value.Point, ci.Value.Lo, ci.Value.Hi, *ciLevel*100, ci.FeasibleFraction*100)
	}
	return nil
}
