// Command lppm-tracegen generates a synthetic mobility dataset — the
// San-Francisco taxi fleet (the repository's cabspotting stand-in) or the
// pendulum-commuter population — and writes it as CSV, optionally with the
// ground-truth anchor POIs and a GeoJSON rendering for map inspection.
//
// Usage:
//
//	lppm-tracegen -drivers 40 -hours 24 -seed 1 -out traces.csv [-anchors anchors.csv]
//	lppm-tracegen -archetype commuters -drivers 40 -days 3 -out commuters.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lppm-tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		archetype = flag.String("archetype", "taxis", "population archetype: taxis or commuters")
		drivers   = flag.Int("drivers", 40, "number of users")
		hours     = flag.Float64("hours", 24, "simulated duration in hours (taxis)")
		days      = flag.Int("days", 3, "simulated working days (commuters)")
		period    = flag.Duration("period", 0, "sampling period (0 = archetype default)")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("out", "-", "output CSV path (- for stdout)")
		anchors   = flag.String("anchors", "", "optional path for ground-truth anchor POIs CSV")
		geojson   = flag.String("geojson", "", "optional path for a GeoJSON rendering of the traces")
	)
	flag.Parse()

	var fleet *synth.Fleet
	var err error
	switch *archetype {
	case "taxis":
		cfg := synth.DefaultConfig()
		cfg.NumDrivers = *drivers
		cfg.Duration = time.Duration(*hours * float64(time.Hour))
		if *period > 0 {
			cfg.SamplePeriod = *period
		}
		cfg.Seed = *seed
		fleet, err = synth.Generate(cfg, nil)
	case "commuters":
		cfg := synth.DefaultCommuterConfig()
		cfg.NumUsers = *drivers
		cfg.Days = *days
		if *period > 0 {
			cfg.SamplePeriod = *period
		}
		cfg.Seed = *seed
		fleet, err = synth.GenerateCommuters(cfg, nil)
	default:
		return fmt.Errorf("unknown archetype %q (want taxis or commuters)", *archetype)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, fleet.Dataset); err != nil {
		return err
	}

	if *anchors != "" {
		if err := writeAnchors(*anchors, fleet); err != nil {
			return err
		}
	}
	if *geojson != "" {
		f, err := os.Create(*geojson)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteGeoJSON(f, fleet.Dataset); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "generated %d %s, %d records\n",
		fleet.Dataset.NumUsers(), *archetype, fleet.Dataset.NumRecords())
	return nil
}

// writeAnchors dumps the ground-truth anchor places as CSV.
func writeAnchors(path string, fleet *synth.Fleet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"user", "lat", "lng"}); err != nil {
		return err
	}
	for _, u := range fleet.Dataset.Users() {
		for _, a := range fleet.Anchors[u] {
			if err := cw.Write([]string{
				u,
				strconv.FormatFloat(a.Lat, 'f', 6, 64),
				strconv.FormatFloat(a.Lng, 'f', 6, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
