// Extension benchmarks: the paper's §4 future-work agenda ("other LPPMs and
// datasets ... more metrics and parameters") plus the ablations DESIGN.md §5
// calls out for the machinery added on top of the core reproduction:
//
//	BenchmarkX3NewLPPMSweeps            – promesse/rounding/dummies/elastic
//	BenchmarkX4LBSQualityVsEpsilon      – end-to-end service quality curve
//	BenchmarkX5ReidentificationVsEpsilon– linkage-attack success vs ε
//	BenchmarkX6CommuterDatasetTransfer  – other-dataset model constants
//	BenchmarkAblationModelFamily        – Equation 2 vs full-curve sigmoid
//	BenchmarkAblationSmoothingAttack    – i.i.d. noise vs trajectory attack
//	BenchmarkParetoFrontConstruction    – trade-off front + knee
//	BenchmarkConfigurationConfidence    – bootstrap CI on the recommended ε
package repro_test

import (
	"context"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lbs"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/synth"
)

// BenchmarkX3NewLPPMSweeps runs the framework pipeline over the four
// mechanisms added beyond the paper's baselines. Each must yield a
// modelable utility curve; the privacy responses characterize the
// mechanism families (noise, resampling, generalization, decoys).
func BenchmarkX3NewLPPMSweeps(b *testing.B) {
	f := getFixture(b)
	ms := []metrics.Metric{
		metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	cases := []struct {
		mech  lppm.Mechanism
		param string
	}{
		{lppm.NewPromesse(), lppm.AlphaParam},
		{lppm.NewCoordinateRounding(), lppm.DigitsParam},
		{lppm.NewDummyInjection(), lppm.WalkersParam},
		{lppm.NewElasticGeoInd(), lppm.EpsilonParam},
	}
	for _, c := range cases {
		var spec lppm.ParamSpec
		for _, s := range c.mech.Params() {
			if s.Name == c.param {
				spec = s
			}
		}
		var values []float64
		if spec.LogScale {
			values = stat.LogSpace(spec.Min, spec.Max, 11)
		} else {
			values = stat.LinSpace(spec.Min, spec.Max, 7)
		}
		sweep := &eval.Sweep{
			Mechanism: c.mech,
			Param:     c.param,
			Values:    values,
			Metrics:   ms,
			Repeats:   1,
			Seed:      17,
			Fixed:     lppm.Defaults(c.mech),
		}
		res, err := eval.Run(context.Background(), sweep, f.dataset)
		if err != nil {
			b.Fatal(err)
		}
		xs, pr, err := res.Series("poi_retrieval")
		if err != nil {
			b.Fatal(err)
		}
		_, ut, err := res.Series("area_coverage")
		if err != nil {
			b.Fatal(err)
		}
		logSeries(b, "X3 privacy: "+c.mech.Name(), c.param, xs, pr)
		logSeries(b, "X3 utility: "+c.mech.Name(), c.param, xs, ut)
	}

	small := smallSubset(f.dataset, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep := &eval.Sweep{
			Mechanism: lppm.NewPromesse(),
			Param:     lppm.AlphaParam,
			Values:    stat.LogSpace(10, 5000, 5),
			Metrics:   ms,
			Repeats:   1,
			Seed:      int64(i),
		}
		if _, err := eval.Run(context.Background(), sweep, small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX4LBSQualityVsEpsilon regenerates the end-to-end service-quality
// figure: the fraction of top-5 venue recommendations unchanged by
// protection, against ε. It must be monotone-ish rising, low under heavy
// noise and ≥ 0.95 under negligible noise — the deployed-quality analogue
// of Figure 1(b).
func BenchmarkX4LBSQualityVsEpsilon(b *testing.B) {
	f := getFixture(b)
	box, ok := f.dataset.BBox()
	if !ok {
		b.Fatal("empty dataset")
	}
	venues, err := lbs.GenerateVenues(box, 1500, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	index, err := lbs.NewIndex(venues, 500)
	if err != nil {
		b.Fatal(err)
	}
	quality, err := lbs.NewKNNQuality(index, lbs.DefaultKNNQualityConfig())
	if err != nil {
		b.Fatal(err)
	}
	xs := stat.LogSpace(1e-4, 1, 13)
	sweep := &eval.Sweep{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Param:     lppm.EpsilonParam,
		Values:    xs,
		Metrics:   []metrics.Metric{quality},
		Repeats:   1,
		Seed:      23,
	}
	res, err := eval.Run(context.Background(), sweep, f.dataset)
	if err != nil {
		b.Fatal(err)
	}
	_, ys, err := res.Series(quality.Name())
	if err != nil {
		b.Fatal(err)
	}
	logSeries(b, "X4: LBS top-5 service quality vs epsilon", "eps", xs, ys)
	if ys[0] > 0.3 {
		b.Fatalf("quality at ε=1e-4 is %v, want low (2 km noise)", ys[0])
	}
	if ys[len(ys)-1] < 0.95 {
		b.Fatalf("quality at ε=1 is %v, want ≥ 0.95", ys[len(ys)-1])
	}
	if _, err := model.FitSigmoidModel(xs, ys); err != nil {
		b.Fatalf("quality curve not modelable: %v", err)
	}
	b.ReportMetric(ys[len(ys)/2], "quality-at-eps-0.01")

	user := f.dataset.Users()[0]
	tr := f.dataset.Trace(user)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unit of work: one user's protected service session.
		prot, err := lppm.NewGeoIndistinguishability().
			Protect(tr, lppm.Params{lppm.EpsilonParam: 0.01}, rng.New(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := quality.Evaluate(tr, prot); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX5ReidentificationVsEpsilon regenerates the operational privacy
// curve: the fraction of users an adversary with background knowledge links
// back to their protected release, against ε. At ε = 1 (4 m noise) the
// fingerprints survive; under heavy noise linkage must collapse toward the
// 1/N guessing floor.
func BenchmarkX5ReidentificationVsEpsilon(b *testing.B) {
	f := getFixture(b)
	xs := []float64{1e-4, 1e-3, 3.2e-3, 1e-2, 3.2e-2, 1e-1, 1}
	ys := make([]float64, len(xs))
	mech := lppm.NewGeoIndistinguishability()
	for i, eps := range xs {
		prot, err := lppm.ProtectDataset(f.dataset, mech, lppm.Params{lppm.EpsilonParam: eps}, rng.New(31))
		if err != nil {
			b.Fatal(err)
		}
		res, err := attack.Reidentify(f.dataset, prot, attack.DefaultReidentConfig())
		if err != nil {
			b.Fatal(err)
		}
		ys[i] = res.SuccessRate
	}
	logSeries(b, "X5: re-identification success vs epsilon", "eps", xs, ys)
	if ys[len(ys)-1] < 0.8 {
		b.Fatalf("re-identification at ε=1 is %v, want ≥ 0.8 (fingerprints intact)", ys[len(ys)-1])
	}
	guessFloor := 1.0 / float64(f.dataset.NumUsers())
	if ys[0] > 5*guessFloor {
		b.Fatalf("re-identification at ε=1e-4 is %v, want near the guessing floor %v", ys[0], guessFloor)
	}
	b.ReportMetric(ys[3], "reident-at-eps-0.01")

	small := smallSubset(f.dataset, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prot, err := lppm.ProtectDataset(small, mech, lppm.Params{lppm.EpsilonParam: 0.01}, rng.New(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attack.Reidentify(small, prot, attack.DefaultReidentConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX6CommuterDatasetTransfer regenerates the other-dataset
// experiment: the same framework definition on the commuter archetype must
// yield different Equation-2 constants, and the taxi-tuned ε must leak more
// on commuters (see examples/datasettransfer for the narrative version).
func BenchmarkX6CommuterDatasetTransfer(b *testing.B) {
	f := getFixture(b)
	cfg := synth.DefaultCommuterConfig()
	cfg.NumUsers = 15
	cfg.Days = 2
	commuters, err := synth.GenerateCommuters(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	def := core.Definition{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: 17,
		Repeats:    1,
		Seed:       42,
	}
	commAnalysis, err := core.Analyze(context.Background(), def, commuters.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	taxiPM := f.analysis.PrivacyModel
	commPM := commAnalysis.PrivacyModel
	b.Logf("X6: taxi      Pr = %.3f + %.3f·ln(ε)", taxiPM.A, taxiPM.B)
	b.Logf("X6: commuter  Pr = %.3f + %.3f·ln(ε)", commPM.A, commPM.B)

	// Commuter POIs (overnight dwells) survive more noise: at the taxi
	// model's "10 % retrieved" ε, the commuter model must predict more
	// leakage.
	taxiEps, err := taxiPM.Invert(0.10)
	if err != nil {
		b.Fatal(err)
	}
	commPredicted := commPM.Predict(taxiEps)
	b.Logf("X6: at taxi-tuned ε=%.4g the commuter model predicts Pr=%.3f", taxiEps, commPredicted)
	if commPredicted <= 0.10 {
		b.Fatalf("commuter leakage %v at taxi ε should exceed the 0.10 objective", commPredicted)
	}
	b.ReportMetric(commPredicted, "commuter-privacy-at-taxi-eps")
	b.ReportMetric(commPM.B, "commuter-privacy-slope")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.NumUsers = 3
		c.Seed = int64(i)
		if _, err := synth.GenerateCommuters(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModelFamily contrasts the paper's log-linear Equation 2
// with the full-curve sigmoid: both must place the headline configuration
// in the same decade, while the sigmoid fits the whole sweep strictly
// better than the log-linear extrapolated globally.
func BenchmarkAblationModelFamily(b *testing.B) {
	f := getFixture(b)
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	linear, err := f.analysis.Configure(obj)
	if err != nil {
		b.Fatal(err)
	}
	full, err := f.analysis.ConfigureFullCurve(obj)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("ablation: log-linear ε=%.4g (feasible=%v) vs sigmoid ε=%.4g (feasible=%v)",
		linear.Value, linear.Feasible, full.Value, full.Feasible)
	if !linear.Feasible || !full.Feasible {
		b.Fatal("both families must find the paper objectives feasible on the fixture")
	}
	ratio := full.Value / linear.Value
	if ratio < 0.2 || ratio > 5 {
		b.Fatalf("families disagree beyond a factor 5: %v vs %v", linear.Value, full.Value)
	}
	b.ReportMetric(ratio, "sigmoid-over-linear-eps-ratio")

	xs, ys, err := f.sweep.Series("poi_retrieval")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.FitSigmoidModel(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSmoothingAttack quantifies the classic caveat that
// per-point geo-indistinguishability erodes over correlated trajectories: a
// moving-average adversary removes a large share of GEO-I's noise, but gets
// nothing from Promesse, whose protection is structural.
func BenchmarkAblationSmoothingAttack(b *testing.B) {
	f := getFixture(b)
	geoi := lppm.NewGeoIndistinguishability()
	adv := attack.SmoothingAdvantage{Window: 9}
	users := f.dataset.Users()

	gains := make([]float64, 0, len(users))
	for _, u := range users {
		tr := f.dataset.Trace(u)
		prot, err := geoi.Protect(tr, lppm.Params{lppm.EpsilonParam: 0.01}, rng.New(3))
		if err != nil {
			b.Fatal(err)
		}
		g, err := adv.Evaluate(tr, prot)
		if err != nil {
			b.Fatal(err)
		}
		gains = append(gains, g)
	}
	meanGain := stat.Mean(gains)
	b.Logf("ablation: smoothing removes %.0f%% of GEO-I noise at ε=0.01 (mean over %d users)",
		meanGain*100, len(users))
	// Sparse sampling (60 s fixes at driving speed) limits what the
	// window can average without blurring the path, so the gain is
	// smaller than on densely-sampled drives — but must stay material.
	if meanGain < 0.1 {
		b.Fatalf("smoothing gain %v, want ≥ 0.1 on i.i.d. noise", meanGain)
	}

	promesse := lppm.NewPromesse()
	tr := f.dataset.Trace(users[0])
	pprot, err := promesse.Protect(tr, lppm.Params{lppm.AlphaParam: 200}, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	pGain, err := adv.Evaluate(tr, pprot)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("ablation: smoothing removes %.0f%% from Promesse (structural protection)", pGain*100)
	if pGain > 0.05 {
		b.Fatalf("promesse smoothing gain %v, want ≈ 0", pGain)
	}
	b.ReportMetric(meanGain, "geoi-smoothing-gain")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prot, err := geoi.Protect(tr, lppm.Params{lppm.EpsilonParam: 0.01}, rng.New(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adv.Evaluate(tr, prot); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoFrontConstruction regenerates the trade-off front of the
// canonical sweep and checks its invariants (monotone utility along the
// privacy-sorted front, knee exists).
func BenchmarkParetoFrontConstruction(b *testing.B) {
	f := getFixture(b)
	front, err := f.analysis.Pareto()
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Utility < front[i-1].Utility {
			b.Fatalf("front utility decreases at %d", i)
		}
	}
	knee, ok := model.KneePoint(front)
	if !ok {
		b.Fatal("front must have a knee")
	}
	b.Logf("pareto: %d non-dominated points; knee ε=%.4g (privacy %.3f, utility %.3f)",
		len(front), knee.X, knee.Privacy, knee.Utility)
	b.ReportMetric(float64(len(front)), "front-size")
	b.ReportMetric(knee.X, "knee-eps")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.analysis.Pareto(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfigurationConfidence bootstrap-quantifies how stable the
// recommended ε is under the sweep's measurement noise — the calibration
// the framework's point answer needs before a designer deploys it.
func BenchmarkConfigurationConfidence(b *testing.B) {
	f := getFixture(b)
	obj := model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.6}
	ci, err := f.analysis.ConfigureWithConfidence(obj, 300, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("confidence: ε = %.4g [%.4g, %.4g] @90%%, feasible in %.0f%% of replicates",
		ci.Value.Point, ci.Value.Lo, ci.Value.Hi, ci.FeasibleFraction*100)
	if ci.Value.Lo > ci.Value.Hi {
		b.Fatalf("malformed CI %+v", ci.Value)
	}
	if ci.FeasibleFraction < 0.5 {
		b.Fatalf("feasible fraction %v, want ≥ 0.5 with relaxed objectives", ci.FeasibleFraction)
	}
	b.ReportMetric(ci.Value.Hi/ci.Value.Lo, "ci-width-ratio")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.analysis.ConfigureWithConfidence(obj, 50, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
