package repro_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/synth"
)

// BenchmarkAnalyzeHotPath measures the evaluation engine's unit of work —
// protect every user at the headline ε and score privacy and utility
// metrics — on both the legacy unprepared path (re-derive the actual side
// per call, allocate DP matrices per pair, exactly what eval.Run did before
// prepared metrics) and the prepared path (eval.MetricCache). The two
// configurations run interleaved inside every iteration with their own
// stopwatch and allocation counters: the bench container is single-CPU, so
// numbers from separate runs confound with machine state and are never
// comparable.
//
// Reported metrics: legacy-ns/op, prepared-ns/op, legacy-allocs/op,
// prepared-allocs/op, speedup (legacy/prepared time), alloc-ratio
// (legacy/prepared allocations), and prepared-points/sec (trace records
// evaluated per second on the prepared path). The engine's performance
// contract is asserted, not just printed: the prepared path must be faster
// and allocate at least 3× less.
//
// With BENCH_EVAL_JSON=<path> (make bench-smoke sets it) the metrics are
// also written as JSON, so CI records the perf trajectory over time.
func BenchmarkAnalyzeHotPath(b *testing.B) {
	cfg := synth.DefaultConfig()
	cfg.NumDrivers = 8
	cfg.Duration = 8 * time.Hour
	fleet, err := synth.Generate(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	dataset := fleet.Dataset
	users := dataset.Users()
	records := dataset.NumRecords()

	mech := lppm.NewGeoIndistinguishability()
	params := lppm.Params{lppm.EpsilonParam: 0.01}
	ms := []metrics.Metric{
		metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		metrics.MustTrajectorySimilarity(metrics.DefaultTrajectorySimilarityConfig()),
	}

	// One protection+evaluation pass; evaluate draws from the prepared
	// cache when one is given and runs the stateless metrics otherwise.
	pass := func(seed int64, cache *eval.MetricCache) {
		root := rng.New(seed)
		for _, u := range users {
			at := dataset.Trace(u)
			protected, err := mech.Protect(at, params, root.Named(u))
			if err != nil {
				b.Fatal(err)
			}
			for mi, m := range ms {
				var v float64
				var err error
				if cache != nil {
					v, err = cache.For(u, at)[mi].Evaluate(protected)
				} else {
					v, err = m.Evaluate(at, protected)
				}
				if err != nil {
					b.Fatal(err)
				}
				_ = v
			}
		}
	}

	// measure runs fn under its own stopwatch and malloc counter; the
	// ReadMemStats bracketing is what lets the two interleaved
	// configurations report separately.
	var ms0, ms1 runtime.MemStats
	measure := func(fn func()) (elapsed time.Duration, mallocs uint64) {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		fn()
		elapsed = time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return elapsed, ms1.Mallocs - ms0.Mallocs
	}

	cache := eval.NewMetricCache(ms)
	pass(0, cache) // build the prepared cache once, like a sweep would

	var legacyNs, preparedNs time.Duration
	var legacyAllocs, preparedAllocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		// Alternate which configuration runs first so neither
		// systematically inherits the other's GC debt.
		runLegacy := func() (time.Duration, uint64) {
			return measure(func() { pass(seed, nil) })
		}
		runPrepared := func() (time.Duration, uint64) {
			return measure(func() { pass(seed, cache) })
		}
		if i%2 == 0 {
			d, a := runLegacy()
			legacyNs += d
			legacyAllocs += a
			d, a = runPrepared()
			preparedNs += d
			preparedAllocs += a
		} else {
			d, a := runPrepared()
			preparedNs += d
			preparedAllocs += a
			d, a = runLegacy()
			legacyNs += d
			legacyAllocs += a
		}
	}
	b.StopTimer()

	n := float64(b.N)
	out := map[string]float64{
		"legacy-ns/op":        float64(legacyNs.Nanoseconds()) / n,
		"prepared-ns/op":      float64(preparedNs.Nanoseconds()) / n,
		"legacy-allocs/op":    float64(legacyAllocs) / n,
		"prepared-allocs/op":  float64(preparedAllocs) / n,
		"speedup":             float64(legacyNs) / float64(preparedNs),
		"alloc-ratio":         float64(legacyAllocs) / float64(preparedAllocs),
		"prepared-points/sec": float64(records) * n / preparedNs.Seconds(),
	}
	for name, v := range out {
		b.ReportMetric(v, name)
	}
	b.Logf("hot path (%d users, %d records, %d metrics): legacy %.2fms / %.0f allocs vs prepared %.2fms / %.0f allocs per pass",
		len(users), records, len(ms),
		out["legacy-ns/op"]/1e6, out["legacy-allocs/op"],
		out["prepared-ns/op"]/1e6, out["prepared-allocs/op"])

	// The engine's contract, not a printout: prepared must beat legacy.
	// Allocation counts are deterministic, so they are asserted always;
	// wall clock out of a single -benchtime=1x smoke pass is dominated by
	// scheduling and GC noise, so the speed assertion waits for a sample
	// big enough to mean something.
	if out["alloc-ratio"] < 3 {
		b.Fatalf("prepared path must allocate >= 3x less, got ratio %.2f", out["alloc-ratio"])
	}
	// 5% grace: the structural contract is the alloc ratio above; the
	// wall-clock check only guards against the prepared path regressing
	// outright, without letting GC placement on a noisy shared host fail
	// a ~10% win.
	if legacyNs+preparedNs >= 200*time.Millisecond && float64(preparedNs) >= float64(legacyNs)*1.05 {
		b.Fatalf("prepared path must not be slower: %v vs legacy %v", preparedNs, legacyNs)
	}

	if path := os.Getenv("BENCH_EVAL_JSON"); path != "" {
		payload := struct {
			Benchmark string             `json:"benchmark"`
			Users     int                `json:"users"`
			Records   int                `json:"records"`
			Iters     int                `json:"iterations"`
			Metrics   map[string]float64 `json:"metrics"`
		}{"BenchmarkAnalyzeHotPath", len(users), records, b.N, out}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
