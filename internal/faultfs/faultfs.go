// Package faultfs is an in-memory filesystem for fault-injection tests
// of the stream journal. It implements journal.FS and adds three
// levers the real filesystem won't pull on demand:
//
//   - FailAt(n, mode): the Nth write-path operation fails — with an
//     error, a short write, or a silently dropped fsync.
//   - Crash(): every file reverts to its last-synced length and every
//     open handle is poisoned, simulating a process death plus the
//     kernel discarding unflushed page cache.
//   - TruncateFile: byte-precise torn tails for the crash matrix.
//
// The clock-free, path-flat model matches exactly what the journal
// needs: segments created once, appended, synced, removed.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/journal"
)

// FS implements journal.FS (compile-time check).
var _ journal.FS = (*FS)(nil)

// Mode selects how an injected fault manifests.
type Mode int

const (
	// ModeError makes the selected operation return an error.
	ModeError Mode = iota
	// ModeShortWrite makes the selected Write persist only half its
	// bytes and report the short count (Sync ops selected under this
	// mode fall back to ModeError).
	ModeShortWrite
	// ModeSyncDrop makes the selected Sync report success without
	// advancing the durable length — the lying-disk case.
	ModeSyncDrop
)

// ErrInjected is the failure injected by ModeError/ModeShortWrite.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by handles used after Crash.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// FS is the fault-injectable in-memory filesystem. The zero value is
// not usable; call New.
type FS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int // write-path operations seen (Write + Sync)
	failAt  int // 1-based op index to fail; 0 = never
	mode    Mode
	fired   bool
	crashed bool
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// FailAt arms a one-shot fault: the nth (1-based) subsequent write-path
// operation — Write or Sync — fails per mode. n<=0 disarms.
func (fs *FS) FailAt(n int, mode Mode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops = 0
	fs.failAt = n
	fs.mode = mode
	fs.fired = false
}

// Ops returns the number of write-path operations since the last FailAt.
func (fs *FS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crash simulates process death with cache loss: all files revert to
// their last-synced prefix and every open handle errors from now on.
// The filesystem itself stays usable (a "restarted process" can reopen).
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
	for _, f := range fs.files {
		f.data = f.data[:f.synced]
	}
}

// restart clears the crash poison for newly opened handles; called
// implicitly by Open/Create so a "restarted" journal just works.
func (fs *FS) restartLocked() { fs.crashed = false }

// shouldFire advances the op counter and reports whether this operation
// is the armed one. Callers hold fs.mu.
func (fs *FS) shouldFire() bool {
	fs.ops++
	if fs.fired || fs.failAt <= 0 || fs.ops != fs.failAt {
		return false
	}
	fs.fired = true
	return true
}

// ReadFile returns a copy of a file's full (not just synced) content.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[clean(name)]
	if f == nil {
		return nil, fmt.Errorf("faultfs: %s: no such file", name)
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's content, fully synced — the test-side
// escape hatch the crash matrix uses to plant torn tails.
func (fs *FS) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[clean(name)] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// TruncateFile cuts a file to n bytes (synced), simulating a torn tail
// at an exact byte boundary.
func (fs *FS) TruncateFile(name string, n int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[clean(name)]
	if f == nil {
		return fmt.Errorf("faultfs: %s: no such file", name)
	}
	if n < 0 || n > len(f.data) {
		return fmt.Errorf("faultfs: truncate %s to %d outside [0,%d]", name, n, len(f.data))
	}
	f.data = f.data[:n]
	if f.synced > n {
		f.synced = n
	}
	return nil
}

// Files returns the sorted names (full paths) of all files.
func (fs *FS) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- journal.FS surface ---

// MkdirAll records the directory; parents are implicit.
func (fs *FS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[clean(dir)] = true
	return nil
}

// ReadDir lists file names (not paths) directly inside dir, sorted.
func (fs *FS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = clean(dir)
	if !fs.dirs[dir] {
		return nil, fmt.Errorf("faultfs: %s: no such directory", dir)
	}
	var names []string
	prefix := dir + "/"
	for n := range fs.files {
		if strings.HasPrefix(n, prefix) && !strings.Contains(n[len(prefix):], "/") {
			names = append(names, n[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open opens an existing file for reading from its current content.
func (fs *FS) Open(name string) (journal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.restartLocked()
	f := fs.files[clean(name)]
	if f == nil {
		return nil, fmt.Errorf("faultfs: %s: no such file", name)
	}
	return &Handle{fs: fs, f: f, readable: true}, nil
}

// Create creates or truncates a file for writing.
func (fs *FS) Create(name string) (journal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.restartLocked()
	f := &memFile{}
	fs.files[clean(name)] = f
	return &Handle{fs: fs, f: f, writable: true}, nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = clean(name)
	if fs.files[name] == nil {
		return fmt.Errorf("faultfs: %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// Handle is one open file, implementing journal.File.
type Handle struct {
	fs       *FS
	f        *memFile
	off      int
	readable bool
	writable bool
	closed   bool
}

func (h *Handle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || h.fs.crashed {
		return 0, ErrCrashed
	}
	if !h.readable {
		return 0, fmt.Errorf("faultfs: handle not open for reading")
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *Handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || h.fs.crashed {
		return 0, ErrCrashed
	}
	if !h.writable {
		return 0, fmt.Errorf("faultfs: handle not open for writing")
	}
	if h.fs.shouldFire() {
		switch h.fs.mode {
		case ModeShortWrite:
			n := len(p) / 2
			h.f.data = append(h.f.data, p[:n]...)
			return n, ErrInjected
		default:
			return 0, ErrInjected
		}
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *Handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || h.fs.crashed {
		return ErrCrashed
	}
	if !h.writable {
		return nil // read handles sync trivially
	}
	if h.fs.shouldFire() {
		if h.fs.mode == ModeSyncDrop {
			return nil // lie: report success, durable length unchanged
		}
		return ErrInjected
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *Handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// clean normalizes a path for map keying.
func clean(p string) string { return path.Clean(strings.ReplaceAll(p, "\\", "/")) }
