package lbs

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

var testBox = geo.BBox{MinLat: 37.70, MinLng: -122.52, MaxLat: 37.82, MaxLng: -122.36}

func genVenues(t *testing.T, n int, seed int64) []Venue {
	t.Helper()
	vs, err := GenerateVenues(testBox, n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestGenerateVenuesBasics(t *testing.T) {
	vs := genVenues(t, 500, 1)
	if len(vs) != 500 {
		t.Fatalf("got %d venues, want 500", len(vs))
	}
	seen := make(map[int]bool, len(vs))
	for _, v := range vs {
		if seen[v.ID] {
			t.Fatalf("duplicate venue ID %d", v.ID)
		}
		seen[v.ID] = true
		if !testBox.Contains(v.Location) {
			t.Fatalf("venue %d at %v outside the box", v.ID, v.Location)
		}
		if v.Category == "" {
			t.Fatalf("venue %d has no category", v.ID)
		}
	}
}

func TestGenerateVenuesDeterministic(t *testing.T) {
	a := genVenues(t, 100, 7)
	b := genVenues(t, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must generate identical venues")
		}
	}
}

func TestGenerateVenuesErrors(t *testing.T) {
	if _, err := GenerateVenues(testBox, 0, rng.New(1)); err == nil {
		t.Error("zero venues should fail")
	}
	bad := geo.BBox{MinLat: 1, MaxLat: 1, MinLng: 0, MaxLng: 1}
	if _, err := GenerateVenues(bad, 10, rng.New(1)); err == nil {
		t.Error("degenerate box should fail")
	}
}

// bruteKNN is the oracle the index is checked against.
func bruteKNN(venues []Venue, p geo.Point, k int) []Venue {
	vs := append([]Venue(nil), venues...)
	sort.Slice(vs, func(i, j int) bool {
		di := geo.Equirectangular(p, vs[i].Location)
		dj := geo.Equirectangular(p, vs[j].Location)
		if di != dj {
			return di < dj
		}
		return vs[i].ID < vs[j].ID
	})
	if k > len(vs) {
		k = len(vs)
	}
	return vs[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	vs := genVenues(t, 800, 3)
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		p := geo.Point{
			Lat: testBox.MinLat + r.Float64()*(testBox.MaxLat-testBox.MinLat),
			Lng: testBox.MinLng + r.Float64()*(testBox.MaxLng-testBox.MinLng),
		}
		k := 1 + r.Intn(10)
		got := ix.KNN(p, k)
		want := bruteKNN(vs, p, k)
		if len(got) != len(want) {
			t.Fatalf("KNN returned %d venues, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: KNN[%d] = venue %d, want %d", trial, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	vs := genVenues(t, 50, 5)
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(testBox.Center(), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.KNN(testBox.Center(), 500); len(got) != 50 {
		t.Errorf("k beyond database size should return all venues, got %d", len(got))
	}
	// Query far outside the box must still terminate and find venues.
	far := testBox.Center().Offset(50000, 50000)
	if got := ix.KNN(far, 3); len(got) != 3 {
		t.Errorf("distant query returned %d venues, want 3", len(got))
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	vs := genVenues(t, 600, 6)
	ix, err := NewIndex(vs, 400)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		p := geo.Point{
			Lat: testBox.MinLat + r.Float64()*(testBox.MaxLat-testBox.MinLat),
			Lng: testBox.MinLng + r.Float64()*(testBox.MaxLng-testBox.MinLng),
		}
		radius := 200 + r.Float64()*3000
		got := ix.Range(p, radius)
		var want []Venue
		for _, v := range vs {
			if geo.Equirectangular(p, v.Location) <= radius {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Range returned %d venues, want %d", trial, len(got), len(want))
		}
		// Results must be distance-ordered.
		for i := 1; i < len(got); i++ {
			if geo.Equirectangular(p, got[i-1].Location) > geo.Equirectangular(p, got[i].Location)+1e-9 {
				t.Fatalf("Range results out of order at %d", i)
			}
		}
	}
}

func TestRangeEdgeCases(t *testing.T) {
	vs := genVenues(t, 50, 8)
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Range(testBox.Center(), -5); got != nil {
		t.Error("negative radius should return nil")
	}
}

func TestNewIndexErrors(t *testing.T) {
	if _, err := NewIndex(nil, 500); err == nil {
		t.Error("empty venue set should fail")
	}
	vs := genVenues(t, 5, 9)
	if _, err := NewIndex(vs, -1); err == nil {
		t.Error("negative bucket size should fail")
	}
	ix, err := NewIndex(vs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Errorf("Len = %d, want 5", ix.Len())
	}
}

func TestKNNFirstResultIsNearestProperty(t *testing.T) {
	vs := genVenues(t, 300, 11)
	ix, err := NewIndex(vs, 600)
	if err != nil {
		t.Fatal(err)
	}
	f := func(latFrac, lngFrac uint16) bool {
		p := geo.Point{
			Lat: testBox.MinLat + float64(latFrac)/65535*(testBox.MaxLat-testBox.MinLat),
			Lng: testBox.MinLng + float64(lngFrac)/65535*(testBox.MaxLng-testBox.MinLng),
		}
		got := ix.KNN(p, 1)
		if len(got) != 1 {
			return false
		}
		best := geo.Equirectangular(p, got[0].Location)
		for _, v := range vs {
			if geo.Equirectangular(p, v.Location) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRingCells(t *testing.T) {
	c := geo.Cell{Col: 3, Row: -2}
	if got := ringCells(c, 0); len(got) != 1 || got[0] != c {
		t.Fatalf("ring 0 = %v", got)
	}
	for ring := 1; ring <= 4; ring++ {
		cells := ringCells(c, ring)
		if len(cells) != 8*ring {
			t.Fatalf("ring %d has %d cells, want %d", ring, len(cells), 8*ring)
		}
		seen := make(map[geo.Cell]bool, len(cells))
		for _, cell := range cells {
			if seen[cell] {
				t.Fatalf("ring %d repeats cell %v", ring, cell)
			}
			seen[cell] = true
			dc, dr := cell.Col-c.Col, cell.Row-c.Row
			if maxAbs(dc, dr) != ring {
				t.Fatalf("ring %d contains cell at Chebyshev distance %d", ring, maxAbs(dc, dr))
			}
		}
	}
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func TestKNNHandlesDuplicateLocations(t *testing.T) {
	p := testBox.Center()
	vs := []Venue{
		{ID: 2, Category: "cafe", Location: p},
		{ID: 1, Category: "cafe", Location: p},
		{ID: 3, Category: "fuel", Location: p.Offset(100, 0)},
	}
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	got := ix.KNN(p, 2)
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("duplicate locations must tie-break by ID: got %d, %d", got[0].ID, got[1].ID)
	}
}

func TestVenueCategoriesCovered(t *testing.T) {
	vs := genVenues(t, 2000, 13)
	counts := make(map[string]int)
	for _, v := range vs {
		counts[v.Category]++
	}
	for _, c := range Categories {
		if counts[c] == 0 {
			t.Errorf("category %q never generated in 2000 venues", c)
		}
	}
	if math.Abs(float64(len(counts))-float64(len(Categories))) > 0 {
		t.Errorf("unexpected categories: %v", counts)
	}
}
