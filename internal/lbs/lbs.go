// Package lbs simulates the consumer of protected location data: a
// Location-Based Service answering nearest-venue and range queries against
// a venue database. The paper motivates LPPM configuration with "navigation
// or recommendation applications" whose quality degrades as noise grows;
// this package closes that loop by measuring service quality end-to-end —
// the k-nearest venues the service returns for a protected position versus
// the ones the user actually needed — instead of through geometric proxies.
package lbs

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Venue is one entry of the service's database.
type Venue struct {
	// ID uniquely identifies the venue.
	ID int
	// Category is a coarse venue class (restaurant, fuel, ...).
	Category string
	// Location is the venue position.
	Location geo.Point
}

// Categories lists the venue classes the generator draws from, roughly a
// city's service mix.
var Categories = []string{"restaurant", "cafe", "fuel", "pharmacy", "grocery", "parking"}

// GenerateVenues builds a deterministic synthetic venue database inside the
// bounding box: a fraction of venues cluster around commercial centers (as
// real venues do) and the rest scatter uniformly. n must be positive and
// the box non-degenerate.
func GenerateVenues(box geo.BBox, n int, r *rng.Source) ([]Venue, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lbs: venue count must be positive, got %d", n)
	}
	if box.MinLat >= box.MaxLat || box.MinLng >= box.MaxLng {
		return nil, fmt.Errorf("lbs: degenerate bounding box %v", box)
	}
	uniform := func() geo.Point {
		return geo.Point{
			Lat: box.MinLat + r.Float64()*(box.MaxLat-box.MinLat),
			Lng: box.MinLng + r.Float64()*(box.MaxLng-box.MinLng),
		}
	}
	// Commercial centers: one per ~250 venues, at least 2.
	nCenters := n/250 + 2
	centers := make([]geo.Point, nCenters)
	for i := range centers {
		centers[i] = uniform()
	}
	venues := make([]Venue, n)
	const clusteredFrac = 0.6
	for i := range venues {
		var p geo.Point
		if r.Float64() < clusteredFrac {
			c := centers[r.Intn(nCenters)]
			p = box.Clamp(c.Offset(400*r.NormFloat64(), 400*r.NormFloat64()))
		} else {
			p = uniform()
		}
		venues[i] = Venue{
			ID:       i,
			Category: Categories[r.Intn(len(Categories))],
			Location: p,
		}
	}
	return venues, nil
}

// Index answers spatial queries over a fixed venue set. It buckets venues
// into a uniform grid and expands cell rings outward, so queries touch only
// venues near the query point. The zero value is not usable; build with
// NewIndex. An Index is immutable after construction and safe for
// concurrent use.
type Index struct {
	grid    *geo.Grid
	buckets map[geo.Cell][]Venue
	venues  []Venue
}

// NewIndex builds an index over the venues with the given bucket size in
// meters (0 uses 500 m).
func NewIndex(venues []Venue, bucketMeters float64) (*Index, error) {
	if len(venues) == 0 {
		return nil, fmt.Errorf("lbs: cannot index zero venues")
	}
	if bucketMeters < 0 {
		return nil, fmt.Errorf("lbs: bucket size must be non-negative, got %v", bucketMeters)
	}
	if bucketMeters == 0 {
		bucketMeters = 500
	}
	origin := venues[0].Location
	grid := geo.NewGrid(geo.Point{Lat: origin.Lat - 1, Lng: origin.Lng - 1}, bucketMeters)
	idx := &Index{
		grid:    grid,
		buckets: make(map[geo.Cell][]Venue),
		venues:  append([]Venue(nil), venues...),
	}
	for _, v := range idx.venues {
		c := grid.CellOf(v.Location)
		idx.buckets[c] = append(idx.buckets[c], v)
	}
	return idx, nil
}

// Len returns the number of indexed venues.
func (ix *Index) Len() int { return len(ix.venues) }

// hit pairs a venue with its distance to the query point.
type hit struct {
	venue Venue
	dist  float64
}

// KNN returns the k venues nearest to p, ordered by increasing distance
// (ties broken by venue ID for determinism). It returns all venues when
// k exceeds the database size.
func (ix *Index) KNN(p geo.Point, k int) []Venue {
	if k <= 0 {
		return nil
	}
	if k > len(ix.venues) {
		k = len(ix.venues)
	}
	center := ix.grid.CellOf(p)
	var hits []hit
	// Expand rings until the k-th best hit is provably closer than any
	// venue in the next unexplored ring.
	for ring := 0; ; ring++ {
		for _, c := range ringCells(center, ring) {
			for _, v := range ix.buckets[c] {
				hits = append(hits, hit{venue: v, dist: geo.Equirectangular(p, v.Location)})
			}
		}
		// Venues outside the explored square are at least
		// ring·bucket meters away from p.
		guarantee := float64(ring) * ix.grid.CellSize()
		if len(hits) >= k {
			sortHits(hits)
			if hits[k-1].dist <= guarantee {
				break
			}
		}
		if ring > 0 && float64(ring)*ix.grid.CellSize() > 1e7 {
			// Entire Earth explored; nothing more to find.
			sortHits(hits)
			break
		}
	}
	out := make([]Venue, k)
	for i := 0; i < k; i++ {
		out[i] = hits[i].venue
	}
	return out
}

// Range returns the venues within radius meters of p, ordered by increasing
// distance (ties broken by ID).
func (ix *Index) Range(p geo.Point, radius float64) []Venue {
	if radius < 0 {
		return nil
	}
	center := ix.grid.CellOf(p)
	maxRing := int(radius/ix.grid.CellSize()) + 1
	var hits []hit
	for ring := 0; ring <= maxRing; ring++ {
		for _, c := range ringCells(center, ring) {
			for _, v := range ix.buckets[c] {
				if d := geo.Equirectangular(p, v.Location); d <= radius {
					hits = append(hits, hit{venue: v, dist: d})
				}
			}
		}
	}
	sortHits(hits)
	out := make([]Venue, len(hits))
	for i, h := range hits {
		out[i] = h.venue
	}
	return out
}

// sortHits orders by distance then ID.
func sortHits(hits []hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist { //lppm:allow floatcmp -- sort comparator: strict-weak ordering needs exact equality; a tolerance here is not transitive
			return hits[i].dist < hits[j].dist
		}
		return hits[i].venue.ID < hits[j].venue.ID
	})
}

// ringCells returns the cells on the square ring at Chebyshev distance
// ring from the center (the center itself for ring 0).
func ringCells(center geo.Cell, ring int) []geo.Cell {
	if ring == 0 {
		return []geo.Cell{center}
	}
	cells := make([]geo.Cell, 0, 8*ring)
	for dc := -ring; dc <= ring; dc++ {
		cells = append(cells,
			geo.Cell{Col: center.Col + dc, Row: center.Row - ring},
			geo.Cell{Col: center.Col + dc, Row: center.Row + ring})
	}
	for dr := -ring + 1; dr <= ring-1; dr++ {
		cells = append(cells,
			geo.Cell{Col: center.Col - ring, Row: center.Row + dr},
			geo.Cell{Col: center.Col + ring, Row: center.Row + dr})
	}
	return cells
}
