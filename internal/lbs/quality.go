package lbs

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// KNNQualityConfig tunes the end-to-end service-quality metric.
type KNNQualityConfig struct {
	// K is the result-list length per query (e.g. "5 nearest
	// restaurants").
	K int
	// Queries is how many positions along the trace issue a query.
	Queries int
}

// DefaultKNNQualityConfig returns the experiment configuration: top-5
// results at 30 positions.
func DefaultKNNQualityConfig() KNNQualityConfig {
	return KNNQualityConfig{K: 5, Queries: 30}
}

// Validate reports configuration errors.
func (c KNNQualityConfig) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("lbs: K must be positive, got %d", c.K)
	}
	if c.Queries <= 0 {
		return fmt.Errorf("lbs: Queries must be positive, got %d", c.Queries)
	}
	return nil
}

// KNNQuality is the end-to-end utility metric: at positions sampled along
// the trace, the user queries the service from her *protected* location and
// the score is the overlap between the venues returned and the ones her
// *actual* location would have returned — the fraction of recommendations
// that are still the right ones. It implements metrics.Metric so the whole
// configuration framework can target deployed service quality directly.
type KNNQuality struct {
	cfg   KNNQualityConfig
	index *Index
}

// NewKNNQuality builds the metric over a venue index.
func NewKNNQuality(index *Index, cfg KNNQualityConfig) (*KNNQuality, error) {
	if index == nil {
		return nil, fmt.Errorf("lbs: KNN quality needs a venue index")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &KNNQuality{cfg: cfg, index: index}, nil
}

// Name implements metrics.Metric.
func (*KNNQuality) Name() string { return "lbs_knn_quality" }

// Kind implements metrics.Metric.
func (*KNNQuality) Kind() metrics.Kind { return metrics.Utility }

// Evaluate implements metrics.Metric. Queries are issued at evenly-spaced
// record indexes; the protected position for a query is the protected
// record at the same relative position along the trace, so mechanisms that
// change the record count (Promesse, sampling) are still comparable. An
// empty protected trace scores 0.
func (q *KNNQuality) Evaluate(actual, protected *trace.Trace) (float64, error) {
	if actual.Len() == 0 {
		return 0, fmt.Errorf("lbs: KNN quality of empty actual trace")
	}
	if protected.Len() == 0 {
		return 0, nil
	}
	n := q.cfg.Queries
	if n > actual.Len() {
		n = actual.Len()
	}
	var sum float64
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		actIdx := int(frac * float64(actual.Len()-1))
		proIdx := int(frac * float64(protected.Len()-1))
		want := q.index.KNN(actual.Records[actIdx].Point, q.cfg.K)
		got := q.index.KNN(protected.Records[proIdx].Point, q.cfg.K)
		sum += overlap(want, got)
	}
	return sum / float64(n), nil
}

// overlap returns |want ∩ got| / |want| by venue ID.
func overlap(want, got []Venue) float64 {
	if len(want) == 0 {
		return 0
	}
	ids := make(map[int]struct{}, len(want))
	for _, v := range want {
		ids[v.ID] = struct{}{}
	}
	n := 0
	for _, v := range got {
		if _, ok := ids[v.ID]; ok {
			n++
		}
	}
	return float64(n) / float64(len(want))
}

var _ metrics.Metric = (*KNNQuality)(nil)
