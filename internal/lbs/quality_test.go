package lbs

import (
	"math"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

func cityTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	start := time.Date(2008, 5, 17, 9, 0, 0, 0, time.UTC)
	base := testBox.Center()
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			User:  "u1",
			Time:  start.Add(time.Duration(i) * time.Minute),
			Point: base.Offset(float64(i)*50, math.Sin(float64(i)/8)*400),
		}
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mkQuality(t *testing.T) *KNNQuality {
	t.Helper()
	vs := genVenues(t, 1000, 21)
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewKNNQuality(ix, DefaultKNNQualityConfig())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestKNNQualityIdentityIsOne(t *testing.T) {
	q := mkQuality(t)
	tr := cityTrace(t, 120)
	v, err := q.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("identity service quality = %v, want 1", v)
	}
}

func TestKNNQualityDegradesWithEpsilon(t *testing.T) {
	q := mkQuality(t)
	tr := cityTrace(t, 150)
	g := lppm.NewGeoIndistinguishability()
	quality := func(eps float64) float64 {
		prot, err := g.Protect(tr, lppm.Params{lppm.EpsilonParam: eps}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		v, err := q.Evaluate(tr, prot)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	high := quality(0.5)  // ~4 m mean noise
	low := quality(0.001) // ~2 km mean noise
	if !(high > low) {
		t.Errorf("quality must degrade with noise: ε=0.5 → %v, ε=0.001 → %v", high, low)
	}
	if high < 0.6 {
		t.Errorf("near-exact release quality = %v, want ≥ 0.6", high)
	}
	if low > 0.4 {
		t.Errorf("2 km-noise release quality = %v, want ≤ 0.4", low)
	}
}

func TestKNNQualityHandlesResampledReleases(t *testing.T) {
	q := mkQuality(t)
	tr := cityTrace(t, 200)
	p := lppm.NewPromesse()
	prot, err := p.Protect(tr, lppm.Params{lppm.AlphaParam: 300}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if prot.Len() == 0 {
		t.Fatal("promesse should publish a non-empty release here")
	}
	v, err := q.Evaluate(tr, prot)
	if err != nil {
		t.Fatal(err)
	}
	// Promesse keeps the spatial path, so service quality stays high
	// even though record counts differ.
	if v < 0.5 {
		t.Errorf("promesse service quality = %v, want ≥ 0.5 (path preserved)", v)
	}
}

func TestKNNQualityEmptyCases(t *testing.T) {
	q := mkQuality(t)
	tr := cityTrace(t, 50)
	v, err := q.Evaluate(tr, &trace.Trace{User: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("empty release quality = %v, want 0", v)
	}
	if _, err := q.Evaluate(&trace.Trace{User: "u1"}, tr); err == nil {
		t.Error("empty actual should error")
	}
}

func TestKNNQualityConfigAndKind(t *testing.T) {
	vs := genVenues(t, 10, 1)
	ix, err := NewIndex(vs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKNNQuality(nil, DefaultKNNQualityConfig()); err == nil {
		t.Error("nil index should fail")
	}
	if _, err := NewKNNQuality(ix, KNNQualityConfig{K: 0, Queries: 5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewKNNQuality(ix, KNNQualityConfig{K: 5, Queries: 0}); err == nil {
		t.Error("Queries=0 should fail")
	}
	q, err := NewKNNQuality(ix, DefaultKNNQualityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind() != metrics.Utility {
		t.Error("KNN quality must be a utility metric")
	}
	if q.Name() == "" {
		t.Error("metric must have a name")
	}
}

func TestOverlap(t *testing.T) {
	a := []Venue{{ID: 1}, {ID: 2}, {ID: 3}}
	b := []Venue{{ID: 3}, {ID: 4}, {ID: 1}}
	if got := overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("overlap = %v, want 2/3", got)
	}
	if got := overlap(nil, b); got != 0 {
		t.Errorf("overlap with empty want = %v, want 0", got)
	}
}
