package synth

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Config parameterizes the taxi-fleet generator. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// datasets.
	Seed int64
	// NumDrivers is the fleet size.
	NumDrivers int
	// Duration is the simulated wall-clock span per driver.
	Duration time.Duration
	// SamplePeriod is the GPS reporting period (cabspotting ≈ 60 s).
	SamplePeriod time.Duration
	// Start is the simulation start instant.
	Start time.Time

	// AnchorsPerDriver is how many personal anchor places (depot, food,
	// home) each driver has; these become the driver's ground-truth POIs.
	AnchorsPerDriver int
	// AnchorStay bounds the dwell time at an anchor stop.
	AnchorStayMin, AnchorStayMax time.Duration
	// TripsBetweenStops bounds how many passenger trips a driver serves
	// between two anchor stops.
	TripsBetweenStopsMin, TripsBetweenStopsMax int
	// SpeedKmh bounds the per-trip cruising speed.
	SpeedKmhMin, SpeedKmhMax float64
	// GPSJitterMeters is the standard deviation of per-sample GPS noise.
	GPSJitterMeters float64
	// StopJitterMeters is the spatial wander while dwelling at an anchor.
	StopJitterMeters float64
	// HotspotBias is the probability a trip endpoint is hotspot-driven.
	HotspotBias float64
	// Heterogeneity in [0, 1] controls per-driver diversity: each driver
	// draws its own GPS period and stop jitter within a factor of
	// (1 + 3·Heterogeneity) of the configured base values. Real fleets
	// (cabspotting) mix devices and behaviours; this is what widens the
	// privacy-metric transition zone across a decade of ε as in Figure 1a.
	Heterogeneity float64
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments: a day of 40 cabs sampled every minute.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		NumDrivers:           40,
		Duration:             24 * time.Hour,
		SamplePeriod:         time.Minute,
		Start:                time.Date(2008, 5, 17, 0, 0, 0, 0, time.UTC),
		AnchorsPerDriver:     4,
		AnchorStayMin:        20 * time.Minute,
		AnchorStayMax:        50 * time.Minute,
		TripsBetweenStopsMin: 2,
		TripsBetweenStopsMax: 5,
		SpeedKmhMin:          18,
		SpeedKmhMax:          45,
		GPSJitterMeters:      4,
		StopJitterMeters:     12,
		HotspotBias:          0.7,
		Heterogeneity:        0.6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumDrivers <= 0:
		return fmt.Errorf("synth: NumDrivers must be positive, got %d", c.NumDrivers)
	case c.Duration <= 0:
		return fmt.Errorf("synth: Duration must be positive, got %v", c.Duration)
	case c.SamplePeriod <= 0:
		return fmt.Errorf("synth: SamplePeriod must be positive, got %v", c.SamplePeriod)
	case c.AnchorsPerDriver < 1:
		return fmt.Errorf("synth: AnchorsPerDriver must be >= 1, got %d", c.AnchorsPerDriver)
	case c.AnchorStayMin <= 0 || c.AnchorStayMax < c.AnchorStayMin:
		return fmt.Errorf("synth: invalid anchor stay bounds [%v, %v]", c.AnchorStayMin, c.AnchorStayMax)
	case c.TripsBetweenStopsMin < 0 || c.TripsBetweenStopsMax < c.TripsBetweenStopsMin:
		return fmt.Errorf("synth: invalid trips bounds [%d, %d]", c.TripsBetweenStopsMin, c.TripsBetweenStopsMax)
	case c.SpeedKmhMin <= 0 || c.SpeedKmhMax < c.SpeedKmhMin:
		return fmt.Errorf("synth: invalid speed bounds [%v, %v]", c.SpeedKmhMin, c.SpeedKmhMax)
	case c.GPSJitterMeters < 0 || c.StopJitterMeters < 0:
		return fmt.Errorf("synth: jitter must be non-negative")
	case c.HotspotBias < 0 || c.HotspotBias > 1:
		return fmt.Errorf("synth: HotspotBias must be in [0, 1], got %v", c.HotspotBias)
	case c.Heterogeneity < 0 || c.Heterogeneity > 1:
		return fmt.Errorf("synth: Heterogeneity must be in [0, 1], got %v", c.Heterogeneity)
	}
	return nil
}

// Fleet is a generated dataset together with its ground truth: each driver's
// anchor places, i.e. the actual POIs a privacy metric should try to
// retrieve.
type Fleet struct {
	Dataset *trace.Dataset
	// Anchors maps user id to the driver's anchor places.
	Anchors map[string][]geo.Point
}

// Generate builds the synthetic fleet described by cfg over the given city
// (NewSanFrancisco() when city is nil).
func Generate(cfg Config, city *City) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if city == nil {
		city = NewSanFrancisco()
	}
	if err := city.Validate(); err != nil {
		return nil, err
	}

	root := rng.New(cfg.Seed)
	fleet := &Fleet{
		Dataset: trace.NewDataset(),
		Anchors: make(map[string][]geo.Point, cfg.NumDrivers),
	}
	for i := 0; i < cfg.NumDrivers; i++ {
		user := fmt.Sprintf("cab-%03d", i)
		r := root.Split(int64(i))
		d := newDriver(user, cfg, city, r)
		tr, err := d.simulate()
		if err != nil {
			return nil, fmt.Errorf("synth: driver %s: %w", user, err)
		}
		fleet.Dataset.Add(tr)
		fleet.Anchors[user] = d.anchors
	}
	return fleet, nil
}

// driver simulates one cab.
type driver struct {
	user    string
	cfg     Config
	city    *City
	r       *rng.Source
	anchors []geo.Point

	records []trace.Record
	now     time.Time
	nextFix time.Time
	pos     geo.Point
}

func newDriver(user string, cfg Config, city *City, r *rng.Source) *driver {
	anchors := make([]geo.Point, cfg.AnchorsPerDriver)
	anchorRng := r.Named("anchors")
	for i := range anchors {
		anchors[i] = city.SamplePoint(anchorRng, cfg.HotspotBias)
	}
	// Per-driver heterogeneity: scale the GPS period and the stop jitter
	// by log-uniform factors in [1/(1+3h), 1+3h].
	if h := cfg.Heterogeneity; h > 0 {
		traits := r.Named("traits")
		span := math.Log(1 + 3*h)
		periodFactor := math.Exp((traits.Float64()*2 - 1) * span)
		jitterFactor := math.Exp((traits.Float64()*2 - 1) * span)
		cfg.SamplePeriod = time.Duration(float64(cfg.SamplePeriod) * periodFactor)
		cfg.StopJitterMeters *= jitterFactor
	}
	return &driver{user: user, cfg: cfg, city: city, r: r, anchors: anchors}
}

// simulate alternates anchor stops and passenger-trip batches until the
// configured duration is exhausted, then builds the trace.
func (d *driver) simulate() (*trace.Trace, error) {
	d.now = d.cfg.Start
	d.nextFix = d.cfg.Start
	end := d.cfg.Start.Add(d.cfg.Duration)
	mob := d.r.Named("mobility")

	// Start dwelling at a random anchor.
	d.pos = d.anchors[mob.Intn(len(d.anchors))]

	for d.now.Before(end) {
		// Significant stop at an anchor.
		stay := randDuration(mob, d.cfg.AnchorStayMin, d.cfg.AnchorStayMax)
		d.dwell(stay, end)
		if !d.now.Before(end) {
			break
		}

		// A batch of passenger trips.
		trips := d.cfg.TripsBetweenStopsMin
		if span := d.cfg.TripsBetweenStopsMax - d.cfg.TripsBetweenStopsMin; span > 0 {
			trips += mob.Intn(span + 1)
		}
		for t := 0; t < trips && d.now.Before(end); t++ {
			dest := d.city.SamplePoint(mob, d.cfg.HotspotBias)
			d.drive(dest, end, mob)
			// Brief pickup/dropoff idle (not long enough to be a POI).
			d.dwell(randDuration(mob, 30*time.Second, 2*time.Minute), end)
		}

		// Return to one of the personal anchors for the next stop.
		next := d.anchors[mob.Intn(len(d.anchors))]
		d.drive(next, end, mob)
	}
	return trace.NewTrace(d.user, d.records)
}

// dwell keeps the driver (noisily) in place for the given duration, emitting
// GPS fixes on schedule.
func (d *driver) dwell(for_ time.Duration, end time.Time) {
	until := d.now.Add(for_)
	if until.After(end) {
		until = end
	}
	for !d.nextFix.After(until) {
		jitter := d.cfg.StopJitterMeters
		p := d.pos.Offset(d.r.NormFloat64()*jitter, d.r.NormFloat64()*jitter)
		d.emit(p)
	}
	d.now = until
}

// drive moves the driver to dest along a two-leg Manhattan-style route (east
// leg then north leg, order randomized) at a per-trip speed, emitting fixes.
func (d *driver) drive(dest geo.Point, end time.Time, mob *rng.Source) {
	speedMS := randFloat(mob, d.cfg.SpeedKmhMin, d.cfg.SpeedKmhMax) / 3.6
	proj := geo.NewProjection(d.pos)
	ex, ny := proj.ToPlane(dest)

	type leg struct{ dx, dy float64 }
	legs := []leg{{ex, 0}, {0, ny}}
	if mob.Float64() < 0.5 {
		legs = []leg{{0, ny}, {ex, 0}}
	}

	var cx, cy float64
	for _, l := range legs {
		legLen := math.Hypot(l.dx, l.dy)
		if legLen == 0 {
			continue
		}
		legDur := time.Duration(legLen / speedMS * float64(time.Second))
		legEnd := d.now.Add(legDur)
		startX, startY := cx, cy
		startT := d.now
		for !d.nextFix.After(legEnd) && !d.nextFix.After(end) {
			frac := float64(d.nextFix.Sub(startT)) / float64(legDur)
			if frac > 1 {
				frac = 1
			}
			px := startX + l.dx*frac
			py := startY + l.dy*frac
			p := proj.FromPlane(px, py).
				Offset(d.r.NormFloat64()*d.cfg.GPSJitterMeters, d.r.NormFloat64()*d.cfg.GPSJitterMeters)
			d.emitAt(p, d.nextFix)
			d.nextFix = d.nextFix.Add(d.cfg.SamplePeriod)
		}
		cx += l.dx
		cy += l.dy
		d.now = legEnd
		if !d.now.Before(end) {
			break
		}
	}
	d.pos = dest
}

// emit records a fix at the next scheduled time and advances the schedule.
func (d *driver) emit(p geo.Point) {
	d.emitAt(p, d.nextFix)
	d.nextFix = d.nextFix.Add(d.cfg.SamplePeriod)
}

func (d *driver) emitAt(p geo.Point, at time.Time) {
	d.records = append(d.records, trace.Record{
		User: d.user, Time: at, Point: d.city.Box.Clamp(p),
	})
}

func randDuration(r *rng.Source, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)))
}

func randFloat(r *rng.Source, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}
