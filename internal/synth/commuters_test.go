package synth

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/poi"
)

func smallCommuterConfig() CommuterConfig {
	cfg := DefaultCommuterConfig()
	cfg.NumUsers = 6
	cfg.Days = 2
	return cfg
}

func TestGenerateCommutersBasics(t *testing.T) {
	fleet, err := GenerateCommuters(smallCommuterConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Dataset.NumUsers() != 6 {
		t.Fatalf("NumUsers = %d, want 6", fleet.Dataset.NumUsers())
	}
	city := NewSanFrancisco()
	for _, tr := range fleet.Dataset.Traces() {
		if tr.Len() < 100 {
			t.Errorf("%s has only %d records over 2 days", tr.User, tr.Len())
		}
		if !tr.Sorted() {
			t.Errorf("%s records not sorted", tr.User)
		}
		for _, rec := range tr.Records {
			if !city.Box.Contains(rec.Point) {
				t.Fatalf("%s record at %v outside the city", tr.User, rec.Point)
			}
		}
		anchors := fleet.Anchors[tr.User]
		if len(anchors) < 2 {
			t.Errorf("%s has %d anchors, want ≥ 2 (home, work)", tr.User, len(anchors))
		}
	}
}

func TestGenerateCommutersDeterministic(t *testing.T) {
	a, err := GenerateCommuters(smallCommuterConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCommuters(smallCommuterConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range a.Dataset.Users() {
		ta, tb := a.Dataset.Trace(user), b.Dataset.Trace(user)
		if ta.Len() != tb.Len() {
			t.Fatalf("%s lengths differ across runs", user)
		}
		for i := range ta.Records {
			if ta.Records[i] != tb.Records[i] {
				t.Fatalf("%s record %d differs across runs", user, i)
			}
		}
	}
}

func TestCommutersExposeHomeAndWorkPOIs(t *testing.T) {
	fleet, err := GenerateCommuters(smallCommuterConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := poi.NewExtractor(poi.DefaultExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range fleet.Dataset.Traces() {
		pois := ext.POIs(tr)
		if len(pois) < 2 {
			t.Fatalf("%s: extracted %d POIs, want ≥ 2 (home, work dwell daily)", tr.User, len(pois))
		}
		// Home and work anchors must both be recoverable within 250 m.
		for i, anchor := range fleet.Anchors[tr.User][:2] {
			found := false
			for _, p := range pois {
				if geo.Haversine(p.Center, anchor) < 250 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: anchor %d not recovered from raw trace", tr.User, i)
			}
		}
	}
}

func TestCommutersDifferFromTaxisInProperties(t *testing.T) {
	// The archetypes must be statistically distinguishable, otherwise the
	// "other datasets" experiments are vacuous: commuters dwell most of
	// the day (long stays) while taxis keep moving.
	taxiCfg := DefaultConfig()
	taxiCfg.NumDrivers = 6
	taxis, err := Generate(taxiCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	commuters, err := GenerateCommuters(smallCommuterConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var taxiRate, commRate float64
	for _, tr := range taxis.Dataset.Traces() {
		taxiRate += geo.PathLength(tr.Points()) / tr.Duration().Hours()
	}
	taxiRate /= float64(taxis.Dataset.NumUsers())
	for _, tr := range commuters.Dataset.Traces() {
		commRate += geo.PathLength(tr.Points()) / tr.Duration().Hours()
	}
	commRate /= float64(commuters.Dataset.NumUsers())
	if taxiRate < 2*commRate {
		t.Errorf("taxis should travel ≥ 2× more per hour: taxi %.0f m/h vs commuter %.0f m/h", taxiRate, commRate)
	}
}

func TestCommuterConfigValidation(t *testing.T) {
	bad := []func(*CommuterConfig){
		func(c *CommuterConfig) { c.NumUsers = 0 },
		func(c *CommuterConfig) { c.Days = 0 },
		func(c *CommuterConfig) { c.SamplePeriod = 0 },
		func(c *CommuterConfig) { c.LunchOutProb = 2 },
		func(c *CommuterConfig) { c.ErrandProb = -1 },
		func(c *CommuterConfig) { c.SpeedKmhMin = 0 },
		func(c *CommuterConfig) { c.SpeedKmhMax = 1 },
		func(c *CommuterConfig) { c.GPSJitterMeters = -1 },
		func(c *CommuterConfig) { c.Heterogeneity = 3 },
	}
	for i, mutate := range bad {
		cfg := DefaultCommuterConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultCommuterConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCommutersSpanConfiguredDays(t *testing.T) {
	cfg := smallCommuterConfig()
	fleet, err := GenerateCommuters(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSpan := time.Duration(cfg.Days) * 24 * time.Hour
	for _, tr := range fleet.Dataset.Traces() {
		if got := tr.Duration(); got < wantSpan-2*time.Hour || got > wantSpan {
			t.Errorf("%s spans %v, want ≈ %v", tr.User, got, wantSpan)
		}
	}
}
