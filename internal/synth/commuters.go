package synth

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// CommuterConfig parameterizes the commuter-population generator, the
// second dataset archetype (the paper's future work §4 includes "other
// datasets"). Where taxis roam all day and stop briefly, commuters pendulum
// between a home and a workplace with long dwells — different sampling
// density, different POI structure, different area coverage — which is what
// makes dataset properties d_i matter to the fitted model.
type CommuterConfig struct {
	// Seed drives all randomness.
	Seed int64
	// NumUsers is the population size.
	NumUsers int
	// Days is the number of simulated working days per user.
	Days int
	// SamplePeriod is the phone's location-reporting period (sparser
	// than a cab's GPS).
	SamplePeriod time.Duration
	// Start is the simulation start instant (midnight of day one).
	Start time.Time
	// LunchOutProb is the daily probability of a lunch trip to the
	// user's favourite spot.
	LunchOutProb float64
	// ErrandProb is the daily probability of an evening errand stop.
	ErrandProb float64
	// SpeedKmh bounds the commuting speed.
	SpeedKmhMin, SpeedKmhMax float64
	// GPSJitterMeters is the standard deviation of per-sample noise.
	GPSJitterMeters float64
	// StopJitterMeters is the spatial wander while dwelling.
	StopJitterMeters float64
	// Heterogeneity in [0, 1] spreads per-user sampling periods and
	// dwell behaviour, like the taxi generator's knob.
	Heterogeneity float64
}

// DefaultCommuterConfig returns the experiment configuration: 40 commuters
// over 3 working days, sampled every 3 minutes.
func DefaultCommuterConfig() CommuterConfig {
	return CommuterConfig{
		Seed:             1,
		NumUsers:         40,
		Days:             3,
		SamplePeriod:     3 * time.Minute,
		Start:            time.Date(2008, 5, 19, 0, 0, 0, 0, time.UTC),
		LunchOutProb:     0.6,
		ErrandProb:       0.4,
		SpeedKmhMin:      20,
		SpeedKmhMax:      50,
		GPSJitterMeters:  6,
		StopJitterMeters: 15,
		Heterogeneity:    0.6,
	}
}

// Validate reports configuration errors.
func (c CommuterConfig) Validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("synth: NumUsers must be positive, got %d", c.NumUsers)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days must be positive, got %d", c.Days)
	case c.SamplePeriod <= 0:
		return fmt.Errorf("synth: SamplePeriod must be positive, got %v", c.SamplePeriod)
	case c.LunchOutProb < 0 || c.LunchOutProb > 1:
		return fmt.Errorf("synth: LunchOutProb must be in [0, 1], got %v", c.LunchOutProb)
	case c.ErrandProb < 0 || c.ErrandProb > 1:
		return fmt.Errorf("synth: ErrandProb must be in [0, 1], got %v", c.ErrandProb)
	case c.SpeedKmhMin <= 0 || c.SpeedKmhMax < c.SpeedKmhMin:
		return fmt.Errorf("synth: invalid speed bounds [%v, %v]", c.SpeedKmhMin, c.SpeedKmhMax)
	case c.GPSJitterMeters < 0 || c.StopJitterMeters < 0:
		return fmt.Errorf("synth: jitter must be non-negative")
	case c.Heterogeneity < 0 || c.Heterogeneity > 1:
		return fmt.Errorf("synth: Heterogeneity must be in [0, 1], got %v", c.Heterogeneity)
	}
	return nil
}

// GenerateCommuters builds the commuter dataset described by cfg over the
// given city (NewSanFrancisco() when city is nil). Ground-truth anchors per
// user are home, work, and — when the user's schedule includes them — the
// lunch and errand spots.
func GenerateCommuters(cfg CommuterConfig, city *City) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if city == nil {
		city = NewSanFrancisco()
	}
	if err := city.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	fleet := &Fleet{
		Dataset: trace.NewDataset(),
		Anchors: make(map[string][]geo.Point, cfg.NumUsers),
	}
	for i := 0; i < cfg.NumUsers; i++ {
		user := fmt.Sprintf("commuter-%03d", i)
		r := root.Split(int64(i))
		c := newCommuter(user, cfg, city, r)
		tr, err := c.simulate()
		if err != nil {
			return nil, fmt.Errorf("synth: commuter %s: %w", user, err)
		}
		fleet.Dataset.Add(tr)
		fleet.Anchors[user] = c.anchors
	}
	return fleet, nil
}

// commuter simulates one phone user with a pendulum schedule.
type commuter struct {
	user    string
	cfg     CommuterConfig
	city    *City
	r       *rng.Source
	anchors []geo.Point

	home, work, lunch, errand geo.Point

	records []trace.Record
	now     time.Time
	nextFix time.Time
	pos     geo.Point
}

func newCommuter(user string, cfg CommuterConfig, city *City, r *rng.Source) *commuter {
	places := r.Named("places")
	home := city.SamplePoint(places, 0.2) // homes scatter widely
	work := city.SamplePoint(places, 0.9) // work concentrates downtown
	lunch := work.Offset(placeOffset(places), placeOffset(places))
	errand := home.Offset(placeOffset(places), placeOffset(places))
	if h := cfg.Heterogeneity; h > 0 {
		traits := r.Named("traits")
		span := math.Log(1 + 3*h)
		periodFactor := math.Exp((traits.Float64()*2 - 1) * span)
		jitterFactor := math.Exp((traits.Float64()*2 - 1) * span)
		cfg.SamplePeriod = time.Duration(float64(cfg.SamplePeriod) * periodFactor)
		cfg.StopJitterMeters *= jitterFactor
	}
	return &commuter{
		user: user, cfg: cfg, city: city, r: r,
		home: home, work: work,
		lunch:   city.Box.Clamp(lunch),
		errand:  city.Box.Clamp(errand),
		anchors: []geo.Point{home, work},
	}
}

// placeOffset draws a displacement (±300–1200 m) placing a secondary spot
// near, but not inside, a primary anchor's block.
func placeOffset(r *rng.Source) float64 {
	d := 300 + 900*r.Float64()
	if r.Float64() < 0.5 {
		return -d
	}
	return d
}

// simulate plays the daily schedule: home overnight, morning commute, work,
// optional lunch out, work, optional errand, home.
func (c *commuter) simulate() (*trace.Trace, error) {
	c.now = c.cfg.Start
	c.nextFix = c.cfg.Start
	c.pos = c.home
	day := c.r.Named("days")
	lunchUsed, errandUsed := false, false
	for d := 0; d < c.cfg.Days; d++ {
		dayEnd := c.cfg.Start.Add(time.Duration(d+1) * 24 * time.Hour)
		// Overnight at home until a personal departure time.
		depart := c.cfg.Start.Add(time.Duration(d)*24*time.Hour +
			7*time.Hour + time.Duration(day.Float64()*float64(2*time.Hour)))
		c.dwellUntil(depart, c.home)
		c.travel(c.work, day)

		// Morning block, optional lunch, afternoon block.
		lunchAt := c.now.Add(3*time.Hour + time.Duration(day.Float64()*float64(time.Hour)))
		c.dwellUntil(lunchAt, c.work)
		if day.Float64() < c.cfg.LunchOutProb {
			lunchUsed = true
			c.travel(c.lunch, day)
			c.dwellUntil(c.now.Add(40*time.Minute), c.lunch)
			c.travel(c.work, day)
		}
		leaveAt := c.now.Add(4*time.Hour + time.Duration(day.Float64()*float64(90*time.Minute)))
		c.dwellUntil(leaveAt, c.work)

		// Optional errand, then home for the night.
		if day.Float64() < c.cfg.ErrandProb {
			errandUsed = true
			c.travel(c.errand, day)
			c.dwellUntil(c.now.Add(30*time.Minute), c.errand)
		}
		c.travel(c.home, day)
		c.dwellUntil(dayEnd, c.home)
	}
	if lunchUsed {
		c.anchors = append(c.anchors, c.lunch)
	}
	if errandUsed {
		c.anchors = append(c.anchors, c.errand)
	}
	return trace.NewTrace(c.user, c.records)
}

// dwellUntil keeps the commuter (noisily) at place until the given instant.
func (c *commuter) dwellUntil(until time.Time, place geo.Point) {
	if until.Before(c.now) {
		return
	}
	c.pos = place
	for !c.nextFix.After(until) {
		jitter := c.cfg.StopJitterMeters
		p := place.Offset(c.r.NormFloat64()*jitter, c.r.NormFloat64()*jitter)
		c.records = append(c.records, trace.Record{User: c.user, Time: c.nextFix, Point: c.city.Box.Clamp(p)})
		c.nextFix = c.nextFix.Add(c.cfg.SamplePeriod)
	}
	c.now = until
}

// travel drives straight from the current position to dest at a random
// commuting speed, emitting fixes on schedule.
func (c *commuter) travel(dest geo.Point, mob *rng.Source) {
	speedMS := (c.cfg.SpeedKmhMin + mob.Float64()*(c.cfg.SpeedKmhMax-c.cfg.SpeedKmhMin)) / 3.6
	dist := geo.Haversine(c.pos, dest)
	if dist == 0 {
		return
	}
	dur := time.Duration(dist / speedMS * float64(time.Second))
	arrive := c.now.Add(dur)
	proj := geo.NewProjection(c.pos)
	ex, ny := proj.ToPlane(dest)
	for !c.nextFix.After(arrive) {
		frac := float64(c.nextFix.Sub(c.now)) / float64(dur)
		if frac > 1 {
			frac = 1
		}
		p := proj.FromPlane(ex*frac, ny*frac).
			Offset(c.r.NormFloat64()*c.cfg.GPSJitterMeters, c.r.NormFloat64()*c.cfg.GPSJitterMeters)
		c.records = append(c.records, trace.Record{User: c.user, Time: c.nextFix, Point: c.city.Box.Clamp(p)})
		c.nextFix = c.nextFix.Add(c.cfg.SamplePeriod)
	}
	c.now = arrive
	c.pos = dest
}
