package synth

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumDrivers = 4
	cfg.Duration = 6 * time.Hour
	return cfg
}

func TestGenerateBasicShape(t *testing.T) {
	fleet, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Dataset.NumUsers() != 4 {
		t.Fatalf("users = %d, want 4", fleet.Dataset.NumUsers())
	}
	for _, tr := range fleet.Dataset.Traces() {
		if tr.Len() < 100 {
			t.Errorf("user %s has only %d records for 6 h at 1/min", tr.User, tr.Len())
		}
		if !tr.Sorted() {
			t.Errorf("user %s trace not time-sorted", tr.User)
		}
		anchors := fleet.Anchors[tr.User]
		if len(anchors) != 4 {
			t.Errorf("user %s has %d anchors, want 4", tr.User, len(anchors))
		}
	}
}

func TestGenerateInsideCityBox(t *testing.T) {
	fleet, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	box := SanFranciscoBBox
	for _, tr := range fleet.Dataset.Traces() {
		for _, r := range tr.Records {
			if !box.Contains(r.Point) {
				t.Fatalf("record %v outside the city box", r)
			}
		}
	}
	for _, anchors := range fleet.Anchors {
		for _, a := range anchors {
			if !box.Contains(a) {
				t.Fatalf("anchor %v outside the city box", a)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range a.Dataset.Users() {
		ta, tb := a.Dataset.Trace(u), b.Dataset.Trace(u)
		if ta.Len() != tb.Len() {
			t.Fatalf("user %s: lengths differ %d vs %d", u, ta.Len(), tb.Len())
		}
		for i := range ta.Records {
			if ta.Records[i] != tb.Records[i] {
				t.Fatalf("user %s record %d differs", u, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfgA := smallConfig()
	cfgB := smallConfig()
	cfgB.Seed = 999
	a, err := Generate(cfgA, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfgB, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := a.Dataset.Users()[0]
	ta, tb := a.Dataset.Trace(u), b.Dataset.Trace(u)
	n := ta.Len()
	if tb.Len() < n {
		n = tb.Len()
	}
	same := 0
	for i := 0; i < n; i++ {
		if ta.Records[i].Point == tb.Records[i].Point {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("different seeds share %d/%d identical points", same, n)
	}
}

func TestGenerateDwellsAtAnchors(t *testing.T) {
	// Each driver must have a meaningful fraction of fixes within 100 m
	// of some anchor — the ground truth POI structure the privacy metric
	// relies on.
	fleet, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range fleet.Dataset.Traces() {
		anchors := fleet.Anchors[tr.User]
		near := 0
		for _, r := range tr.Records {
			for _, a := range anchors {
				if geo.Equirectangular(r.Point, a) < 100 {
					near++
					break
				}
			}
		}
		frac := float64(near) / float64(tr.Len())
		if frac < 0.15 {
			t.Errorf("user %s: only %.1f%% of fixes near anchors", tr.User, frac*100)
		}
		if frac > 0.95 {
			t.Errorf("user %s: %.1f%% of fixes near anchors — no trips generated?", tr.User, frac*100)
		}
	}
}

func TestGenerateCoverageSpreads(t *testing.T) {
	fleet, err := Generate(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	grid := geo.NewGrid(SanFranciscoBBox.Center(), 150)
	for _, tr := range fleet.Dataset.Traces() {
		cov := grid.Coverage(tr.Points())
		if len(cov) < 20 {
			t.Errorf("user %s covers only %d city blocks", tr.User, len(cov))
		}
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := map[string]func(*Config){
		"drivers":  func(c *Config) { c.NumDrivers = 0 },
		"duration": func(c *Config) { c.Duration = 0 },
		"period":   func(c *Config) { c.SamplePeriod = 0 },
		"anchors":  func(c *Config) { c.AnchorsPerDriver = 0 },
		"stay":     func(c *Config) { c.AnchorStayMax = c.AnchorStayMin - 1 },
		"trips":    func(c *Config) { c.TripsBetweenStopsMax = -1; c.TripsBetweenStopsMin = 0 },
		"speed":    func(c *Config) { c.SpeedKmhMin = 0 },
		"jitter":   func(c *Config) { c.GPSJitterMeters = -1 },
		"bias":     func(c *Config) { c.HotspotBias = 1.5 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("mutation %q should invalidate config", name)
			}
			if _, err := Generate(cfg, nil); err == nil {
				t.Errorf("Generate should reject invalid config %q", name)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestCityValidate(t *testing.T) {
	if err := NewSanFrancisco().Validate(); err != nil {
		t.Errorf("default city invalid: %v", err)
	}
	bad := &City{Box: geo.BBox{MinLat: 1, MaxLat: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("degenerate box should be invalid")
	}
	noSpots := &City{Box: SanFranciscoBBox}
	if err := noSpots.Validate(); err == nil {
		t.Error("city without hotspots should be invalid")
	}
	outside := NewSanFrancisco()
	outside.Hotspots[0].Center = geo.Point{Lat: 0, Lng: 0}
	if err := outside.Validate(); err == nil {
		t.Error("hotspot outside the box should be invalid")
	}
	zeroW := NewSanFrancisco()
	zeroW.Hotspots[0].Weight = 0
	if err := zeroW.Validate(); err == nil {
		t.Error("zero-weight hotspot should be invalid")
	}
}

func TestCitySamplePoint(t *testing.T) {
	city := NewSanFrancisco()
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		p := city.SamplePoint(r, 0.7)
		if !city.Box.Contains(p) {
			t.Fatalf("sampled point %v outside box", p)
		}
	}
	// With full hotspot bias, points should concentrate near hotspots.
	nearAny := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := city.SamplePoint(r, 1.0)
		for _, h := range city.Hotspots {
			if geo.Equirectangular(p, h.Center) < 3*h.SigmaMeters {
				nearAny++
				break
			}
		}
	}
	if frac := float64(nearAny) / trials; frac < 0.9 {
		t.Errorf("only %.2f of fully-biased samples near hotspots", frac)
	}
}

func TestGenerateCustomCityRejected(t *testing.T) {
	bad := &City{Box: geo.BBox{MinLat: 1, MaxLat: 0}}
	if _, err := Generate(smallConfig(), bad); err == nil {
		t.Error("invalid city should be rejected")
	}
}
