// Package synth generates synthetic San-Francisco taxi-fleet mobility traces.
// It is the repository's stand-in for the cabspotting dataset the paper's
// evaluation protected with GEO-I (see DESIGN.md §2 for the substitution
// rationale): drivers alternate significant stops at personal anchor places
// (recoverable as POIs by stay-point detection) with passenger trips across
// the city (producing area coverage at city-block granularity), sampled at a
// cabspotting-like GPS period. All randomness is driven by an explicit seed.
package synth

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"
)

// SanFranciscoBBox is the generation area: the San Francisco peninsula
// rectangle the cabspotting traces live in.
var SanFranciscoBBox = geo.BBox{
	MinLat: 37.708, MinLng: -122.513,
	MaxLat: 37.810, MaxLng: -122.358,
}

// City is a synthetic urban area: a bounding box plus a set of hotspots that
// attract trips, approximating the non-uniform demand of a real city.
type City struct {
	// Box bounds every generated coordinate.
	Box geo.BBox
	// Hotspots are demand attractors (e.g. downtown, airport staging,
	// mission district) with relative weights.
	Hotspots []Hotspot
}

// Hotspot is a demand attractor with a Gaussian spatial footprint.
type Hotspot struct {
	// Center is the hotspot's focal point.
	Center geo.Point
	// SigmaMeters is the standard deviation of the footprint.
	SigmaMeters float64
	// Weight is the relative probability mass of this hotspot.
	Weight float64
}

// NewSanFrancisco returns the default synthetic San Francisco with hotspots
// placed at recognizable districts (downtown/FiDi, Mission, Sunset, SoMa,
// Fisherman's Wharf).
func NewSanFrancisco() *City {
	return &City{
		Box: SanFranciscoBBox,
		Hotspots: []Hotspot{
			{Center: geo.Point{Lat: 37.7936, Lng: -122.3984}, SigmaMeters: 900, Weight: 3.0},  // FiDi
			{Center: geo.Point{Lat: 37.7599, Lng: -122.4148}, SigmaMeters: 1100, Weight: 2.0}, // Mission
			{Center: geo.Point{Lat: 37.7810, Lng: -122.4070}, SigmaMeters: 800, Weight: 2.5},  // SoMa
			{Center: geo.Point{Lat: 37.8080, Lng: -122.4177}, SigmaMeters: 600, Weight: 1.5},  // Wharf
			{Center: geo.Point{Lat: 37.7530, Lng: -122.4860}, SigmaMeters: 1500, Weight: 1.0}, // Sunset
		},
	}
}

// Validate checks the city is usable for generation.
func (c *City) Validate() error {
	if c.Box.MinLat >= c.Box.MaxLat || c.Box.MinLng >= c.Box.MaxLng {
		return fmt.Errorf("synth: degenerate city bounding box %v", c.Box)
	}
	if len(c.Hotspots) == 0 {
		return fmt.Errorf("synth: city needs at least one hotspot")
	}
	for i, h := range c.Hotspots {
		if h.Weight <= 0 || h.SigmaMeters <= 0 {
			return fmt.Errorf("synth: hotspot %d has non-positive weight/sigma", i)
		}
		if !c.Box.Contains(h.Center) {
			return fmt.Errorf("synth: hotspot %d center %v outside city box", i, h.Center)
		}
	}
	return nil
}

// SamplePoint draws a location: with probability hotspotBias from a weighted
// hotspot footprint, otherwise uniformly over the box. Points are clamped
// into the box.
func (c *City) SamplePoint(r *rng.Source, hotspotBias float64) geo.Point {
	if r.Float64() < hotspotBias {
		h := c.pickHotspot(r)
		p := h.Center.Offset(r.NormFloat64()*h.SigmaMeters, r.NormFloat64()*h.SigmaMeters)
		return c.Box.Clamp(p)
	}
	lat := c.Box.MinLat + r.Float64()*(c.Box.MaxLat-c.Box.MinLat)
	lng := c.Box.MinLng + r.Float64()*(c.Box.MaxLng-c.Box.MinLng)
	return geo.Point{Lat: lat, Lng: lng}
}

func (c *City) pickHotspot(r *rng.Source) Hotspot {
	var total float64
	for _, h := range c.Hotspots {
		total += h.Weight
	}
	x := r.Float64() * total
	for _, h := range c.Hotspots {
		x -= h.Weight
		if x <= 0 {
			return h
		}
	}
	return c.Hotspots[len(c.Hotspots)-1]
}
