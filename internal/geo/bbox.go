package geo

import "fmt"

// BBox is an axis-aligned geographic bounding box. Boxes in this repository
// never cross the antimeridian (San Francisco does not either).
type BBox struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// NewBBox returns the bounding box of the given points. The second return
// value is false when pts is empty.
func NewBBox(pts []Point) (BBox, bool) {
	if len(pts) == 0 {
		return BBox{}, false
	}
	b := BBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLng: pts[0].Lng, MaxLng: pts[0].Lng,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b, true
}

// Extend returns the box grown to include p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lng < b.MinLng {
		b.MinLng = p.Lng
	}
	if p.Lng > b.MaxLng {
		b.MaxLng = p.Lng
	}
	return b
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return b.Extend(Point{Lat: o.MinLat, Lng: o.MinLng}).
		Extend(Point{Lat: o.MaxLat, Lng: o.MaxLng})
}

// Contains reports whether p lies inside the box (inclusive of edges).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the geometric center of the box.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// Corners returns the SW and NE corners of the box.
func (b BBox) Corners() (sw, ne Point) {
	return Point{Lat: b.MinLat, Lng: b.MinLng}, Point{Lat: b.MaxLat, Lng: b.MaxLng}
}

// WidthMeters returns the east-west extent measured at the box's mid
// latitude, in meters.
func (b BBox) WidthMeters() float64 {
	midLat := (b.MinLat + b.MaxLat) / 2
	return Equirectangular(
		Point{Lat: midLat, Lng: b.MinLng},
		Point{Lat: midLat, Lng: b.MaxLng},
	)
}

// HeightMeters returns the north-south extent of the box in meters.
func (b BBox) HeightMeters() float64 {
	return Equirectangular(
		Point{Lat: b.MinLat, Lng: b.MinLng},
		Point{Lat: b.MaxLat, Lng: b.MinLng},
	)
}

// Buffer returns the box expanded by the given margin in meters on every
// side.
func (b BBox) Buffer(meters float64) BBox {
	sw, ne := b.Corners()
	sw = sw.Offset(-meters, -meters)
	ne = ne.Offset(meters, meters)
	return BBox{MinLat: sw.Lat, MinLng: sw.Lng, MaxLat: ne.Lat, MaxLng: ne.Lng}
}

// Clamp returns p moved to the nearest location inside the box.
func (b BBox) Clamp(p Point) Point {
	if p.Lat < b.MinLat {
		p.Lat = b.MinLat
	}
	if p.Lat > b.MaxLat {
		p.Lat = b.MaxLat
	}
	if p.Lng < b.MinLng {
		p.Lng = b.MinLng
	}
	if p.Lng > b.MaxLng {
		p.Lng = b.MaxLng
	}
	return p
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%.5f,%.5f .. %.5f,%.5f]", b.MinLat, b.MinLng, b.MaxLat, b.MaxLng)
}
