package geo

import "fmt"

// Cell identifies one square of a Grid by its integer column (east) and row
// (north) indices. Cells are comparable and usable as map keys, which is how
// the coverage metrics build cell sets.
type Cell struct {
	Col, Row int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("c%d/r%d", c.Col, c.Row) }

// Grid tessellates the plane around an origin into square cells of a fixed
// size in meters. The paper's utility metric compares "area coverage ... at
// the scale of a city block"; a Grid with ~150 m cells is exactly that
// discretization. A Grid is immutable and safe for concurrent use.
type Grid struct {
	proj *Projection
	size float64
}

// NewGrid returns a grid of cellSizeMeters squares anchored at origin.
// It panics if cellSizeMeters is not strictly positive: a zero-size grid is a
// programming error, not a runtime condition.
func NewGrid(origin Point, cellSizeMeters float64) *Grid {
	if cellSizeMeters <= 0 {
		panic(fmt.Sprintf("geo: non-positive grid cell size %v", cellSizeMeters))
	}
	return &Grid{proj: NewProjection(origin), size: cellSizeMeters}
}

// CellSize returns the edge length of the grid cells in meters.
func (g *Grid) CellSize() float64 { return g.size }

// Origin returns the grid anchor point (corner of cell {0,0}).
func (g *Grid) Origin() Point { return g.proj.Origin() }

// CellOf returns the cell containing p.
func (g *Grid) CellOf(p Point) Cell {
	east, north := g.proj.ToPlane(p)
	return Cell{Col: floorDiv(east, g.size), Row: floorDiv(north, g.size)}
}

// CellCenter returns the geographic center of the given cell.
func (g *Grid) CellCenter(c Cell) Point {
	east := (float64(c.Col) + 0.5) * g.size
	north := (float64(c.Row) + 0.5) * g.size
	return g.proj.FromPlane(east, north)
}

// SnapToCellCenter returns p moved to the center of its cell. This is the
// primitive behind the grid-cloaking LPPM.
func (g *Grid) SnapToCellCenter(p Point) Point {
	return g.CellCenter(g.CellOf(p))
}

// Coverage returns the set of distinct cells visited by the given points.
func (g *Grid) Coverage(pts []Point) map[Cell]struct{} {
	cells := make(map[Cell]struct{}, len(pts)/4+1)
	for _, p := range pts {
		cells[g.CellOf(p)] = struct{}{}
	}
	return cells
}

// floorDiv returns floor(v/size) as an int, correct for negative v.
func floorDiv(v, size float64) int {
	q := v / size
	iq := int(q)
	if q < 0 && float64(iq) != q { //lppm:allow floatcmp -- exactness test by construction: truncation changed the value iff q had a fractional part, which is what floor correction needs
		iq--
	}
	return iq
}

// CellSetF1 returns the F1 similarity (harmonic mean of precision and
// recall) between a reference cell set and a candidate cell set. It is 1
// when the sets are identical and 0 when they are disjoint. By convention
// two empty sets are perfectly similar.
func CellSetF1(reference, candidate map[Cell]struct{}) float64 {
	if len(reference) == 0 && len(candidate) == 0 {
		return 1
	}
	if len(reference) == 0 || len(candidate) == 0 {
		return 0
	}
	var inter int
	small, large := reference, candidate
	if len(candidate) < len(reference) {
		small, large = candidate, reference
	}
	for c := range small {
		if _, ok := large[c]; ok {
			inter++
		}
	}
	precision := float64(inter) / float64(len(candidate))
	recall := float64(inter) / float64(len(reference))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// CellSetJaccard returns |A∩B| / |A∪B|, with two empty sets similar (1).
func CellSetJaccard(a, b map[Cell]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	var inter int
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for c := range small {
		if _, ok := large[c]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
