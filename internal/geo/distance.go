package geo

import "math"

// Haversine returns the great-circle distance between p and q in meters.
// It is exact on the sphere and numerically stable for small distances.
func Haversine(p, q Point) float64 {
	lat1, lng1 := p.Radians()
	lat2, lng2 := q.Radians()

	sinDLat := math.Sin((lat2 - lat1) / 2)
	sinDLng := math.Sin((lng2 - lng1) / 2)
	h := sinDLat*sinDLat + math.Cos(lat1)*math.Cos(lat2)*sinDLng*sinDLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Equirectangular returns the fast planar approximation of the distance
// between p and q in meters. For city-scale separations (< ~50 km) the error
// versus Haversine is below 0.1 %, which is far under the noise amplitudes
// LPPMs add, so hot paths (POI matching, coverage grids) use this.
func Equirectangular(p, q Point) float64 {
	lat1, lng1 := p.Radians()
	lat2, lng2 := q.Radians()
	x := (lng2 - lng1) * math.Cos((lat1+lat2)/2)
	y := lat2 - lat1
	return EarthRadiusMeters * math.Hypot(x, y)
}

// PathLength returns the cumulative Haversine length of the polyline through
// pts, in meters. It returns 0 for fewer than two points.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Haversine(pts[i-1], pts[i])
	}
	return total
}

// MaxPairwiseDistance returns the diameter (largest pairwise Haversine
// distance) of the point set. It is O(n²) and intended for the small point
// clusters produced by stay-point detection.
func MaxPairwiseDistance(pts []Point) float64 {
	var max float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := Haversine(pts[i], pts[j]); d > max {
				max = d
			}
		}
	}
	return max
}
