package geo

import (
	"math"
	"testing"
)

func TestNewBBox(t *testing.T) {
	if _, ok := NewBBox(nil); ok {
		t.Error("NewBBox(nil) should report not ok")
	}
	pts := []Point{
		{Lat: 37.70, Lng: -122.52},
		{Lat: 37.82, Lng: -122.35},
		{Lat: 37.75, Lng: -122.40},
	}
	b, ok := NewBBox(pts)
	if !ok {
		t.Fatal("NewBBox should succeed")
	}
	want := BBox{MinLat: 37.70, MinLng: -122.52, MaxLat: 37.82, MaxLng: -122.35}
	if b != want {
		t.Errorf("bbox = %v, want %v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox should contain %v", p)
		}
	}
}

func TestBBoxContains(t *testing.T) {
	b := BBox{MinLat: 37.70, MinLng: -122.52, MaxLat: 37.82, MaxLng: -122.35}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", b.Center(), true},
		{"sw corner", Point{Lat: 37.70, Lng: -122.52}, true},
		{"north of box", Point{Lat: 37.83, Lng: -122.40}, false},
		{"west of box", Point{Lat: 37.75, Lng: -122.53}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestBBoxUnion(t *testing.T) {
	a := BBox{MinLat: 1, MinLng: 1, MaxLat: 2, MaxLng: 2}
	b := BBox{MinLat: 3, MinLng: 0, MaxLat: 4, MaxLng: 1.5}
	u := a.Union(b)
	want := BBox{MinLat: 1, MinLng: 0, MaxLat: 4, MaxLng: 2}
	if u != want {
		t.Errorf("union = %v, want %v", u, want)
	}
}

func TestBBoxDimensions(t *testing.T) {
	sw := sf
	ne := sf.Offset(3000, 2000)
	b := BBox{MinLat: sw.Lat, MinLng: sw.Lng, MaxLat: ne.Lat, MaxLng: ne.Lng}
	if w := b.WidthMeters(); math.Abs(w-3000) > 15 {
		t.Errorf("width = %v, want ~3000", w)
	}
	if h := b.HeightMeters(); math.Abs(h-2000) > 10 {
		t.Errorf("height = %v, want ~2000", h)
	}
}

func TestBBoxBuffer(t *testing.T) {
	b := BBox{MinLat: sf.Lat, MinLng: sf.Lng, MaxLat: sf.Lat, MaxLng: sf.Lng}
	bb := b.Buffer(500)
	if w := bb.WidthMeters(); math.Abs(w-1000) > 5 {
		t.Errorf("buffered width = %v, want ~1000", w)
	}
	if !bb.Contains(sf.Offset(400, 400)) {
		t.Error("buffered box should contain a point 400 m away")
	}
	if bb.Contains(sf.Offset(600, 0)) {
		t.Error("buffered box should not contain a point 600 m east")
	}
}

func TestBBoxClamp(t *testing.T) {
	b := BBox{MinLat: 10, MinLng: 20, MaxLat: 11, MaxLng: 21}
	tests := []struct{ in, want Point }{
		{Point{Lat: 10.5, Lng: 20.5}, Point{Lat: 10.5, Lng: 20.5}},
		{Point{Lat: 9, Lng: 20.5}, Point{Lat: 10, Lng: 20.5}},
		{Point{Lat: 12, Lng: 22}, Point{Lat: 11, Lng: 21}},
		{Point{Lat: 9, Lng: 19}, Point{Lat: 10, Lng: 20}},
	}
	for _, tt := range tests {
		if got := b.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
