package geo

import "math"

// Projection maps WGS-84 points to a local east/north tangent plane anchored
// at an origin, and back. Planar meters are what LPPM noise, coverage grids
// and regression features are expressed in; a single projection instance is
// shared by a whole dataset so that every module agrees on the frame.
//
// The projection is the azimuthal equirectangular approximation: exact at the
// origin and accurate to centimeters across a metropolitan area, which is the
// only scale this repository operates at.
type Projection struct {
	origin Point
	cosLat float64
}

// NewProjection returns a local tangent-plane projection anchored at origin.
func NewProjection(origin Point) *Projection {
	cos := math.Cos(origin.Lat * math.Pi / 180)
	if math.Abs(cos) < 1e-12 {
		cos = 1e-12
	}
	return &Projection{origin: origin, cosLat: cos}
}

// Origin returns the anchor point of the projection.
func (pr *Projection) Origin() Point { return pr.origin }

// ToPlane converts a geographic point to east/north meters from the origin.
func (pr *Projection) ToPlane(p Point) (east, north float64) {
	const degToRad = math.Pi / 180
	east = (p.Lng - pr.origin.Lng) * degToRad * EarthRadiusMeters * pr.cosLat
	north = (p.Lat - pr.origin.Lat) * degToRad * EarthRadiusMeters
	return east, north
}

// FromPlane converts east/north meters from the origin back to WGS-84.
func (pr *Projection) FromPlane(east, north float64) Point {
	const radToDeg = 180 / math.Pi
	lat := pr.origin.Lat + north/EarthRadiusMeters*radToDeg
	lng := pr.origin.Lng + east/(EarthRadiusMeters*pr.cosLat)*radToDeg
	return Point{Lat: lat, Lng: normalizeLng(lng)}
}
