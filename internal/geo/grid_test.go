package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with zero size should panic")
		}
	}()
	NewGrid(sf, 0)
}

func TestGridCellOfOrigin(t *testing.T) {
	g := NewGrid(sf, 150)
	if c := g.CellOf(sf); c != (Cell{0, 0}) {
		t.Errorf("origin cell = %v, want {0 0}", c)
	}
	if got := g.CellSize(); got != 150 {
		t.Errorf("CellSize = %v, want 150", got)
	}
	if g.Origin() != sf {
		t.Errorf("Origin = %v, want %v", g.Origin(), sf)
	}
}

func TestGridNeighboringCells(t *testing.T) {
	g := NewGrid(sf, 150)
	tests := []struct {
		east, north float64
		want        Cell
	}{
		{75, 75, Cell{0, 0}},
		{151, 0, Cell{1, 0}},
		{0, 151, Cell{0, 1}},
		{-1, 0, Cell{-1, 0}},
		{-151, -151, Cell{-2, -2}},
		{449, 299, Cell{2, 1}},
	}
	for _, tt := range tests {
		p := sf.Offset(tt.east, tt.north)
		if got := g.CellOf(p); got != tt.want {
			t.Errorf("CellOf(offset %v,%v) = %v, want %v", tt.east, tt.north, got, tt.want)
		}
	}
}

func TestGridCellCenterInsideCell(t *testing.T) {
	g := NewGrid(sf, 200)
	f := func(col, row int8) bool {
		c := Cell{Col: int(col), Row: int(row)}
		return g.CellOf(g.CellCenter(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridSnapToCellCenterIdempotent(t *testing.T) {
	g := NewGrid(sf, 150)
	p := sf.Offset(512, -77)
	s1 := g.SnapToCellCenter(p)
	s2 := g.SnapToCellCenter(s1)
	if d := Haversine(s1, s2); d > 1e-6 {
		t.Errorf("snap not idempotent, moved %v m", d)
	}
	// Snapped point is at most half a cell diagonal away.
	maxD := 150 * math.Sqrt2 / 2
	if d := Haversine(p, s1); d > maxD+0.01 {
		t.Errorf("snap moved point %v m, max %v", d, maxD)
	}
}

func TestGridCoverage(t *testing.T) {
	g := NewGrid(sf, 100)
	pts := []Point{
		sf.Offset(10, 10),
		sf.Offset(20, 20),  // same cell
		sf.Offset(150, 10), // east neighbor
		sf.Offset(10, 250), // two rows up
	}
	cov := g.Coverage(pts)
	if len(cov) != 3 {
		t.Fatalf("coverage size = %d, want 3", len(cov))
	}
	for _, want := range []Cell{{0, 0}, {1, 0}, {0, 2}} {
		if _, ok := cov[want]; !ok {
			t.Errorf("coverage missing cell %v", want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	tests := []struct {
		v, size float64
		want    int
	}{
		{0, 100, 0}, {99.9, 100, 0}, {100, 100, 1}, {-0.1, 100, -1},
		{-100, 100, -1}, {-100.1, 100, -2}, {250, 100, 2},
	}
	for _, tt := range tests {
		if got := floorDiv(tt.v, tt.size); got != tt.want {
			t.Errorf("floorDiv(%v, %v) = %d, want %d", tt.v, tt.size, got, tt.want)
		}
	}
}

func TestCellSetF1(t *testing.T) {
	mk := func(cells ...Cell) map[Cell]struct{} {
		m := make(map[Cell]struct{})
		for _, c := range cells {
			m[c] = struct{}{}
		}
		return m
	}
	tests := []struct {
		name     string
		ref, cnd map[Cell]struct{}
		want     float64
	}{
		{"both empty", mk(), mk(), 1},
		{"ref empty", mk(), mk(Cell{1, 1}), 0},
		{"cnd empty", mk(Cell{1, 1}), mk(), 0},
		{"identical", mk(Cell{0, 0}, Cell{1, 0}), mk(Cell{0, 0}, Cell{1, 0}), 1},
		{"disjoint", mk(Cell{0, 0}), mk(Cell{5, 5}), 0},
		{"half overlap", mk(Cell{0, 0}, Cell{1, 0}), mk(Cell{0, 0}, Cell{9, 9}), 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CellSetF1(tt.ref, tt.cnd); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("F1 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCellSetF1SymmetricProperty(t *testing.T) {
	f := func(aCells, bCells []uint8) bool {
		a := make(map[Cell]struct{})
		b := make(map[Cell]struct{})
		for _, v := range aCells {
			a[Cell{int(v % 16), int(v / 16)}] = struct{}{}
		}
		for _, v := range bCells {
			b[Cell{int(v % 16), int(v / 16)}] = struct{}{}
		}
		d := CellSetF1(a, b) - CellSetF1(b, a)
		j := CellSetJaccard(a, b) - CellSetJaccard(b, a)
		f1 := CellSetF1(a, b)
		return math.Abs(d) < 1e-12 && math.Abs(j) < 1e-12 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellSetJaccard(t *testing.T) {
	a := map[Cell]struct{}{{0, 0}: {}, {1, 0}: {}}
	b := map[Cell]struct{}{{0, 0}: {}, {2, 2}: {}, {3, 3}: {}}
	// intersection 1, union 4
	if got := CellSetJaccard(a, b); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.25", got)
	}
	if got := CellSetJaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(empty, empty) = %v, want 1", got)
	}
}
