// Package geo provides the geographic primitives used throughout the
// repository: WGS-84 points, great-circle and fast planar distances, local
// tangent-plane projections, bounding boxes and fixed-size spatial grids at
// city-block granularity.
//
// All distances are expressed in meters and all angles in decimal degrees
// unless stated otherwise. The package is purely computational and safe for
// concurrent use.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by every spherical
// computation in this package (IUGG mean radius R1).
const EarthRadiusMeters = 6371008.8

// Point is a geographic location in the WGS-84 datum.
type Point struct {
	// Lat is the latitude in decimal degrees, in [-90, +90].
	Lat float64
	// Lng is the longitude in decimal degrees, in [-180, +180].
	Lng float64
}

// String implements fmt.Stringer with 6 decimal places (~11 cm resolution).
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Valid reports whether the point lies within the WGS-84 coordinate domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 &&
		p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// IsZero reports whether the point is the zero value (0, 0), which this
// repository treats as "unset" (Null Island never appears in real traces).
func (p Point) IsZero() bool {
	return p.Lat == 0 && p.Lng == 0
}

// Radians returns the latitude and longitude converted to radians.
func (p Point) Radians() (lat, lng float64) {
	return p.Lat * math.Pi / 180, p.Lng * math.Pi / 180
}

// Destination returns the point reached by travelling the given distance (in
// meters) from p along the given initial bearing (degrees clockwise from
// north), following a great circle.
func (p Point) Destination(distanceMeters, bearingDeg float64) Point {
	lat1, lng1 := p.Radians()
	brg := bearingDeg * math.Pi / 180
	ang := distanceMeters / EarthRadiusMeters

	sinLat1, cosLat1 := math.Sincos(lat1)
	sinAng, cosAng := math.Sincos(ang)

	sinLat2 := sinLat1*cosAng + cosLat1*sinAng*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * sinAng * cosLat1
	x := cosAng - sinLat1*sinLat2
	lng2 := lng1 + math.Atan2(y, x)

	return Point{
		Lat: lat2 * 180 / math.Pi,
		Lng: normalizeLng(lng2 * 180 / math.Pi),
	}
}

// Offset returns the point displaced by the given east and north offsets in
// meters, using a local equirectangular approximation that is accurate to
// well under a meter for the sub-kilometer displacements LPPMs produce.
func (p Point) Offset(eastMeters, northMeters float64) Point {
	dLat := northMeters / EarthRadiusMeters * 180 / math.Pi
	cos := math.Cos(p.Lat * math.Pi / 180)
	if math.Abs(cos) < 1e-12 {
		cos = 1e-12 // polar singularity guard; traces never get here
	}
	dLng := eastMeters / (EarthRadiusMeters * cos) * 180 / math.Pi
	return Point{Lat: p.Lat + dLat, Lng: normalizeLng(p.Lng + dLng)}
}

// BearingTo returns the initial great-circle bearing from p to q in degrees
// clockwise from north, in [0, 360).
func (p Point) BearingTo(q Point) float64 {
	lat1, lng1 := p.Radians()
	lat2, lng2 := q.Radians()
	dLng := lng2 - lng1
	y := math.Sin(dLng) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLng)
	brg := math.Atan2(y, x) * 180 / math.Pi
	if brg < 0 {
		brg += 360
	}
	return brg
}

// Midpoint returns the great-circle midpoint between p and q.
func (p Point) Midpoint(q Point) Point {
	lat1, lng1 := p.Radians()
	lat2, lng2 := q.Radians()
	dLng := lng2 - lng1

	bx := math.Cos(lat2) * math.Cos(dLng)
	by := math.Cos(lat2) * math.Sin(dLng)
	lat3 := math.Atan2(
		math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by),
	)
	lng3 := lng1 + math.Atan2(by, math.Cos(lat1)+bx)

	return Point{
		Lat: lat3 * 180 / math.Pi,
		Lng: normalizeLng(lng3 * 180 / math.Pi),
	}
}

// normalizeLng wraps a longitude into [-180, +180].
func normalizeLng(lng float64) float64 {
	for lng > 180 {
		lng -= 360
	}
	for lng < -180 {
		lng += 360
	}
	return lng
}

// Centroid returns the arithmetic centroid of the points using the local
// planar approximation (adequate for clusters spanning a city). It returns
// the zero Point when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sumLat, sumLng float64
	for _, p := range pts {
		sumLat += p.Lat
		sumLng += p.Lng
	}
	n := float64(len(pts))
	return Point{Lat: sumLat / n, Lng: sumLng / n}
}
