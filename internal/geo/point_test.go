package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// sf is a reference point in downtown San Francisco used across tests.
var sf = Point{Lat: 37.7749, Lng: -122.4194}

func TestPointValid(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"downtown SF", sf, true},
		{"north pole", Point{Lat: 90, Lng: 0}, true},
		{"south pole", Point{Lat: -90, Lng: 180}, true},
		{"lat too big", Point{Lat: 90.0001, Lng: 0}, false},
		{"lat too small", Point{Lat: -91, Lng: 0}, false},
		{"lng too big", Point{Lat: 0, Lng: 180.5}, false},
		{"lng too small", Point{Lat: 0, Lng: -181}, false},
		{"NaN lat", Point{Lat: math.NaN(), Lng: 0}, false},
		{"NaN lng", Point{Lat: 0, Lng: math.NaN()}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPointIsZero(t *testing.T) {
	if !(Point{}).IsZero() {
		t.Error("zero Point should report IsZero")
	}
	if sf.IsZero() {
		t.Error("SF should not report IsZero")
	}
}

func TestPointString(t *testing.T) {
	got := sf.String()
	want := "(37.774900, -122.419400)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDestinationDistanceRoundTrip(t *testing.T) {
	// Travelling d meters in any direction must land d meters away.
	for _, d := range []float64{1, 10, 100, 1000, 10000} {
		for _, brg := range []float64{0, 45, 90, 135, 180, 270, 359} {
			q := sf.Destination(d, brg)
			got := Haversine(sf, q)
			if math.Abs(got-d) > d*1e-9+1e-9 {
				t.Errorf("Destination(%v, %v): distance = %v, want %v", d, brg, got, d)
			}
		}
	}
}

func TestDestinationBearing(t *testing.T) {
	q := sf.Destination(5000, 90)
	if q.Lng <= sf.Lng {
		t.Errorf("bearing 90 should move east: %v -> %v", sf, q)
	}
	q = sf.Destination(5000, 0)
	if q.Lat <= sf.Lat {
		t.Errorf("bearing 0 should move north: %v -> %v", sf, q)
	}
}

func TestOffsetMatchesDestination(t *testing.T) {
	// A 300 m east offset should land within a few centimeters of the
	// great-circle destination with bearing 90.
	q1 := sf.Offset(300, 0)
	q2 := sf.Destination(300, 90)
	if d := Haversine(q1, q2); d > 0.05 {
		t.Errorf("Offset east diverges from Destination by %v m", d)
	}
	q1 = sf.Offset(0, -450)
	q2 = sf.Destination(450, 180)
	if d := Haversine(q1, q2); d > 0.05 {
		t.Errorf("Offset south diverges from Destination by %v m", d)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	// The reverse offset evaluates the longitude scale at a slightly
	// different latitude, so the round trip is approximate at the mm level.
	q := sf.Offset(123.4, -56.7).Offset(-123.4, 56.7)
	if d := Haversine(sf, q); d > 0.005 {
		t.Errorf("Offset round trip moved point by %v m", d)
	}
}

func TestBearingToCardinal(t *testing.T) {
	north := sf.Offset(0, 1000)
	if b := sf.BearingTo(north); math.Abs(b) > 0.1 && math.Abs(b-360) > 0.1 {
		t.Errorf("bearing to north = %v, want ~0", b)
	}
	east := sf.Offset(1000, 0)
	if b := sf.BearingTo(east); math.Abs(b-90) > 0.5 {
		t.Errorf("bearing to east = %v, want ~90", b)
	}
}

func TestMidpoint(t *testing.T) {
	q := sf.Offset(2000, 0)
	m := sf.Midpoint(q)
	d1, d2 := Haversine(sf, m), Haversine(m, q)
	if math.Abs(d1-d2) > 0.01 {
		t.Errorf("midpoint not equidistant: %v vs %v", d1, d2)
	}
	if math.Abs(d1-1000) > 1 {
		t.Errorf("midpoint distance = %v, want ~1000", d1)
	}
}

func TestNormalizeLng(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, -180}, {181, -179}, {-181, 179}, {540, 180}, {359, -1},
	}
	for _, tt := range tests {
		if got := normalizeLng(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("normalizeLng(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	if !Centroid(nil).IsZero() {
		t.Error("centroid of empty set should be zero point")
	}
	pts := []Point{sf.Offset(100, 0), sf.Offset(-100, 0), sf.Offset(0, 100), sf.Offset(0, -100)}
	c := Centroid(pts)
	if d := Haversine(c, sf); d > 0.01 {
		t.Errorf("centroid off by %v m", d)
	}
}

func TestOffsetPropertyDistance(t *testing.T) {
	// Property: |Offset(e,n) - p| == hypot(e,n) within 0.1% at city scale.
	f := func(e16, n16 int16) bool {
		e, n := float64(e16)/4, float64(n16)/4 // up to ~8 km
		q := sf.Offset(e, n)
		want := math.Hypot(e, n)
		got := Haversine(sf, q)
		return math.Abs(got-want) <= want*1e-3+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
