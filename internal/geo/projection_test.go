package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProjectionOriginMapsToZero(t *testing.T) {
	pr := NewProjection(sf)
	e, n := pr.ToPlane(sf)
	if e != 0 || n != 0 {
		t.Errorf("origin maps to (%v, %v), want (0, 0)", e, n)
	}
	if pr.Origin() != sf {
		t.Errorf("Origin() = %v, want %v", pr.Origin(), sf)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(sf)
	f := func(e16, n16 int16) bool {
		east, north := float64(e16), float64(n16)
		p := pr.FromPlane(east, north)
		e2, n2 := pr.ToPlane(p)
		return math.Abs(e2-east) < 1e-6 && math.Abs(n2-north) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionDistancePreserved(t *testing.T) {
	pr := NewProjection(sf)
	p := sf.Offset(1500, -2300)
	e, n := pr.ToPlane(p)
	planar := math.Hypot(e, n)
	sphere := Haversine(sf, p)
	if math.Abs(planar-sphere) > sphere*2e-3 {
		t.Errorf("planar %v vs spherical %v", planar, sphere)
	}
}

func TestProjectionAgreesWithOffset(t *testing.T) {
	pr := NewProjection(sf)
	p := pr.FromPlane(250, -400)
	q := sf.Offset(250, -400)
	if d := Haversine(p, q); d > 0.01 {
		t.Errorf("FromPlane and Offset disagree by %v m", d)
	}
}
