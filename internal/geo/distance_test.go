package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64 // meters
		tol  float64
	}{
		{"same point", sf, sf, 0, 1e-9},
		{
			"SF to LA",
			sf, Point{Lat: 34.0522, Lng: -118.2437},
			559e3, 5e3, // ~559 km great-circle
		},
		{
			"one degree latitude",
			Point{Lat: 0, Lng: 0}, Point{Lat: 1, Lng: 0},
			111195, 50, // 2πR/360
		},
		{
			"one degree longitude at equator",
			Point{Lat: 0, Lng: 0}, Point{Lat: 0, Lng: 1},
			111195, 50,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.p, tt.q)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Haversine = %v, want %v ± %v", got, tt.want, tt.tol)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		p := Point{Lat: float64(a) / 400, Lng: float64(b) / 200}
		q := Point{Lat: float64(c) / 400, Lng: float64(d) / 200}
		return math.Abs(Haversine(p, q)-Haversine(q, p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(seeds [6]int16) bool {
		mk := func(i int) Point {
			return sf.Offset(float64(seeds[i])/2, float64(seeds[i+1])/2)
		}
		p, q, r := mk(0), mk(2), mk(4)
		return Haversine(p, r) <= Haversine(p, q)+Haversine(q, r)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquirectangularMatchesHaversineAtCityScale(t *testing.T) {
	f := func(e16, n16 int16) bool {
		q := sf.Offset(float64(e16), float64(n16)) // up to ~33 km
		h := Haversine(sf, q)
		e := Equirectangular(sf, q)
		return math.Abs(h-e) <= h*2e-3+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength(nil) = %v, want 0", got)
	}
	if got := PathLength([]Point{sf}); got != 0 {
		t.Errorf("PathLength(single) = %v, want 0", got)
	}
	pts := []Point{sf, sf.Offset(300, 0), sf.Offset(300, 400)}
	if got := PathLength(pts); math.Abs(got-700) > 1 {
		t.Errorf("PathLength = %v, want ~700", got)
	}
}

func TestMaxPairwiseDistance(t *testing.T) {
	if got := MaxPairwiseDistance(nil); got != 0 {
		t.Errorf("empty diameter = %v, want 0", got)
	}
	pts := []Point{sf, sf.Offset(100, 0), sf.Offset(-200, 0)}
	if got := MaxPairwiseDistance(pts); math.Abs(got-300) > 1 {
		t.Errorf("diameter = %v, want ~300", got)
	}
}
