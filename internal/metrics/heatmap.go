package metrics

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/geo"
	"repro/internal/trace"
)

// HeatmapSimilarityConfig tunes the heat-map utility metric.
type HeatmapSimilarityConfig struct {
	// CellSizeMeters is the heat-map resolution; 0 is invalid.
	CellSizeMeters float64
}

// DefaultHeatmapSimilarityConfig returns the experiment configuration:
// 200 m cells, the city-block scale.
func DefaultHeatmapSimilarityConfig() HeatmapSimilarityConfig {
	return HeatmapSimilarityConfig{CellSizeMeters: 200}
}

// Validate reports configuration errors.
func (c HeatmapSimilarityConfig) Validate() error {
	if c.CellSizeMeters <= 0 {
		return fmt.Errorf("metrics: CellSizeMeters must be positive, got %v", c.CellSizeMeters)
	}
	return nil
}

// HeatmapSimilarity is a distributional utility metric: it renders both
// traces as visit-frequency heat maps at city-block resolution and scores
// 1 − JSD(actual ‖ protected), where JSD is the Jensen–Shannon divergence
// normalized to [0, 1]. Where AreaCoverage asks "are the same blocks
// touched?", this asks "are they touched with the same intensity?" — the
// utility notion behind crowd-density products.
type HeatmapSimilarity struct {
	cfg HeatmapSimilarityConfig
}

// NewHeatmapSimilarity builds the metric, validating the configuration.
func NewHeatmapSimilarity(cfg HeatmapSimilarityConfig) (*HeatmapSimilarity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HeatmapSimilarity{cfg: cfg}, nil
}

// MustHeatmapSimilarity is NewHeatmapSimilarity panicking on error, for
// registry initialization.
func MustHeatmapSimilarity(cfg HeatmapSimilarityConfig) *HeatmapSimilarity {
	m, err := NewHeatmapSimilarity(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*HeatmapSimilarity) Name() string { return "heatmap_similarity" }

// Kind implements Metric.
func (*HeatmapSimilarity) Kind() Kind { return Utility }

// Evaluate implements Metric. Both heat maps share the grid anchored at the
// actual trace, so identical releases score exactly 1; an empty protected
// trace scores 0.
func (m *HeatmapSimilarity) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the grid and the actual trace's heat map
// are rendered once, the protected heat map is rebuilt in a reused map, and
// the divergence is accumulated in sorted cell order — a deterministic
// summation order, where iterating the maps directly would make the
// floating-point sum depend on Go's randomized map order.
func (m *HeatmapSimilarity) Prepare(actual *trace.Trace) PreparedMetric {
	p := &preparedHeatmapSimilarity{}
	if actual.Len() == 0 {
		p.emptyActual = true
		return p
	}
	first := actual.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	p.grid = geo.NewGrid(origin, m.cfg.CellSizeMeters)
	p.p = cellFrequencies(p.grid, actual)
	p.pCells = make([]geo.Cell, 0, len(p.p))
	for c := range p.p {
		p.pCells = append(p.pCells, c)
	}
	sortCells(p.pCells)
	return p
}

// preparedHeatmapSimilarity is HeatmapSimilarity with the actual heat map
// hoisted and the protected-side buffers reused.
type preparedHeatmapSimilarity struct {
	emptyActual bool
	grid        *geo.Grid
	p           map[geo.Cell]float64
	pCells      []geo.Cell           // actual cells, sorted
	q           map[geo.Cell]float64 // scratch, cleared per call
	qOnly       []geo.Cell           // scratch: protected-only cells
}

// Evaluate implements PreparedMetric.
func (p *preparedHeatmapSimilarity) Evaluate(protected *trace.Trace) (float64, error) {
	if p.emptyActual {
		return 0, fmt.Errorf("metrics: heat map of empty actual trace")
	}
	if protected.Len() == 0 {
		return 0, nil
	}
	p.q = cellFrequenciesInto(p.q, p.grid, protected)
	return 1 - jensenShannonCells(p.p, p.pCells, p.q, &p.qOnly), nil
}

// sortCells orders cells by column, then row. slices.SortFunc rather than
// the reflective sort.Slice: this runs on the prepared hot path, where the
// latter's closure and swapper would allocate per call.
func sortCells(cells []geo.Cell) {
	slices.SortFunc(cells, func(a, b geo.Cell) int {
		if c := cmp.Compare(a.Col, b.Col); c != 0 {
			return c
		}
		return cmp.Compare(a.Row, b.Row)
	})
}

// cellFrequencies returns the normalized visit histogram of the trace on
// the grid.
func cellFrequencies(grid *geo.Grid, t *trace.Trace) map[geo.Cell]float64 {
	return cellFrequenciesInto(nil, grid, t)
}

// cellFrequenciesInto is cellFrequencies writing into dst (allocated when
// nil, cleared otherwise) — one implementation serves both sides of the
// divergence, so the two histograms can never drift in normalization.
func cellFrequenciesInto(dst map[geo.Cell]float64, grid *geo.Grid, t *trace.Trace) map[geo.Cell]float64 {
	if dst == nil {
		dst = make(map[geo.Cell]float64)
	} else {
		clear(dst)
	}
	for _, rec := range t.Records {
		dst[grid.CellOf(rec.Point)]++
	}
	n := float64(t.Len())
	for c := range dst {
		dst[c] /= n
	}
	return dst
}

// JensenShannon returns the Jensen–Shannon divergence between two discrete
// distributions given as sparse maps, normalized to [0, 1] (base-2). Keys
// absent from a map have probability zero; the function is symmetric (up
// to float rounding) and returns 0 iff the distributions are identical.
func JensenShannon(p, q map[geo.Cell]float64) float64 {
	pCells := make([]geo.Cell, 0, len(p))
	for c := range p {
		pCells = append(pCells, c)
	}
	sortCells(pCells)
	var qOnly []geo.Cell
	return jensenShannonCells(p, pCells, q, &qOnly)
}

// jensenShannonCells is the one JSD implementation behind JensenShannon and
// the prepared heat-map metric: terms accumulate over pCells (p's cells,
// pre-sorted by the caller) and then over q-only cells — collected into
// *qOnlyBuf and sorted — so the floating-point sum never depends on Go's
// randomized map order. The q-only scratch is grown in place through the
// pointer (nothing for the caller to discard; the prepared metric reuses
// it across calls).
func jensenShannonCells(p map[geo.Cell]float64, pCells []geo.Cell, q map[geo.Cell]float64, qOnlyBuf *[]geo.Cell) float64 {
	var js float64
	for _, c := range pCells {
		pi, qi := p[c], q[c]
		mi := (pi + qi) / 2
		if pi > 0 {
			js += pi * math.Log2(pi/mi) / 2
		}
		if qi > 0 {
			js += qi * math.Log2(qi/mi) / 2
		}
	}
	qOnly := (*qOnlyBuf)[:0]
	for c := range q {
		if _, shared := p[c]; !shared {
			qOnly = append(qOnly, c)
		}
	}
	sortCells(qOnly)
	for _, c := range qOnly {
		qi := q[c]
		mi := qi / 2
		js += qi * math.Log2(qi/mi) / 2
	}
	*qOnlyBuf = qOnly
	// Clamp rounding excursions outside [0, 1].
	return math.Max(0, math.Min(1, js))
}
