package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// HeatmapSimilarityConfig tunes the heat-map utility metric.
type HeatmapSimilarityConfig struct {
	// CellSizeMeters is the heat-map resolution; 0 is invalid.
	CellSizeMeters float64
}

// DefaultHeatmapSimilarityConfig returns the experiment configuration:
// 200 m cells, the city-block scale.
func DefaultHeatmapSimilarityConfig() HeatmapSimilarityConfig {
	return HeatmapSimilarityConfig{CellSizeMeters: 200}
}

// Validate reports configuration errors.
func (c HeatmapSimilarityConfig) Validate() error {
	if c.CellSizeMeters <= 0 {
		return fmt.Errorf("metrics: CellSizeMeters must be positive, got %v", c.CellSizeMeters)
	}
	return nil
}

// HeatmapSimilarity is a distributional utility metric: it renders both
// traces as visit-frequency heat maps at city-block resolution and scores
// 1 − JSD(actual ‖ protected), where JSD is the Jensen–Shannon divergence
// normalized to [0, 1]. Where AreaCoverage asks "are the same blocks
// touched?", this asks "are they touched with the same intensity?" — the
// utility notion behind crowd-density products.
type HeatmapSimilarity struct {
	cfg HeatmapSimilarityConfig
}

// NewHeatmapSimilarity builds the metric, validating the configuration.
func NewHeatmapSimilarity(cfg HeatmapSimilarityConfig) (*HeatmapSimilarity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HeatmapSimilarity{cfg: cfg}, nil
}

// MustHeatmapSimilarity is NewHeatmapSimilarity panicking on error, for
// registry initialization.
func MustHeatmapSimilarity(cfg HeatmapSimilarityConfig) *HeatmapSimilarity {
	m, err := NewHeatmapSimilarity(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*HeatmapSimilarity) Name() string { return "heatmap_similarity" }

// Kind implements Metric.
func (*HeatmapSimilarity) Kind() Kind { return Utility }

// Evaluate implements Metric. Both heat maps share the grid anchored at the
// actual trace, so identical releases score exactly 1; an empty protected
// trace scores 0.
func (m *HeatmapSimilarity) Evaluate(actual, protected *trace.Trace) (float64, error) {
	if actual.Len() == 0 {
		return 0, fmt.Errorf("metrics: heat map of empty actual trace")
	}
	if protected.Len() == 0 {
		return 0, nil
	}
	first := actual.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, m.cfg.CellSizeMeters)
	p := cellFrequencies(grid, actual)
	q := cellFrequencies(grid, protected)
	return 1 - JensenShannon(p, q), nil
}

// cellFrequencies returns the normalized visit histogram of the trace on
// the grid.
func cellFrequencies(grid *geo.Grid, t *trace.Trace) map[geo.Cell]float64 {
	freq := make(map[geo.Cell]float64)
	for _, rec := range t.Records {
		freq[grid.CellOf(rec.Point)]++
	}
	n := float64(t.Len())
	for c := range freq {
		freq[c] /= n
	}
	return freq
}

// JensenShannon returns the Jensen–Shannon divergence between two discrete
// distributions given as sparse maps, normalized to [0, 1] (base-2). Keys
// absent from a map have probability zero; the function is symmetric and
// returns 0 iff the distributions are identical.
func JensenShannon(p, q map[geo.Cell]float64) float64 {
	var js float64
	seen := make(map[geo.Cell]struct{}, len(p)+len(q))
	for _, dist := range []map[geo.Cell]float64{p, q} {
		for c := range dist {
			if _, done := seen[c]; done {
				continue
			}
			seen[c] = struct{}{}
			pi, qi := p[c], q[c]
			mi := (pi + qi) / 2
			if pi > 0 {
				js += pi * math.Log2(pi/mi) / 2
			}
			if qi > 0 {
				js += qi * math.Log2(qi/mi) / 2
			}
		}
	}
	// Clamp rounding excursions outside [0, 1].
	return math.Max(0, math.Min(1, js))
}
