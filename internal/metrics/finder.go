package metrics

import (
	"fmt"

	"repro/internal/poi"
	"repro/internal/trace"
)

// FinderRetrieval is POIRetrieval generalized over the extraction
// algorithm: any poi.Finder (the paper's sequential extractor, the
// density-based one, or a custom adversary) scores the fraction of actual
// POIs still retrievable from the protected release. Swapping the finder
// changes the threat model without touching the rest of the pipeline —
// the dummy-injection experiments show why that matters: releases that
// blind the sequential extractor are transparent to the density one.
type FinderRetrieval struct {
	name              string
	finder            poi.Finder
	matchRadiusMeters float64
}

// NewFinderRetrieval builds the metric. name must be unique within a
// registry; the match radius must be positive.
func NewFinderRetrieval(name string, finder poi.Finder, matchRadiusMeters float64) (*FinderRetrieval, error) {
	if name == "" {
		return nil, fmt.Errorf("metrics: finder retrieval needs a name")
	}
	if finder == nil {
		return nil, fmt.Errorf("metrics: finder retrieval needs a finder")
	}
	if matchRadiusMeters <= 0 {
		return nil, fmt.Errorf("metrics: match radius must be positive, got %v", matchRadiusMeters)
	}
	return &FinderRetrieval{name: name, finder: finder, matchRadiusMeters: matchRadiusMeters}, nil
}

// Name implements Metric.
func (m *FinderRetrieval) Name() string { return m.name }

// Kind implements Metric.
func (*FinderRetrieval) Kind() Kind { return Privacy }

// Evaluate implements Metric.
func (m *FinderRetrieval) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the actual trace's POIs are extracted
// once. The protected-side extraction still goes through the generic Finder
// interface (finders supply their own working memory, if any).
func (m *FinderRetrieval) Prepare(actual *trace.Trace) PreparedMetric {
	return &preparedFinderRetrieval{
		radius:     m.matchRadiusMeters,
		finder:     m.finder,
		actualPOIs: m.finder.POIs(actual),
	}
}

// preparedFinderRetrieval is FinderRetrieval with the actual extraction
// hoisted.
type preparedFinderRetrieval struct {
	radius     float64
	finder     poi.Finder
	actualPOIs []poi.POI
}

// Evaluate implements PreparedMetric.
func (p *preparedFinderRetrieval) Evaluate(protected *trace.Trace) (float64, error) {
	return poi.RetrievalRate(p.actualPOIs, p.finder.POIs(protected), p.radius)
}

var _ Preparable = (*FinderRetrieval)(nil)
