package metrics

import (
	"fmt"

	"repro/internal/poi"
	"repro/internal/trace"
)

// POIRetrievalConfig tunes the paper's privacy metric.
type POIRetrievalConfig struct {
	// Extractor configures stay-point/POI extraction, applied identically
	// to the actual and the protected trace.
	Extractor poi.ExtractorConfig
	// MatchRadiusMeters is how close a protected-data POI must be to an
	// actual POI to count as retrieving it.
	MatchRadiusMeters float64
}

// DefaultPOIRetrievalConfig returns the configuration used by the
// reproduction experiments (200 m stops of ≥ 15 min, matched at 200 m).
func DefaultPOIRetrievalConfig() POIRetrievalConfig {
	return POIRetrievalConfig{
		Extractor:         poi.DefaultExtractorConfig(),
		MatchRadiusMeters: 200,
	}
}

// POIRetrieval is the paper's privacy metric: the proportion of the user's
// actual POIs that can still be retrieved from the protected trace by
// running the same POI extraction on it. 0 means no POI leaks; 1 means all
// do. The paper's privacy objective is "retrieval of at most 10 % of the
// POIs", i.e. POIRetrieval ≤ 0.1.
type POIRetrieval struct {
	cfg       POIRetrievalConfig
	extractor *poi.Extractor
}

// NewPOIRetrieval builds the metric, validating the configuration.
func NewPOIRetrieval(cfg POIRetrievalConfig) (*POIRetrieval, error) {
	if cfg.MatchRadiusMeters <= 0 {
		return nil, fmt.Errorf("metrics: MatchRadiusMeters must be positive, got %v", cfg.MatchRadiusMeters)
	}
	ex, err := poi.NewExtractor(cfg.Extractor)
	if err != nil {
		return nil, err
	}
	return &POIRetrieval{cfg: cfg, extractor: ex}, nil
}

// MustPOIRetrieval is NewPOIRetrieval that panics on configuration errors;
// for use with known-good literal configs.
func MustPOIRetrieval(cfg POIRetrievalConfig) *POIRetrieval {
	m, err := NewPOIRetrieval(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*POIRetrieval) Name() string { return "poi_retrieval" }

// Kind implements Metric.
func (*POIRetrieval) Kind() Kind { return Privacy }

// Evaluate implements Metric. It is the prepared path run once: Prepare
// then Evaluate, so the two paths cannot diverge.
func (m *POIRetrieval) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the actual trace's POIs are extracted once
// and the protected-side extraction reuses scratch buffers, making the
// steady-state Evaluate allocation-free.
func (m *POIRetrieval) Prepare(actual *trace.Trace) PreparedMetric {
	return &preparedPOIRetrieval{
		radius:     m.cfg.MatchRadiusMeters,
		extractor:  m.extractor,
		actualPOIs: m.extractor.POIs(actual),
	}
}

// preparedPOIRetrieval is POIRetrieval with the actual-side extraction
// hoisted and the protected-side extraction running through reusable
// scratch.
type preparedPOIRetrieval struct {
	radius     float64
	extractor  *poi.Extractor
	actualPOIs []poi.POI
	scratch    poi.Scratch
}

// Evaluate implements PreparedMetric.
func (p *preparedPOIRetrieval) Evaluate(protected *trace.Trace) (float64, error) {
	candidate := p.extractor.POIsScratch(&p.scratch, protected)
	return poi.RetrievalRate(p.actualPOIs, candidate, p.radius)
}

// ActualPOIs exposes the extraction half of the metric, used by reports and
// the examples to show a user's ground truth.
func (m *POIRetrieval) ActualPOIs(t *trace.Trace) []poi.POI { return m.extractor.POIs(t) }
