package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// RangeQueryConfig tunes the range-query utility metric.
type RangeQueryConfig struct {
	// Queries is the number of range queries issued per user.
	Queries int
	// RadiusMeters is the query radius.
	RadiusMeters float64
	// Seed makes the query workload deterministic. Queries are anchored
	// on the *actual* trace so both counts answer the same question.
	Seed int64
}

// DefaultRangeQueryConfig returns the experiment configuration: 50 queries
// of 500 m radius.
func DefaultRangeQueryConfig() RangeQueryConfig {
	return RangeQueryConfig{Queries: 50, RadiusMeters: 500, Seed: 1}
}

// Validate reports configuration errors.
func (c RangeQueryConfig) Validate() error {
	if c.Queries <= 0 {
		return fmt.Errorf("metrics: Queries must be positive, got %d", c.Queries)
	}
	if c.RadiusMeters <= 0 {
		return fmt.Errorf("metrics: RadiusMeters must be positive, got %v", c.RadiusMeters)
	}
	return nil
}

// RangeQueryAccuracy is an analyst-level utility metric: it issues a fixed
// workload of spatial range queries ("how many observations within r of
// q?") against both the actual and the protected trace and scores the mean
// relative count error. This is the utility notion of aggregate analytics
// (traffic density, demand estimation) as opposed to the per-user service
// quality of AreaCoverage. Score 1 = every query answered exactly; 0 =
// every count off by 100 % or more.
type RangeQueryAccuracy struct {
	cfg RangeQueryConfig
}

// NewRangeQueryAccuracy builds the metric, validating the configuration.
func NewRangeQueryAccuracy(cfg RangeQueryConfig) (*RangeQueryAccuracy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RangeQueryAccuracy{cfg: cfg}, nil
}

// MustRangeQueryAccuracy is NewRangeQueryAccuracy panicking on error, for
// registry initialization.
func MustRangeQueryAccuracy(cfg RangeQueryConfig) *RangeQueryAccuracy {
	m, err := NewRangeQueryAccuracy(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*RangeQueryAccuracy) Name() string { return "range_query_accuracy" }

// Kind implements Metric.
func (*RangeQueryAccuracy) Kind() Kind { return Utility }

// Evaluate implements Metric. Query centers are drawn deterministically
// (per-user seed) from the buffered bounding box of the actual trace, so
// the workload covers both visited and near-miss areas.
func (m *RangeQueryAccuracy) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable. The whole query workload — centers and
// actual-side counts, with zero-hit queries already skipped — is a pure
// function of the actual trace, so it is materialized once; Evaluate only
// counts protected records per retained query.
func (m *RangeQueryAccuracy) Prepare(actual *trace.Trace) PreparedMetric {
	p := &preparedRangeQuery{radius: m.cfg.RadiusMeters}
	if actual.Len() == 0 {
		p.emptyActual = true
		return p
	}
	box, ok := geo.NewBBox(actual.Points())
	if !ok {
		// Unreachable behind the Len check above; fail safe as "empty".
		p.emptyActual = true
		return p
	}
	area := box.Buffer(m.cfg.RadiusMeters)
	r := rng.New(m.cfg.Seed).Named(actual.User)
	actPts := actual.Points()
	for q := 0; q < m.cfg.Queries; q++ {
		center := geo.Point{
			Lat: area.MinLat + r.Float64()*(area.MaxLat-area.MinLat),
			Lng: area.MinLng + r.Float64()*(area.MaxLng-area.MinLng),
		}
		actCount := countWithin(actPts, center, m.cfg.RadiusMeters)
		if actCount == 0 {
			// Empty queries carry no analytic signal; redraw-free
			// skip keeps the workload deterministic.
			continue
		}
		p.queries = append(p.queries, rangeQuery{center: center, actCount: actCount})
	}
	return p
}

// rangeQuery is one retained query of the prepared workload.
type rangeQuery struct {
	center   geo.Point
	actCount int
}

// preparedRangeQuery is RangeQueryAccuracy with the query workload and
// actual-side counts hoisted.
type preparedRangeQuery struct {
	radius      float64
	emptyActual bool
	queries     []rangeQuery
}

// Evaluate implements PreparedMetric.
func (p *preparedRangeQuery) Evaluate(protected *trace.Trace) (float64, error) {
	if p.emptyActual {
		return 0, fmt.Errorf("metrics: range queries on empty actual trace")
	}
	if len(p.queries) == 0 {
		// No query hit the data (tiny traces): treat the release as
		// uninformative rather than erroring the sweep.
		return 0, nil
	}
	var errSum float64
	for _, q := range p.queries {
		proCount := countWithinRecords(protected.Records, q.center, p.radius)
		relErr := math.Abs(float64(proCount)-float64(q.actCount)) / float64(q.actCount)
		errSum += math.Min(relErr, 1)
	}
	return 1 - errSum/float64(len(p.queries)), nil
}

// countWithin counts the points within radius of center.
func countWithin(pts []geo.Point, center geo.Point, radius float64) int {
	n := 0
	for _, p := range pts {
		if geo.Equirectangular(p, center) <= radius {
			n++
		}
	}
	return n
}

// countWithinRecords is countWithin over a record slice, avoiding the
// point-slice materialization on the hot path.
func countWithinRecords(recs []trace.Record, center geo.Point, radius float64) int {
	n := 0
	for _, r := range recs {
		if geo.Equirectangular(r.Point, center) <= radius {
			n++
		}
	}
	return n
}
