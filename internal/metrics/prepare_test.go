package metrics

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// prepTestTrace builds a trace with two long stops and a noisy excursion —
// enough structure for every metric (POIs, coverage, heat map, alignment).
func prepTestTrace(t *testing.T, user string, n int, seed int64) *trace.Trace {
	t.Helper()
	r := rng.New(seed)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	t0 := time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		var p geo.Point
		switch {
		case i < n/3: // stop one
			p = base.Offset(r.Float64()*30, r.Float64()*30)
		case i < 2*n/3: // excursion
			p = base.Offset(float64(i)*80, r.NormFloat64()*60)
		default: // stop two
			p = base.Offset(float64(n)*55, r.Float64()*30)
		}
		recs = append(recs, trace.Record{User: user, Time: t0.Add(time.Duration(i) * time.Minute), Point: p})
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// jitter returns a protected variant of tr: every point displaced
// deterministically, optionally keeping only every keepEvery-th record.
func jitter(t *testing.T, tr *trace.Trace, meters float64, keepEvery int, seed int64) *trace.Trace {
	t.Helper()
	r := rng.New(seed)
	var recs []trace.Record
	for i, rec := range tr.Records {
		if keepEvery > 1 && i%keepEvery != 0 {
			continue
		}
		rec.Point = rec.Point.Offset(r.NormFloat64()*meters, r.NormFloat64()*meters)
		recs = append(recs, rec)
	}
	out, err := trace.NewTrace(tr.User, recs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPreparedMatchesUnprepared scores a sequence of protected releases —
// deliberately of varying sizes, ending smaller than it started, so stale
// scratch would surface — through ONE prepared evaluator per metric and
// checks every (value, error) pair against a fresh unprepared evaluation.
func TestPreparedMatchesUnprepared(t *testing.T) {
	actual := prepTestTrace(t, "u1", 120, 1)
	empty := &trace.Trace{User: "u1"}
	protecteds := []*trace.Trace{
		jitter(t, actual, 40, 1, 2),
		jitter(t, actual, 400, 1, 3),
		jitter(t, actual, 40, 3, 4), // shorter: exercises buffer shrink
		actual,                      // identical release
		empty,
	}
	reg := NewRegistry()
	for _, name := range reg.Names() {
		m, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if _, ok := m.(Preparable); !ok {
				t.Fatalf("built-in metric %s should be Preparable", name)
			}
			prep := Prepare(m, actual)
			for i, p := range protecteds {
				want, wantErr := m.Evaluate(actual, p)
				got, gotErr := prep.Evaluate(p)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("release %d: error mismatch: unprepared %v, prepared %v", i, wantErr, gotErr)
				}
				if wantErr != nil && wantErr.Error() != gotErr.Error() {
					t.Fatalf("release %d: error text: %q vs %q", i, wantErr, gotErr)
				}
				if got != want {
					t.Fatalf("release %d: prepared %v != unprepared %v", i, got, want)
				}
			}
		})
	}
}

// TestPreparedEmptyActual checks the prepared path reproduces the
// unprepared path's empty-actual semantics (value or error) exactly.
func TestPreparedEmptyActual(t *testing.T) {
	emptyActual := &trace.Trace{User: "u1"}
	protected := prepTestTrace(t, "u1", 30, 9)
	reg := NewRegistry()
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		t.Run(name, func(t *testing.T) {
			for _, p := range []*trace.Trace{protected, &trace.Trace{User: "u1"}} {
				want, wantErr := m.Evaluate(emptyActual, p)
				got, gotErr := Prepare(m, emptyActual).Evaluate(p)
				if (wantErr == nil) != (gotErr == nil) || got != want {
					t.Fatalf("empty actual: (%v, %v) vs (%v, %v)", want, wantErr, got, gotErr)
				}
			}
		})
	}
}

// plainMetric is a deliberately non-Preparable metric for the fallback
// path.
type plainMetric struct{}

func (plainMetric) Name() string { return "plain" }
func (plainMetric) Kind() Kind   { return Utility }
func (plainMetric) Evaluate(actual, protected *trace.Trace) (float64, error) {
	if actual.Len() == 0 {
		return 0, fmt.Errorf("empty")
	}
	return float64(protected.Len()) / float64(actual.Len()), nil
}

// TestPrepareGenericFallback routes a non-Preparable metric through the
// generic wrapper.
func TestPrepareGenericFallback(t *testing.T) {
	actual := prepTestTrace(t, "u1", 20, 5)
	protected := jitter(t, actual, 10, 2, 6)
	prep := Prepare(plainMetric{}, actual)
	if _, ok := prep.(*genericPrepared); !ok {
		t.Fatalf("expected generic fallback, got %T", prep)
	}
	got, err := prep.Evaluate(protected)
	want, _ := plainMetric{}.Evaluate(actual, protected)
	if err != nil || got != want {
		t.Fatalf("fallback: got (%v, %v), want (%v, nil)", got, err, want)
	}
}

// TestPairwiseScratchMatchesOneShot runs DTW and Fréchet through one reused
// scratch over pairs of varying (including shrinking) sizes and compares
// with the allocating entry points.
func TestPairwiseScratchMatchesOneShot(t *testing.T) {
	var s PairwiseScratch
	r := rng.New(42)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	seq := func(n int) []geo.Point {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = base.Offset(float64(i)*15+r.NormFloat64()*40, r.NormFloat64()*40)
		}
		return pts
	}
	for _, sizes := range [][2]int{{50, 60}, {200, 180}, {30, 10}, {7, 7}, {1, 5}} {
		a, b := seq(sizes[0]), seq(sizes[1])
		wantD, err1 := DTWMeanDistance(a, b, 0.1)
		gotD, err2 := s.DTWMeanDistance(a, b, 0.1)
		if err1 != nil || err2 != nil || wantD != gotD {
			t.Fatalf("DTW %v: scratch %v (%v) vs one-shot %v (%v)", sizes, gotD, err2, wantD, err1)
		}
		wantF, err1 := FrechetDistance(a, b)
		gotF, err2 := s.FrechetDistance(a, b)
		if err1 != nil || err2 != nil || wantF != gotF {
			t.Fatalf("Fréchet %v: scratch %v (%v) vs one-shot %v (%v)", sizes, gotF, err2, wantF, err1)
		}
	}
}
