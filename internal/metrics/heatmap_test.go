package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

func clusteredTrace(t *testing.T, user string, centers []geo.Point, perCenter int) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	at := mt0
	for _, c := range centers {
		for i := 0; i < perCenter; i++ {
			recs = append(recs, trace.Record{User: user, Time: at, Point: c.Offset(float64(i%5)*10, 0)})
			at = at.Add(time.Minute)
		}
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHeatmapSimilarityIdentity(t *testing.T) {
	m := MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig())
	tr := clusteredTrace(t, "u1", []geo.Point{mBase, mBase2}, 30)
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("identity heat-map similarity = %v, want 1", v)
	}
}

func TestHeatmapSimilarityDisjointIsZero(t *testing.T) {
	m := MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig())
	a := clusteredTrace(t, "u1", []geo.Point{mBase}, 30)
	b := clusteredTrace(t, "u1", []geo.Point{mBase.Offset(50000, 50000)}, 30)
	v, err := m.Evaluate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Errorf("disjoint heat maps similarity = %v, want 0", v)
	}
}

func TestHeatmapSimilarityIntensityMatters(t *testing.T) {
	// Same cells visited, different intensity split: similarity must be
	// strictly between 0 and 1 — this is what AreaCoverage cannot see.
	m := MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig())
	even := clusteredTrace(t, "u1", []geo.Point{mBase, mBase2}, 30)
	var recs []trace.Record
	at := mt0
	for i := 0; i < 55; i++ {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: mBase.Offset(float64(i%5)*10, 0)})
		at = at.Add(time.Minute)
	}
	for i := 0; i < 5; i++ {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: mBase2.Offset(float64(i%5)*10, 0)})
		at = at.Add(time.Minute)
	}
	skewed, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Evaluate(even, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0.1 || v >= 0.99 {
		t.Errorf("intensity-skewed similarity = %v, want strictly inside (0.1, 0.99)", v)
	}
}

func TestHeatmapSimilarityEmptyCases(t *testing.T) {
	m := MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig())
	tr := clusteredTrace(t, "u1", []geo.Point{mBase}, 10)
	v, err := m.Evaluate(tr, &trace.Trace{User: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("empty protected = %v, want 0", v)
	}
	if _, err := m.Evaluate(&trace.Trace{User: "u1"}, tr); err == nil {
		t.Error("empty actual should error")
	}
	if _, err := NewHeatmapSimilarity(HeatmapSimilarityConfig{}); err == nil {
		t.Error("zero cell size should fail validation")
	}
}

func TestJensenShannonProperties(t *testing.T) {
	r := rng.New(4)
	randDist := func(cells int) map[geo.Cell]float64 {
		d := make(map[geo.Cell]float64, cells)
		var sum float64
		for i := 0; i < cells; i++ {
			v := r.Float64()
			d[geo.Cell{Col: i, Row: r.Intn(3)}] += v
			sum += v
		}
		for c := range d {
			d[c] /= sum
		}
		return d
	}
	for trial := 0; trial < 30; trial++ {
		p := randDist(1 + r.Intn(10))
		q := randDist(1 + r.Intn(10))
		pq := JensenShannon(p, q)
		qp := JensenShannon(q, p)
		if math.Abs(pq-qp) > 1e-12 {
			t.Fatalf("JSD not symmetric: %v vs %v", pq, qp)
		}
		if pq < 0 || pq > 1 {
			t.Fatalf("JSD out of range: %v", pq)
		}
		if self := JensenShannon(p, p); self > 1e-12 {
			t.Fatalf("JSD(p, p) = %v, want 0", self)
		}
	}
}
