package metrics

import (
	"testing"
	"time"

	"repro/internal/poi"
	"repro/internal/trace"
)

// dwellTrace parks at mBase long enough to form a POI under both
// extractors.
func dwellTrace(t *testing.T, minutes int) *trace.Trace {
	t.Helper()
	recs := make([]trace.Record, minutes)
	for i := range recs {
		recs[i] = trace.Record{User: "u1", Time: mt0.Add(time.Duration(i) * time.Minute), Point: mBase.Offset(float64(i%3)*10, 0)}
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFinderRetrievalWithDensityFinder(t *testing.T) {
	den, err := poi.NewDensityExtractor(poi.DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFinderRetrieval("density_poi_retrieval", den, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != Privacy {
		t.Error("finder retrieval must be a privacy metric")
	}
	tr := dwellTrace(t, 45)
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("identity release retrieval = %v, want 1", v)
	}
	// A faraway release retrieves nothing.
	far := tr.Clone()
	for i := range far.Records {
		far.Records[i].Point = far.Records[i].Point.Offset(50000, 0)
	}
	v, err = m.Evaluate(tr, far)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("displaced release retrieval = %v, want 0", v)
	}
}

func TestNewFinderRetrievalValidation(t *testing.T) {
	den, err := poi.NewDensityExtractor(poi.DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFinderRetrieval("", den, 200); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewFinderRetrieval("x", nil, 200); err == nil {
		t.Error("nil finder should fail")
	}
	if _, err := NewFinderRetrieval("x", den, 0); err == nil {
		t.Error("non-positive radius should fail")
	}
}
