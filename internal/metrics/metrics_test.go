package metrics

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	anchor = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// mkStopAndGo builds a trace with a 30-minute stop at the anchor followed by
// a 3 km excursion.
func mkStopAndGo(t *testing.T, user string) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	for i := 0; i < 30; i++ {
		recs = append(recs, trace.Record{
			User: user, Time: t0.Add(time.Duration(i) * time.Minute),
			Point: anchor.Offset(float64(i%4)*3, float64(i%3)*3),
		})
	}
	for i := 0; i < 30; i++ {
		recs = append(recs, trace.Record{
			User: user, Time: t0.Add(time.Duration(30+i) * time.Minute),
			Point: anchor.Offset(float64(i+1)*100, 0),
		})
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// shifted returns the trace with every point moved east by the given meters.
func shifted(t *testing.T, tr *trace.Trace, east float64) *trace.Trace {
	t.Helper()
	out := tr.Clone()
	for i := range out.Records {
		out.Records[i].Point = out.Records[i].Point.Offset(east, 0)
	}
	return out
}

func TestKindString(t *testing.T) {
	if Privacy.String() != "privacy" || Utility.String() != "utility" {
		t.Error("Kind.String broken")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{"area_coverage", "coverage_entropy_gain", "heatmap_similarity", "mean_displacement", "poi_retrieval", "range_query_accuracy", "trajectory_similarity"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	m, err := r.Get("poi_retrieval")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != Privacy {
		t.Error("poi_retrieval should be a privacy metric")
	}
	u, err := r.Get("area_coverage")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind() != Utility {
		t.Error("area_coverage should be a utility metric")
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown metric should error")
	}
	if err := r.Register(MeanDisplacement{}); err == nil {
		t.Error("duplicate registration should error")
	}
}

func TestPOIRetrievalIdenticalTraces(t *testing.T) {
	m := MustPOIRetrieval(DefaultPOIRetrievalConfig())
	tr := mkStopAndGo(t, "u")
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("identical traces retrieval = %v, want 1", v)
	}
	if len(m.ActualPOIs(tr)) != 1 {
		t.Errorf("ActualPOIs = %d, want 1", len(m.ActualPOIs(tr)))
	}
}

func TestPOIRetrievalDestroyedByLargeShift(t *testing.T) {
	m := MustPOIRetrieval(DefaultPOIRetrievalConfig())
	tr := mkStopAndGo(t, "u")
	// A rigid 5 km shift keeps the stop structure but moves every POI far
	// away from the actual one.
	v, err := m.Evaluate(tr, shifted(t, tr, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("far-shifted retrieval = %v, want 0", v)
	}
}

func TestPOIRetrievalNoPOIsMeansNoLeak(t *testing.T) {
	m := MustPOIRetrieval(DefaultPOIRetrievalConfig())
	// Pure movement, no stops.
	var recs []trace.Record
	for i := 0; i < 40; i++ {
		recs = append(recs, trace.Record{
			User: "u", Time: t0.Add(time.Duration(i) * time.Minute),
			Point: anchor.Offset(float64(i)*300, 0),
		})
	}
	tr, err := trace.NewTrace("u", recs)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("no-POI retrieval = %v, want 0", v)
	}
}

func TestNewPOIRetrievalValidation(t *testing.T) {
	cfg := DefaultPOIRetrievalConfig()
	cfg.MatchRadiusMeters = 0
	if _, err := NewPOIRetrieval(cfg); err == nil {
		t.Error("zero match radius should error")
	}
	cfg = DefaultPOIRetrievalConfig()
	cfg.Extractor.MaxDiameterMeters = -1
	if _, err := NewPOIRetrieval(cfg); err == nil {
		t.Error("bad extractor config should error")
	}
}

func TestAreaCoveragePerfectAndDestroyed(t *testing.T) {
	m := MustAreaCoverage(DefaultAreaCoverageConfig())
	tr := mkStopAndGo(t, "u")
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("identical coverage = %v, want 1", v)
	}
	v, err = m.Evaluate(tr, shifted(t, tr, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("20 km-shifted coverage = %v, want 0", v)
	}
}

func TestAreaCoverageToleratesOneBlock(t *testing.T) {
	m := MustAreaCoverage(DefaultAreaCoverageConfig()) // 200 m cells, tol 1
	tr := mkStopAndGo(t, "u")
	// A 200 m shift moves every point one block: with one-block tolerance
	// coverage must remain perfect or near-perfect.
	v, err := m.Evaluate(tr, shifted(t, tr, 200))
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.95 {
		t.Errorf("one-block shift coverage = %v, want ~1", v)
	}
	// Without tolerance the same shift must hurt.
	strict := MustAreaCoverage(AreaCoverageConfig{CellSizeMeters: 200, ToleranceCells: 0})
	vs, err := strict.Evaluate(tr, shifted(t, tr, 200))
	if err != nil {
		t.Fatal(err)
	}
	if vs >= v {
		t.Errorf("strict coverage %v should be below tolerant %v", vs, v)
	}
}

func TestAreaCoverageEmptyTraces(t *testing.T) {
	m := MustAreaCoverage(DefaultAreaCoverageConfig())
	empty, err := trace.NewTrace("u", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := mkStopAndGo(t, "u")
	if v, err := m.Evaluate(empty, empty); err != nil || v != 1 {
		t.Errorf("both empty: %v, %v", v, err)
	}
	if v, err := m.Evaluate(tr, empty); err != nil || v != 0 {
		t.Errorf("protected empty: %v, %v", v, err)
	}
}

func TestNewAreaCoverageValidation(t *testing.T) {
	if _, err := NewAreaCoverage(AreaCoverageConfig{CellSizeMeters: 0}); err == nil {
		t.Error("zero cell size should error")
	}
	if _, err := NewAreaCoverage(AreaCoverageConfig{CellSizeMeters: 100, ToleranceCells: -1}); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestMeanDisplacement(t *testing.T) {
	var m MeanDisplacement
	tr := mkStopAndGo(t, "u")
	v, err := m.Evaluate(tr, shifted(t, tr, 150))
	if err != nil {
		t.Fatal(err)
	}
	if v < 149 || v > 151 {
		t.Errorf("mean displacement = %v, want ~150", v)
	}
	// Identical traces displace zero.
	if v, err := m.Evaluate(tr, tr.Clone()); err != nil || v != 0 {
		t.Errorf("identical displacement = %v, %v", v, err)
	}
	// Empty actual trace: zero by convention.
	empty, err := trace.NewTrace("u", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Evaluate(empty, tr); err != nil || v != 0 {
		t.Errorf("empty actual: %v, %v", v, err)
	}
	// Disjoint timestamps: error.
	late := tr.Clone()
	for i := range late.Records {
		late.Records[i].Time = late.Records[i].Time.Add(24 * time.Hour)
	}
	if _, err := m.Evaluate(tr, late); err == nil {
		t.Error("disjoint timestamps should error")
	}
}

func TestCoverageEntropyGain(t *testing.T) {
	m := CoverageEntropyGain{CellSizeMeters: 200}
	tr := mkStopAndGo(t, "u")
	// Spreading the trace raises entropy: scatter every point widely and
	// deterministically.
	spread := tr.Clone()
	for i := range spread.Records {
		spread.Records[i].Point = anchor.Offset(
			float64((i*2654435761)%7001)-3500,
			float64((i*40503)%7001)-3500,
		)
	}
	v, err := m.Evaluate(tr, spread)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("entropy gain = %v, want > 0", v)
	}
	if v2, err := m.Evaluate(tr, tr.Clone()); err != nil || v2 > 1e-12 || v2 < -1e-12 {
		t.Errorf("identical entropy gain = %v, %v", v2, err)
	}
	bad := CoverageEntropyGain{CellSizeMeters: -5}
	if _, err := bad.Evaluate(tr, tr); err == nil {
		t.Error("negative cell size should error")
	}
	// Zero uses the default and must work.
	zero := CoverageEntropyGain{}
	if _, err := zero.Evaluate(tr, tr.Clone()); err != nil {
		t.Errorf("zero config should default: %v", err)
	}
}
