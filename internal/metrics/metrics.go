// Package metrics implements the privacy and utility evaluation metrics of
// the framework. A metric scores one user's protected trace against the
// actual trace; the evaluation engine aggregates scores across users. The
// two paper metrics are POIRetrieval (privacy: the proportion of actual POIs
// retrievable from protected data — lower is more private) and AreaCoverage
// (utility: similarity of spatial coverage at city-block scale — higher is
// more useful). The registry keeps the framework modular, as paper §3
// requires: swapping metrics re-targets the whole pipeline.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Kind classifies a metric as assessing privacy or utility.
type Kind int

const (
	// Privacy metrics quantify information leakage (convention in this
	// repository: higher value = more leakage = less privacy, matching
	// the paper's "proportion of POIs retrieved").
	Privacy Kind = iota
	// Utility metrics quantify data usefulness (higher = more useful).
	Utility
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Privacy:
		return "privacy"
	case Utility:
		return "utility"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Metric scores a protected trace against its actual counterpart.
// Implementations must be stateless and safe for concurrent use.
type Metric interface {
	// Name returns the metric's registry identifier.
	Name() string
	// Kind reports whether this is a privacy or a utility metric.
	Kind() Kind
	// Evaluate returns the metric value for one user.
	Evaluate(actual, protected *trace.Trace) (float64, error)
}

// Registry maps metric names to implementations.
type Registry struct {
	metrics map[string]Metric
}

// NewRegistry returns a registry pre-populated with every built-in metric at
// its default configuration.
func NewRegistry() *Registry {
	r := &Registry{}
	for _, m := range []Metric{
		MustPOIRetrieval(DefaultPOIRetrievalConfig()),
		MustAreaCoverage(DefaultAreaCoverageConfig()),
		MeanDisplacement{},
		CoverageEntropyGain{CellSizeMeters: 200},
		MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig()),
		MustRangeQueryAccuracy(DefaultRangeQueryConfig()),
		MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig()),
	} {
		if err := r.Register(m); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds a metric; duplicate names are rejected.
func (r *Registry) Register(m Metric) error {
	if r.metrics == nil {
		r.metrics = make(map[string]Metric)
	}
	if _, dup := r.metrics[m.Name()]; dup {
		return fmt.Errorf("metrics: metric %q already registered", m.Name())
	}
	r.metrics[m.Name()] = m
	return nil
}

// Get returns the named metric.
func (r *Registry) Get(name string) (Metric, error) {
	m, ok := r.metrics[name]
	if !ok {
		return nil, fmt.Errorf("metrics: unknown metric %q (have %v)", name, r.Names())
	}
	return m, nil
}

// Names lists registered metric names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
