// Package metrics implements the privacy and utility evaluation metrics of
// the framework. A metric scores one user's protected trace against the
// actual trace; the evaluation engine aggregates scores across users. The
// two paper metrics are POIRetrieval (privacy: the proportion of actual POIs
// retrievable from protected data — lower is more private) and AreaCoverage
// (utility: similarity of spatial coverage at city-block scale — higher is
// more useful). The registry keeps the framework modular, as paper §3
// requires: swapping metrics re-targets the whole pipeline.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Kind classifies a metric as assessing privacy or utility.
type Kind int

const (
	// Privacy metrics quantify information leakage (convention in this
	// repository: higher value = more leakage = less privacy, matching
	// the paper's "proportion of POIs retrieved").
	Privacy Kind = iota
	// Utility metrics quantify data usefulness (higher = more useful).
	Utility
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Privacy:
		return "privacy"
	case Utility:
		return "utility"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Metric scores a protected trace against its actual counterpart.
// Implementations must be stateless and safe for concurrent use.
type Metric interface {
	// Name returns the metric's registry identifier.
	Name() string
	// Kind reports whether this is a privacy or a utility metric.
	Kind() Kind
	// Evaluate returns the metric value for one user.
	Evaluate(actual, protected *trace.Trace) (float64, error)
}

// PreparedMetric is a metric specialized to one user's fixed actual trace.
// It holds every actual-side intermediate (extracted POIs, decimated
// points, heat maps, query workloads) plus reusable scratch buffers, so the
// sweep engine's inner loop — many protected releases scored against the
// same actual trace — pays the actual-side cost once and evaluates with
// near-zero allocation afterwards.
//
// A PreparedMetric owns mutable scratch: it is NOT safe for concurrent use.
// Give each goroutine its own (eval.Run builds one cache per worker). The
// actual trace captured at Prepare time must not be mutated while the
// prepared evaluator is alive.
type PreparedMetric interface {
	// Evaluate scores one protected release against the prepared actual
	// trace. It must return exactly what the parent metric's
	// Evaluate(actual, protected) would — preparation is a caching
	// contract, never a semantic one.
	Evaluate(protected *trace.Trace) (float64, error)
}

// Preparable is an optional Metric extension for metrics that can hoist
// actual-side work out of the evaluation loop. All built-in metrics
// implement it; third-party metrics that don't are handled by the Prepare
// helper's generic fallback.
type Preparable interface {
	Metric
	// Prepare returns a per-user evaluator specialized to actual. Data
	// errors (e.g. an empty actual trace) are reported by the prepared
	// Evaluate, not here, so error surfaces match the unprepared path.
	Prepare(actual *trace.Trace) PreparedMetric
}

// Prepare specializes m to one user's actual trace: the metric's own
// prepared form when it implements Preparable, and otherwise a generic
// wrapper that simply closes over the actual trace (correct for any metric,
// no speedup).
func Prepare(m Metric, actual *trace.Trace) PreparedMetric {
	if p, ok := m.(Preparable); ok {
		return p.Prepare(actual)
	}
	return &genericPrepared{m: m, actual: actual}
}

// genericPrepared is the fallback PreparedMetric for non-Preparable
// metrics.
type genericPrepared struct {
	m      Metric
	actual *trace.Trace
}

// Evaluate implements PreparedMetric.
func (g *genericPrepared) Evaluate(protected *trace.Trace) (float64, error) {
	return g.m.Evaluate(g.actual, protected)
}

// Every built-in metric prepares.
var (
	_ Preparable = (*POIRetrieval)(nil)
	_ Preparable = (*AreaCoverage)(nil)
	_ Preparable = MeanDisplacement{}
	_ Preparable = CoverageEntropyGain{}
	_ Preparable = (*TrajectorySimilarity)(nil)
	_ Preparable = (*RangeQueryAccuracy)(nil)
	_ Preparable = (*HeatmapSimilarity)(nil)
)

// Registry maps metric names to implementations.
type Registry struct {
	metrics map[string]Metric
}

// NewRegistry returns a registry pre-populated with every built-in metric at
// its default configuration.
func NewRegistry() *Registry {
	r := &Registry{}
	for _, m := range []Metric{
		MustPOIRetrieval(DefaultPOIRetrievalConfig()),
		MustAreaCoverage(DefaultAreaCoverageConfig()),
		MeanDisplacement{},
		CoverageEntropyGain{CellSizeMeters: 200},
		MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig()),
		MustRangeQueryAccuracy(DefaultRangeQueryConfig()),
		MustHeatmapSimilarity(DefaultHeatmapSimilarityConfig()),
	} {
		if err := r.Register(m); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds a metric; duplicate names are rejected.
func (r *Registry) Register(m Metric) error {
	if r.metrics == nil {
		r.metrics = make(map[string]Metric)
	}
	if _, dup := r.metrics[m.Name()]; dup {
		return fmt.Errorf("metrics: metric %q already registered", m.Name())
	}
	r.metrics[m.Name()] = m
	return nil
}

// Get returns the named metric.
func (r *Registry) Get(name string) (Metric, error) {
	m, ok := r.metrics[name]
	if !ok {
		return nil, fmt.Errorf("metrics: unknown metric %q (have %v)", name, r.Names())
	}
	return m, nil
}

// Names lists registered metric names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
