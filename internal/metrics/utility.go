package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/stat"
	"repro/internal/trace"
)

// AreaCoverageConfig tunes the paper's utility metric.
type AreaCoverageConfig struct {
	// CellSizeMeters is the city-block discretization (paper §2:
	// "location precision at the scale of a city block").
	CellSizeMeters float64
	// ToleranceCells is the neighborhood radius (in cells, Chebyshev)
	// within which a protected cell still counts as covering an actual
	// cell: the paper tolerates a divergence "about the size of a city
	// block", i.e. one cell.
	ToleranceCells int
}

// DefaultAreaCoverageConfig returns the configuration used by the
// reproduction experiments: 200 m blocks with a one-block tolerance.
func DefaultAreaCoverageConfig() AreaCoverageConfig {
	return AreaCoverageConfig{CellSizeMeters: 200, ToleranceCells: 1}
}

// AreaCoverage is the paper's utility metric: it compares the set of city
// blocks covered by the actual trace with the set covered by the protected
// trace, scoring their F1 similarity with a one-block tolerance. 1 means
// the protected data serves exactly the same blocks; 0 means coverage is
// unrelated. The paper's utility objective ("80 % of requests concern the
// block where the user is") corresponds to AreaCoverage ≥ 0.8.
type AreaCoverage struct {
	cfg AreaCoverageConfig
}

// NewAreaCoverage builds the metric, validating the configuration.
func NewAreaCoverage(cfg AreaCoverageConfig) (*AreaCoverage, error) {
	if cfg.CellSizeMeters <= 0 {
		return nil, fmt.Errorf("metrics: CellSizeMeters must be positive, got %v", cfg.CellSizeMeters)
	}
	if cfg.ToleranceCells < 0 {
		return nil, fmt.Errorf("metrics: ToleranceCells must be non-negative, got %d", cfg.ToleranceCells)
	}
	return &AreaCoverage{cfg: cfg}, nil
}

// MustAreaCoverage is NewAreaCoverage that panics on configuration errors.
func MustAreaCoverage(cfg AreaCoverageConfig) *AreaCoverage {
	m, err := NewAreaCoverage(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*AreaCoverage) Name() string { return "area_coverage" }

// Kind implements Metric.
func (*AreaCoverage) Kind() Kind { return Utility }

// Evaluate implements Metric.
func (m *AreaCoverage) Evaluate(actual, protected *trace.Trace) (float64, error) {
	if actual.Len() == 0 && protected.Len() == 0 {
		return 1, nil
	}
	if actual.Len() == 0 || protected.Len() == 0 {
		return 0, nil
	}
	// One shared tessellation anchored at a data-independent corner.
	first := actual.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, m.cfg.CellSizeMeters)

	actualCov := grid.Coverage(actual.Points())
	protectedCov := grid.Coverage(protected.Points())

	tol := m.cfg.ToleranceCells
	if tol == 0 {
		return geo.CellSetF1(actualCov, protectedCov), nil
	}
	precision := coveredFraction(protectedCov, actualCov, tol)
	recall := coveredFraction(actualCov, protectedCov, tol)
	if precision+recall == 0 {
		return 0, nil
	}
	return 2 * precision * recall / (precision + recall), nil
}

// coveredFraction returns the fraction of cells in "from" that have a cell
// of "against" within Chebyshev distance tol.
func coveredFraction(from, against map[geo.Cell]struct{}, tol int) float64 {
	if len(from) == 0 {
		return 0
	}
	hit := 0
	for c := range from {
		if hasNeighbor(against, c, tol) {
			hit++
		}
	}
	return float64(hit) / float64(len(from))
}

func hasNeighbor(set map[geo.Cell]struct{}, c geo.Cell, tol int) bool {
	for dc := -tol; dc <= tol; dc++ {
		for dr := -tol; dr <= tol; dr++ {
			if _, ok := set[geo.Cell{Col: c.Col + dc, Row: c.Row + dr}]; ok {
				return true
			}
		}
	}
	return false
}

// MeanDisplacement is an auxiliary utility metric: the mean distance in
// meters between actual and protected records, paired by timestamp. Unlike
// the paper metrics it is unbounded; lower is better. It demonstrates the
// framework's metric modularity (paper §3) and feeds the ablation benches.
type MeanDisplacement struct{}

// Name implements Metric.
func (MeanDisplacement) Name() string { return "mean_displacement" }

// Kind implements Metric.
func (MeanDisplacement) Kind() Kind { return Utility }

// Evaluate implements Metric. Records are paired by identical timestamps;
// traces with no common timestamps (e.g. after temporal sampling removed
// everything) yield an error.
func (MeanDisplacement) Evaluate(actual, protected *trace.Trace) (float64, error) {
	if actual.Len() == 0 {
		return 0, nil
	}
	byTime := make(map[int64]geo.Point, protected.Len())
	for _, r := range protected.Records {
		byTime[r.Time.UnixNano()] = r.Point
	}
	var sum float64
	var n int
	for _, r := range actual.Records {
		if p, ok := byTime[r.Time.UnixNano()]; ok {
			sum += geo.Equirectangular(r.Point, p)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: no timestamp-aligned records to compare")
	}
	return sum / float64(n), nil
}

// CoverageEntropyGain is an auxiliary privacy metric: how much the
// normalized spatial entropy of the trace increased under protection.
// Noise spreads a user's footprint over more blocks, raising entropy; a
// positive gain therefore indicates harder-to-profile data. It is bounded
// in [-1, 1].
type CoverageEntropyGain struct {
	// CellSizeMeters discretizes space; zero uses 200 m.
	CellSizeMeters float64
}

// Name implements Metric.
func (CoverageEntropyGain) Name() string { return "coverage_entropy_gain" }

// Kind implements Metric.
func (CoverageEntropyGain) Kind() Kind { return Privacy }

// Evaluate implements Metric.
func (m CoverageEntropyGain) Evaluate(actual, protected *trace.Trace) (float64, error) {
	size := m.CellSizeMeters
	if size == 0 {
		size = 200
	}
	if size < 0 {
		return 0, fmt.Errorf("metrics: negative cell size %v", size)
	}
	return normalizedCellEntropy(protected, size) - normalizedCellEntropy(actual, size), nil
}

func normalizedCellEntropy(t *trace.Trace, cellSize float64) float64 {
	if t.Len() == 0 {
		return 0
	}
	first := t.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, cellSize)
	counts := make(map[geo.Cell]int)
	for _, r := range t.Records {
		counts[grid.CellOf(r.Point)]++
	}
	if len(counts) <= 1 {
		return 0
	}
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return stat.EntropyOfCounts(cs) / math.Log(float64(len(cs)))
}
