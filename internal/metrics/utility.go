package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/stat"
	"repro/internal/trace"
)

// AreaCoverageConfig tunes the paper's utility metric.
type AreaCoverageConfig struct {
	// CellSizeMeters is the city-block discretization (paper §2:
	// "location precision at the scale of a city block").
	CellSizeMeters float64
	// ToleranceCells is the neighborhood radius (in cells, Chebyshev)
	// within which a protected cell still counts as covering an actual
	// cell: the paper tolerates a divergence "about the size of a city
	// block", i.e. one cell.
	ToleranceCells int
}

// DefaultAreaCoverageConfig returns the configuration used by the
// reproduction experiments: 200 m blocks with a one-block tolerance.
func DefaultAreaCoverageConfig() AreaCoverageConfig {
	return AreaCoverageConfig{CellSizeMeters: 200, ToleranceCells: 1}
}

// AreaCoverage is the paper's utility metric: it compares the set of city
// blocks covered by the actual trace with the set covered by the protected
// trace, scoring their F1 similarity with a one-block tolerance. 1 means
// the protected data serves exactly the same blocks; 0 means coverage is
// unrelated. The paper's utility objective ("80 % of requests concern the
// block where the user is") corresponds to AreaCoverage ≥ 0.8.
type AreaCoverage struct {
	cfg AreaCoverageConfig
}

// NewAreaCoverage builds the metric, validating the configuration.
func NewAreaCoverage(cfg AreaCoverageConfig) (*AreaCoverage, error) {
	if cfg.CellSizeMeters <= 0 {
		return nil, fmt.Errorf("metrics: CellSizeMeters must be positive, got %v", cfg.CellSizeMeters)
	}
	if cfg.ToleranceCells < 0 {
		return nil, fmt.Errorf("metrics: ToleranceCells must be non-negative, got %d", cfg.ToleranceCells)
	}
	return &AreaCoverage{cfg: cfg}, nil
}

// MustAreaCoverage is NewAreaCoverage that panics on configuration errors.
func MustAreaCoverage(cfg AreaCoverageConfig) *AreaCoverage {
	m, err := NewAreaCoverage(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*AreaCoverage) Name() string { return "area_coverage" }

// Kind implements Metric.
func (*AreaCoverage) Kind() Kind { return Utility }

// Evaluate implements Metric. It is the prepared path run once: Prepare
// then Evaluate, so the two paths cannot diverge.
func (m *AreaCoverage) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the shared tessellation and the actual
// coverage set are built once; the protected coverage set is rebuilt per
// Evaluate in a reused map.
func (m *AreaCoverage) Prepare(actual *trace.Trace) PreparedMetric {
	p := &preparedAreaCoverage{tol: m.cfg.ToleranceCells}
	if actual.Len() == 0 {
		p.emptyActual = true
		return p
	}
	// One shared tessellation anchored at a data-independent corner.
	first := actual.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	p.grid = geo.NewGrid(origin, m.cfg.CellSizeMeters)
	p.actualCov = coverageInto(nil, p.grid, actual)
	return p
}

// coverageInto is geo.Grid.Coverage over a trace's records, writing into
// dst (allocated when nil, cleared otherwise) — one implementation serves
// both coverage sets.
func coverageInto(dst map[geo.Cell]struct{}, grid *geo.Grid, t *trace.Trace) map[geo.Cell]struct{} {
	if dst == nil {
		dst = make(map[geo.Cell]struct{}, t.Len()/4+1)
	} else {
		clear(dst)
	}
	for _, r := range t.Records {
		dst[grid.CellOf(r.Point)] = struct{}{}
	}
	return dst
}

// preparedAreaCoverage is AreaCoverage with the grid and actual coverage
// hoisted and the protected coverage map reused across calls.
type preparedAreaCoverage struct {
	tol          int
	emptyActual  bool
	grid         *geo.Grid
	actualCov    map[geo.Cell]struct{}
	protectedCov map[geo.Cell]struct{} // scratch, cleared per call
}

// Evaluate implements PreparedMetric.
func (p *preparedAreaCoverage) Evaluate(protected *trace.Trace) (float64, error) {
	if p.emptyActual {
		if protected.Len() == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if protected.Len() == 0 {
		return 0, nil
	}
	p.protectedCov = coverageInto(p.protectedCov, p.grid, protected)
	if p.tol == 0 {
		return geo.CellSetF1(p.actualCov, p.protectedCov), nil
	}
	precision := coveredFraction(p.protectedCov, p.actualCov, p.tol)
	recall := coveredFraction(p.actualCov, p.protectedCov, p.tol)
	if precision+recall == 0 {
		return 0, nil
	}
	return 2 * precision * recall / (precision + recall), nil
}

// coveredFraction returns the fraction of cells in "from" that have a cell
// of "against" within Chebyshev distance tol.
func coveredFraction(from, against map[geo.Cell]struct{}, tol int) float64 {
	if len(from) == 0 {
		return 0
	}
	hit := 0
	for c := range from {
		if hasNeighbor(against, c, tol) {
			hit++
		}
	}
	return float64(hit) / float64(len(from))
}

func hasNeighbor(set map[geo.Cell]struct{}, c geo.Cell, tol int) bool {
	for dc := -tol; dc <= tol; dc++ {
		for dr := -tol; dr <= tol; dr++ {
			if _, ok := set[geo.Cell{Col: c.Col + dc, Row: c.Row + dr}]; ok {
				return true
			}
		}
	}
	return false
}

// MeanDisplacement is an auxiliary utility metric: the mean distance in
// meters between actual and protected records, paired by timestamp. Unlike
// the paper metrics it is unbounded; lower is better. It demonstrates the
// framework's metric modularity (paper §3) and feeds the ablation benches.
type MeanDisplacement struct{}

// Name implements Metric.
func (MeanDisplacement) Name() string { return "mean_displacement" }

// Kind implements Metric.
func (MeanDisplacement) Kind() Kind { return Utility }

// Evaluate implements Metric. Records are paired by identical timestamps;
// traces with no common timestamps (e.g. after temporal sampling removed
// everything) yield an error.
func (m MeanDisplacement) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable. The pairing index is keyed by the
// protected side (last record wins on duplicate timestamps, as in the
// unprepared path), so preparation only pins the actual trace and reuses
// the index map across calls.
func (MeanDisplacement) Prepare(actual *trace.Trace) PreparedMetric {
	return &preparedMeanDisplacement{actual: actual}
}

// preparedMeanDisplacement is MeanDisplacement with the timestamp index map
// reused across calls.
type preparedMeanDisplacement struct {
	actual *trace.Trace
	byTime map[int64]geo.Point // scratch, cleared per call
}

// Evaluate implements PreparedMetric.
func (p *preparedMeanDisplacement) Evaluate(protected *trace.Trace) (float64, error) {
	if p.actual.Len() == 0 {
		return 0, nil
	}
	if p.byTime == nil {
		p.byTime = make(map[int64]geo.Point, protected.Len())
	} else {
		clear(p.byTime)
	}
	for _, r := range protected.Records {
		p.byTime[r.Time.UnixNano()] = r.Point
	}
	var sum float64
	var n int
	for _, r := range p.actual.Records {
		if q, ok := p.byTime[r.Time.UnixNano()]; ok {
			sum += geo.Equirectangular(r.Point, q)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: no timestamp-aligned records to compare")
	}
	return sum / float64(n), nil
}

// CoverageEntropyGain is an auxiliary privacy metric: how much the
// normalized spatial entropy of the trace increased under protection.
// Noise spreads a user's footprint over more blocks, raising entropy; a
// positive gain therefore indicates harder-to-profile data. It is bounded
// in [-1, 1].
type CoverageEntropyGain struct {
	// CellSizeMeters discretizes space; zero uses 200 m.
	CellSizeMeters float64
}

// Name implements Metric.
func (CoverageEntropyGain) Name() string { return "coverage_entropy_gain" }

// Kind implements Metric.
func (CoverageEntropyGain) Kind() Kind { return Privacy }

// Evaluate implements Metric.
func (m CoverageEntropyGain) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the actual side's entropy is computed once
// and the protected side's cell-count buffers are reused across calls.
func (m CoverageEntropyGain) Prepare(actual *trace.Trace) PreparedMetric {
	size := m.CellSizeMeters
	if size == 0 {
		size = 200
	}
	p := &preparedCoverageEntropyGain{size: size}
	if size < 0 {
		p.err = fmt.Errorf("metrics: negative cell size %v", size)
		return p
	}
	p.actualEntropy = p.scratch.normalizedCellEntropy(actual, size)
	return p
}

// preparedCoverageEntropyGain is CoverageEntropyGain with the actual
// entropy hoisted.
type preparedCoverageEntropyGain struct {
	size          float64
	err           error
	actualEntropy float64
	scratch       entropyScratch
}

// Evaluate implements PreparedMetric.
func (p *preparedCoverageEntropyGain) Evaluate(protected *trace.Trace) (float64, error) {
	if p.err != nil {
		return 0, p.err
	}
	return p.scratch.normalizedCellEntropy(protected, p.size) - p.actualEntropy, nil
}

// entropyScratch reuses the cell-count map and slice across entropy
// computations. The zero value is ready to use.
type entropyScratch struct {
	counts map[geo.Cell]int
	cs     []int
}

// normalizedCellEntropy returns the trace's Shannon entropy over grid
// cells, normalized by the maximum for the observed cell count. Counts are
// sorted before summation so the floating-point accumulation order — and
// therefore the result — does not depend on map iteration order.
func (s *entropyScratch) normalizedCellEntropy(t *trace.Trace, cellSize float64) float64 {
	if t.Len() == 0 {
		return 0
	}
	first := t.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, cellSize)
	if s.counts == nil {
		s.counts = make(map[geo.Cell]int)
	} else {
		clear(s.counts)
	}
	for _, r := range t.Records {
		s.counts[grid.CellOf(r.Point)]++
	}
	if len(s.counts) <= 1 {
		return 0
	}
	cs := s.cs[:0]
	for _, c := range s.counts {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	s.cs = cs
	return stat.EntropyOfCounts(cs) / math.Log(float64(len(cs)))
}
