package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	mt0    = time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	mBase  = geo.Point{Lat: 37.7749, Lng: -122.4194}
	mBase2 = geo.Point{Lat: 37.80, Lng: -122.40}
)

func lineTrace(t *testing.T, user string, start geo.Point, n int, stepEast float64) *trace.Trace {
	t.Helper()
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{User: user, Time: mt0.Add(time.Duration(i) * time.Minute), Point: start.Offset(float64(i)*stepEast, 0)}
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrajectorySimilarityIdentityScoresOne(t *testing.T) {
	m := MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig())
	tr := lineTrace(t, "u1", mBase, 50, 100)
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("identity similarity = %v, want 1", v)
	}
}

func TestTrajectorySimilarityDecreasesWithNoise(t *testing.T) {
	m := MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig())
	tr := lineTrace(t, "u1", mBase, 80, 100)
	r := rng.New(3)
	noisy := func(sigma float64) *trace.Trace {
		out := tr.Clone()
		for i := range out.Records {
			out.Records[i].Point = out.Records[i].Point.Offset(sigma*r.NormFloat64(), sigma*r.NormFloat64())
		}
		return out
	}
	v100, err := m.Evaluate(tr, noisy(100))
	if err != nil {
		t.Fatal(err)
	}
	v2000, err := m.Evaluate(tr, noisy(2000))
	if err != nil {
		t.Fatal(err)
	}
	if !(1 > v100 && v100 > v2000 && v2000 > 0) {
		t.Errorf("want 1 > sim(σ=100)=%v > sim(σ=2000)=%v > 0", v100, v2000)
	}
}

func TestTrajectorySimilarityEmptyProtected(t *testing.T) {
	m := MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig())
	tr := lineTrace(t, "u1", mBase, 10, 100)
	v, err := m.Evaluate(tr, &trace.Trace{User: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("empty protected similarity = %v, want 0", v)
	}
	if _, err := m.Evaluate(&trace.Trace{User: "u1"}, tr); err == nil {
		t.Error("empty actual trace should error")
	}
}

func TestDTWAlignsShiftedSampling(t *testing.T) {
	// Same path sampled at different rates: DTW should align them with a
	// small mean distance, unlike a naive index-paired comparison.
	a := make([]geo.Point, 60)
	for i := range a {
		a[i] = mBase.Offset(float64(i)*100, 0)
	}
	b := make([]geo.Point, 30)
	for i := range b {
		b[i] = mBase.Offset(float64(i)*200, 0)
	}
	mean, err := DTWMeanDistance(a, b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mean > 60 {
		t.Errorf("DTW mean distance %v m on the same path resampled, want < 60", mean)
	}
}

func TestDTWErrors(t *testing.T) {
	if _, err := DTWMeanDistance(nil, []geo.Point{mBase}, 0.1); err == nil {
		t.Error("empty sequence should error")
	}
}

func TestFrechetKnownValue(t *testing.T) {
	// Two parallel straight lines 500 m apart: Fréchet distance is 500.
	a := make([]geo.Point, 20)
	b := make([]geo.Point, 20)
	for i := range a {
		a[i] = mBase.Offset(float64(i)*100, 0)
		b[i] = mBase.Offset(float64(i)*100, 500)
	}
	d, err := FrechetDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-500) > 5 {
		t.Errorf("Fréchet = %v, want ≈ 500", d)
	}
}

func TestFrechetDominatesDTWMeanProperty(t *testing.T) {
	// Property: the Fréchet distance (max over the best alignment) is ≥
	// the DTW mean step distance on the same inputs.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(20)
		a := make([]geo.Point, n)
		b := make([]geo.Point, n)
		for i := range a {
			a[i] = mBase.Offset(r.Float64()*2000, r.Float64()*2000)
			b[i] = mBase.Offset(r.Float64()*2000, r.Float64()*2000)
		}
		fd, err1 := FrechetDistance(a, b)
		dm, err2 := DTWMeanDistance(a, b, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return fd >= dm-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Regression: this seed produced a min-total-cost alignment whose
	// mean (885.5 m) exceeded the Fréchet bound (876.7 m) before
	// DTWMeanDistance minimized the mean itself.
	if !f(8065863801368140506) {
		t.Error("Fréchet < DTW mean for regression seed 8065863801368140506")
	}
}

func TestDecimateKeepsEndpoints(t *testing.T) {
	pts := make([]geo.Point, 1000)
	for i := range pts {
		pts[i] = mBase.Offset(float64(i), 0)
	}
	out := decimate(pts, 50)
	if len(out) != 50 {
		t.Fatalf("decimate kept %d points, want 50", len(out))
	}
	if out[0] != pts[0] || out[len(out)-1] != pts[len(pts)-1] {
		t.Error("decimate must keep the endpoints")
	}
	if got := decimate(pts, 0); len(got) != len(pts) {
		t.Error("maxN=0 must disable decimation")
	}
}

func TestDecimateToSinglePoint(t *testing.T) {
	// Regression: maxN=1 used to divide by zero in the index formula.
	pts := make([]geo.Point, 7)
	for i := range pts {
		pts[i] = mBase.Offset(float64(i)*100, 0)
	}
	out := decimate(pts, 1)
	if len(out) != 1 {
		t.Fatalf("decimate kept %d points, want 1", len(out))
	}
	if out[0] != pts[3] {
		t.Errorf("decimate(pts, 1) = %v, want middle point %v", out[0], pts[3])
	}
	if got := decimate(pts[:1], 1); len(got) != 1 || got[0] != pts[0] {
		t.Errorf("decimate of single point must be identity, got %v", got)
	}
}

func TestTrajectorySimilarityConfigValidation(t *testing.T) {
	if _, err := NewTrajectorySimilarity(TrajectorySimilarityConfig{ScaleMeters: -1}); err == nil {
		t.Error("negative scale should fail")
	}
	if _, err := NewTrajectorySimilarity(TrajectorySimilarityConfig{ScaleMeters: 100, BandFrac: 2}); err == nil {
		t.Error("band fraction > 1 should fail")
	}
	if _, err := NewTrajectorySimilarity(TrajectorySimilarityConfig{ScaleMeters: 100, MaxPoints: -1}); err == nil {
		t.Error("negative MaxPoints should fail")
	}
}
