package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestRangeQueryAccuracyIdentity(t *testing.T) {
	m := MustRangeQueryAccuracy(DefaultRangeQueryConfig())
	tr := lineTrace(t, "u1", mBase, 100, 80)
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("identity accuracy = %v, want 1", v)
	}
}

func TestRangeQueryAccuracyDegradesWithNoise(t *testing.T) {
	m := MustRangeQueryAccuracy(DefaultRangeQueryConfig())
	tr := lineTrace(t, "u1", mBase, 120, 60)
	r := rng.New(9)
	noisy := func(sigma float64) *trace.Trace {
		out := tr.Clone()
		for i := range out.Records {
			out.Records[i].Point = out.Records[i].Point.Offset(sigma*r.NormFloat64(), sigma*r.NormFloat64())
		}
		return out
	}
	small, err := m.Evaluate(tr, noisy(50))
	if err != nil {
		t.Fatal(err)
	}
	large, err := m.Evaluate(tr, noisy(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !(small > large) {
		t.Errorf("accuracy should degrade with noise: σ=50 → %v, σ=5000 → %v", small, large)
	}
	if small < 0.5 {
		t.Errorf("mild noise accuracy = %v, implausibly low", small)
	}
}

func TestRangeQueryAccuracyDeterministicWorkload(t *testing.T) {
	m := MustRangeQueryAccuracy(DefaultRangeQueryConfig())
	tr := lineTrace(t, "u1", mBase, 60, 100)
	prot := tr.Clone()
	for i := range prot.Records {
		prot.Records[i].Point = prot.Records[i].Point.Offset(200, -100)
	}
	a, err := m.Evaluate(tr, prot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evaluate(tr, prot)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("query workload must be deterministic: %v vs %v", a, b)
	}
}

func TestRangeQueryAccuracyBounds(t *testing.T) {
	m := MustRangeQueryAccuracy(DefaultRangeQueryConfig())
	tr := lineTrace(t, "u1", mBase, 60, 100)
	// A protected release far away answers every query with 0: accuracy 0.
	far := tr.Clone()
	for i := range far.Records {
		far.Records[i].Point = far.Records[i].Point.Offset(1e5, 1e5)
	}
	v, err := m.Evaluate(tr, far)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 0.05 {
		t.Errorf("displaced release accuracy = %v, want ≈ 0", v)
	}
	if _, err := m.Evaluate(&trace.Trace{User: "u1"}, tr); err == nil {
		t.Error("empty actual should error")
	}
}

func TestRangeQueryConfigValidation(t *testing.T) {
	if _, err := NewRangeQueryAccuracy(RangeQueryConfig{Queries: 0, RadiusMeters: 100}); err == nil {
		t.Error("zero queries should fail")
	}
	if _, err := NewRangeQueryAccuracy(RangeQueryConfig{Queries: 10, RadiusMeters: 0}); err == nil {
		t.Error("zero radius should fail")
	}
}
