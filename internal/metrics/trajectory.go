package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// TrajectorySimilarityConfig tunes the DTW-based utility metric.
type TrajectorySimilarityConfig struct {
	// ScaleMeters converts an alignment distance into a similarity: a
	// mean aligned displacement equal to the scale scores 0.5. The
	// default is 200 m, the city-block scale of the paper's utility
	// objective.
	ScaleMeters float64
	// MaxPoints downsamples longer traces before the quadratic DTW;
	// 0 uses 400.
	MaxPoints int
	// BandFrac is the Sakoe–Chiba band half-width as a fraction of the
	// longer sequence, bounding how far the alignment may warp; 0 uses
	// 0.1.
	BandFrac float64
}

// DefaultTrajectorySimilarityConfig returns the experiment configuration.
func DefaultTrajectorySimilarityConfig() TrajectorySimilarityConfig {
	return TrajectorySimilarityConfig{ScaleMeters: 200, MaxPoints: 400, BandFrac: 0.1}
}

// Validate reports configuration errors.
func (c TrajectorySimilarityConfig) Validate() error {
	if c.ScaleMeters <= 0 {
		return fmt.Errorf("metrics: ScaleMeters must be positive, got %v", c.ScaleMeters)
	}
	if c.MaxPoints < 0 {
		return fmt.Errorf("metrics: MaxPoints must be non-negative, got %v", c.MaxPoints)
	}
	if c.BandFrac < 0 || c.BandFrac > 1 {
		return fmt.Errorf("metrics: BandFrac must be in [0, 1], got %v", c.BandFrac)
	}
	return nil
}

// TrajectorySimilarity is a shape-level utility metric: the dynamic-time-
// warping alignment between actual and protected trajectories, converted to
// a [0, 1] similarity. Unlike AreaCoverage it is order-sensitive — it
// rewards releases that preserve the travelled route, not merely the
// visited set — so it discriminates mechanisms (Promesse, sampling) that
// area coverage scores identically.
type TrajectorySimilarity struct {
	cfg TrajectorySimilarityConfig
}

// NewTrajectorySimilarity builds the metric, validating the configuration.
func NewTrajectorySimilarity(cfg TrajectorySimilarityConfig) (*TrajectorySimilarity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = 400
	}
	if cfg.BandFrac == 0 {
		cfg.BandFrac = 0.1
	}
	return &TrajectorySimilarity{cfg: cfg}, nil
}

// MustTrajectorySimilarity is NewTrajectorySimilarity panicking on error,
// for registry initialization.
func MustTrajectorySimilarity(cfg TrajectorySimilarityConfig) *TrajectorySimilarity {
	m, err := NewTrajectorySimilarity(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*TrajectorySimilarity) Name() string { return "trajectory_similarity" }

// Kind implements Metric.
func (*TrajectorySimilarity) Kind() Kind { return Utility }

// Evaluate implements Metric. An empty protected trace has similarity 0; an
// identical one has similarity 1.
func (m *TrajectorySimilarity) Evaluate(actual, protected *trace.Trace) (float64, error) {
	a := decimate(actual.Points(), m.cfg.MaxPoints)
	p := decimate(protected.Points(), m.cfg.MaxPoints)
	if len(a) == 0 {
		return 0, fmt.Errorf("metrics: trajectory similarity of empty actual trace")
	}
	if len(p) == 0 {
		return 0, nil
	}
	mean, err := DTWMeanDistance(a, p, m.cfg.BandFrac)
	if err != nil {
		return 0, err
	}
	return 1 / (1 + mean/m.cfg.ScaleMeters), nil
}

// DTWMeanDistance returns the minimum mean per-step displacement over all
// monotone dynamic-time-warping alignments of the two point sequences,
// constrained to a Sakoe–Chiba band of half-width bandFrac·max(len). Both
// sequences must be non-empty.
//
// Minimizing the mean (rather than reporting total-cost/length of the
// total-cost-minimizing alignment) is what makes the metric well behaved:
// the alignment with the least cumulative cost can be short, and its mean
// can then exceed the Fréchet minimax bound, whereas the minimum mean never
// does — the Fréchet-optimal alignment is itself a monotone alignment whose
// mean step is at most its maximum step. The minimization is a linear
// fractional program over alignment paths, solved by Dinkelbach iteration:
// each round runs one banded DP with step costs d − λ and tightens λ to the
// mean of the minimizing path, converging monotonically from above.
func DTWMeanDistance(a, b []geo.Point, bandFrac float64) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("metrics: DTW of empty sequence (%d, %d points)", n, m)
	}
	band := int(bandFrac * float64(maxInt(n, m)))
	// The band must at least cover the length difference, or no
	// monotone alignment exists inside it.
	if d := absInt(n - m); band < d {
		band = d
	}
	if band < 1 {
		band = 1
	}
	// The banded pairwise distances are reused by every Dinkelbach round;
	// compute them once, stored band-compactly: row i holds columns
	// [max(1, i-band), min(m, i+band)] at offset j-lo, so the array is
	// n·min(m, 2·band+1) instead of n·m.
	width := minInt(m, 2*band+1)
	dist := make([]float64, n*width)
	for i := 1; i <= n; i++ {
		lo := maxInt(1, i-band)
		for j := lo; j <= minInt(m, i+band); j++ {
			dist[(i-1)*width+j-lo] = geo.Equirectangular(a[i-1], b[j-1])
		}
	}
	inf := math.Inf(1)
	// Rolling two-row DP over cumulative (λ-shifted) cost and alignment
	// length, shared across rounds.
	prevCost := make([]float64, m+1)
	curCost := make([]float64, m+1)
	prevLen := make([]int, m+1)
	curLen := make([]int, m+1)
	// solve minimizes Σ(d − λ) over banded monotone alignments and
	// returns the minimizing alignment's true mean step distance.
	solve := func(lambda float64) (float64, bool) {
		for j := 0; j <= m; j++ {
			prevCost[j] = inf
			prevLen[j] = 0
		}
		prevCost[0] = 0
		for i := 1; i <= n; i++ {
			lo := maxInt(1, i-band)
			hi := minInt(m, i+band)
			// Clear only what this row writes plus the cells the next
			// row's band (shifted at most one column) will read.
			for j := lo - 1; j <= minInt(m, hi+1); j++ {
				curCost[j] = inf
				curLen[j] = 0
			}
			for j := lo; j <= hi; j++ {
				// Choose the cheapest predecessor among match,
				// insertion and deletion; break cost ties
				// toward the longer alignment.
				bestCost, bestLen := prevCost[j-1], prevLen[j-1]
				if prevCost[j] < bestCost || (prevCost[j] == bestCost && prevLen[j] > bestLen) {
					bestCost, bestLen = prevCost[j], prevLen[j]
				}
				if curCost[j-1] < bestCost || (curCost[j-1] == bestCost && curLen[j-1] > bestLen) {
					bestCost, bestLen = curCost[j-1], curLen[j-1]
				}
				if math.IsInf(bestCost, 1) {
					continue
				}
				curCost[j] = bestCost + dist[(i-1)*width+j-lo] - lambda
				curLen[j] = bestLen + 1
			}
			prevCost, curCost = curCost, prevCost
			prevLen, curLen = curLen, prevLen
		}
		if math.IsInf(prevCost[m], 1) {
			return 0, false
		}
		// Recover the real (unshifted) mean of the minimizing path.
		return (prevCost[m] + lambda*float64(prevLen[m])) / float64(prevLen[m]), true
	}
	lambda, ok := solve(0)
	if !ok {
		return 0, fmt.Errorf("metrics: DTW band %d too narrow for lengths %d and %d", band, n, m)
	}
	const tol = 1e-9
	// Dinkelbach: λ decreases monotonically to the minimum mean; each
	// fixed point is optimal, and path-set finiteness bounds the rounds
	// (a handful in practice — the cap is a safety net).
	for iter := 0; iter < 64; iter++ {
		next, _ := solve(lambda)
		if next >= lambda-tol {
			return next, nil
		}
		lambda = next
	}
	return lambda, nil
}

// FrechetDistance returns the discrete Fréchet distance ("dog-leash
// distance") between the two point sequences in meters: the minimax
// displacement over monotone alignments. It is the classical companion of
// DTW for trajectory comparison — DTW averages displacement, Fréchet bounds
// its worst step. Quadratic; decimate long inputs first.
func FrechetDistance(a, b []geo.Point) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("metrics: Fréchet of empty sequence (%d, %d points)", n, m)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := geo.Equirectangular(a[i], b[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = math.Max(cur[j-1], d)
			case j == 0:
				cur[j] = math.Max(prev[j], d)
			default:
				cur[j] = math.Max(math.Min(math.Min(prev[j], prev[j-1]), cur[j-1]), d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1], nil
}

// decimate returns at most maxN points sampled uniformly (by index) from
// pts, always keeping the first and last point. maxN ≤ 0 disables
// decimation.
func decimate(pts []geo.Point, maxN int) []geo.Point {
	if maxN <= 0 || len(pts) <= maxN {
		return pts
	}
	if maxN == 1 {
		// No room for both endpoints; the middle point is the least
		// bad single representative.
		return []geo.Point{pts[len(pts)/2]}
	}
	out := make([]geo.Point, maxN)
	for i := range out {
		idx := i * (len(pts) - 1) / (maxN - 1)
		out[i] = pts[idx]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
