package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// TrajectorySimilarityConfig tunes the DTW-based utility metric.
type TrajectorySimilarityConfig struct {
	// ScaleMeters converts an alignment distance into a similarity: a
	// mean aligned displacement equal to the scale scores 0.5. The
	// default is 200 m, the city-block scale of the paper's utility
	// objective.
	ScaleMeters float64
	// MaxPoints downsamples longer traces before the quadratic DTW;
	// 0 uses 400.
	MaxPoints int
	// BandFrac is the Sakoe–Chiba band half-width as a fraction of the
	// longer sequence, bounding how far the alignment may warp; 0 uses
	// 0.1.
	BandFrac float64
}

// DefaultTrajectorySimilarityConfig returns the experiment configuration.
func DefaultTrajectorySimilarityConfig() TrajectorySimilarityConfig {
	return TrajectorySimilarityConfig{ScaleMeters: 200, MaxPoints: 400, BandFrac: 0.1}
}

// Validate reports configuration errors.
func (c TrajectorySimilarityConfig) Validate() error {
	if c.ScaleMeters <= 0 {
		return fmt.Errorf("metrics: ScaleMeters must be positive, got %v", c.ScaleMeters)
	}
	if c.MaxPoints < 0 {
		return fmt.Errorf("metrics: MaxPoints must be non-negative, got %v", c.MaxPoints)
	}
	if c.BandFrac < 0 || c.BandFrac > 1 {
		return fmt.Errorf("metrics: BandFrac must be in [0, 1], got %v", c.BandFrac)
	}
	return nil
}

// TrajectorySimilarity is a shape-level utility metric: the dynamic-time-
// warping alignment between actual and protected trajectories, converted to
// a [0, 1] similarity. Unlike AreaCoverage it is order-sensitive — it
// rewards releases that preserve the travelled route, not merely the
// visited set — so it discriminates mechanisms (Promesse, sampling) that
// area coverage scores identically.
type TrajectorySimilarity struct {
	cfg TrajectorySimilarityConfig
}

// NewTrajectorySimilarity builds the metric, validating the configuration.
func NewTrajectorySimilarity(cfg TrajectorySimilarityConfig) (*TrajectorySimilarity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = 400
	}
	if cfg.BandFrac == 0 {
		cfg.BandFrac = 0.1
	}
	return &TrajectorySimilarity{cfg: cfg}, nil
}

// MustTrajectorySimilarity is NewTrajectorySimilarity panicking on error,
// for registry initialization.
func MustTrajectorySimilarity(cfg TrajectorySimilarityConfig) *TrajectorySimilarity {
	m, err := NewTrajectorySimilarity(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Metric.
func (*TrajectorySimilarity) Name() string { return "trajectory_similarity" }

// Kind implements Metric.
func (*TrajectorySimilarity) Kind() Kind { return Utility }

// Evaluate implements Metric. An empty protected trace has similarity 0; an
// identical one has similarity 1.
func (m *TrajectorySimilarity) Evaluate(actual, protected *trace.Trace) (float64, error) {
	return m.Prepare(actual).Evaluate(protected)
}

// Prepare implements Preparable: the actual trajectory is decimated once,
// and the DTW cost matrix, DP rows and the protected-side decimation buffer
// are owned by the prepared evaluator and reused across calls.
func (m *TrajectorySimilarity) Prepare(actual *trace.Trace) PreparedMetric {
	return &preparedTrajectorySimilarity{
		cfg:    m.cfg,
		actual: decimate(actual.Points(), m.cfg.MaxPoints),
	}
}

// preparedTrajectorySimilarity is TrajectorySimilarity with the actual-side
// decimation hoisted and all DP buffers reused.
type preparedTrajectorySimilarity struct {
	cfg     TrajectorySimilarityConfig
	actual  []geo.Point
	pbuf    []geo.Point // protected decimation buffer
	scratch PairwiseScratch
}

// Evaluate implements PreparedMetric.
func (p *preparedTrajectorySimilarity) Evaluate(protected *trace.Trace) (float64, error) {
	if len(p.actual) == 0 {
		return 0, fmt.Errorf("metrics: trajectory similarity of empty actual trace")
	}
	p.pbuf = appendDecimated(p.pbuf[:0], protected, p.cfg.MaxPoints)
	if len(p.pbuf) == 0 {
		return 0, nil
	}
	mean, err := p.scratch.DTWMeanDistance(p.actual, p.pbuf, p.cfg.BandFrac)
	if err != nil {
		return 0, err
	}
	return 1 / (1 + mean/p.cfg.ScaleMeters), nil
}

// PairwiseScratch holds the reusable working memory of the trajectory
// comparisons: the banded pairwise-distance matrix and the DP rows of
// DTWMeanDistance, and the rolling rows of FrechetDistance. The zero value
// is ready to use; buffers grow to the largest problem seen and are reused
// across calls, so steady-state comparisons through the same scratch are
// allocation-free. A PairwiseScratch is not safe for concurrent use.
type PairwiseScratch struct {
	dist               []float64
	prevCost, curCost  []float64
	prevLen, curLen    []int
	frechetA, frechetB []float64
}

// growFloats returns buf resliced to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers must write
// before reading (the DP recurrences below never read an unwritten cell).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growInts is growFloats for int buffers.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// DTWMeanDistance returns the minimum mean per-step displacement over all
// monotone dynamic-time-warping alignments of the two point sequences,
// constrained to a Sakoe–Chiba band of half-width bandFrac·max(len). Both
// sequences must be non-empty. The convenience wrapper DTWMeanDistance
// allocates fresh buffers; this method reuses the scratch's.
//
// Minimizing the mean (rather than reporting total-cost/length of the
// total-cost-minimizing alignment) is what makes the metric well behaved:
// the alignment with the least cumulative cost can be short, and its mean
// can then exceed the Fréchet minimax bound, whereas the minimum mean never
// does — the Fréchet-optimal alignment is itself a monotone alignment whose
// mean step is at most its maximum step. The minimization is a linear
// fractional program over alignment paths, solved by Dinkelbach iteration:
// each round runs one banded DP with step costs d − λ and tightens λ to the
// mean of the minimizing path, converging monotonically from above.
func (s *PairwiseScratch) DTWMeanDistance(a, b []geo.Point, bandFrac float64) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("metrics: DTW of empty sequence (%d, %d points)", n, m)
	}
	band := int(bandFrac * float64(max(n, m)))
	// The band must at least cover the length difference, or no
	// monotone alignment exists inside it.
	band = max(band, max(n-m, m-n), 1)
	// The banded pairwise distances are reused by every Dinkelbach round;
	// compute them once, stored band-compactly: row i holds columns
	// [max(1, i-band), min(m, i+band)] at offset j-lo, so the array is
	// n·min(m, 2·band+1) instead of n·m.
	width := min(m, 2*band+1)
	s.dist = growFloats(s.dist, n*width)
	dist := s.dist
	for i := 1; i <= n; i++ {
		lo := max(1, i-band)
		for j := lo; j <= min(m, i+band); j++ {
			dist[(i-1)*width+j-lo] = geo.Equirectangular(a[i-1], b[j-1])
		}
	}
	inf := math.Inf(1)
	// Rolling two-row DP over cumulative (λ-shifted) cost and alignment
	// length, shared across rounds. Stale cells from a previous (larger)
	// problem are never read: each row writes its band window — plus the
	// sentinel cells the next row's shifted band reads — before use.
	s.prevCost = growFloats(s.prevCost, m+1)
	s.curCost = growFloats(s.curCost, m+1)
	s.prevLen = growInts(s.prevLen, m+1)
	s.curLen = growInts(s.curLen, m+1)
	prevCost, curCost := s.prevCost, s.curCost
	prevLen, curLen := s.prevLen, s.curLen
	// solve minimizes Σ(d − λ) over banded monotone alignments and
	// returns the minimizing alignment's true mean step distance.
	solve := func(lambda float64) (float64, bool) {
		for j := 0; j <= m; j++ {
			prevCost[j] = inf
			prevLen[j] = 0
		}
		prevCost[0] = 0
		for i := 1; i <= n; i++ {
			lo := max(1, i-band)
			hi := min(m, i+band)
			// Clear only what this row writes plus the cells the next
			// row's band (shifted at most one column) will read.
			for j := lo - 1; j <= min(m, hi+1); j++ {
				curCost[j] = inf
				curLen[j] = 0
			}
			for j := lo; j <= hi; j++ {
				// Choose the cheapest predecessor among match,
				// insertion and deletion; break cost ties
				// toward the longer alignment.
				bestCost, bestLen := prevCost[j-1], prevLen[j-1]
				if prevCost[j] < bestCost || (prevCost[j] == bestCost && prevLen[j] > bestLen) { //lppm:allow floatcmp -- deterministic tie-break on bit-equal path costs; a tolerance would make "tie" depend on scale
					bestCost, bestLen = prevCost[j], prevLen[j]
				}
				if curCost[j-1] < bestCost || (curCost[j-1] == bestCost && curLen[j-1] > bestLen) { //lppm:allow floatcmp -- deterministic tie-break on bit-equal path costs; a tolerance would make "tie" depend on scale
					bestCost, bestLen = curCost[j-1], curLen[j-1]
				}
				if math.IsInf(bestCost, 1) {
					continue
				}
				curCost[j] = bestCost + dist[(i-1)*width+j-lo] - lambda
				curLen[j] = bestLen + 1
			}
			prevCost, curCost = curCost, prevCost
			prevLen, curLen = curLen, prevLen
		}
		if math.IsInf(prevCost[m], 1) {
			return 0, false
		}
		// Recover the real (unshifted) mean of the minimizing path.
		return (prevCost[m] + lambda*float64(prevLen[m])) / float64(prevLen[m]), true
	}
	lambda, ok := solve(0)
	if !ok {
		return 0, fmt.Errorf("metrics: DTW band %d too narrow for lengths %d and %d", band, n, m)
	}
	const tol = 1e-9
	// Dinkelbach: λ decreases monotonically to the minimum mean; each
	// fixed point is optimal, and path-set finiteness bounds the rounds
	// (a handful in practice — the cap is a safety net).
	for iter := 0; iter < 64; iter++ {
		next, feasible := solve(lambda)
		if !feasible {
			// Cannot happen: feasibility of the banded alignment depends
			// only on the band geometry, which solve(0) above validated,
			// not on λ. Treat it as convergence rather than panic.
			return lambda, nil
		}
		if next >= lambda-tol {
			return next, nil
		}
		lambda = next
	}
	return lambda, nil
}

// DTWMeanDistance is PairwiseScratch.DTWMeanDistance with freshly allocated
// buffers — the one-shot entry point. Hot loops (the sweep engine's
// prepared metrics) hold a scratch and call the method instead.
func DTWMeanDistance(a, b []geo.Point, bandFrac float64) (float64, error) {
	var s PairwiseScratch
	return s.DTWMeanDistance(a, b, bandFrac)
}

// FrechetDistance returns the discrete Fréchet distance ("dog-leash
// distance") between the two point sequences in meters: the minimax
// displacement over monotone alignments. It is the classical companion of
// DTW for trajectory comparison — DTW averages displacement, Fréchet bounds
// its worst step. Quadratic; decimate long inputs first. The buffers come
// from the scratch; the package-level FrechetDistance allocates fresh ones.
func (s *PairwiseScratch) FrechetDistance(a, b []geo.Point) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("metrics: Fréchet of empty sequence (%d, %d points)", n, m)
	}
	s.frechetA = growFloats(s.frechetA, m)
	s.frechetB = growFloats(s.frechetB, m)
	prev, cur := s.frechetA, s.frechetB
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := geo.Equirectangular(a[i], b[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = math.Max(cur[j-1], d)
			case j == 0:
				cur[j] = math.Max(prev[j], d)
			default:
				cur[j] = math.Max(math.Min(math.Min(prev[j], prev[j-1]), cur[j-1]), d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1], nil
}

// FrechetDistance is PairwiseScratch.FrechetDistance with freshly allocated
// buffers — the one-shot entry point.
func FrechetDistance(a, b []geo.Point) (float64, error) {
	var s PairwiseScratch
	return s.FrechetDistance(a, b)
}

// decimate returns at most maxN points sampled uniformly (by index) from
// pts, always keeping the first and last point. maxN ≤ 0 disables
// decimation.
func decimate(pts []geo.Point, maxN int) []geo.Point {
	if maxN <= 0 || len(pts) <= maxN {
		return pts
	}
	out := make([]geo.Point, 0, min(maxN, len(pts)))
	return appendDecimatedPoints(out, pts, maxN)
}

// decimationIndex returns the source index of output point i when
// decimating n points down to maxN < n: uniform by index, always keeping
// the first and last point. maxN == 1 has no room for both endpoints; the
// middle point is the least bad single representative. Both decimation
// paths (record-based and point-slice-based) draw their indices here, so
// they pick identical points by construction.
func decimationIndex(i, n, maxN int) int {
	if maxN == 1 {
		return n / 2
	}
	return i * (n - 1) / (maxN - 1)
}

// appendDecimated appends the trace's decimated point sequence to dst
// without materializing the full point slice first — the zero-alloc
// counterpart of decimate(t.Points(), maxN) for reused buffers.
func appendDecimated(dst []geo.Point, t *trace.Trace, maxN int) []geo.Point {
	if maxN <= 0 || t.Len() <= maxN {
		for _, r := range t.Records {
			dst = append(dst, r.Point)
		}
		return dst
	}
	for i := 0; i < maxN; i++ {
		dst = append(dst, t.Records[decimationIndex(i, t.Len(), maxN)].Point)
	}
	return dst
}

// appendDecimatedPoints is appendDecimated over an already-materialized
// point slice.
func appendDecimatedPoints(dst, pts []geo.Point, maxN int) []geo.Point {
	if maxN <= 0 || len(pts) <= maxN {
		return append(dst, pts...)
	}
	for i := 0; i < maxN; i++ {
		dst = append(dst, pts[decimationIndex(i, len(pts), maxN)])
	}
	return dst
}
