package metrics

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Allocation regressions: the hot evaluation loop must stay near-zero-alloc
// in steady state — these tests pin the contract so a refactor that
// reintroduces per-call buffers fails loudly rather than silently slowing
// every sweep.

// allocSequences builds two jittered trajectories of the DTW benchmark
// scale.
func allocSequences(n, m int) (a, b []geo.Point) {
	r := rng.New(7)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	a = make([]geo.Point, n)
	for i := range a {
		a[i] = base.Offset(float64(i)*12, r.NormFloat64()*30)
	}
	b = make([]geo.Point, m)
	for i := range b {
		b[i] = base.Offset(float64(i)*12+r.NormFloat64()*50, r.NormFloat64()*50)
	}
	return a, b
}

func TestDTWMeanDistanceScratchAllocs(t *testing.T) {
	a, b := allocSequences(400, 380)
	var s PairwiseScratch
	if _, err := s.DTWMeanDistance(a, b, 0.1); err != nil { // warm up buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.DTWMeanDistance(a, b, 0.1); err != nil {
			t.Error(err)
		}
	})
	if allocs > 2 {
		t.Errorf("scratch DTWMeanDistance allocates %v per run, want <= 2", allocs)
	}
}

func TestFrechetDistanceScratchAllocs(t *testing.T) {
	a, b := allocSequences(400, 380)
	var s PairwiseScratch
	if _, err := s.FrechetDistance(a, b); err != nil { // warm up buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.FrechetDistance(a, b); err != nil {
			t.Error(err)
		}
	})
	if allocs > 2 {
		t.Errorf("scratch FrechetDistance allocates %v per run, want <= 2", allocs)
	}
}

func TestPreparedPOIRetrievalAllocs(t *testing.T) {
	actual := prepTestTrace(t, "u1", 300, 11)
	protected := jitter(t, actual, 60, 1, 12)
	m := MustPOIRetrieval(DefaultPOIRetrievalConfig())
	prep := m.Prepare(actual)
	if _, err := prep.Evaluate(protected); err != nil { // warm up scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := prep.Evaluate(protected); err != nil {
			t.Error(err)
		}
	})
	if allocs > 2 {
		t.Errorf("prepared POIRetrieval.Evaluate allocates %v per run, want <= 2", allocs)
	}
}

func TestPreparedTrajectorySimilarityAllocs(t *testing.T) {
	actual := prepTestTrace(t, "u1", 500, 13)
	protected := jitter(t, actual, 60, 1, 14)
	m := MustTrajectorySimilarity(DefaultTrajectorySimilarityConfig())
	prep := m.Prepare(actual)
	if _, err := prep.Evaluate(protected); err != nil { // warm up scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := prep.Evaluate(protected); err != nil {
			t.Error(err)
		}
	})
	if allocs > 2 {
		t.Errorf("prepared TrajectorySimilarity.Evaluate allocates %v per run, want <= 2", allocs)
	}
}
