// Package journal is a crash-safe append-only log for the serving
// gateway's per-user stream state. It checkpoints each user at window
// boundaries (rng draw position, window counters, pending buffer, the
// protected window just produced) and the deployment at swap time, into
// length-prefixed CRC-32C-framed segments. Every segment begins with a
// full snapshot of the folded state, so recovery cost is bounded by the
// live user set, not by history: opening the journal folds the newest
// decodable snapshot-headed segment plus its tail of incremental records.
//
// Durability contract: a checkpoint is appended (and fsynced) *before*
// the window it describes is emitted downstream, so any output a client
// has observed is covered by the journal. Torn tails — a crash mid-frame
// — truncate to the last valid record; the retained-window ring in the
// folded state lets the server re-serve the small emit-vs-delivery gap on
// reconnect (see /v1/replay in internal/server).
package journal

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/trace"
)

// Segment names sort lexically in creation order.
const segPattern = "wal-%08d.log"

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("journal: writer closed")

// Options configure a Writer. The zero value is usable: OS filesystem,
// fsync on every append, rotation every 4096 appends, 8 retained windows
// per user.
type Options struct {
	// FS is the filesystem seam; nil means the host filesystem.
	FS FS
	// SyncEvery fsyncs after every Nth append; <=1 syncs every append
	// (the default, and what the crash-matrix equivalence proof assumes).
	// Values >1 enable group commit: frames are buffered in memory and
	// written+fsynced together at the cadence, so a crash can lose up to
	// SyncEvery-1 checkpoints of tail. That tail is recoverable without
	// breaking bit-identity — the checkpointed rng position makes
	// re-protection of resent records deterministic, and the client's
	// resume path count-skips regenerated windows it already delivered.
	SyncEvery int
	// CompactEvery rotates to a fresh snapshot-headed segment after this
	// many appends; <=0 means 4096.
	CompactEvery int
	// RetainWindows bounds the per-user replay ring in the folded state;
	// <=0 means 8.
	RetainWindows int
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncEvery <= 1 {
		o.SyncEvery = 1
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 4096
	}
	if o.RetainWindows <= 0 {
		o.RetainWindows = 8
	}
	return o
}

// Stats is a point-in-time snapshot of writer activity, exported as
// lppm_journal_* metrics by the gateway.
type Stats struct {
	// Appends counts checkpoint/deploy records appended.
	Appends uint64
	// Snapshots counts snapshot frames written (Install + rotations).
	Snapshots uint64
	// Bytes counts payload+frame bytes written.
	Bytes uint64
	// Errors counts append/sync failures (the first also latches the
	// writer's sticky error).
	Errors uint64
	// Segment is the current segment index.
	Segment int
}

// OpenInfo describes what Open found on disk.
type OpenInfo struct {
	// Resumed is true when a decodable snapshot-headed segment was found.
	Resumed bool
	// Segments is how many candidate segment files were scanned.
	Segments int
	// Entries is how many records were folded into the returned state.
	Entries int
	// Corrupted is true when any scanned segment ended in a torn or
	// corrupt frame (recovery still succeeds: the log truncates to the
	// last valid record).
	Corrupted bool
}

// Writer is the append side of the journal. It maintains the folded
// State incrementally, so State() is always exactly what re-folding the
// on-disk log would produce — the property the recovery tests assert.
//
// A Writer is safe for concurrent use; appends are serialized.
type Writer struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         File
	seg       int    // current segment index, -1 before Install
	appends   int    // appends into the current segment (for rotation)
	unsynced  int    // appends since the last fsync
	wbuf      []byte // frames encoded but not yet written (group commit)
	state     *State
	stats     Stats
	stickyErr error

	// durableIn maps user → the In counter as of the last fsync that
	// covered one of their checkpoints. Under group commit the folded
	// state runs ahead of the disk; UserResume reports this value so a
	// client never trims its send buffer below what a crash could lose.
	// With SyncEvery=1 it always equals the folded In.
	durableIn map[string]uint64
	// pendingIn lists users checkpointed since the last fsync, awaiting
	// promotion into durableIn.
	pendingIn []string
}

// wbufFlushBytes bounds the group-commit buffer: once it grows past this
// the frames are written (but not fsynced) so memory stays flat even at
// very large SyncEvery cadences.
const wbufFlushBytes = 64 << 10

// Open scans dir for journal segments and folds them into a State.
// It returns a Writer that cannot append yet: the caller must Install
// the (possibly adjusted) state first, which starts a fresh compacted
// segment and removes the old ones — every process start is a
// compaction. A nil State is returned when no decodable segment exists
// (fresh directory, or nothing but torn heads).
//
// The fold rule: segments are scanned in ascending order; a segment
// whose first frame is a valid snapshot resets the state and its
// remaining records fold on top. A segment without a decodable leading
// snapshot (a crash during rotation before the snapshot frame was
// durable) is skipped wholesale — its records would be incremental
// against a state that never became durable. Mid-segment corruption
// truncates that segment to its last valid record. Applying these rules
// twice is idempotent, which is what makes a crash *during recovery*
// (after Install wrote a partial segment) safe: the torn head is skipped
// and the previous segments fold exactly as before.
func Open(dir string, opts Options) (*Writer, *State, *OpenInfo, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	names, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("journal: scan dir: %w", err)
	}
	info := &OpenInfo{}
	var st *State
	maxSeg := -1
	for _, name := range names {
		var idx int
		if n, serr := fmt.Sscanf(name, segPattern, &idx); serr != nil || n != 1 {
			continue // foreign file; leave it alone
		}
		info.Segments++
		if idx > maxSeg {
			maxSeg = idx
		}
		entries, corrupt := readSegment(opts.FS, join(dir, name))
		if corrupt {
			info.Corrupted = true
		}
		if len(entries) == 0 || entries[0].kind != kindSnapshot {
			continue // torn rotation head: skip wholesale
		}
		for _, e := range entries {
			st = st.apply(e, opts.RetainWindows)
			info.Entries++
		}
	}
	info.Resumed = st != nil
	w := &Writer{dir: dir, opts: opts, seg: maxSeg, stickyErr: errNoSegment}
	w.stats.Segment = maxSeg
	return w, st, info, nil
}

var errNoSegment = errors.New("journal: no segment open (Install first)")

// readSegment reads and decodes one segment file. Read errors and
// decode errors both count as corruption; whatever decoded up to that
// point is returned. apply(kindSnapshot) replaces the state outright, so
// folding a stale segment before a newer snapshot-headed one is harmless.
func readSegment(fs FS, path string) (entries []entry, corrupt bool) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, true
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil || cerr != nil {
		return nil, true
	}
	entries, _, derr := decodeSegment(data)
	return entries, derr != nil
}

// Install makes st the journal's state: it writes a fresh segment whose
// only content is a snapshot of st, fsyncs it, and removes every older
// segment. Called once at startup (service.Recover) before any append;
// rotation reuses the same path.
func (w *Writer) Install(st *State) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.stickyErr, ErrClosed) {
		return w.stickyErr
	}
	w.state = st.Clone()
	w.stickyErr = nil
	// Frames buffered before a failed install belong to the state being
	// replaced; never flush them into the segment about to be abandoned.
	w.wbuf = w.wbuf[:0]
	return w.rotateLocked()
}

// rotateLocked starts segment seg+1 with a snapshot of the current
// state, then deletes all older segments. Any failure latches the sticky
// error: a journal that cannot make its snapshot durable must not accept
// appends that would silently build on a torn base.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		// Flush and sync before abandoning the old segment so its tail
		// records are durable even if snapshot creation fails midway.
		if err := w.flushLocked(); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return w.fail(fmt.Errorf("journal: sync before rotate: %w", err))
		}
		if err := w.f.Close(); err != nil {
			return w.fail(fmt.Errorf("journal: close before rotate: %w", err))
		}
		w.f = nil
	}
	w.seg++
	name := fmt.Sprintf(segPattern, w.seg)
	f, err := w.opts.FS.Create(join(w.dir, name))
	if err != nil {
		return w.fail(fmt.Errorf("journal: create segment %s: %w", name, err))
	}
	w.f = f
	w.appends = 0
	w.unsynced = 0
	frame := appendFrame(nil, encodeEntry(entry{kind: kindSnapshot, snap: w.state}))
	if err := writeAll(f, frame); err != nil {
		return w.fail(fmt.Errorf("journal: write snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return w.fail(fmt.Errorf("journal: sync snapshot: %w", err))
	}
	w.stats.Snapshots++
	w.stats.Bytes += uint64(len(frame))
	w.stats.Segment = w.seg
	// The snapshot just fsynced covers the entire folded state, so every
	// user's In is durable as of now.
	w.durableIn = make(map[string]uint64)
	w.pendingIn = w.pendingIn[:0]
	if w.state != nil {
		for u, us := range w.state.Users {
			w.durableIn[u] = us.In
		}
	}
	// The new snapshot-headed segment is durable; older segments are now
	// redundant. Removal failures are non-fatal (stale segments are
	// superseded at fold time) but still latch an error count.
	names, err := w.opts.FS.ReadDir(w.dir)
	if err != nil {
		w.stats.Errors++
		return nil
	}
	for _, n := range names {
		var idx int
		if cnt, serr := fmt.Sscanf(n, segPattern, &idx); serr != nil || cnt != 1 || idx >= w.seg {
			continue
		}
		if rerr := w.opts.FS.Remove(join(w.dir, n)); rerr != nil {
			w.stats.Errors++
		}
	}
	return nil
}

// fail latches err as the writer's sticky error and returns it.
func (w *Writer) fail(err error) error {
	w.stats.Errors++
	w.stickyErr = err
	return err
}

// writeAll writes b fully, converting short writes into errors.
func writeAll(f File, b []byte) error {
	n, err := f.Write(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return io.ErrShortWrite
	}
	return nil
}

// AppendCheckpoint journals one user checkpoint. On success the record
// is durable per Options.SyncEvery and folded into the writer's state.
// Write-ahead discipline: the gateway calls this before emitting the
// checkpointed window downstream, and must not emit if it fails.
func (w *Writer) AppendCheckpoint(cp Checkpoint) error {
	return w.append(entry{kind: kindCheckpoint, cp: cp})
}

// AppendDeploy journals a deployment swap. The gateway calls this before
// installing the deployment, so recovery never resumes into a generation
// the journal has not seen.
func (w *Writer) AppendDeploy(d Deployment) error {
	return w.append(entry{kind: kindDeploy, dep: d})
}

func (w *Writer) append(e entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stickyErr != nil {
		return w.stickyErr
	}
	if w.appends >= w.opts.CompactEvery {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	before := len(w.wbuf)
	w.wbuf = appendEntryFrame(w.wbuf, e)
	frameLen := len(w.wbuf) - before
	w.appends++
	w.unsynced++
	synced := false
	if w.unsynced >= w.opts.SyncEvery {
		if err := w.flushLocked(); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return w.fail(fmt.Errorf("journal: sync: %w", err))
		}
		w.unsynced = 0
		synced = true
	} else if len(w.wbuf) >= wbufFlushBytes {
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	w.state = w.state.apply(e, w.opts.RetainWindows)
	if e.kind == kindCheckpoint {
		w.pendingIn = append(w.pendingIn, e.cp.User)
	}
	if synced {
		w.promoteDurableLocked()
	}
	w.stats.Appends++
	w.stats.Bytes += uint64(frameLen)
	return nil
}

// promoteDurableLocked records the folded In of every user checkpointed
// since the last fsync: the fsync that just completed made those
// checkpoints durable. Called only after a successful sync covering the
// whole buffered tail.
func (w *Writer) promoteDurableLocked() {
	if len(w.pendingIn) == 0 {
		return
	}
	if w.durableIn == nil {
		w.durableIn = make(map[string]uint64, len(w.pendingIn))
	}
	for _, u := range w.pendingIn {
		if us := w.state.Users[u]; us != nil {
			w.durableIn[u] = us.In
		}
	}
	w.pendingIn = w.pendingIn[:0]
}

// flushLocked writes the buffered frames to the current segment. A write
// failure latches the sticky error — buffered records are lost with the
// segment tail, exactly as an unsynced tail is lost in a crash.
func (w *Writer) flushLocked() error {
	if len(w.wbuf) == 0 {
		return nil
	}
	if err := writeAll(w.f, w.wbuf); err != nil {
		return w.fail(fmt.Errorf("journal: append: %w", err))
	}
	w.wbuf = w.wbuf[:0]
	return nil
}

// State returns a deep copy of the folded journal state — what recovery
// would reconstruct if the process died now (modulo an unsynced tail).
func (w *Writer) State() *State {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == nil {
		return nil
	}
	return w.state.Clone()
}

// UserResume returns the replay-relevant counters and retained windows
// for one user, or nil if the journal has no checkpoint for them. Used
// by the server's /v1/resume and /v1/replay endpoints.
func (w *Writer) UserResume(user string) *UserState {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == nil {
		return nil
	}
	us := w.state.Users[user]
	if us == nil {
		return nil
	}
	cl := us.clone()
	// In stays the folded (live) value — what the gateway has absorbed,
	// which a client must not resend to a live server. DurableIn is what
	// a crash cannot lose: the client trims its buffer only to DurableIn,
	// so if the write-behind tail is lost it can still refill the journal
	// by resending, and deterministic re-protection keeps the output
	// bit-identical. Zero (never synced) keeps the client's whole buffer.
	cl.DurableIn = w.durableIn[user]
	return cl
}

// Stats returns a snapshot of writer activity.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Err returns the writer's sticky error, if any (nil while healthy).
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.stickyErr, errNoSegment) {
		return nil
	}
	return w.stickyErr
}

// Close syncs and closes the current segment. The writer rejects all
// further operations. Close after a sticky append/sync failure still
// releases the file handle but reports that earlier failure: a journal
// that failed mid-run did not close cleanly, and callers treat any
// Close error as "journal tail may be torn".
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.stickyErr, ErrClosed) {
		return nil
	}
	var err error
	if w.stickyErr != nil && !errors.Is(w.stickyErr, errNoSegment) {
		err = w.stickyErr
	}
	if w.f != nil {
		if err == nil {
			err = w.flushLocked()
		}
		if w.unsynced > 0 && err == nil {
			err = w.f.Sync()
		}
		if err == nil {
			w.promoteDurableLocked()
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.stickyErr = ErrClosed
	if err != nil {
		w.stats.Errors++
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// ReplayFrom collects the retained protected records for user with
// absolute output index >= from, in order. It reports ok=false when the
// requested index predates the retained ring (the gap is unrecoverable
// from the journal; the client must treat its local history as
// authoritative up to the ring's start).
func (u *UserState) ReplayFrom(from uint64) (recs []trace.Record, ok bool) {
	if from >= u.Out {
		return nil, true
	}
	lo := u.Out
	for _, rw := range u.Retained {
		if rw.Start < lo {
			lo = rw.Start
		}
	}
	if from < lo {
		return nil, false
	}
	for _, rw := range u.Retained {
		for i, r := range rw.Recs {
			if rw.Start+uint64(i) >= from {
				recs = append(recs, r)
			}
		}
	}
	return recs, true
}
