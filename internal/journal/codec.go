package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Frame layout: a 4-byte little-endian payload length, a 4-byte CRC-32C
// (Castagnoli) of the payload, then the payload itself. The payload's
// first byte is the record kind; the rest is the hand-rolled binary
// encoding below — no reflection on the hot path, and byte-for-byte
// deterministic (maps are emitted in sorted key order).
const (
	frameHeader = 8
	// maxFrame bounds a single frame. The decoder rejects larger length
	// prefixes outright, so a corrupted length field can never drive an
	// allocation by the attacker-controlled value (the journal sits on
	// the same trust boundary as the network codecs, see PR 4).
	maxFrame = 16 << 20
	// maxCount bounds every element count in a payload; combined with
	// the per-element minimum sizes it keeps corrupt counts from
	// allocating ahead of the bytes that are actually present.
	maxCount = 1 << 20
)

// Record kinds.
const (
	kindSnapshot   byte = 1
	kindDeploy     byte = 2
	kindCheckpoint byte = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Deployment is the journaled serving deployment: what Gateway.Swap
// installs, by mechanism name so recovery can re-resolve the instance.
type Deployment struct {
	Generation uint64
	Mechanism  string
	Params     map[string]float64
	Overrides  map[string]map[string]float64
}

// Checkpoint is one user's stream state at a window boundary (or at
// eviction): everything needed to rebuild the stream bit-identically.
// Window carries the protected records the checkpointed flush produced —
// written ahead of emission, it is what reconnect replay serves when a
// crash outruns delivery.
type Checkpoint struct {
	User string
	// Generation is the deployment generation the stream last refreshed
	// to. Informative: recovery rebuilds streams against the journaled
	// deployment, exactly as the next flush would have.
	Generation uint64
	// RNGPos is the per-user random source's draw position (rng.Pos).
	RNGPos uint64
	// In counts input records consumed (pushed) so far.
	In uint64
	// Out counts protected records emitted so far, Window included.
	Out uint64
	// Windows counts windows flushed so far, this one included.
	Windows uint64
	// Pending is the buffered, not-yet-protected window content —
	// non-empty only for eviction checkpoints taken between boundaries.
	Pending []trace.Record
	// Window is the protected output of the flush this checkpoint
	// records; empty for eviction checkpoints.
	Window []trace.Record
}

// RetainedWindow is one journaled protected window kept in the folded
// state for reconnect replay: Recs are the protected records whose
// absolute per-user output indexes start at Start.
type RetainedWindow struct {
	Start uint64
	Recs  []trace.Record
}

// UserState is one user's folded journal state: the latest checkpoint
// plus the retained window ring.
type UserState struct {
	Checkpoint
	Retained []RetainedWindow
	// DurableIn is the In counter as of the last fsync covering one of
	// this user's checkpoints — how far a resuming client may safely trim
	// its send buffer. Not serialized: it is a property of the writer's
	// sync progress, filled in by Writer.UserResume (a fold read straight
	// off disk is durable by definition, so there In == DurableIn).
	DurableIn uint64
}

// State is the journal's folded content: the serving deployment and every
// user's latest checkpoint. Folding the journal and applying appends to an
// in-memory State commute — the Writer maintains its State incrementally
// and snapshots are exactly that State re-encoded, which is what makes
// replay verifiable: recovery re-folds the log and must land on the same
// value (asserted in tests).
type State struct {
	Seed   int64
	Deploy Deployment
	Users  map[string]*UserState
}

// NewState returns an empty state for the given seed.
func NewState(seed int64) *State {
	return &State{Seed: seed, Users: make(map[string]*UserState)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{Seed: s.Seed, Deploy: cloneDeployment(s.Deploy), Users: make(map[string]*UserState, len(s.Users))}
	for u, us := range s.Users {
		c.Users[u] = us.clone()
	}
	return c
}

func (u *UserState) clone() *UserState {
	c := &UserState{Checkpoint: u.Checkpoint}
	c.Pending = append([]trace.Record(nil), u.Pending...)
	c.Window = append([]trace.Record(nil), u.Window...)
	if len(u.Retained) > 0 {
		c.Retained = make([]RetainedWindow, len(u.Retained))
		for i, rw := range u.Retained {
			c.Retained[i] = RetainedWindow{Start: rw.Start, Recs: append([]trace.Record(nil), rw.Recs...)}
		}
	}
	return c
}

func cloneDeployment(d Deployment) Deployment {
	c := Deployment{Generation: d.Generation, Mechanism: d.Mechanism}
	if d.Params != nil {
		c.Params = make(map[string]float64, len(d.Params))
		for k, v := range d.Params {
			c.Params[k] = v
		}
	}
	if d.Overrides != nil {
		c.Overrides = make(map[string]map[string]float64, len(d.Overrides))
		for u, p := range d.Overrides {
			pc := make(map[string]float64, len(p))
			for k, v := range p {
				pc[k] = v
			}
			c.Overrides[u] = pc
		}
	}
	return c
}

// applyCheckpoint folds one checkpoint into the state, retaining at most
// retain windows per user for replay.
func (s *State) applyCheckpoint(cp Checkpoint, retain int) {
	us := s.Users[cp.User]
	if us == nil {
		us = &UserState{}
		s.Users[cp.User] = us
	}
	win := cp.Window
	start := cp.Out - uint64(len(win))
	us.Checkpoint = cp
	us.Window = nil // the window lives in the retained ring, not the head
	if len(win) > 0 {
		us.Retained = append(us.Retained, RetainedWindow{Start: start, Recs: win})
		if len(us.Retained) > retain {
			us.Retained = us.Retained[len(us.Retained)-retain:]
		}
	}
}

// applyDeploy folds a deployment swap into the state.
func (s *State) applyDeploy(d Deployment) { s.Deploy = d }

// entry is one decoded journal record.
type entry struct {
	kind byte
	cp   Checkpoint // kindCheckpoint
	dep  Deployment // kindDeploy
	snap *State     // kindSnapshot
}

// apply folds one entry into the state, returning the (possibly replaced)
// state — a snapshot resets it wholesale.
func (s *State) apply(e entry, retain int) *State {
	switch e.kind {
	case kindSnapshot:
		return e.snap
	case kindDeploy:
		s.applyDeploy(e.dep)
	case kindCheckpoint:
		s.applyCheckpoint(e.cp, retain)
	}
	return s
}

// --- encoding ---

type encoder struct{ b []byte }

func (e *encoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *encoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) records(rs []trace.Record) {
	e.u32(uint32(len(rs)))
	for i := range rs {
		r := &rs[i]
		e.str(r.User)
		e.i64(r.Time.UnixNano())
		e.f64(r.Point.Lat)
		e.f64(r.Point.Lng)
	}
}

func (e *encoder) params(p map[string]float64) {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.f64(p[k])
	}
}

func (e *encoder) deployment(d Deployment) {
	e.u64(d.Generation)
	e.str(d.Mechanism)
	e.params(d.Params)
	users := make([]string, 0, len(d.Overrides))
	for u := range d.Overrides {
		users = append(users, u)
	}
	sort.Strings(users)
	e.u32(uint32(len(users)))
	for _, u := range users {
		e.str(u)
		e.params(d.Overrides[u])
	}
}

func (e *encoder) checkpoint(cp Checkpoint) {
	e.str(cp.User)
	e.u64(cp.Generation)
	e.u64(cp.RNGPos)
	e.u64(cp.In)
	e.u64(cp.Out)
	e.u64(cp.Windows)
	e.records(cp.Pending)
	e.records(cp.Window)
}

func (e *encoder) snapshot(s *State) {
	e.i64(s.Seed)
	e.deployment(s.Deploy)
	users := make([]string, 0, len(s.Users))
	for u := range s.Users {
		users = append(users, u)
	}
	sort.Strings(users)
	e.u32(uint32(len(users)))
	for _, u := range users {
		us := s.Users[u]
		e.checkpoint(us.Checkpoint)
		e.u32(uint32(len(us.Retained)))
		for _, rw := range us.Retained {
			e.u64(rw.Start)
			e.records(rw.Recs)
		}
	}
}

// encodeEntry renders one journal record as a payload (kind byte first).
func encodeEntry(e entry) []byte {
	enc := &encoder{b: make([]byte, 0, 256)}
	enc.u8(e.kind)
	switch e.kind {
	case kindSnapshot:
		enc.snapshot(e.snap)
	case kindDeploy:
		enc.deployment(e.dep)
	case kindCheckpoint:
		enc.checkpoint(e.cp)
	}
	return enc.b
}

// appendFrame frames a payload onto dst: length, CRC-32C, payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// appendEntryFrame encodes e as a frame directly onto dst — the header is
// reserved up front and backfilled once the payload length is known, so
// the append hot path costs zero intermediate allocations or copies
// (encodeEntry+appendFrame would pay both). dst retains its capacity
// across calls via the Writer's group-commit buffer.
func appendEntryFrame(dst []byte, e entry) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	enc := encoder{b: dst}
	enc.u8(e.kind)
	switch e.kind {
	case kindSnapshot:
		enc.snapshot(e.snap)
	case kindDeploy:
		enc.deployment(e.dep)
	case kindCheckpoint:
		enc.checkpoint(e.cp)
	}
	dst = enc.b
	payload := dst[head+frameHeader:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// --- decoding ---

// cursor is a bounds-checked reader over one payload. Every accessor
// checks remaining length and latches the first failure; callers check
// err once at the end. Nothing here panics on corrupt input — the fuzz
// target's core invariant.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("journal: truncated %s at offset %d", what, c.off)
	}
}

func (c *cursor) take(n int, what string) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b)-c.off < n {
		c.fail(what)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8(what string) byte {
	b := c.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32(what string) uint32 {
	b := c.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64(what string) uint64 {
	b := c.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) i64(what string) int64   { return int64(c.u64(what)) }
func (c *cursor) f64(what string) float64 { return math.Float64frombits(c.u64(what)) }

// count reads an element count and sanity-checks it against both the
// global cap and the bytes remaining (each element needs at least min
// bytes), so a corrupt count cannot drive a huge allocation.
func (c *cursor) count(min int, what string) int {
	n := c.u32(what)
	if c.err != nil {
		return 0
	}
	if n > maxCount || int(n)*min > len(c.b)-c.off {
		c.fail(what + " count")
		return 0
	}
	return int(n)
}

func (c *cursor) str(what string) string {
	n := c.u32(what)
	if c.err != nil {
		return ""
	}
	if n > maxCount {
		c.fail(what + " length")
		return ""
	}
	b := c.take(int(n), what)
	return string(b)
}

func (c *cursor) records(what string) []trace.Record {
	// user(4+) + ts(8) + lat(8) + lng(8)
	n := c.count(28, what)
	if n == 0 {
		return nil
	}
	rs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		user := c.str(what + " user")
		ns := c.i64(what + " time")
		lat := c.f64(what + " lat")
		lng := c.f64(what + " lng")
		if c.err != nil {
			return nil
		}
		rs = append(rs, trace.Record{User: user, Time: time.Unix(0, ns).UTC(), Point: geo.Point{Lat: lat, Lng: lng}})
	}
	return rs
}

func (c *cursor) params(what string) map[string]float64 {
	n := c.count(12, what) // key(4+) + value(8)
	if n == 0 {
		// nil, not an empty map: a round-tripped state must DeepEqual
		// the in-memory one, where absent params stay nil.
		return nil
	}
	p := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := c.str(what + " key")
		v := c.f64(what + " value")
		if c.err != nil {
			return nil
		}
		p[k] = v
	}
	return p
}

func (c *cursor) deployment() Deployment {
	d := Deployment{
		Generation: c.u64("deployment generation"),
		Mechanism:  c.str("deployment mechanism"),
		Params:     c.params("deployment params"),
	}
	n := c.count(8, "overrides")
	if n > 0 {
		d.Overrides = make(map[string]map[string]float64, n)
	}
	for i := 0; i < n; i++ {
		u := c.str("override user")
		p := c.params("override params")
		if c.err != nil {
			return Deployment{}
		}
		d.Overrides[u] = p
	}
	return d
}

func (c *cursor) checkpoint() Checkpoint {
	return Checkpoint{
		User:       c.str("checkpoint user"),
		Generation: c.u64("checkpoint generation"),
		RNGPos:     c.u64("checkpoint rng position"),
		In:         c.u64("checkpoint in"),
		Out:        c.u64("checkpoint out"),
		Windows:    c.u64("checkpoint windows"),
		Pending:    c.records("checkpoint pending"),
		Window:     c.records("checkpoint window"),
	}
}

func (c *cursor) snapshot() *State {
	s := NewState(c.i64("snapshot seed"))
	s.Deploy = c.deployment()
	n := c.count(48, "snapshot users")
	for i := 0; i < n; i++ {
		us := &UserState{Checkpoint: c.checkpoint()}
		nr := c.count(12, "snapshot retained")
		for j := 0; j < nr; j++ {
			rw := RetainedWindow{Start: c.u64("retained start")}
			rw.Recs = c.records("retained records")
			us.Retained = append(us.Retained, rw)
		}
		if c.err != nil {
			return nil
		}
		s.Users[us.User] = us
	}
	return s
}

// decodeEntry parses one payload.
func decodeEntry(payload []byte) (entry, error) {
	c := &cursor{b: payload}
	e := entry{kind: c.u8("kind")}
	switch e.kind {
	case kindSnapshot:
		e.snap = c.snapshot()
	case kindDeploy:
		e.dep = c.deployment()
	case kindCheckpoint:
		e.cp = c.checkpoint()
	default:
		if c.err == nil {
			c.err = fmt.Errorf("journal: unknown record kind %d", e.kind)
		}
	}
	if c.err != nil {
		return entry{}, c.err
	}
	if c.off != len(payload) {
		return entry{}, fmt.Errorf("journal: %d trailing bytes after record", len(payload)-c.off)
	}
	return e, nil
}

// decodeSegment parses frames from data until the end or the first
// corruption: a short header, an oversized length, a CRC mismatch or an
// undecodable payload all end the scan cleanly. It returns the decoded
// entries, the number of bytes consumed by valid frames, and the error
// that stopped the scan (nil at a clean end of data) — the append-only
// log convention: a torn tail is truncation, not failure.
func decodeSegment(data []byte) (entries []entry, consumed int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return entries, off, fmt.Errorf("journal: torn frame header at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame {
			return entries, off, fmt.Errorf("journal: oversized frame (%d bytes) at offset %d", n, off)
		}
		if len(data)-off-frameHeader < int(n) {
			return entries, off, fmt.Errorf("journal: torn frame payload at offset %d", off)
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return entries, off, fmt.Errorf("journal: CRC mismatch at offset %d", off)
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			return entries, off, derr
		}
		entries = append(entries, e)
		off += frameHeader + int(n)
	}
	return entries, off, nil
}
