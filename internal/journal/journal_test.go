package journal_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/trace"
)

func rec(u string, ns int64, lat, lng float64) trace.Record {
	return trace.Record{User: u, Time: time.Unix(0, ns).UTC(), Point: geo.Point{Lat: lat, Lng: lng}}
}

func cp(u string, windows uint64) journal.Checkpoint {
	n := int64(windows)
	return journal.Checkpoint{
		User: u, RNGPos: windows * 3, In: windows * 2, Out: windows * 2, Windows: windows,
		Window: []trace.Record{rec(u, n*100+1, 1, 2), rec(u, n*100+2, 3, 4)},
	}
}

func openFresh(t *testing.T, fs *faultfs.FS, dir string, opts journal.Options) *journal.Writer {
	t.Helper()
	opts.FS = fs
	w, st, _, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st != nil {
		t.Fatalf("fresh dir folded state: %+v", st)
	}
	if err := w.Install(journal.NewState(7)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	return w
}

// reopen folds the journal as a restarted process would.
func reopen(t *testing.T, fs *faultfs.FS, dir string, opts journal.Options) (*journal.Writer, *journal.State, *journal.OpenInfo) {
	t.Helper()
	opts.FS = fs
	w, st, info, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return w, st, info
}

// TestWriterStateMatchesRefold pins the journal's core property: the
// incrementally maintained Writer.State is exactly what re-folding the
// on-disk log produces.
func TestWriterStateMatchesRefold(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{})
	for i := uint64(1); i <= 5; i++ {
		if err := w.AppendCheckpoint(cp("alice", i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.AppendDeploy(journal.Deployment{Generation: 1, Mechanism: "rounding", Params: map[string]float64{"cell_m": 100}}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if err := w.AppendCheckpoint(cp("bob", 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got, info := reopen(t, fs, "j", journal.Options{})
	if !info.Resumed || info.Corrupted {
		t.Fatalf("reopen info: %+v", info)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("refold mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Users["alice"].Windows != 5 || got.Deploy.Generation != 1 {
		t.Fatalf("folded state wrong: %+v", got)
	}
}

// frameEnds returns the byte offset after each frame in a segment.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			t.Fatalf("segment has torn frame at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + n
		ends = append(ends, off)
	}
	return ends
}

// TestTornTailTruncatesToLastRecord kills the journal at every byte
// position of the final segment and checks recovery folds exactly the
// frames that were fully durable — never an error, never a panic, and
// state equal to the fold of the surviving frame prefix.
func TestTornTailTruncatesToLastRecord(t *testing.T) {
	build := func() (*faultfs.FS, string) {
		fs := faultfs.New()
		w := openFresh(t, fs, "j", journal.Options{})
		for i := uint64(1); i <= 3; i++ {
			if err := w.AppendCheckpoint(cp("u", i)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		names := fs.Files()
		if len(names) != 1 {
			t.Fatalf("want 1 segment, have %v", names)
		}
		return fs, names[0]
	}
	fs0, name := build()
	full, err := fs0.ReadFile(name)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ends := frameEnds(t, full) // snapshot + 3 checkpoints
	if len(ends) != 4 {
		t.Fatalf("want 4 frames, have %d", len(ends))
	}
	for cut := 0; cut <= len(full); cut++ {
		fs, _ := build()
		if err := fs.TruncateFile(name, cut); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		// How many whole frames survive the cut?
		frames := 0
		for _, e := range ends {
			if cut >= e {
				frames++
			}
		}
		_, st, info := reopen(t, fs, "j", journal.Options{})
		switch {
		case frames == 0:
			// Not even the snapshot survived: nothing to resume.
			if st != nil {
				t.Fatalf("cut=%d: resumed from torn snapshot head", cut)
			}
		default:
			if st == nil {
				t.Fatalf("cut=%d: lost state with %d whole frames", cut, frames)
			}
			wantWindows := uint64(frames - 1) // snapshot + (frames-1) checkpoints
			var gotWindows uint64
			if u := st.Users["u"]; u != nil {
				gotWindows = u.Windows
			}
			if gotWindows != wantWindows {
				t.Fatalf("cut=%d: folded %d windows, want %d", cut, gotWindows, wantWindows)
			}
			// A cut exactly on a frame boundary is indistinguishable
			// from a clean shutdown; anything else must be reported.
			onBoundary := false
			for _, e := range ends {
				if cut == e {
					onBoundary = true
				}
			}
			if cut < len(full) && !onBoundary && !info.Corrupted {
				t.Fatalf("cut=%d: torn tail not reported", cut)
			}
		}
	}
}

// TestRotationCompacts pins segment rotation: after CompactEvery appends
// the writer starts a snapshot-headed segment and removes older ones,
// and a reopen folds the same state from the survivor(s).
func TestRotationCompacts(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{CompactEvery: 4})
	for i := uint64(1); i <= 10; i++ {
		if err := w.AppendCheckpoint(cp("u", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := len(fs.Files()); got > 2 {
		t.Fatalf("compaction left %d segments: %v", got, fs.Files())
	}
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got, _ := reopen(t, fs, "j", journal.Options{CompactEvery: 4})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("state after rotation:\n got %+v\nwant %+v", got, want)
	}
	if w.Stats().Snapshots < 2 {
		t.Fatalf("rotation wrote no snapshot: %+v", w.Stats())
	}
}

// TestTornRotationHead simulates a crash between segment creation and
// the snapshot frame becoming durable: the new segment is skipped
// wholesale and the previous segment still folds — and doing it twice
// (a second crash during recovery) changes nothing.
func TestTornRotationHead(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{})
	if err := w.AppendCheckpoint(cp("u", 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Plant a higher-numbered segment with a torn snapshot head.
	good, err := fs.ReadFile("j/wal-00000000.log")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	fs.WriteFile("j/wal-00000007.log", good[:5])
	for attempt := 0; attempt < 2; attempt++ {
		_, st, info := reopen(t, fs, "j", journal.Options{})
		if st == nil || st.Users["u"] == nil || st.Users["u"].Windows != 1 {
			t.Fatalf("attempt %d: torn head broke recovery: %+v", attempt, st)
		}
		if !info.Corrupted {
			t.Fatalf("attempt %d: torn head not reported", attempt)
		}
	}
	// A real recovery (Install) compacts past the torn head; the next
	// fold is clean.
	w2, st2, _ := reopen(t, fs, "j", journal.Options{})
	if err := w2.Install(st2); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, st3, info3 := reopen(t, fs, "j", journal.Options{})
	if info3.Corrupted || st3 == nil || st3.Users["u"].Windows != 1 {
		t.Fatalf("post-install fold: %+v %+v", st3, info3)
	}
}

// TestAppendFaults drives the writer through injected write and sync
// failures: the failed append reports the error, the writer goes sticky,
// and recovery sees only the durable prefix.
func TestAppendFaults(t *testing.T) {
	for _, mode := range []faultfs.Mode{faultfs.ModeError, faultfs.ModeShortWrite} {
		fs := faultfs.New()
		w := openFresh(t, fs, "j", journal.Options{})
		if err := w.AppendCheckpoint(cp("u", 1)); err != nil {
			t.Fatalf("mode %d: clean append failed: %v", mode, err)
		}
		fs.FailAt(1, mode)
		err := w.AppendCheckpoint(cp("u", 2))
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("mode %d: injected fault not surfaced: %v", mode, err)
		}
		if err := w.AppendCheckpoint(cp("u", 3)); err == nil {
			t.Fatalf("mode %d: writer not sticky after failure", mode)
		}
		fs.FailAt(0, mode)
		fs.Crash()
		_, st, _ := reopen(t, fs, "j", journal.Options{})
		if st == nil || st.Users["u"] == nil || st.Users["u"].Windows != 1 {
			t.Fatalf("mode %d: recovery after fault: %+v", mode, st)
		}
	}
}

// TestSyncDropCrashLosesTail pins the lying-fsync case: the append
// reports success, but a crash reverts to the last truly synced prefix
// and recovery folds one window fewer — exactly the torn-tail contract.
func TestSyncDropCrashLosesTail(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{})
	if err := w.AppendCheckpoint(cp("u", 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	fs.FailAt(2, faultfs.ModeSyncDrop) // next append: write op 1 ok, sync op 2 dropped
	if err := w.AppendCheckpoint(cp("u", 2)); err != nil {
		t.Fatalf("sync-drop append should report success: %v", err)
	}
	fs.FailAt(0, faultfs.ModeSyncDrop)
	fs.Crash()
	_, st, _ := reopen(t, fs, "j", journal.Options{})
	if st == nil || st.Users["u"].Windows != 1 {
		t.Fatalf("after sync-drop crash: %+v", st)
	}
}

// TestReplayFrom pins the reconnect-replay index math over the retained
// window ring.
func TestReplayFrom(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{RetainWindows: 2})
	for i := uint64(1); i <= 4; i++ {
		if err := w.AppendCheckpoint(cp("u", i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	u := w.UserResume("u")
	if u == nil {
		t.Fatalf("no resume state")
	}
	// 4 windows x 2 records: out=8; ring retains windows 3,4 → indexes 4..7.
	if recs, ok := u.ReplayFrom(8); !ok || len(recs) != 0 {
		t.Fatalf("replay at head: %v %v", recs, ok)
	}
	if recs, ok := u.ReplayFrom(5); !ok || len(recs) != 3 {
		t.Fatalf("replay mid-ring: %d records, ok=%v (want 3)", len(recs), ok)
	}
	if recs, ok := u.ReplayFrom(4); !ok || len(recs) != 4 {
		t.Fatalf("replay ring start: %d records, ok=%v (want 4)", len(recs), ok)
	}
	if _, ok := u.ReplayFrom(3); ok {
		t.Fatalf("replay before ring start must report unrecoverable")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestWriterLifecycle pins the small contracts: append before Install
// fails, Close is idempotent, operations after Close fail, UserResume of
// an unknown user is nil, and foreign files in the directory are left
// alone.
func TestWriterLifecycle(t *testing.T) {
	fs := faultfs.New()
	fs.WriteFile("j/README.txt", []byte("not a segment"))
	w, st, info, err := journal.Open("j", journal.Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st != nil || info.Segments != 0 {
		t.Fatalf("foreign file treated as segment: %+v", info)
	}
	if err := w.AppendCheckpoint(cp("u", 1)); err == nil {
		t.Fatalf("append before Install accepted")
	}
	if err := w.Install(journal.NewState(7)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if got := w.UserResume("ghost"); got != nil {
		t.Fatalf("resume for unknown user: %+v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.AppendCheckpoint(cp("u", 1)); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := fs.ReadFile("j/README.txt"); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
}

// TestInstallCompactsOldSegments pins that every process start is a
// compaction: N segments in, one out, same state.
func TestInstallCompactsOldSegments(t *testing.T) {
	fs := faultfs.New()
	w := openFresh(t, fs, "j", journal.Options{CompactEvery: 2})
	for i := uint64(1); i <= 7; i++ {
		if err := w.AppendCheckpoint(cp(fmt.Sprintf("u%d", i), i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	w2, st, _ := reopen(t, fs, "j", journal.Options{})
	if err := w2.Install(st); err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := len(fs.Files()); got != 1 {
		t.Fatalf("install left %d segments: %v", got, fs.Files())
	}
	if !reflect.DeepEqual(w2.State(), st) {
		t.Fatalf("install changed state")
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
