package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// fuzzSeedState builds a representative state for seeding the fuzzer.
func fuzzSeedState() *State {
	rec := func(u string, ns int64, lat, lng float64) trace.Record {
		return trace.Record{User: u, Time: time.Unix(0, ns).UTC(), Point: geo.Point{Lat: lat, Lng: lng}}
	}
	st := NewState(42)
	st.Deploy = Deployment{
		Generation: 3,
		Mechanism:  "geo-indistinguishability",
		Params:     map[string]float64{"epsilon": 1.5},
		Overrides:  map[string]map[string]float64{"u2": {"epsilon": 0.7}},
	}
	st.applyCheckpoint(Checkpoint{
		User: "u1", Generation: 3, RNGPos: 17, In: 8, Out: 8, Windows: 2,
		Pending: []trace.Record{rec("u1", 123456789, 48.85, 2.35)},
		Window:  []trace.Record{rec("u1", 123456790, 48.86, 2.36), rec("u1", 123456791, 48.87, 2.37)},
	}, 8)
	return st
}

// fuzzSeedSegment renders the seed state as journal bytes: a snapshot
// frame followed by a checkpoint and a deploy frame.
func fuzzSeedSegment() []byte {
	st := fuzzSeedState()
	b := appendFrame(nil, encodeEntry(entry{kind: kindSnapshot, snap: st}))
	b = appendFrame(b, encodeEntry(entry{kind: kindCheckpoint, cp: Checkpoint{
		User: "u3", RNGPos: 5, In: 4, Out: 4, Windows: 1,
		Window: []trace.Record{{User: "u3", Time: time.Unix(0, 9).UTC(), Point: geo.Point{Lat: 1, Lng: 2}}},
	}}))
	b = appendFrame(b, encodeEntry(entry{kind: kindDeploy, dep: Deployment{Generation: 4, Mechanism: "rounding"}}))
	return b
}

// FuzzDecode drives the segment decoder with arbitrary bytes. The
// decoder sits on the crash-recovery trust boundary: whatever a torn,
// bit-flipped or hostile journal file contains, it must recover to the
// last valid record and never panic. The invariants checked are the
// append-only log contract: (1) no panic (the fuzzer's own crash
// detection), (2) consumed never exceeds input and always lands on a
// frame boundary of the valid prefix, (3) re-decoding the consumed
// prefix yields the same entries with no error — corruption is confined
// to the torn tail, (4) whatever decoded re-encodes and re-decodes to
// the same frames (round-trip stability).
func FuzzDecode(f *testing.F) {
	seg := fuzzSeedSegment()
	f.Add(seg)
	// Truncated tails at interesting offsets.
	f.Add(seg[:len(seg)-1])
	f.Add(seg[:frameHeader+1])
	f.Add(seg[:frameHeader-3])
	// Bit-flipped CRC and bit-flipped payload.
	flip := append([]byte(nil), seg...)
	flip[5] ^= 0x40
	f.Add(flip)
	flip2 := append([]byte(nil), seg...)
	flip2[frameHeader+3] ^= 0x01
	f.Add(flip2)
	// Oversized frame length prefix with no data behind it.
	over := binary.LittleEndian.AppendUint32(nil, maxFrame+1)
	over = binary.LittleEndian.AppendUint32(over, 0)
	f.Add(over)
	// Huge element count inside a structurally valid frame.
	p := []byte{kindCheckpoint}
	p = binary.LittleEndian.AppendUint32(p, 0) // user ""
	for i := 0; i < 5; i++ {
		p = binary.LittleEndian.AppendUint64(p, 1)
	}
	p = binary.LittleEndian.AppendUint32(p, 1<<30) // pending count lies
	f.Add(appendFrame(nil, p))
	f.Add([]byte{})
	f.Add([]byte("go test fuzz corpus"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, consumed, _ := decodeSegment(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(data))
		}
		// (3) the consumed prefix is fully valid on its own.
		again, consumed2, err2 := decodeSegment(data[:consumed])
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if consumed2 != consumed || len(again) != len(entries) {
			t.Fatalf("prefix re-decode: %d bytes/%d entries, want %d/%d",
				consumed2, len(again), consumed, len(entries))
		}
		// (4) decoded entries re-encode and re-decode stably.
		var re []byte
		for _, e := range entries {
			re = appendFrame(re, encodeEntry(e))
		}
		rt, rtc, rterr := decodeSegment(re)
		if rterr != nil || rtc != len(re) {
			t.Fatalf("re-encoded entries failed to decode: %v (%d/%d bytes)", rterr, rtc, len(re))
		}
		if len(rt) != len(entries) {
			t.Fatalf("round trip lost entries: %d, want %d", len(rt), len(entries))
		}
		// Folding must also be panic-free whatever decoded.
		var st *State
		for _, e := range entries {
			st = st.apply(e, 4)
		}
		_ = st
	})
}

// TestCodecRoundTrip pins the encode/decode pair on a fully populated
// state: every field survives, including sub-second timestamps (the
// NDJSON wire truncates to seconds; the journal must not).
func TestCodecRoundTrip(t *testing.T) {
	seg := fuzzSeedSegment()
	entries, consumed, err := decodeSegment(seg)
	if err != nil || consumed != len(seg) {
		t.Fatalf("decodeSegment: %v, consumed %d of %d", err, consumed, len(seg))
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	st := fuzzSeedState()
	got := entries[0].snap
	if got.Seed != st.Seed {
		t.Errorf("seed %d, want %d", got.Seed, st.Seed)
	}
	if got.Deploy.Overrides["u2"]["epsilon"] != 0.7 {
		t.Errorf("override lost: %+v", got.Deploy.Overrides)
	}
	u1 := got.Users["u1"]
	if u1 == nil {
		t.Fatalf("user u1 lost")
	}
	if u1.RNGPos != 17 || u1.In != 8 || u1.Out != 8 || u1.Windows != 2 {
		t.Errorf("counters lost: %+v", u1.Checkpoint)
	}
	if len(u1.Pending) != 1 || u1.Pending[0].Time.UnixNano() != 123456789 {
		t.Errorf("pending lost sub-second precision: %+v", u1.Pending)
	}
	if len(u1.Retained) != 1 || u1.Retained[0].Start != 6 || len(u1.Retained[0].Recs) != 2 {
		t.Errorf("retained ring: %+v", u1.Retained)
	}
	if entries[2].dep.Generation != 4 || entries[2].dep.Mechanism != "rounding" {
		t.Errorf("deploy entry: %+v", entries[2].dep)
	}
}

// TestDecodeRejectsTrailingBytes pins that a frame whose payload decodes
// but leaves unconsumed bytes is corruption, not silently accepted.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	p := encodeEntry(entry{kind: kindDeploy, dep: Deployment{Generation: 1, Mechanism: "m"}})
	p = append(p, 0xEE)
	if _, err := decodeEntry(p); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

// TestRegenFuzzCorpus writes the committed seed corpus for FuzzDecode —
// the torn-tail, bit-flipped-CRC and oversized-frame cases named in the
// package contract — so `go test -run Fuzz` exercises them even without
// -fuzz. Gated behind an env var: it regenerates testdata, it does not
// test. Run with JOURNAL_REGEN_CORPUS=1 after changing the format.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("JOURNAL_REGEN_CORPUS") == "" {
		t.Skip("set JOURNAL_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzDecode")
	}
	seg := fuzzSeedSegment()
	flip := append([]byte(nil), seg...)
	flip[5] ^= 0x40
	over := binary.LittleEndian.AppendUint32(nil, maxFrame+1)
	over = binary.LittleEndian.AppendUint32(over, 0xDEAD)
	over = append(over, []byte("payload that is not really there")...)
	lie := []byte{kindCheckpoint}
	lie = binary.LittleEndian.AppendUint32(lie, 0)
	for i := 0; i < 5; i++ {
		lie = binary.LittleEndian.AppendUint64(lie, 1)
	}
	lie = binary.LittleEndian.AppendUint32(lie, 1<<30)
	corpus := map[string][]byte{
		"valid_segment":   seg,
		"truncated_tail":  seg[:len(seg)-7],
		"torn_header":     seg[:frameHeader-3],
		"flipped_crc":     flip,
		"oversized_frame": over,
		"lying_count":     appendFrame(nil, lie),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
