package journal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the journal writes through. Production uses
// OSFS; the fault-injection harness (internal/faultfs) substitutes an
// in-memory implementation that can fail, short-write or drop fsyncs at
// the Nth operation and then simulate a crash. The interface is the
// minimal surface a segmented append-only log needs — no renames, no
// seeks: segments are created once, appended, and removed.
type FS interface {
	// MkdirAll creates the directory (and parents) if absent.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir, in any order.
	ReadDir(dir string) ([]string, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
}

// File is one open journal segment.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
}

// OSFS is the production FS: the host filesystem via package os.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Remove(name string) error { return os.Remove(name) }

// join builds a path inside the journal directory. Segments never nest,
// so plain filepath.Join suffices for every FS implementation.
func join(dir, name string) string { return filepath.Join(dir, name) }
