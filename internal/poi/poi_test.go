package poi

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	anchor = geo.Point{Lat: 37.7749, Lng: -122.4194}
	away   = anchor.Offset(3000, 1500)
)

// buildTrace assembles a trace from (point, minutes) steps 1 minute apart.
func buildTrace(t *testing.T, steps []geo.Point) *trace.Trace {
	t.Helper()
	recs := make([]trace.Record, len(steps))
	for i, p := range steps {
		recs[i] = trace.Record{User: "u", Time: t0.Add(time.Duration(i) * time.Minute), Point: p}
	}
	tr, err := trace.NewTrace("u", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// stayAt emits n samples jittered a few meters around p.
func stayAt(p geo.Point, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = p.Offset(float64(i%5)*3, float64(i%3)*3)
	}
	return pts
}

// travel emits points moving from a toward b in ~150 m steps.
func travel(a, b geo.Point, n int) []geo.Point {
	pts := make([]geo.Point, n)
	pr := geo.NewProjection(a)
	e, nn := pr.ToPlane(b)
	for i := range pts {
		f := float64(i+1) / float64(n+1)
		pts[i] = pr.FromPlane(e*f, nn*f)
	}
	return pts
}

func defaultExtractor(t *testing.T) *Extractor {
	t.Helper()
	e, err := NewExtractor(DefaultExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStayPointsDetectsSingleStop(t *testing.T) {
	var steps []geo.Point
	steps = append(steps, stayAt(anchor, 30)...)       // 30 min stop
	steps = append(steps, travel(anchor, away, 25)...) // travel
	tr := buildTrace(t, steps)

	stays := defaultExtractor(t).StayPoints(tr)
	if len(stays) != 1 {
		t.Fatalf("stays = %d, want 1", len(stays))
	}
	s := stays[0]
	if d := geo.Equirectangular(s.Center, anchor); d > 30 {
		t.Errorf("stay center %v m from anchor", d)
	}
	if s.Duration() < 25*time.Minute {
		t.Errorf("stay duration = %v", s.Duration())
	}
	if s.Count < 25 {
		t.Errorf("stay count = %d", s.Count)
	}
}

func TestStayPointsIgnoresShortStops(t *testing.T) {
	var steps []geo.Point
	steps = append(steps, stayAt(anchor, 5)...) // 5 min < 15 min threshold
	steps = append(steps, travel(anchor, away, 30)...)
	tr := buildTrace(t, steps)
	if stays := defaultExtractor(t).StayPoints(tr); len(stays) != 0 {
		t.Errorf("short stop detected as stay: %+v", stays)
	}
}

func TestStayPointsIgnoresMovement(t *testing.T) {
	tr := buildTrace(t, travel(anchor, away, 60))
	if stays := defaultExtractor(t).StayPoints(tr); len(stays) != 0 {
		t.Errorf("movement detected as stay: %+v", stays)
	}
}

func TestStayPointsMultipleStops(t *testing.T) {
	second := anchor.Offset(2000, 0)
	var steps []geo.Point
	steps = append(steps, stayAt(anchor, 20)...)
	steps = append(steps, travel(anchor, second, 15)...)
	steps = append(steps, stayAt(second, 25)...)
	tr := buildTrace(t, steps)
	stays := defaultExtractor(t).StayPoints(tr)
	if len(stays) != 2 {
		t.Fatalf("stays = %d, want 2", len(stays))
	}
	if d := geo.Equirectangular(stays[1].Center, second); d > 30 {
		t.Errorf("second stay center off by %v m", d)
	}
}

func TestPOIsMergeRepeatVisits(t *testing.T) {
	// Two separate stops at the same anchor must merge into one POI.
	var steps []geo.Point
	steps = append(steps, stayAt(anchor, 20)...)
	steps = append(steps, travel(anchor, away, 20)...)
	steps = append(steps, stayAt(away, 20)...)
	steps = append(steps, travel(away, anchor, 20)...)
	steps = append(steps, stayAt(anchor, 20)...)
	tr := buildTrace(t, steps)

	pois := defaultExtractor(t).POIs(tr)
	if len(pois) != 2 {
		t.Fatalf("POIs = %d, want 2", len(pois))
	}
	// The anchor POI has two visits and roughly double dwell.
	var anchorPOI *POI
	for i := range pois {
		if geo.Equirectangular(pois[i].Center, anchor) < 100 {
			anchorPOI = &pois[i]
		}
	}
	if anchorPOI == nil {
		t.Fatal("anchor POI not found")
	}
	if anchorPOI.Visits != 2 {
		t.Errorf("anchor visits = %d, want 2", anchorPOI.Visits)
	}
	if anchorPOI.TotalDwell < 35*time.Minute {
		t.Errorf("anchor dwell = %v", anchorPOI.TotalDwell)
	}
}

func TestPOIsMinVisitsFilter(t *testing.T) {
	cfg := DefaultExtractorConfig()
	cfg.MinVisits = 2
	e, err := NewExtractor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steps []geo.Point
	steps = append(steps, stayAt(anchor, 20)...)
	steps = append(steps, travel(anchor, away, 20)...)
	steps = append(steps, stayAt(away, 20)...) // visited once
	steps = append(steps, travel(away, anchor, 20)...)
	steps = append(steps, stayAt(anchor, 20)...) // anchor visited twice
	tr := buildTrace(t, steps)
	pois := e.POIs(tr)
	if len(pois) != 1 {
		t.Fatalf("POIs = %d, want 1 after MinVisits filter", len(pois))
	}
	if d := geo.Equirectangular(pois[0].Center, anchor); d > 100 {
		t.Errorf("surviving POI is not the anchor (off %v m)", d)
	}
}

func TestExtractorConfigValidate(t *testing.T) {
	bad := []ExtractorConfig{
		{MaxDiameterMeters: 0, MinDuration: time.Minute},
		{MaxDiameterMeters: 100, MinDuration: 0},
		{MaxDiameterMeters: 100, MinDuration: time.Minute, MergeRadiusMeters: -1},
		{MaxDiameterMeters: 100, MinDuration: time.Minute, MinVisits: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
		if _, err := NewExtractor(cfg); err == nil {
			t.Errorf("NewExtractor should reject config %d", i)
		}
	}
	if err := DefaultExtractorConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	e := defaultExtractor(t)
	if e.Config().MaxDiameterMeters != 200 {
		t.Errorf("Config() roundtrip failed: %+v", e.Config())
	}
}

func TestRetrievalRate(t *testing.T) {
	actual := []POI{
		{Center: anchor},
		{Center: away},
	}
	candidate := []POI{{Center: anchor.Offset(50, 0)}} // within 200 m of anchor only
	rate, err := RetrievalRate(actual, candidate, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.5) > 1e-12 {
		t.Errorf("rate = %v, want 0.5", rate)
	}
	// No actual POIs: nothing can leak.
	rate, err = RetrievalRate(nil, candidate, 200)
	if err != nil || rate != 0 {
		t.Errorf("empty actual: rate %v err %v", rate, err)
	}
	// No candidates: nothing retrieved.
	rate, err = RetrievalRate(actual, nil, 200)
	if err != nil || rate != 0 {
		t.Errorf("empty candidate: rate %v err %v", rate, err)
	}
	if _, err := RetrievalRate(actual, candidate, 0); err == nil {
		t.Error("zero radius should error")
	}
}

func TestRetrievalRateMonotoneInRadius(t *testing.T) {
	actual := []POI{{Center: anchor}, {Center: away}, {Center: anchor.Offset(-500, 800)}}
	candidate := []POI{{Center: anchor.Offset(120, 0)}, {Center: away.Offset(0, 350)}}
	prev := -1.0
	for _, radius := range []float64{50, 150, 300, 600, 1200} {
		rate, err := RetrievalRate(actual, candidate, radius)
		if err != nil {
			t.Fatal(err)
		}
		if rate < prev {
			t.Fatalf("retrieval not monotone in radius: %v then %v", prev, rate)
		}
		prev = rate
	}
}

func TestMatchPoints(t *testing.T) {
	refs := []geo.Point{anchor, away}
	cand := []POI{{Center: anchor.Offset(30, 30)}}
	frac, err := MatchPoints(refs, cand, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-0.5) > 1e-12 {
		t.Errorf("MatchPoints = %v, want 0.5", frac)
	}
	if frac, err := MatchPoints(nil, cand, 100); err != nil || frac != 0 {
		t.Errorf("empty reference: %v, %v", frac, err)
	}
	if _, err := MatchPoints(refs, cand, -1); err == nil {
		t.Error("negative radius should error")
	}
}

func TestStayPointDuration(t *testing.T) {
	s := StayPoint{Start: t0, End: t0.Add(20 * time.Minute)}
	if s.Duration() != 20*time.Minute {
		t.Errorf("Duration = %v", s.Duration())
	}
}
