// Package poi extracts Points of Interest — "meaningful locations where a
// user made a significant stop" (paper §2) — from mobility traces, and
// matches POI sets against each other. The paper's privacy metric is the
// proportion of a user's actual POIs still retrievable from the protected
// trace; this package provides both halves of that computation.
package poi

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// StayPoint is one significant stop: a maximal run of consecutive records
// that remain within a small diameter for at least a minimum duration.
type StayPoint struct {
	// Center is the centroid of the stop's records.
	Center geo.Point
	// Start and End bound the stop in time.
	Start, End time.Time
	// Count is the number of records in the stop.
	Count int
}

// Duration returns the dwell time of the stop.
func (s StayPoint) Duration() time.Duration { return s.End.Sub(s.Start) }

// POI is a meaningful place: one or more stay points merged by spatial
// proximity, ranked by total dwell time.
type POI struct {
	// Center is the dwell-weighted centroid of the merged stays.
	Center geo.Point
	// TotalDwell is the summed duration of all merged stays.
	TotalDwell time.Duration
	// Visits is the number of merged stay points.
	Visits int
}

// ExtractorConfig tunes POI extraction. The defaults mirror the parameters
// commonly used on cabspotting-scale data (stops of at least 15 minutes
// within a 200 m diameter, merged at 100 m).
type ExtractorConfig struct {
	// MaxDiameterMeters is the spatial extent a stop may cover.
	MaxDiameterMeters float64
	// MinDuration is the minimum dwell time of a significant stop.
	MinDuration time.Duration
	// MergeRadiusMeters merges stay points into one POI when their
	// centers are closer than this.
	MergeRadiusMeters float64
	// MinVisits drops POIs visited fewer than this many times (0 or 1
	// keeps everything).
	MinVisits int
}

// DefaultExtractorConfig returns the configuration used by the reproduction
// experiments.
func DefaultExtractorConfig() ExtractorConfig {
	return ExtractorConfig{
		MaxDiameterMeters: 200,
		MinDuration:       15 * time.Minute,
		MergeRadiusMeters: 100,
		MinVisits:         1,
	}
}

// Validate reports configuration errors.
func (c ExtractorConfig) Validate() error {
	if c.MaxDiameterMeters <= 0 {
		return fmt.Errorf("poi: MaxDiameterMeters must be positive, got %v", c.MaxDiameterMeters)
	}
	if c.MinDuration <= 0 {
		return fmt.Errorf("poi: MinDuration must be positive, got %v", c.MinDuration)
	}
	if c.MergeRadiusMeters < 0 {
		return fmt.Errorf("poi: MergeRadiusMeters must be non-negative, got %v", c.MergeRadiusMeters)
	}
	if c.MinVisits < 0 {
		return fmt.Errorf("poi: MinVisits must be non-negative, got %d", c.MinVisits)
	}
	return nil
}

// Extractor turns traces into stay points and POIs.
type Extractor struct {
	cfg ExtractorConfig
}

// NewExtractor returns an extractor, validating the configuration.
func NewExtractor(cfg ExtractorConfig) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Extractor{cfg: cfg}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() ExtractorConfig { return e.cfg }

// Scratch holds reusable extraction buffers for the evaluation hot loop:
// repeated extraction through the same scratch reuses the stay, POI and
// centroid slices instead of reallocating them per call. The zero value is
// ready to use. A Scratch is not safe for concurrent use, and slices
// returned by the *Scratch methods are only valid until the next call with
// the same scratch.
type Scratch struct {
	stays []StayPoint
	pois  []POI
	pts   []geo.Point
}

// StayPoints extracts significant stops from a trace using the classic
// anchor-based algorithm (Li et al., GIS'08): starting from each anchor
// record, grow a window while every record stays within MaxDiameterMeters of
// the anchor; if the window spans at least MinDuration it becomes a stay
// point and scanning resumes after it. The returned slice is owned by the
// caller.
func (e *Extractor) StayPoints(t *trace.Trace) []StayPoint {
	return e.StayPointsScratch(new(Scratch), t)
}

// StayPointsScratch is StayPoints drawing its working memory from s; the
// returned slice aliases the scratch and is valid until the next call.
func (e *Extractor) StayPointsScratch(s *Scratch, t *trace.Trace) []StayPoint {
	recs := t.Records
	stays := s.stays[:0]
	i := 0
	for i < len(recs) {
		j := i + 1
		for j < len(recs) && geo.Equirectangular(recs[i].Point, recs[j].Point) <= e.cfg.MaxDiameterMeters {
			j++
		}
		// Window [i, j) stays within the diameter of anchor i.
		if span := recs[j-1].Time.Sub(recs[i].Time); span >= e.cfg.MinDuration {
			pts := s.pts[:0]
			for _, r := range recs[i:j] {
				pts = append(pts, r.Point)
			}
			s.pts = pts
			stays = append(stays, StayPoint{
				Center: geo.Centroid(pts),
				Start:  recs[i].Time,
				End:    recs[j-1].Time,
				Count:  j - i,
			})
			i = j
		} else {
			i++
		}
	}
	s.stays = stays
	return stays
}

// POIs extracts stay points and agglomerates them into POIs: each stay joins
// the first existing POI whose center is within MergeRadiusMeters (centers
// updated as dwell-weighted means), or founds a new POI. POIs with fewer
// than MinVisits visits are dropped. The returned slice is owned by the
// caller.
func (e *Extractor) POIs(t *trace.Trace) []POI {
	return e.POIsScratch(new(Scratch), t)
}

// POIsScratch is POIs drawing its working memory from s; the returned slice
// aliases the scratch and is valid until the next call.
func (e *Extractor) POIsScratch(s *Scratch, t *trace.Trace) []POI {
	stays := e.StayPointsScratch(s, t)
	pois := s.pois[:0]
	for _, s := range stays {
		merged := false
		for k := range pois {
			if geo.Equirectangular(pois[k].Center, s.Center) <= e.cfg.MergeRadiusMeters {
				w1 := pois[k].TotalDwell.Seconds()
				w2 := s.Duration().Seconds()
				if w1+w2 > 0 {
					f := w2 / (w1 + w2)
					pois[k].Center = geo.Point{
						Lat: pois[k].Center.Lat*(1-f) + s.Center.Lat*f,
						Lng: pois[k].Center.Lng*(1-f) + s.Center.Lng*f,
					}
				}
				pois[k].TotalDwell += s.Duration()
				pois[k].Visits++
				merged = true
				break
			}
		}
		if !merged {
			pois = append(pois, POI{Center: s.Center, TotalDwell: s.Duration(), Visits: 1})
		}
	}
	if e.cfg.MinVisits > 1 {
		kept := pois[:0]
		for _, p := range pois {
			if p.Visits >= e.cfg.MinVisits {
				kept = append(kept, p)
			}
		}
		pois = kept
	}
	s.pois = pois
	return pois
}

// RetrievalRate returns the fraction of actual POIs that are "retrieved" by
// the candidate set: an actual POI counts as retrieved when some candidate
// POI lies within matchRadiusMeters of it. It returns 0 when there are no
// actual POIs (nothing to leak) and an error for a non-positive radius.
func RetrievalRate(actual, candidate []POI, matchRadiusMeters float64) (float64, error) {
	if matchRadiusMeters <= 0 {
		return 0, fmt.Errorf("poi: match radius must be positive, got %v", matchRadiusMeters)
	}
	if len(actual) == 0 {
		return 0, nil
	}
	retrieved := 0
	for _, a := range actual {
		for _, c := range candidate {
			if geo.Equirectangular(a.Center, c.Center) <= matchRadiusMeters {
				retrieved++
				break
			}
		}
	}
	return float64(retrieved) / float64(len(actual)), nil
}

// MatchPoints returns the fraction of reference points that have a candidate
// POI within matchRadiusMeters — used to score POI retrieval against ground
// truth anchor places rather than extracted POIs.
func MatchPoints(reference []geo.Point, candidate []POI, matchRadiusMeters float64) (float64, error) {
	if matchRadiusMeters <= 0 {
		return 0, fmt.Errorf("poi: match radius must be positive, got %v", matchRadiusMeters)
	}
	if len(reference) == 0 {
		return 0, nil
	}
	hit := 0
	for _, ref := range reference {
		for _, c := range candidate {
			if geo.Equirectangular(ref, c.Center) <= matchRadiusMeters {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(reference)), nil
}
