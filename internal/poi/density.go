package poi

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Finder abstracts POI extraction so metrics and attacks can swap
// algorithms: the sequential stay-point Extractor is the paper's, the
// DensityExtractor is the adversarial upgrade that survives record
// interleaving.
type Finder interface {
	// POIs extracts the meaningful places of a trace.
	POIs(t *trace.Trace) []POI
}

var (
	_ Finder = (*Extractor)(nil)
	_ Finder = (*DensityExtractor)(nil)
)

// DensityExtractorConfig tunes DBSCAN-style density extraction.
type DensityExtractorConfig struct {
	// EpsMeters is the neighbourhood radius.
	EpsMeters float64
	// MinPoints is the minimum neighbourhood size for a core record.
	MinPoints int
	// MinDwell is the minimum total residence time a cluster must
	// accumulate to count as a place (filters driving corridors that are
	// merely crossed repeatedly).
	MinDwell time.Duration
	// DwellCap bounds the per-record residence credit: a record accrues
	// min(gap to next record, DwellCap), so sparse sampling cannot
	// inflate dwell. 0 uses 10 minutes.
	DwellCap time.Duration
}

// DefaultDensityExtractorConfig returns the configuration matched to the
// sequential extractor's defaults (200 m places, 15 min dwell).
func DefaultDensityExtractorConfig() DensityExtractorConfig {
	return DensityExtractorConfig{
		EpsMeters: 100,
		MinPoints: 5,
		MinDwell:  15 * time.Minute,
		DwellCap:  10 * time.Minute,
	}
}

// Validate reports configuration errors.
func (c DensityExtractorConfig) Validate() error {
	if c.EpsMeters <= 0 {
		return fmt.Errorf("poi: EpsMeters must be positive, got %v", c.EpsMeters)
	}
	if c.MinPoints < 2 {
		return fmt.Errorf("poi: MinPoints must be ≥ 2, got %d", c.MinPoints)
	}
	if c.MinDwell <= 0 {
		return fmt.Errorf("poi: MinDwell must be positive, got %v", c.MinDwell)
	}
	if c.DwellCap < 0 {
		return fmt.Errorf("poi: DwellCap must be non-negative, got %v", c.DwellCap)
	}
	return nil
}

// DensityExtractor finds POIs by spatial density (grid-accelerated DBSCAN)
// instead of temporal contiguity. Where the sequential Extractor needs
// *consecutive* records to dwell — and is therefore blinded by interleaved
// decoy records (the dummy-injection LPPM) or shuffled releases — the
// density view only asks "did this user's records pile up here long
// enough?", which is the question a realistic adversary asks. The X3/A6
// experiments contrast the two.
type DensityExtractor struct {
	cfg DensityExtractorConfig
}

// NewDensityExtractor returns an extractor, validating the configuration.
func NewDensityExtractor(cfg DensityExtractorConfig) (*DensityExtractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DwellCap == 0 {
		cfg.DwellCap = 10 * time.Minute
	}
	return &DensityExtractor{cfg: cfg}, nil
}

// Config returns the extractor's configuration.
func (e *DensityExtractor) Config() DensityExtractorConfig { return e.cfg }

// POIs implements Finder: DBSCAN clusters of the trace's records, reduced
// to dwell-weighted centroids, filtered by MinDwell and ranked by dwell.
func (e *DensityExtractor) POIs(t *trace.Trace) []POI {
	recs := t.Records
	n := len(recs)
	if n == 0 {
		return nil
	}

	// Grid buckets of EpsMeters so neighbourhood queries touch ≤ 9 cells.
	origin := geo.Point{Lat: math.Floor(recs[0].Point.Lat) - 1, Lng: math.Floor(recs[0].Point.Lng) - 1}
	grid := geo.NewGrid(origin, e.cfg.EpsMeters)
	buckets := make(map[geo.Cell][]int, n/4)
	for i, r := range recs {
		c := grid.CellOf(r.Point)
		buckets[c] = append(buckets[c], i)
	}
	neighbors := func(i int) []int {
		var out []int
		c := grid.CellOf(recs[i].Point)
		for dc := -1; dc <= 1; dc++ {
			for dr := -1; dr <= 1; dr++ {
				for _, j := range buckets[geo.Cell{Col: c.Col + dc, Row: c.Row + dr}] {
					if geo.Equirectangular(recs[i].Point, recs[j].Point) <= e.cfg.EpsMeters {
						out = append(out, j)
					}
				}
			}
		}
		return out
	}

	// DBSCAN labelling: 0 = unvisited, -1 = noise, ≥ 1 = cluster id.
	labels := make([]int, n)
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != 0 {
			continue
		}
		nbs := neighbors(i)
		if len(nbs) < e.cfg.MinPoints {
			labels[i] = -1
			continue
		}
		clusterID++
		labels[i] = clusterID
		queue := append([]int(nil), nbs...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == -1 {
				labels[j] = clusterID // border point
			}
			if labels[j] != 0 {
				continue
			}
			labels[j] = clusterID
			if jn := neighbors(j); len(jn) >= e.cfg.MinPoints {
				queue = append(queue, jn...)
			}
		}
	}

	// Reduce clusters to dwell-weighted POIs. Residence time is computed
	// on each cluster's own timeline — consecutive in-cluster timestamps
	// closer than DwellCap accrue their gap — so interleaved records from
	// elsewhere (decoys, other visits) do not dilute a place's dwell.
	members := make(map[int][]int, clusterID)
	for i, lb := range labels {
		if lb > 0 {
			members[lb] = append(members[lb], i)
		}
	}
	pois := make([]POI, 0, len(members))
	for _, idxs := range members {
		// Records are trace-ordered, hence time-ordered.
		var dwell time.Duration
		for k := 1; k < len(idxs); k++ {
			dt := recs[idxs[k]].Time.Sub(recs[idxs[k-1]].Time)
			if dt > e.cfg.DwellCap {
				continue
			}
			dwell += dt
		}
		if dwell < e.cfg.MinDwell {
			continue
		}
		var lat, lng float64
		for _, i := range idxs {
			lat += recs[i].Point.Lat
			lng += recs[i].Point.Lng
		}
		w := float64(len(idxs))
		pois = append(pois, POI{
			Center:     geo.Point{Lat: lat / w, Lng: lng / w},
			TotalDwell: dwell,
			Visits:     len(idxs),
		})
	}
	sort.Slice(pois, func(i, j int) bool {
		if pois[i].TotalDwell != pois[j].TotalDwell {
			return pois[i].TotalDwell > pois[j].TotalDwell
		}
		return pois[i].Center.Lat < pois[j].Center.Lat
	})
	return pois
}
