package poi

import (
	"sort"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	pt0   = time.Date(2008, 5, 17, 9, 0, 0, 0, time.UTC)
	pHome = geo.Point{Lat: 37.7749, Lng: -122.4194}
	pWork = geo.Point{Lat: 37.7949, Lng: -122.3994}
)

// stopAndGo dwells at home, drives to work, dwells at work.
func stopAndGo(t *testing.T, homeMin, workMin int) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	at := pt0
	emit := func(p geo.Point, minutes int) {
		for i := 0; i < minutes; i++ {
			recs = append(recs, trace.Record{User: "u1", Time: at, Point: p.Offset(float64(i%3)*10, 0)})
			at = at.Add(time.Minute)
		}
	}
	emit(pHome, homeMin)
	// Drive: one record per minute, ~600 m apart — too sparse to be dense.
	steps := 10
	for i := 0; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: pHome.Midpoint(pWork).Offset((frac-0.5)*3000, (frac-0.5)*2000)})
		at = at.Add(time.Minute)
	}
	emit(pWork, workMin)
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDensityExtractorFindsBothStops(t *testing.T) {
	e, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := stopAndGo(t, 40, 30)
	pois := e.POIs(tr)
	if len(pois) != 2 {
		t.Fatalf("found %d POIs, want 2 (home, work): %+v", len(pois), pois)
	}
	// Ranked by dwell: home (40 min) first.
	if geo.Haversine(pois[0].Center, pHome) > 100 {
		t.Errorf("top POI at %v, want near home", pois[0].Center)
	}
	if geo.Haversine(pois[1].Center, pWork) > 100 {
		t.Errorf("second POI at %v, want near work", pois[1].Center)
	}
}

func TestDensityExtractorIgnoresShortStops(t *testing.T) {
	e, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := stopAndGo(t, 40, 5) // work stop below MinDwell
	pois := e.POIs(tr)
	if len(pois) != 1 {
		t.Fatalf("found %d POIs, want 1 (only home)", len(pois))
	}
}

func TestDensityExtractorOrderInvariance(t *testing.T) {
	// The defining property versus the sequential extractor: shuffling
	// record order (as dummy interleaving effectively does) must not
	// change the extracted places.
	e, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := stopAndGo(t, 45, 30)
	basePOIs := e.POIs(tr)

	// Rebuild the trace with the same records under a permuted record
	// order but identical timestamps-to-positions assignment: swap the
	// *positions* among timestamps randomly.
	r := rng.New(9)
	perm := r.Perm(tr.Len())
	recs := make([]trace.Record, tr.Len())
	for i, j := range perm {
		recs[i] = trace.Record{User: "u1", Time: tr.Records[i].Time, Point: tr.Records[j].Point}
	}
	shuffled, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	shuffledPOIs := e.POIs(shuffled)

	if len(shuffledPOIs) != len(basePOIs) {
		t.Fatalf("shuffle changed POI count: %d vs %d", len(shuffledPOIs), len(basePOIs))
	}
	// Compare centers as sets (order may differ as dwell credit moves).
	match := func(a, b []POI) bool {
		if len(a) != len(b) {
			return false
		}
		used := make([]bool, len(b))
		for _, p := range a {
			found := false
			for j, q := range b {
				if !used[j] && geo.Haversine(p.Center, q.Center) < 150 {
					used[j] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if !match(basePOIs, shuffledPOIs) {
		t.Errorf("shuffled POIs %v do not match base %v", shuffledPOIs, basePOIs)
	}

	// Contrast: the sequential extractor collapses under the same
	// shuffle (this is the vulnerability the density extractor fixes).
	seq, err := NewExtractor(DefaultExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(seq.POIs(shuffled)); got >= len(seq.POIs(tr)) && got > 0 {
		t.Log("sequential extractor survived the shuffle (unexpected but not a failure)")
	}
}

func TestDensityExtractorSparseDrivingIsNoise(t *testing.T) {
	// A pure drive with no stops: no POIs.
	var recs []trace.Record
	at := pt0
	for i := 0; i < 120; i++ {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: pHome.Offset(float64(i)*500, 0)})
		at = at.Add(time.Minute)
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pois := e.POIs(tr); len(pois) != 0 {
		t.Errorf("driving trace yielded %d POIs, want 0", len(pois))
	}
}

func TestDensityExtractorEmptyTrace(t *testing.T) {
	e, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pois := e.POIs(&trace.Trace{User: "u"}); pois != nil {
		t.Errorf("empty trace yielded %v", pois)
	}
}

func TestDensityExtractorConfigValidation(t *testing.T) {
	bad := []DensityExtractorConfig{
		{EpsMeters: 0, MinPoints: 5, MinDwell: time.Minute},
		{EpsMeters: 100, MinPoints: 1, MinDwell: time.Minute},
		{EpsMeters: 100, MinPoints: 5, MinDwell: 0},
		{EpsMeters: 100, MinPoints: 5, MinDwell: time.Minute, DwellCap: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDensityExtractor(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDensityMatchesSequentialOnCleanData(t *testing.T) {
	// On clean stop-and-go data the two extractors must agree on the
	// places (the density view is an upgrade, not a different answer).
	tr := stopAndGo(t, 40, 30)
	seq, err := NewExtractor(DefaultExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	den, err := NewDensityExtractor(DefaultDensityExtractorConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := seq.POIs(tr)
	b := den.POIs(tr)
	if len(a) != len(b) {
		t.Fatalf("sequential found %d POIs, density %d", len(a), len(b))
	}
	sort.Slice(a, func(i, j int) bool { return a[i].Center.Lat < a[j].Center.Lat })
	sort.Slice(b, func(i, j int) bool { return b[i].Center.Lat < b[j].Center.Lat })
	for i := range a {
		if d := geo.Haversine(a[i].Center, b[i].Center); d > 100 {
			t.Errorf("POI %d centers disagree by %.0f m", i, d)
		}
	}
}
