package linalg

import (
	"fmt"
	"math"
)

// QR holds the Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with Q orthogonal (applied implicitly) and R upper triangular
// (n×n). It is the numerically stable path for least-squares problems whose
// normal equations would be ill-conditioned — forming AᵀA squares the
// condition number, which is exactly what SolveSPD does — so the
// multi-feature property models solve through QR instead.
type QR struct {
	// qr stores R above the diagonal, the R diagonal on the diagonal, and
	// the Householder vectors (minus their leading entries) below it.
	qr *Matrix
	// v0 holds the leading entry of each Householder vector, kept in
	// [1, 2] by the sign convention so reflector application never
	// divides by a small number.
	v0 []float64
}

// FactorQR computes the Householder QR factorization of a. The input must
// have at least as many rows as columns, be non-empty and have full column
// rank.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("linalg: QR of empty matrix %dx%d", m, n)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows ≥ cols, got %dx%d", m, n)
	}
	f := a.Clone()
	// Rank deficiency manifests as a column norm that is zero up to
	// rounding; measure it against the overall matrix scale.
	var frob float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			frob = math.Hypot(frob, a.At(i, j))
		}
	}
	const rankTol = 1e-12
	v0 := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector annihilating column k below
		// the diagonal. Giving nrm the sign of the diagonal keeps the
		// scaled leading entry in [1, 2].
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, f.At(i, k))
		}
		if nrm <= rankTol*frob {
			return nil, fmt.Errorf("linalg: QR found rank-deficient column %d", k)
		}
		if f.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			f.Set(i, k, f.At(i, k)/nrm)
		}
		f.Set(k, k, f.At(k, k)+1)
		v0[k] = f.At(k, k)

		// Apply the reflector to the remaining columns:
		// H = I − v·vᵀ/v₀.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.At(i, k) * f.At(i, j)
			}
			s = -s / v0[k]
			for i := k; i < m; i++ {
				f.Set(i, j, f.At(i, j)+s*f.At(i, k))
			}
		}
		// The reflector maps column k onto −nrm·e_k; record that R
		// diagonal in place of the (saved) leading vector entry.
		f.Set(k, k, -nrm)
	}
	return &QR{qr: f, v0: v0}, nil
}

// R returns the n×n upper-triangular factor.
func (q *QR) R() *Matrix {
	n := q.qr.Cols()
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, q.qr.At(i, j))
		}
	}
	return r
}

// applyQT overwrites b (length m) with Qᵀ·b by applying the stored
// reflectors in order.
func (q *QR) applyQT(b []float64) {
	m, n := q.qr.Rows(), q.qr.Cols()
	for k := 0; k < n; k++ {
		s := q.v0[k] * b[k]
		for i := k + 1; i < m; i++ {
			s += q.qr.At(i, k) * b[i]
		}
		s = -s / q.v0[k]
		b[k] += s * q.v0[k]
		for i := k + 1; i < m; i++ {
			b[i] += s * q.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂ for the
// factored A. len(b) must equal the factored matrix's row count.
func (q *QR) Solve(b []float64) ([]float64, error) {
	m, n := q.qr.Rows(), q.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve needs len(b)=%d, got %d", m, len(b))
	}
	w := make([]float64, m)
	copy(w, b)
	q.applyQT(w)
	// Back-substitute R·x = (Qᵀb)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := w[i]
		for j := i + 1; j < n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		d := q.qr.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("linalg: QR solve hit zero diagonal at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveLeastSquares factors a and solves the least-squares problem in one
// call.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
