package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns the eigenvalues in descending
// order and the corresponding unit eigenvectors as the columns of the second
// return value. Jacobi is exact to machine precision for the small (≤ ~20
// dimensional) property matrices PCA sees in this framework.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	const (
		maxSweeps = 100
		offTol    = 1e-13
	)
	if !a.IsSymmetric(1e-9) {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix")
	}
	n := a.rows
	m := a.Clone()
	v := Identity(n)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < offTol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < offTol/float64(n*n) {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Rotation angle that annihilates m[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				rotate(m, p, q, c, s)
				rotateColumns(v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}

	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = values[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the symmetric Jacobi rotation J(p,q,θ)ᵀ·M·J(p,q,θ) in place.
func rotate(m *Matrix, p, q int, c, s float64) {
	n := m.rows
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*aip-s*aiq)
		m.Set(p, i, c*aip-s*aiq)
		m.Set(i, q, s*aip+c*aiq)
		m.Set(q, i, s*aip+c*aiq)
	}
	app, aqq, apq := m.At(p, p), m.At(q, q), m.At(p, q)
	m.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	m.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	m.Set(p, q, 0)
	m.Set(q, p, 0)
}

// rotateColumns applies the rotation to the eigenvector accumulator.
func rotateColumns(v *Matrix, p, q int, c, s float64) {
	for i := 0; i < v.rows; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// offDiagNorm returns the Frobenius norm of the off-diagonal part.
func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
