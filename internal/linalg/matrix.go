// Package linalg implements the small amount of dense linear algebra the
// framework needs: matrices, covariance, symmetric eigendecomposition (for
// principal component analysis) and least-squares solving via normal
// equations. Everything is row-major float64 and implemented from scratch on
// the standard library.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// non-positive dimensions: shapes are static programming decisions here.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: empty row data")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·o. It panics on shape mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := NewMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				out.data[i*out.cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by vector of %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String implements fmt.Stringer for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Covariance returns the sample covariance matrix (cols×cols) of a data
// matrix whose rows are observations and columns are variables. It requires
// at least two rows.
func Covariance(data *Matrix) (*Matrix, error) {
	n, d := data.rows, data.cols
	if n < 2 {
		return nil, fmt.Errorf("linalg: covariance needs >= 2 observations, got %d", n)
	}
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += data.At(i, j)
		}
		means[j] = s / float64(n)
	}
	cov := NewMatrix(d, d)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += (data.At(i, a) - means[a]) * (data.At(i, b) - means[b])
			}
			v := s / float64(n-1)
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A using Cholesky
// decomposition. It is the workhorse behind least-squares normal equations.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveSPD shape mismatch %dx%d vs %d", a.rows, a.cols, len(b))
	}
	// Cholesky: A = L·Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%v)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
