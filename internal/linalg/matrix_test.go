package linalg

import (
	"math"
	"testing"
)

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) should panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should error")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Errorf("element access wrong: %v", m)
	}
}

func TestIdentityMul(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.Mul(Identity(3))
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Errorf("(A·B)[%d][%d] = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	a, _ := FromRows([][]float64{{1, 2}})
	a.Mul(a)
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", tr)
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row must return a copy")
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Errorf("Col(0) = %v", c)
	}
	cl := m.Clone()
	cl.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone must be deep")
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	if !s.IsSymmetric(0) {
		t.Error("should be symmetric")
	}
	a, _ := FromRows([][]float64{{2, 1}, {0, 2}})
	if a.IsSymmetric(1e-9) {
		t.Error("should not be symmetric")
	}
	r, _ := FromRows([][]float64{{1, 2, 3}})
	if r.IsSymmetric(1e-9) {
		t.Error("non-square cannot be symmetric")
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated columns and one anti-correlated.
	data, _ := FromRows([][]float64{
		{1, 2, -1},
		{2, 4, -2},
		{3, 6, -3},
		{4, 8, -4},
	})
	cov, err := Covariance(data)
	if err != nil {
		t.Fatal(err)
	}
	// var(col0) with values 1..4 is 5/3.
	if math.Abs(cov.At(0, 0)-5.0/3) > 1e-12 {
		t.Errorf("var(col0) = %v, want %v", cov.At(0, 0), 5.0/3)
	}
	if math.Abs(cov.At(0, 1)-2*cov.At(0, 0)) > 1e-12 {
		t.Errorf("cov(0,1) = %v, want %v", cov.At(0, 1), 2*cov.At(0, 0))
	}
	if cov.At(0, 2) >= 0 {
		t.Errorf("cov(0,2) = %v, want negative", cov.At(0, 2))
	}
	if !cov.IsSymmetric(0) {
		t.Error("covariance must be symmetric")
	}

	one, _ := FromRows([][]float64{{1, 2}})
	if _, err := Covariance(one); err == nil {
		t.Error("covariance of single row should error")
	}
}

func TestSolveSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Check A·x == b.
	b := a.MulVec(x)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Errorf("A·x = %v, want [1 2]", b)
	}
}

func TestSolveSPDErrors(t *testing.T) {
	a, _ := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Error("singular matrix should error")
	}
	b, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	if _, err := SolveSPD(b, []float64{1}); err == nil {
		t.Error("shape mismatch should error")
	}
	// Indefinite matrix.
	c, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := SolveSPD(c, []float64{1, 1}); err == nil {
		t.Error("indefinite matrix should error")
	}
}

func TestScale(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -2}})
	m.Scale(3)
	if m.At(0, 0) != 3 || m.At(0, 1) != -6 {
		t.Errorf("scaled = %v", m)
	}
}

func TestStringNonEmpty(t *testing.T) {
	m := Identity(2)
	if m.String() == "" {
		t.Error("String should produce output")
	}
}
