package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
	// First eigenvector should be ±e1.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-10 {
		t.Errorf("first eigenvector not aligned with axis: %v", vecs.Col(0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/√2 up to sign.
	v := vecs.Col(0)
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 1e-10 || math.Abs(v[0]-v[1]) > 1e-10 {
		t.Errorf("eigenvector for 3 = %v", v)
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := EigenSym(a); err == nil {
		t.Error("asymmetric input should error")
	}
}

// TestEigenSymReconstruction checks A·v = λ·v and orthonormality on random
// symmetric matrices.
func TestEigenSymReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(7)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-8 {
					t.Fatalf("trial %d: A·v != λ·v for pair %d (err %v)",
						trial, k, math.Abs(av[i]-vals[k]*v[i]))
				}
			}
			// Unit norm.
			var norm float64
			for _, x := range v {
				norm += x * x
			}
			if math.Abs(norm-1) > 1e-10 {
				t.Fatalf("eigenvector %d has norm² %v", k, norm)
			}
		}
		// Trace preservation: Σλ == tr(A).
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if math.Abs(trace-sum) > 1e-9 {
			t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
		}
	}
}
