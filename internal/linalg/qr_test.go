package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestQRSolveSquareSystem(t *testing.T) {
	a, err := FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [2 1; 1 3]x = [5; 10] is x = [1, 3].
	x, err := SolveLeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// y = 1 + 2t sampled exactly: residual zero, coefficients exact.
	ts := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(ts), 2)
	b := make([]float64, len(ts))
	for i, tv := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tv)
		b[i] = 1 + 2*tv
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("coefficients = %v, want [1 2]", x)
	}
}

func TestQRMatchesNormalEquationsOnWellConditioned(t *testing.T) {
	r := rng.New(5)
	m, n := 40, 3
	a := NewMatrix(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		b[i] = r.NormFloat64()
	}
	xQR, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ata := a.T().Mul(a)
	atb := a.T().MulVec(b)
	xNE, err := SolveSPD(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xQR {
		if math.Abs(xQR[i]-xNE[i]) > 1e-8 {
			t.Fatalf("QR %v vs normal equations %v differ at %d", xQR, xNE, i)
		}
	}
}

func TestQRRFactorIsUpperTriangularAndReconstructs(t *testing.T) {
	r := rng.New(9)
	m, n := 6, 4
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	rm := f.R()
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rm.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d): %v", i, j, rm.At(i, j))
			}
		}
	}
	// ‖R‖F must equal ‖A‖F (orthogonal invariance).
	var na, nr float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			na += a.At(i, j) * a.At(i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nr += rm.At(i, j) * rm.At(i, j)
		}
	}
	if math.Abs(na-nr) > 1e-8*na {
		t.Errorf("Frobenius norms differ: ‖A‖²=%v ‖R‖²=%v", na, nr)
	}
}

func TestQRErrors(t *testing.T) {
	wide := NewMatrix(2, 3)
	if _, err := FactorQR(wide); err == nil {
		t.Error("want error for wide matrix")
	}
	rankDef, err := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorQR(rankDef); err == nil {
		t.Error("want error for rank-deficient matrix")
	}
	ok, err := FromRows([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorQR(ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("want error for wrong RHS length")
	}
}

func TestQRResidualOrthogonalityProperty(t *testing.T) {
	// Property of least squares: the residual b − A·x is orthogonal to
	// every column of A.
	f := func(seed int64) bool {
		r := rng.New(seed)
		m, n := 12, 3
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			b[i] = r.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return true // rank-deficient draw; nothing to check
		}
		res := make([]float64, m)
		for i := 0; i < m; i++ {
			s := b[i]
			for j := 0; j < n; j++ {
				s -= a.At(i, j) * x[j]
			}
			res[i] = s
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += a.At(i, j) * res[i]
			}
			if math.Abs(dot) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
