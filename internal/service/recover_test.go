package service

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/lppm"
	"repro/internal/trace"
)

// The crash-matrix scenario: nUsers streams of perUser records, windows
// of flushEvery, a deployment swap pinned at the swapAt-records-per-user
// boundary. geoi draws randomness strictly per record, so stream output
// is 1:1 with input and bit-identity failures surface as differing
// float64 bits.
const (
	cmUsers      = 3
	cmPerUser    = 12
	cmFlushEvery = 4
	cmSwapAt     = 8 // records per user before the swap (whole windows)
	cmSeed       = 424242
)

func cmConfig() Config {
	return Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Params:     lppm.Params{lppm.EpsilonParam: 0.8},
		Shards:     2,
		FlushEvery: cmFlushEvery,
		StageSize:  1, // no staging: every record queues immediately
		QueueSize:  64,
		Seed:       cmSeed,
	}
}

func cmSwapDeployment() *core.Deployment {
	return &core.Deployment{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Params:    lppm.Params{lppm.EpsilonParam: 0.5},
		Overrides: map[string]lppm.Params{"u01": {lppm.EpsilonParam: 0.9}},
	}
}

// cmInput returns each user's full input stream.
func cmInput() map[string][]trace.Record {
	byUser := make(map[string][]trace.Record, cmUsers)
	for _, r := range makeRecords(cmUsers, cmPerUser) {
		byUser[r.User] = append(byUser[r.User], r)
	}
	return byUser
}

// collectOutput consumes a gateway's output in a goroutine, grouping
// protected records per user; the returned func waits for channel close
// and hands back the result.
func collectOutput(g *Gateway) func() map[string][]trace.Record {
	done := make(chan map[string][]trace.Record, 1)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			for _, r := range wnd.Records {
				got[r.User] = append(got[r.User], r)
			}
		}
		done <- got
	}()
	return func() map[string][]trace.Record { return <-done }
}

// feedInterleaved ingests records round-robin across users from index
// lo (per user) to hi, the shape makeRecords produces.
func feedInterleaved(t *testing.T, g *Gateway, in map[string][]trace.Record, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		for u := 0; u < cmUsers; u++ {
			user := fmt.Sprintf("u%02d", u)
			if i < len(in[user]) {
				if err := g.Ingest(in[user][i]); err != nil {
					t.Fatalf("ingest %s[%d]: %v", user, i, err)
				}
			}
		}
	}
}

// waitWindows polls until every user's journaled window count reaches
// want — the deterministic barrier that pins the swap at one window
// boundary. Checkpoints are written ahead of emission, so "visible in
// the journal" is exactly "this window is decided".
func waitWindows(t *testing.T, jw *journal.Writer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := jw.State()
		ready := 0
		for u := 0; u < cmUsers; u++ {
			if us := st.Users[fmt.Sprintf("u%02d", u)]; us != nil && us.Windows >= want {
				ready++
			}
		}
		if ready == cmUsers {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows never reached %d: %+v", want, st.Users)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitFlushes is the journal-less twin of waitWindows for the reference
// run, polling the gateway's flush counter.
func waitFlushes(t *testing.T, g *Gateway, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Flushes < want {
		if time.Now().After(deadline) {
			t.Fatalf("flushes never reached %d: %+v", want, g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// referenceRun executes the scenario on a never-killed, never-journaled
// gateway: the ground truth every resumed run must match byte for byte.
func referenceRun(t *testing.T) map[string][]trace.Record {
	t.Helper()
	g, err := New(context.Background(), cmConfig())
	if err != nil {
		t.Fatal(err)
	}
	wait := collectOutput(g)
	in := cmInput()
	feedInterleaved(t, g, in, 0, cmSwapAt)
	waitFlushes(t, g, uint64(cmUsers*cmSwapAt/cmFlushEvery))
	if err := g.Swap(cmSwapDeployment()); err != nil {
		t.Fatal(err)
	}
	feedInterleaved(t, g, in, cmSwapAt, cmPerUser)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return wait()
}

// journaledRun executes the full scenario against a journaling gateway
// on fs, returning its output and leaving the journal on fs.
func journaledRun(t *testing.T, fs *faultfs.FS) map[string][]trace.Record {
	t.Helper()
	g, info, err := Recover(context.Background(), cmConfig(), JournalConfig{Dir: "j", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if info.Resumed {
		t.Fatalf("fresh journal reported resumed: %+v", info)
	}
	wait := collectOutput(g)
	in := cmInput()
	feedInterleaved(t, g, in, 0, cmSwapAt)
	waitWindows(t, g.Journal(), cmSwapAt/cmFlushEvery)
	if err := g.Swap(cmSwapDeployment()); err != nil {
		t.Fatal(err)
	}
	feedInterleaved(t, g, in, cmSwapAt, cmPerUser)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return wait()
}

// segFrameEnds parses the cumulative end offset of every frame in the
// single journal segment on fs.
func segFrameEnds(t *testing.T, fs *faultfs.FS) (string, []int) {
	t.Helper()
	files := fs.Files()
	if len(files) != 1 {
		t.Fatalf("want one segment, have %v", files)
	}
	data, err := fs.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var ends []int
	off := 0
	for off < len(data) {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + n
		ends = append(ends, off)
	}
	if off != len(data) {
		t.Fatalf("segment does not end on a frame boundary")
	}
	return files[0], ends
}

// resumeAndFinish recovers from the (possibly truncated) journal on fs
// and drives the scenario to completion: re-feeding every record the
// journal has not consumed, re-applying the swap at the same window
// boundary when the kill predates the deploy record. It returns the
// resumed gateway's output and the per-user output counts the journal
// had already covered at the kill.
func resumeAndFinish(t *testing.T, fs *faultfs.FS) (map[string][]trace.Record, map[string]uint64) {
	t.Helper()
	g, info, err := Recover(context.Background(), cmConfig(), JournalConfig{Dir: "j", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	st := g.Journal().State()
	consumed := make(map[string]uint64, cmUsers)
	out := make(map[string]uint64, cmUsers)
	for u := 0; u < cmUsers; u++ {
		user := fmt.Sprintf("u%02d", u)
		if us := st.Users[user]; us != nil {
			consumed[user] = us.In
			out[user] = us.Out
		}
	}
	wait := collectOutput(g)
	in := cmInput()
	feedRemaining := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for u := 0; u < cmUsers; u++ {
				user := fmt.Sprintf("u%02d", u)
				if uint64(i) < consumed[user] || i >= len(in[user]) {
					continue
				}
				if err := g.Ingest(in[user][i]); err != nil {
					t.Fatalf("re-ingest %s[%d]: %v", user, i, err)
				}
			}
		}
	}
	if info.Generation == 0 {
		// The kill predates the deploy record: replay the operator's
		// swap at the same barrier the original run used.
		feedRemaining(0, cmSwapAt)
		waitWindows(t, g.Journal(), cmSwapAt/cmFlushEvery)
		if err := g.Swap(cmSwapDeployment()); err != nil {
			t.Fatal(err)
		}
		feedRemaining(cmSwapAt, cmPerUser)
	} else {
		feedRemaining(0, cmPerUser)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return wait(), out
}

// sameRecords compares two record sequences for byte-for-byte equality
// (float64 bits included: trace.Record is plain values, so == is exact).
func sameRecords(a, b []trace.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].User != b[i].User || a[i].Point != b[i].Point {
			return false
		}
	}
	return true
}

// TestKillAndResumeEquivalence is the crash matrix: the journaled run is
// killed at every journal-record boundary (torn-tail byte cuts are the
// journal package's own matrix), a new gateway recovers from the
// truncated journal, the remaining input is re-fed, and the resumed
// output must continue the reference run byte for byte — kill-and-resume
// ≡ never-killed, at every kill point, across a deployment swap.
func TestKillAndResumeEquivalence(t *testing.T) {
	ref := referenceRun(t)
	// The journaled full run must already match the reference.
	fullFS := faultfs.New()
	full := journaledRun(t, fullFS)
	for u, want := range ref {
		if !sameRecords(full[u], want) {
			t.Fatalf("journaled run diverged from reference for %s", u)
		}
	}
	_, ends := segFrameEnds(t, fullFS)
	// snapshot + one deploy + one checkpoint per flushed window per user.
	wantFrames := 1 + 1 + cmUsers*(cmPerUser/cmFlushEvery)
	if len(ends) != wantFrames {
		t.Fatalf("journal has %d frames, want %d", len(ends), wantFrames)
	}
	for cut := 0; cut < wantFrames; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("kill_after_frame_%02d", cut), func(t *testing.T) {
			// Rebuild the journaled run fresh: frame order interleaves
			// nondeterministically across shards, so each kill point
			// cuts its own run's bytes at its own boundaries.
			fs := faultfs.New()
			journaledRun(t, fs)
			name, ends := segFrameEnds(t, fs)
			if len(ends) != wantFrames {
				t.Fatalf("rebuild produced %d frames, want %d", len(ends), wantFrames)
			}
			if err := fs.TruncateFile(name, ends[cut]); err != nil {
				t.Fatal(err)
			}
			resumed, covered := resumeAndFinish(t, fs)
			for u := 0; u < cmUsers; u++ {
				user := fmt.Sprintf("u%02d", u)
				tail := ref[user][covered[user]:]
				if !sameRecords(resumed[user], tail) {
					t.Errorf("%s: resumed output (%d records from %d) diverged from reference tail (%d records)",
						user, len(resumed[user]), covered[user], len(tail))
				}
			}
		})
	}
}

// TestDoubleCrashDuringRecovery kills the process a second time in the
// middle of recovery itself — after Open folded the truncated journal
// but while Install's fresh snapshot segment is being written — and
// then recovers again: the torn rotation head is skipped, the fold is
// unchanged, and the resumed output still continues the reference.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	ref := referenceRun(t)
	fs := faultfs.New()
	journaledRun(t, fs)
	name, ends := segFrameEnds(t, fs)
	if err := fs.TruncateFile(name, ends[len(ends)/2]); err != nil {
		t.Fatal(err)
	}
	// First recovery attempt dies mid-Install: the snapshot write fails,
	// Recover surfaces the error, and the directory now holds a torn
	// higher-numbered segment next to the truncated one.
	fs.FailAt(1, faultfs.ModeError)
	if _, _, err := Recover(context.Background(), cmConfig(), JournalConfig{Dir: "j", FS: fs}); err == nil {
		t.Fatalf("Recover with failing Install must error")
	}
	fs.FailAt(0, faultfs.ModeError)
	fs.Crash()
	resumed, covered := resumeAndFinish(t, fs)
	for u := 0; u < cmUsers; u++ {
		user := fmt.Sprintf("u%02d", u)
		if !sameRecords(resumed[user], ref[user][covered[user]:]) {
			t.Errorf("%s: output diverged after double crash", user)
		}
	}
}

// TestRecoverSeedMismatch pins that resuming under a different seed is
// rejected outright: every re-seeked stream would silently diverge.
func TestRecoverSeedMismatch(t *testing.T) {
	fs := faultfs.New()
	journaledRun(t, fs)
	cfg := cmConfig()
	cfg.Seed = cmSeed + 1
	_, _, err := Recover(context.Background(), cfg, JournalConfig{Dir: "j", FS: fs})
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch accepted: %v", err)
	}
}

// TestRecoverUnknownMechanism pins the resolve error path: a journaled
// deployment whose mechanism name no registry entry matches must fail
// recovery, not silently fall back to the configured mechanism.
func TestRecoverUnknownMechanism(t *testing.T) {
	fs := faultfs.New()
	journaledRun(t, fs)
	_, _, err := Recover(context.Background(), cmConfig(), JournalConfig{
		Dir: "j", FS: fs,
		Resolve: func(name string) (lppm.Mechanism, error) {
			return nil, fmt.Errorf("no mechanism %q in this build", name)
		},
	})
	if err == nil || !strings.Contains(err.Error(), "no mechanism") {
		t.Fatalf("unresolvable mechanism accepted: %v", err)
	}
}

// TestEvictRestoreBitIdentity pins EvictUser: evicting a user mid-window
// (pending records buffered, window split untouched) and letting their
// next record restore the stream must not change a single output byte,
// with and without a journal attached.
func TestEvictRestoreBitIdentity(t *testing.T) {
	in := cmInput()
	ref := referenceRunPlain(t, in)
	for _, journaled := range []bool{false, true} {
		name := "memory"
		if journaled {
			name = "journaled"
		}
		t.Run(name, func(t *testing.T) {
			var g *Gateway
			var err error
			if journaled {
				g, _, err = Recover(context.Background(), cmConfig(), JournalConfig{Dir: "j", FS: faultfs.New()})
			} else {
				g, err = New(context.Background(), cmConfig())
			}
			if err != nil {
				t.Fatal(err)
			}
			wait := collectOutput(g)
			// Feed 6 records per user (1.5 windows), evict everyone
			// mid-window, then feed the rest: restore must resume the
			// half-full pending buffer and the rng position exactly.
			feedInterleaved(t, g, in, 0, 6)
			for u := 0; u < cmUsers; u++ {
				if err := g.EvictUser(fmt.Sprintf("u%02d", u)); err != nil {
					t.Fatal(err)
				}
			}
			if got := g.Stats().Users; got != 0 {
				t.Fatalf("%d streams survive eviction", got)
			}
			feedInterleaved(t, g, in, 6, cmPerUser)
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			got := wait()
			for u, want := range ref {
				if !sameRecords(got[u], want) {
					t.Errorf("%s: evict/restore changed output", u)
				}
			}
		})
	}
}

// referenceRunPlain runs the input with no swap and no journal.
func referenceRunPlain(t *testing.T, in map[string][]trace.Record) map[string][]trace.Record {
	t.Helper()
	g, err := New(context.Background(), cmConfig())
	if err != nil {
		t.Fatal(err)
	}
	wait := collectOutput(g)
	feedInterleaved(t, g, in, 0, cmPerUser)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return wait()
}

// TestJournalFailureRejectsSwap pins the write-ahead rule for deploys: a
// journal that cannot persist the deploy record rejects the swap and the
// old deployment keeps serving.
func TestJournalFailureRejectsSwap(t *testing.T) {
	fs := faultfs.New()
	g, _, err := Recover(context.Background(), cmConfig(), JournalConfig{Dir: "j", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	wait := collectOutput(g)
	fs.FailAt(1, faultfs.ModeError)
	if err := g.Swap(cmSwapDeployment()); err == nil {
		t.Fatalf("swap accepted with failing journal")
	}
	if gen := g.Generation(); gen != 0 {
		t.Fatalf("generation advanced to %d on failed swap", gen)
	}
	if err := g.Close(); err == nil {
		t.Fatalf("Close must surface the sticky journal error")
	}
	wait()
}
