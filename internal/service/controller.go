package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Controller closes the paper's Define → Model → Configure loop over live
// traffic: it taps a sampled fraction of the gateway's flushed windows,
// maintains per-user sliding aggregates of (actual, protected) records,
// estimates the deployed configuration's observed privacy and utility with
// the definition's own metrics, and — when the estimates drift outside the
// objectives — re-runs the whole analysis on the observed data and
// hot-swaps the resulting deployment into the gateway (Gateway.Swap), per-
// user overrides included. The gateway keeps serving throughout; the swap
// is visible only at window boundaries and loses no record.
//
// A Controller is safe for concurrent use; its per-user samplers run on
// shard goroutines and only the sampled fraction touches the shared
// sliding state, while the expensive re-analysis runs in whichever
// goroutine calls Evaluate (typically Run's).
type Controller struct {
	gw  *Gateway
	cfg ControllerConfig

	sampleSeed int64

	// cache holds prepared actual-side metric state (and memoized dataset
	// properties) across evaluations and reconfigurations. It is touched
	// only from Evaluate's goroutine — never from shard goroutines — and
	// its entries are keyed by the memoized per-user traces snapshot
	// hands out, so a user whose aggregate is unchanged between
	// evaluations re-uses both the flattened trace and the prepared
	// evaluators built on it.
	cache *core.Cache

	mu      sync.Mutex
	users   map[string]*observed
	windows uint64
	records uint64
	// fresh counts windows observed since the last swap; the evaluation
	// gate uses it so a freshly swapped deployment is judged on its own
	// output, never on the predecessor's (see Evaluate).
	fresh uint64
	// minGen is the lowest deployment generation observe accepts; a
	// shard mid-flush when a swap lands would otherwise deliver an
	// old-generation window into the freshly reset aggregates.
	minGen uint64
	// prevEvalWindows is the windows counter at the previous evaluation;
	// users not observed since then are evicted (see Evaluate).
	prevEvalWindows uint64
	obj             model.Objectives
	deployed        *core.Deployment
	evals           uint64
	swaps           uint64
	overrideSkips   uint64
	lastPriv        float64
	lastUtil        float64
	lastErr         error
}

// observed is one user's sliding aggregate of sampled traffic, kept as
// whole (actual, protected) window pairs and trimmed oldest-window-first
// once the actual side exceeds WindowRecords. Trimming whole pairs keeps
// the two sides covering the same stretch of stream even for mechanisms
// that change the record count (dummies inject, sampling drops) — capping
// each side independently would compare different time spans. seen marks
// the controller's global window counter at the last observation and
// drives idle-user eviction, so the aggregate table tracks the users
// actually on the stream instead of growing with everyone ever sampled.
type observed struct {
	wins      []obsWindow
	actualLen int
	seen      uint64
	// flatA/flatP memoize the flattened (actual, protected) traces built
	// by the last snapshot, valid while flatSeen == seen (no window
	// observed since). They keep repeated evaluations of a quiet user
	// from re-flattening — and, because the traces are pointer-stable,
	// let the metric cache keep that user's prepared evaluators too.
	flatA, flatP *trace.Trace
	flatSeen     uint64
}

// obsWindow is one sampled window: the records the gateway saw and the
// records it emitted for them.
type obsWindow struct {
	actual    []trace.Record
	protected []trace.Record
}

// sampler is the controller's TapUser: it decides which of one user's
// windows are observed via a per-user seed indexed by the user's own window
// counter, so the decision sequence is a pure function of (controller seed,
// user, window index) and identical-seed runs sample identically however
// shard goroutines interleave. The gateway caches it on the user's stream
// and calls it from that stream's single shard goroutine, so the counter
// needs no synchronization and the flush hot path takes no lock at all;
// only Observe — the sampled fraction — touches the controller's mutex.
type sampler struct {
	c    *Controller
	user string
	seed int64
	n    int64
}

// Sample implements TapUser: a seeded Bernoulli decision per flushed
// window, deterministic under any shard interleaving.
func (s *sampler) Sample(n int) bool {
	ok := s.c.cfg.SampleFrac >= 1 || rng.MixUnit(s.seed, s.n) < s.c.cfg.SampleFrac
	s.n++
	return ok
}

// Observe implements TapUser: it appends the window pair to the user's
// sliding aggregate. The actual slice is owned (the gateway copies);
// protected is copied before retention.
func (s *sampler) Observe(gen uint64, actual, protected []trace.Record) {
	s.c.observe(s.user, gen, actual, protected)
}

// ControllerConfig parameterizes a reconfiguration controller.
type ControllerConfig struct {
	// Definition is the analysis to re-run on drift. Its Mechanism must
	// match the deployment's; its metrics define what "privacy" and
	// "utility" mean for both the online estimates and the re-analysis.
	Definition core.Definition
	// Objectives are the designer targets drift is judged against and the
	// re-analysis configures for; SetObjectives can tighten or loosen
	// them mid-stream.
	Objectives model.Objectives
	// SampleFrac is the fraction of flushed windows observed, in (0, 1];
	// 0 uses 0.05. Sampling is the controller's only hot-path cost.
	SampleFrac float64
	// WindowRecords caps each user's sliding aggregate (per side); 0 uses
	// 512. Older records slide out, so estimates track current mobility.
	WindowRecords int
	// MinWindows is how many sampled windows must accumulate before an
	// evaluation judges drift; 0 uses 8.
	MinWindows int
	// MinUserRecords is the least sampled records a user needs before
	// entering the estimates and the re-analysis dataset; 0 uses 8.
	MinUserRecords int
	// Tolerance is the relative slack on the objectives before a drift
	// triggers reconfiguration (0.1 = reconfigure only past 10% beyond
	// the bound, keeping the loop from hunting on estimate noise); 0
	// uses 0.1.
	Tolerance float64
	// PerUserOverrides also derives per-user parameter overrides for
	// users whose observed privacy stands out from the population the
	// shared model was fitted on.
	PerUserOverrides bool
	// Seed drives sampling and the re-analysis seeds.
	Seed int64
}

// normalize fills defaults and validates.
func (c *ControllerConfig) normalize() error {
	if c.Definition.Mechanism == nil {
		return fmt.Errorf("service: controller needs a definition mechanism")
	}
	if c.Definition.Privacy == nil || c.Definition.Utility == nil {
		return fmt.Errorf("service: controller needs privacy and utility metrics")
	}
	// Fail at construction, not inside every periodic Evaluate: an
	// un-analyzable definition (multi-parameter mechanism without Param,
	// misspelled Param) would otherwise only ever surface in LastErr.
	if err := c.Definition.Validate(); err != nil {
		return err
	}
	if err := c.Objectives.Validate(); err != nil {
		return err
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.05
	}
	if c.SampleFrac < 0 || c.SampleFrac > 1 {
		return fmt.Errorf("service: SampleFrac must be in (0, 1], got %v", c.SampleFrac)
	}
	if c.WindowRecords == 0 {
		c.WindowRecords = 512
	}
	if c.WindowRecords < 1 {
		return fmt.Errorf("service: WindowRecords must be >= 1, got %d", c.WindowRecords)
	}
	if c.MinWindows == 0 {
		c.MinWindows = 8
	}
	if c.MinWindows < 0 {
		return fmt.Errorf("service: MinWindows must be non-negative, got %d", c.MinWindows)
	}
	if c.MinUserRecords == 0 {
		c.MinUserRecords = 8
	}
	if c.MinUserRecords < 0 {
		return fmt.Errorf("service: MinUserRecords must be non-negative, got %d", c.MinUserRecords)
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("service: Tolerance must be non-negative, got %v", c.Tolerance)
	}
	return nil
}

// ControllerStats is a point-in-time snapshot of the control loop.
type ControllerStats struct {
	// WindowsObserved and RecordsObserved count the sampled stream.
	WindowsObserved, RecordsObserved uint64
	// UsersTracked is the number of users with live sliding aggregates.
	UsersTracked int
	// Evaluations counts drift checks; Swaps counts reconfigurations
	// that actually re-deployed into the gateway.
	Evaluations, Swaps uint64
	// OverrideSkips counts per-user overrides the mechanism rejected
	// during reconfiguration; those users keep the shared value. A
	// steadily growing count means the inverted per-user targets keep
	// landing outside the mechanism's validity — worth an operator look.
	OverrideSkips uint64
	// LastPrivacy and LastUtility are the most recent online estimates
	// (NaN-free only after the first evaluation with enough data).
	LastPrivacy, LastUtility float64
	// LastErr is the most recent evaluation failure, if any.
	LastErr error
}

// NewController builds a controller for a gateway serving the given
// deployment and attaches it as the gateway's tap. The deployment is the
// drift baseline; its mechanism must match the definition's.
func NewController(g *Gateway, dep *core.Deployment, cfg ControllerConfig) (*Controller, error) {
	if g == nil {
		return nil, fmt.Errorf("service: controller needs a gateway")
	}
	if dep == nil || dep.Mechanism == nil {
		return nil, fmt.Errorf("service: controller needs a deployment")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Definition.Mechanism.Name() != dep.Mechanism.Name() {
		return nil, fmt.Errorf("service: definition mechanism %q does not match deployed %q",
			cfg.Definition.Mechanism.Name(), dep.Mechanism.Name())
	}
	c := &Controller{
		gw:         g,
		cfg:        cfg,
		sampleSeed: rng.ChildSeed(cfg.Seed, "controller-sample"),
		cache:      core.NewCache(cfg.Definition),
		users:      make(map[string]*observed),
		obj:        cfg.Objectives,
		deployed:   dep.Clone(),
	}
	c.registerMetrics(g.Obs())
	g.SetTap(c)
	return c, nil
}

// registerMetrics exposes the control loop's counters and latest estimates
// on the gateway's registry. Everything is Func-backed — a Gather takes the
// controller mutex briefly per callback, the control loop pays nothing.
// (Gather runs callbacks outside the registry lock, so taking c.mu here
// cannot deadlock against registration.)
func (c *Controller) registerMetrics(r *obs.Registry) {
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read()
		}
	}
	lockedU := func(read func() uint64) func() uint64 {
		return func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read()
		}
	}
	r.CounterFunc("lppm_controller_windows_observed_total",
		"sampled windows delivered to the controller", nil,
		lockedU(func() uint64 { return c.windows }))
	r.CounterFunc("lppm_controller_records_observed_total",
		"records in sampled windows", nil,
		lockedU(func() uint64 { return c.records }))
	r.CounterFunc("lppm_controller_evaluations_total",
		"drift checks that judged the objectives", nil,
		lockedU(func() uint64 { return c.evals }))
	r.CounterFunc("lppm_controller_swaps_total",
		"reconfigurations re-deployed into the gateway", nil,
		lockedU(func() uint64 { return c.swaps }))
	r.CounterFunc("lppm_controller_override_skips_total",
		"per-user overrides rejected during reconfiguration", nil,
		lockedU(func() uint64 { return c.overrideSkips }))
	r.GaugeFunc("lppm_controller_users_tracked",
		"users with live sliding aggregates", nil,
		locked(func() float64 { return float64(len(c.users)) }))
	r.GaugeFunc("lppm_controller_last_privacy",
		"most recent online privacy estimate", nil,
		locked(func() float64 { return c.lastPriv }))
	r.GaugeFunc("lppm_controller_last_utility",
		"most recent online utility estimate", nil,
		locked(func() float64 { return c.lastUtil }))
}

// User implements Tap: one sampler per user stream, seeded by name.
func (c *Controller) User(user string) TapUser {
	return &sampler{c: c, user: user, seed: rng.ChildSeed(c.sampleSeed, user)}
}

// observe appends a sampled window pair to the user's sliding aggregate and
// trims oldest pairs past the cap (always keeping at least one). Windows
// protected under a deployment older than the last swap are dropped: they
// are evidence about the predecessor, not the configuration under watch.
func (c *Controller) observe(user string, gen uint64, actual, protected []trace.Record) {
	// The actual slice is already the tap's own copy; protected is shared
	// with the Output consumer, so copy before retaining.
	pcopy := append(make([]trace.Record, 0, len(protected)), protected...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen < c.minGen {
		return
	}
	o := c.users[user]
	if o == nil {
		o = &observed{}
		c.users[user] = o
	}
	o.wins = append(o.wins, obsWindow{actual: actual, protected: pcopy})
	o.actualLen += len(actual)
	drop := 0
	for o.actualLen > c.cfg.WindowRecords && drop < len(o.wins)-1 {
		o.actualLen -= len(o.wins[drop].actual)
		drop++
	}
	if drop > 0 {
		// Re-allocate so the dropped windows don't pin the backing array.
		o.wins = append(make([]obsWindow, 0, len(o.wins)-drop), o.wins[drop:]...)
	}
	c.windows++
	c.fresh++
	c.records += uint64(len(actual))
	o.seen = c.windows
}

// SetObjectives replaces the drift targets mid-stream — the operator
// tightening (or relaxing) the deployment's contract. The next evaluation
// judges the observed estimates against the new objectives and
// reconfigures if they no longer hold.
func (c *Controller) SetObjectives(obj model.Objectives) error {
	if err := obj.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.obj = obj
	c.mu.Unlock()
	return nil
}

// Objectives returns the current drift targets.
func (c *Controller) Objectives() model.Objectives {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obj
}

// Deployed returns (a clone of) the deployment the controller last pushed
// to the gateway — the initial one until the first swap.
func (c *Controller) Deployed() *core.Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deployed.Clone()
}

// Stats snapshots the control loop's counters and latest estimates.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ControllerStats{
		WindowsObserved: c.windows,
		RecordsObserved: c.records,
		UsersTracked:    len(c.users),
		Evaluations:     c.evals,
		Swaps:           c.swaps,
		OverrideSkips:   c.overrideSkips,
		LastPrivacy:     c.lastPriv,
		LastUtility:     c.lastUtil,
		LastErr:         c.lastErr,
	}
}

// estimate is one user's observed metric outcome.
type estimate struct {
	user       string
	priv, util float64
}

// snapshot captures the sliding aggregates as per-user traces, in sorted
// user order for determinism. Users below MinUserRecords are skipped — too
// little evidence to estimate or to re-model on. Only the window-list
// headers are taken under the lock (safe: observe appends past the
// captured length or reallocates, and trimming reallocates); flattening
// and trace construction — which copy and sort every record — run after
// release, so shard flushes blocked on Observe never wait behind them.
// Flattened traces are memoized on the aggregate: a user with no new
// window since the last snapshot hands back the same *trace.Trace, so
// repeated evaluations skip the flatten AND keep the prepared metric state
// the cache built on that trace. fresh is the windows-since-last-swap
// count gating the evaluation.
func (c *Controller) snapshot() (actuals, protecteds map[string]*trace.Trace, users []string, obj model.Objectives, fresh uint64) {
	type raw struct {
		user         string
		o            *observed
		wins         []obsWindow
		seen         uint64
		flatA, flatP *trace.Trace
	}
	c.mu.Lock()
	raws := make([]raw, 0, len(c.users))
	for u, o := range c.users {
		if o.actualLen < c.cfg.MinUserRecords {
			continue
		}
		rw := raw{user: u, o: o, wins: o.wins, seen: o.seen}
		if o.flatA != nil && o.flatSeen == o.seen {
			rw.flatA, rw.flatP = o.flatA, o.flatP
		}
		raws = append(raws, rw)
	}
	obj = c.obj
	fresh = c.fresh
	c.mu.Unlock()
	// raws was collected in map order; sort before anything downstream
	// consumes it, so the flatten loop, the users slice, and every later
	// float accumulation over the estimates see one deterministic order.
	sort.Slice(raws, func(i, j int) bool { return raws[i].user < raws[j].user })

	actuals = make(map[string]*trace.Trace, len(raws))
	protecteds = make(map[string]*trace.Trace, len(raws))
	built := raws[:0]
	for _, r := range raws {
		if r.flatA == nil {
			var actual, protected []trace.Record
			for _, w := range r.wins {
				actual = append(actual, w.actual...)
				protected = append(protected, w.protected...)
			}
			at, err := trace.NewTrace(r.user, actual)
			if err != nil {
				continue
			}
			pt, err := trace.NewTrace(r.user, protected)
			if err != nil {
				continue
			}
			r.flatA, r.flatP = at, pt
			built = append(built, r)
		}
		actuals[r.user], protecteds[r.user] = r.flatA, r.flatP
		users = append(users, r.user)
	}
	sort.Strings(users)
	if len(built) > 0 {
		// Publish the freshly flattened traces, unless the user observed
		// another window (or was replaced) while we flattened — a stale
		// memo would then serve outdated aggregates to the next snapshot.
		c.mu.Lock()
		for _, r := range built {
			if c.users[r.user] == r.o && r.o.seen == r.seen {
				r.o.flatA, r.o.flatP, r.o.flatSeen = r.flatA, r.flatP, r.seen
			}
		}
		c.mu.Unlock()
	}
	return actuals, protecteds, users, obj, fresh
}

// Evaluate runs one pass of the control loop: estimate the observed privacy
// and utility on the sampled aggregates, judge them against the objectives,
// and on drift re-run the full analysis on the observed data and hot-swap
// the resulting deployment into the gateway. It reports whether a swap
// happened. With too little observed data it is a no-op. Expensive on the
// drift path (a full parameter sweep); meant for Run's cadence or explicit
// calls, never for shard goroutines.
func (c *Controller) Evaluate(ctx context.Context) (swapped bool, err error) {
	evaluated := false
	defer func() {
		// Record the outcome of real evaluations only: a no-op pass (too
		// little fresh data) must not clear a prior reconfiguration
		// failure the operator has yet to see.
		if evaluated || err != nil {
			c.mu.Lock()
			c.lastErr = err
			c.mu.Unlock()
		}
	}()
	// Cheap gate before the expensive snapshot: an idle stream's periodic
	// ticks must not pay the flatten-and-sort of every user's aggregate
	// just to no-op.
	c.mu.Lock()
	fresh := c.fresh
	tracked := len(c.users)
	c.mu.Unlock()
	if fresh < uint64(c.cfg.MinWindows) || tracked == 0 {
		return false, nil
	}
	// Control-plane span: passes the cheap gate rarely, so it pays its
	// own clock reads. Covers snapshot and estimation; on drift the
	// redeploy and swap run as child spans.
	esp := c.gw.tracer.ForceRoot("controller.evaluate")
	defer func() {
		if swapped {
			esp.Attr("swapped", "true")
		}
		esp.EndErr(err)
	}()
	actuals, protecteds, users, obj, _ := c.snapshot()
	if len(users) == 0 {
		return false, nil
	}
	// Evict users with no sampled window since the previous evaluation:
	// a long-running controller must track the users on the stream, not
	// accumulate aggregates for everyone ever sampled. Evicted users that
	// return simply rebuild their window — and their prepared metric
	// state, which is dropped with them.
	c.mu.Lock()
	var evicted []string
	for u, o := range c.users {
		if o.seen <= c.prevEvalWindows {
			delete(c.users, u)
			evicted = append(evicted, u)
		}
	}
	c.prevEvalWindows = c.windows
	c.mu.Unlock()
	sort.Strings(evicted) // collected in map order; drop prepared state deterministically
	// Drop evicted users' prepared state on the way out, not here: the
	// snapshot above still carries them, so both the estimate loop and a
	// drift re-analysis would recreate the entries a Forget-now dropped —
	// leaking them forever, since an evicted user is never For()'d again.
	defer func() {
		for _, u := range evicted {
			c.cache.MetricCache().Forget(u)
		}
	}()

	ests := make([]estimate, 0, len(users))
	var privSum, utilSum float64
	for _, u := range users {
		// Prepared evaluators, indexed as core.NewCache orders them:
		// privacy then utility. Users whose aggregate is unchanged since
		// the last evaluation hit the cache (snapshot memoizes their
		// traces, so the identity check passes) and skip the actual-side
		// metric work entirely.
		prep := c.cache.MetricCache().For(u, actuals[u])
		pv, perr := prep[0].Evaluate(protecteds[u])
		if perr != nil {
			continue
		}
		uv, uerr := prep[1].Evaluate(protecteds[u])
		if uerr != nil {
			continue
		}
		ests = append(ests, estimate{user: u, priv: pv, util: uv})
		privSum += pv
		utilSum += uv
	}
	esp.AttrInt("users", int64(len(users))).AttrInt("estimates", int64(len(ests)))
	if len(ests) == 0 {
		return false, nil
	}
	evaluated = true
	priv := privSum / float64(len(ests))
	util := utilSum / float64(len(ests))
	esp.AttrFloat("privacy", priv).AttrFloat("utility", util)

	c.mu.Lock()
	c.evals++
	evalIdx := c.evals
	c.lastPriv, c.lastUtil = priv, util
	c.mu.Unlock()

	tol := c.cfg.Tolerance
	if priv <= obj.MaxPrivacy*(1+tol) && util >= obj.MinUtility*(1-tol) {
		return false, nil // objectives hold on the observed stream
	}

	// Drift: re-run Define → Model → Configure on what the stream
	// actually carried, then make the result live.
	esp.Attr("drift", "true")
	ds := trace.NewDataset()
	for _, u := range users {
		ds.Add(actuals[u])
	}
	def := c.cfg.Definition
	// Deterministic but fresh per evaluation: re-analysis draws must not
	// correlate across evaluations or with the serving streams.
	def.Seed = rng.New(c.cfg.Seed).Named("controller-eval").Split(int64(evalIdx)).Seed()
	// The re-analysis sweeps the very traces the estimates above were
	// computed on (ds aliases the snapshot), so the cached prepared
	// evaluators carry straight into the sweep's inner loop.
	rsp := c.gw.tracer.Child(esp.Context(), "controller.redeploy")
	dep, analysis, rerr := core.RedeployCached(ctx, def, ds, obj, c.cache)
	if rerr != nil {
		// Analysis failure or objectives infeasible on observed data:
		// keep serving the old configuration rather than shipping
		// nothing.
		rsp.EndErr(rerr)
		return false, fmt.Errorf("service: drift redeploy: %w", rerr)
	}
	rsp.End()
	if c.cfg.PerUserOverrides {
		c.deriveOverrides(dep, analysis, ests, priv, obj)
	}
	ssp := c.gw.tracer.Child(esp.Context(), "controller.swap")
	if serr := c.gw.Swap(dep); serr != nil {
		ssp.EndErr(serr)
		return false, fmt.Errorf("service: swap: %w", serr)
	}
	ssp.End()
	c.mu.Lock()
	c.swaps++
	c.deployed = dep.Clone()
	// Reset the aggregates: they hold the predecessor's output, and
	// judging the new deployment on it would re-trigger a full
	// re-analysis every tick until the old records slid out. The fresh
	// counter makes the next evaluations no-ops until the new
	// configuration has produced MinWindows windows of its own, and
	// minGen keeps shards still flushing an old-generation window from
	// smuggling predecessor output into the reset aggregates. (If a
	// concurrent swap raced ours, Generation is even higher — a stricter
	// cutoff, still safe.)
	c.users = make(map[string]*observed)
	c.fresh = 0
	c.prevEvalWindows = c.windows
	c.minGen = c.gw.Generation()
	c.mu.Unlock()
	// The aggregates were reset; the prepared state and the property memo
	// are keyed to traces that will never be handed out again, so drop
	// them too rather than pin the whole pre-swap snapshot.
	c.cache.Reset()
	return true, nil
}

// deriveOverrides personalizes the freshly configured deployment: a user
// whose observed privacy sits `offset` above the population mean is
// expected — treating the per-user deviation as additive on the fitted
// log-linear model — to land at Predicted+offset under the new value, so
// users the global value cannot carry below the bound get the parameter
// value the model inverts for their own target, clamped to the model's
// validity and the mechanism's declared range.
func (c *Controller) deriveOverrides(dep *core.Deployment, analysis *core.Analysis, ests []estimate, meanPriv float64, obj model.Objectives) {
	pm := analysis.PrivacyModel
	var spec lppm.ParamSpec
	found := false
	for _, s := range dep.Mechanism.Params() {
		if s.Name == analysis.Definition.Param {
			spec, found = s, true
			break
		}
	}
	if !found {
		return
	}
	var skips uint64
	for _, e := range ests {
		offset := e.priv - meanPriv
		target := obj.MaxPrivacy - offset
		if target >= dep.Configuration.PredictedPrivacy {
			continue // the shared value already covers this user
		}
		v, err := pm.Invert(target)
		if err != nil {
			continue
		}
		v = pm.ClampToValidity(v)
		if v < spec.Min {
			v = spec.Min
		}
		if v > spec.Max {
			v = spec.Max
		}
		if v == dep.Configuration.Value { //lppm:allow floatcmp -- the clamped inversion either lands bit-exactly on the shared value (nothing to override) or differs; approximate equality would suppress real overrides
			continue
		}
		// Override validates against the mechanism; a failure only means
		// this user keeps the shared value — but it is counted, so a
		// systematically infeasible per-user target shows up in Stats
		// instead of vanishing.
		if err := dep.Override(e.user, lppm.Params{analysis.Definition.Param: v}); err != nil {
			skips++
		}
	}
	if skips > 0 {
		c.mu.Lock()
		c.overrideSkips += skips
		c.mu.Unlock()
	}
}

// Run drives the loop: an Evaluate every interval until the context is
// canceled or the gateway shuts down. Evaluation errors are recorded in
// Stats and do not stop the loop — a middleware controller outlives
// transient infeasibility. Run blocks; start it in its own goroutine.
func (c *Controller) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 30 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.gw.done:
			return
		case <-t.C:
			// Errors land in Stats().LastErr via Evaluate's defer; the
			// loop only stops when the error is the context's own.
			if _, err := c.Evaluate(ctx); err != nil && ctx.Err() != nil {
				return
			}
		}
	}
}
