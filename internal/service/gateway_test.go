package service

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	gwT0   = time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	gwBase = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// makeRecords builds nUsers interleaved streams of perUser records each, in
// global time order — the shape of live traffic.
func makeRecords(nUsers, perUser int) []trace.Record {
	recs := make([]trace.Record, 0, nUsers*perUser)
	for i := 0; i < perUser; i++ {
		for u := 0; u < nUsers; u++ {
			recs = append(recs, trace.Record{
				User: fmt.Sprintf("u%02d", u),
				Time: gwT0.Add(time.Duration(i) * time.Minute),
				Point: gwBase.Offset(float64(i)*50+float64(u)*10,
					float64(u)*100),
			})
		}
	}
	return recs
}

// runGateway streams recs through a gateway and returns every protected
// record grouped per user, preserving emission order.
func runGateway(t *testing.T, cfg Config, recs []trace.Record) (map[string][]trace.Record, Stats) {
	t.Helper()
	g, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			for _, r := range wnd.Records {
				got[r.User] = append(got[r.User], r)
			}
		}
		done <- got
	}()
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, g.Stats()
}

func TestShardRoutingStablePerUser(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		for u := 0; u < 50; u++ {
			user := fmt.Sprintf("user-%d", u)
			first := shardOf(user, n)
			if first < 0 || first >= n {
				t.Fatalf("shardOf(%q, %d) = %d out of range", user, n, first)
			}
			for rep := 0; rep < 5; rep++ {
				if got := shardOf(user, n); got != first {
					t.Fatalf("shardOf(%q, %d) unstable: %d then %d", user, n, first, got)
				}
			}
		}
	}
}

func TestGatewayCountsSumToInput(t *testing.T) {
	recs := makeRecords(20, 37) // 740 records, windows don't divide evenly
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     4,
		QueueSize:  16,
		FlushEvery: 8,
		Seed:       1,
	}
	got, st := runGateway(t, cfg, recs)
	if st.Ingested != uint64(len(recs)) {
		t.Errorf("ingested %d, want %d", st.Ingested, len(recs))
	}
	if st.Emitted != uint64(len(recs)) || st.Dropped != 0 {
		t.Errorf("emitted %d dropped %d, want %d emitted, 0 dropped", st.Emitted, st.Dropped, len(recs))
	}
	var total, perShardUsers int
	for _, ss := range st.PerShard {
		total += int(ss.Emitted)
		perShardUsers += ss.Users
	}
	if total != len(recs) {
		t.Errorf("per-shard emitted sums to %d, want %d", total, len(recs))
	}
	if perShardUsers != 20 || st.Users != 20 {
		t.Errorf("users = %d (sum %d), want 20", st.Users, perShardUsers)
	}
	for u, rs := range got {
		if len(rs) != 37 {
			t.Errorf("user %s got %d records, want 37", u, len(rs))
		}
		if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Time.Before(rs[j].Time) }) {
			t.Errorf("user %s output not in time order", u)
		}
	}
}

// TestGatewayMatchesBatchProtect checks stream/batch equivalence: for a
// deterministic mechanism any split agrees, and for GEO-I — which draws
// randomness strictly per record — the windowed stream must be bit-identical
// to lppm.ProtectDataset under the same seed, for every shard count.
func TestGatewayMatchesBatchProtect(t *testing.T) {
	recs := makeRecords(12, 23)
	ds := trace.NewDataset()
	perUser := make(map[string][]trace.Record)
	for _, r := range recs {
		perUser[r.User] = append(perUser[r.User], r)
	}
	for u, rs := range perUser {
		tr, err := trace.NewTrace(u, rs)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(tr)
	}
	const seed = 99
	for _, mech := range []lppm.Mechanism{
		lppm.NewCoordinateRounding(),
		lppm.NewGeoIndistinguishability(),
	} {
		want, err := lppm.ProtectDataset(ds, mech, lppm.Defaults(mech), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 5} {
			cfg := Config{Mechanism: mech, Shards: shards, FlushEvery: 7, Seed: seed}
			got, _ := runGateway(t, cfg, recs)
			for _, u := range ds.Users() {
				wantRecs := want.Trace(u).Records
				gotRecs := got[u]
				if len(gotRecs) != len(wantRecs) {
					t.Fatalf("%s shards=%d user %s: %d records, want %d",
						mech.Name(), shards, u, len(gotRecs), len(wantRecs))
				}
				for i := range wantRecs {
					if gotRecs[i] != wantRecs[i] {
						t.Fatalf("%s shards=%d user %s record %d: got %v, want %v",
							mech.Name(), shards, u, i, gotRecs[i], wantRecs[i])
					}
				}
			}
		}
	}
}

func TestGatewayCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     3,
		QueueSize:  8,
		FlushEvery: 100, // never reached: all output comes from the drain
		Seed:       7,
	}
	g, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(9, 4)
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	cancel()
	// After cancellation Ingest must refuse promptly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := g.Ingest(recs[0]); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Ingest still accepting after cancel")
		}
	}
	var emitted int
	for wnd := range g.Output() { // closes once shards drained
		emitted += len(wnd.Records)
	}
	st := g.Stats()
	if uint64(emitted) != st.Emitted {
		t.Errorf("consumed %d but stats say %d", emitted, st.Emitted)
	}
	// Everything accepted before cancel is either protected-and-emitted
	// or counted dropped — staged, queued and in-flight records
	// included; nothing simply vanishes or is double-counted.
	if accepted := int(st.Ingested); emitted+int(st.Dropped) != accepted {
		t.Errorf("emitted %d + dropped %d != ingested %d",
			emitted, st.Dropped, accepted)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest(recs[0]); err == nil {
		t.Error("Ingest after Close must fail")
	}
}

// TestGatewayDrainOrderDeterministic is the regression test for the
// nondeterministic shutdown flush: drain used to walk the user table in Go
// map iteration order, so two runs with identical seeds emitted the final
// windows in different orders. Drain must flush users in sorted order.
func TestGatewayDrainOrderDeterministic(t *testing.T) {
	recs := makeRecords(17, 5)
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     1,
		FlushEvery: 100, // never reached: every window comes from the drain
		Seed:       3,
	}
	order := func() []string {
		g, err := New(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan []string)
		go func() {
			var users []string
			for wnd := range g.Output() {
				users = append(users, wnd.Records[0].User)
			}
			done <- users
		}()
		if err := g.IngestAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		return <-done
	}
	first := order()
	if len(first) != 17 {
		t.Fatalf("drained %d windows, want 17", len(first))
	}
	if !sort.StringsAreSorted(first) {
		t.Errorf("drain order not sorted: %v", first)
	}
	second := order()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("drain order unstable across identical runs: %v vs %v", first, second)
		}
	}
}

// TestGatewayCancelGraceDropsOnce covers the cancellation grace path: a
// consumer that reads one window and then disappears must cost the drain at
// most one gateway-wide grace period, every undeliverable window must be
// counted Dropped exactly once, and nothing may be double-counted.
func TestGatewayCancelGraceDropsOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     2,
		FlushEvery: 100, // all windows come from the drain
		StageSize:  1,
		Seed:       5,
	}
	g, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(8, 6) // 48 records, one drain window per user
	gotOne := make(chan int)
	go func() {
		// Slow, then absent: consume a single window and walk away.
		wnd := <-g.Output()
		gotOne <- len(wnd.Records)
	}()
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	g.Close()
	elapsed := time.Since(start)
	if elapsed > drainGrace+2*time.Second {
		t.Errorf("Close took %v; the grace deadline is gateway-wide, want < %v",
			elapsed, drainGrace+2*time.Second)
	}
	st := g.Stats()
	if st.Dropped == 0 {
		t.Error("an absent consumer must cost dropped windows")
	}
	if st.Ingested != uint64(len(recs)) {
		t.Errorf("ingested %d, want %d", st.Ingested, len(recs))
	}
	if st.Emitted+st.Dropped != st.Ingested {
		t.Errorf("emitted %d + dropped %d != ingested %d (windows double- or un-counted)",
			st.Emitted, st.Dropped, st.Ingested)
	}
	if n := <-gotOne; n == 0 {
		t.Error("slow consumer read an empty window")
	}
}

// TestGatewaySwapVisibleOnlyAtWindowBoundary hot-swaps ε mid-stream and
// checks the swap invariant: zero dropped records, output before the swap
// bit-identical to a never-swapped run, and every window after it protected
// wholly under the new parameters.
func TestGatewaySwapVisibleOnlyAtWindowBoundary(t *testing.T) {
	const (
		nUsers     = 8
		perUser    = 24
		flushEvery = 8
	)
	mech := lppm.NewGeoIndistinguishability()
	recs := makeRecords(nUsers, perUser)
	cfg := Config{
		Mechanism:  mech,
		Shards:     2,
		FlushEvery: flushEvery,
		StageSize:  1, // no staging: records reach shards as ingested
		Seed:       42,
	}
	baseline, _ := runGateway(t, cfg, recs)

	g, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			got[wnd.Records[0].User] = append(got[wnd.Records[0].User], wnd.Records...)
		}
		done <- got
	}()
	// First window per user, then wait until all of it is emitted so the
	// swap lands exactly on a window boundary.
	boundary := nUsers * flushEvery
	if err := g.IngestAll(recs[:boundary]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Emitted != uint64(boundary) {
		if time.Now().After(deadline) {
			t.Fatalf("first windows never emitted: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	tight := lppm.Defaults(mech)
	tight[lppm.EpsilonParam] /= 10
	dep, err := core.NewDeployment(mech, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Swap(dep); err != nil {
		t.Fatal(err)
	}
	if err := g.IngestAll(recs[boundary:]); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done

	st := g.Stats()
	if st.Dropped != 0 {
		t.Errorf("swap dropped %d records, want 0", st.Dropped)
	}
	if st.Emitted != uint64(len(recs)) {
		t.Errorf("emitted %d, want %d", st.Emitted, len(recs))
	}
	if st.Swaps != 1 || st.Generation != 1 {
		t.Errorf("swaps=%d generation=%d, want 1 and 1", st.Swaps, st.Generation)
	}
	if st.Reconfigs != nUsers {
		t.Errorf("reconfigs=%d, want one per user (%d)", st.Reconfigs, nUsers)
	}
	for u, want := range baseline {
		gotRecs := got[u]
		if len(gotRecs) != len(want) {
			t.Fatalf("user %s: %d records, want %d", u, len(gotRecs), len(want))
		}
		for i := 0; i < flushEvery; i++ {
			if gotRecs[i] != want[i] {
				t.Errorf("user %s pre-swap record %d diverged from never-swapped run", u, i)
			}
		}
		for i := flushEvery; i < perUser; i++ {
			if gotRecs[i] == want[i] {
				t.Errorf("user %s post-swap record %d identical to old ε output", u, i)
			}
			if gotRecs[i].Time != want[i].Time || gotRecs[i].User != u {
				t.Errorf("user %s post-swap record %d lost identity/order", u, i)
			}
		}
	}
}

// TestGatewaySwapPerUserOverride swaps in a deployment whose base params
// are unchanged but which overrides one user: only that user's subsequent
// windows may change, every other stream must remain bit-identical to the
// never-swapped run — the refresh itself is invisible.
func TestGatewaySwapPerUserOverride(t *testing.T) {
	const (
		nUsers     = 6
		perUser    = 16
		flushEvery = 8
	)
	mech := lppm.NewGeoIndistinguishability()
	recs := makeRecords(nUsers, perUser)
	cfg := Config{
		Mechanism:  mech,
		Shards:     3,
		FlushEvery: flushEvery,
		StageSize:  1,
		Seed:       7,
	}
	baseline, _ := runGateway(t, cfg, recs)

	g, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			got[wnd.Records[0].User] = append(got[wnd.Records[0].User], wnd.Records...)
		}
		done <- got
	}()
	boundary := nUsers * flushEvery
	if err := g.IngestAll(recs[:boundary]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Emitted != uint64(boundary) {
		if time.Now().After(deadline) {
			t.Fatalf("first windows never emitted: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	const overridden = "u00"
	dep, err := core.NewDeployment(mech, nil) // same base params as cfg
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Override(overridden, lppm.Params{lppm.EpsilonParam: lppm.Defaults(mech)[lppm.EpsilonParam] / 20}); err != nil {
		t.Fatal(err)
	}
	if err := g.Swap(dep); err != nil {
		t.Fatal(err)
	}
	if err := g.IngestAll(recs[boundary:]); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if st := g.Stats(); st.Dropped != 0 {
		t.Errorf("override swap dropped %d records", st.Dropped)
	}
	for u, want := range baseline {
		gotRecs := got[u]
		if len(gotRecs) != len(want) {
			t.Fatalf("user %s: %d records, want %d", u, len(gotRecs), len(want))
		}
		for i := range want {
			same := gotRecs[i] == want[i]
			switch {
			case u == overridden && i >= flushEvery:
				if same {
					t.Errorf("overridden user record %d unchanged by 20x tighter ε", i)
				}
			default:
				if !same {
					t.Errorf("user %s record %d changed by another user's override", u, i)
				}
			}
		}
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := New(ctx, Config{}); err == nil {
		t.Error("nil mechanism must fail")
	}
	if _, err := New(ctx, Config{Mechanism: lppm.NewGeoIndistinguishability(), Shards: -1}); err == nil {
		t.Error("negative shards must fail")
	}
	if _, err := New(ctx, Config{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Params:    lppm.Params{"epsilon": -5},
	}); err == nil {
		t.Error("out-of-range params must fail")
	}
	if _, err := New(ctx, Config{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Params:    lppm.Params{"epsilon": 0.01, "epsilonn": 0.001},
	}); err == nil {
		t.Error("undeclared base param must fail, not ride along ignored")
	}
	g, err := New(ctx, Config{Mechanism: lppm.NewGeoIndistinguishability()})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest(trace.Record{Time: gwT0, Point: gwBase}); err == nil {
		t.Error("empty user must be rejected")
	}
	if err := g.Swap(&core.Deployment{Mechanism: lppm.NewGeoIndistinguishability()}); err != nil {
		t.Errorf("nil-params deployment must swap to mechanism defaults: %v", err)
	}
	if err := g.Swap(&core.Deployment{
		Mechanism: lppm.NewGeoIndistinguishability(),
		Params:    lppm.Params{"epsilon": 0.01, "epsilonn": 0.001},
	}); err == nil {
		t.Error("swap with an undeclared base param must fail")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Error("Close must be idempotent:", err)
	}
}

// TestGatewayFlushUserEmitsStagedTail is the network front-end's contract:
// a FlushUser issued after the last Ingest of a user must flush exactly the
// records pushed so far — including ones still sitting in the shard's stage
// buffer — and return only once the window has been handed to Output.
func TestGatewayFlushUserEmitsStagedTail(t *testing.T) {
	g, err := New(context.Background(), Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     2,
		FlushEvery: 64, // never reached: only FlushUser emits
		// Default StageSize (32) > the record count, so everything is
		// still staged when the flush command is issued.
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	windows := make(chan []trace.Record, 8)
	go func() {
		for w := range g.Output() {
			windows <- w.Records
		}
		close(windows)
	}()
	recs := makeRecords(2, 3) // u00, u01 × 3 records
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := g.FlushUser("u00"); err != nil {
		t.Fatal(err)
	}
	// FlushUser returns only after the emit, so the window is already
	// buffered (or consumed) on Output.
	w := <-windows
	if len(w) != 3 || w[0].User != "u00" {
		t.Fatalf("flushed window = %d records of %q, want 3 of u00", len(w), w[0].User)
	}
	// Flushing a user with nothing pending — or one never seen — is a
	// no-op that still acknowledges.
	if err := g.FlushUser("u00"); err != nil {
		t.Fatal(err)
	}
	if err := g.FlushUser("never-seen"); err != nil {
		t.Fatal(err)
	}
	if err := g.FlushUser(""); err == nil {
		t.Error("FlushUser with empty user id must fail")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	var rest int
	for w := range windows {
		if w[0].User != "u01" {
			t.Errorf("post-flush window for %q, want only u01's drain", w[0].User)
		}
		rest += len(w)
	}
	if rest != 3 {
		t.Errorf("drain emitted %d records, want u01's 3", rest)
	}
	if err := g.FlushUser("u00"); err != ErrClosed {
		t.Errorf("FlushUser after Close = %v, want ErrClosed", err)
	}
	if st := g.Stats(); st.Emitted != 6 || st.Dropped != 0 {
		t.Errorf("emitted %d dropped %d, want 6 and 0", st.Emitted, st.Dropped)
	}
}

// TestGatewayFlushUserKeepsPerUserOutput: per-user protected output with an
// end-of-stream FlushUser is bit-identical to letting Close drain the tail,
// for a per-record-randomness mechanism — the file-vs-socket determinism
// argument reduced to the service layer.
func TestGatewayFlushUserKeepsPerUserOutput(t *testing.T) {
	recs := makeRecords(6, 21) // partial final window at FlushEvery=8
	mkCfg := func() Config {
		return Config{
			Mechanism:  lppm.NewGeoIndistinguishability(),
			Shards:     3,
			FlushEvery: 8,
			StageSize:  1,
			Seed:       1234,
		}
	}
	baseline, _ := runGateway(t, mkCfg(), recs)

	g, err := New(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			for _, r := range wnd.Records {
				got[r.User] = append(got[r.User], r)
			}
		}
		done <- got
	}()
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		if err := g.FlushUser(fmt.Sprintf("u%02d", u)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	for u, want := range baseline {
		if len(got[u]) != len(want) {
			t.Fatalf("user %s: %d records, want %d", u, len(got[u]), len(want))
		}
		for i := range want {
			if got[u][i] != want[i] {
				t.Fatalf("user %s record %d diverged between FlushUser and drain tails", u, i)
			}
		}
	}
}

// TestGatewayDeploymentSnapshot checks the wire-facing deployment
// accessors: generation, assignment and override cloning.
func TestGatewayDeploymentSnapshot(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{
		Mechanism: mech,
		Params:    lppm.Params{"epsilon": 0.02},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	info := g.Deployment()
	if info.Generation != 0 || info.Mechanism != mech.Name() || info.Params["epsilon"] != 0.02 {
		t.Errorf("deployment snapshot %+v", info)
	}
	// Mutating the snapshot must not leak into serving state.
	info.Params["epsilon"] = 99
	if g.Deployment().Params["epsilon"] != 0.02 {
		t.Error("Deployment() handed out the serving params map")
	}
	dep := &core.Deployment{Mechanism: mech, Params: lppm.Params{"epsilon": 0.5}}
	if err := dep.Override("vip", lppm.Params{"epsilon": 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := g.Swap(dep); err != nil {
		t.Fatal(err)
	}
	info = g.Deployment()
	if info.Generation != 1 || info.Params["epsilon"] != 0.5 || info.Overrides["vip"]["epsilon"] != 0.9 {
		t.Errorf("post-swap snapshot %+v", info)
	}
	sd := g.ServingDeployment()
	if sd.Mechanism != mech || sd.Params["epsilon"] != 0.5 || sd.ParamsFor("vip")["epsilon"] != 0.9 {
		t.Errorf("serving deployment %+v", sd)
	}
	sd.Params["epsilon"] = 77
	if g.ServingDeployment().Params["epsilon"] != 0.5 {
		t.Error("ServingDeployment() handed out the serving params map")
	}
}
