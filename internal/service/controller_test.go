package service

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/trace"
)

// loopFixture is the shared offline half of the controller tests: a small
// synthetic fleet truncated to exactly 2*phase records per user, analyzed
// and deployed under loose objectives (a weak, high-ε configuration with
// room to drift once the objectives tighten).
type loopFixture struct {
	ds       *trace.Dataset
	def      core.Definition
	dep      *core.Deployment
	phase1   []trace.Record // each user's first `phase` records, time-ordered
	phase2   []trace.Record // the rest, time-ordered
	nUsers   int
	phaseLen int
}

func buildLoopFixture(t *testing.T, flushEvery, windowsPerPhase int) *loopFixture {
	t.Helper()
	phase := flushEvery * windowsPerPhase
	gen := synth.DefaultConfig()
	gen.NumDrivers = 8
	gen.Duration = 8 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := trace.NewDataset()
	for _, tr := range fleet.Dataset.Traces() {
		if tr.Len() < 2*phase {
			continue
		}
		nt, err := trace.NewTrace(tr.User, tr.Records[:2*phase])
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(nt)
	}
	if ds.NumUsers() < 4 {
		t.Fatalf("synthetic fleet too sparse: %d users with >= %d records", ds.NumUsers(), 2*phase)
	}
	def := core.Definition{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: 9,
		Repeats:    1,
		Seed:       11,
	}
	analysis, err := core.Analyze(context.Background(), def, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Loose objectives: tolerate heavy leakage, demand little utility.
	// The configured ε lands mid-range — weakly protective by design.
	dep, err := analysis.Deploy(model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	f := &loopFixture{ds: ds, def: def, dep: dep, nUsers: ds.NumUsers(), phaseLen: phase}
	for _, tr := range ds.Traces() {
		f.phase1 = append(f.phase1, tr.Records[:phase]...)
		f.phase2 = append(f.phase2, tr.Records[phase:]...)
	}
	byTime := func(recs []trace.Record) {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	}
	byTime(f.phase1)
	byTime(f.phase2)
	return f
}

// collectGateway runs a consumer that groups output per user.
func collectGateway(g *Gateway) chan map[string][]trace.Record {
	done := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range g.Output() {
			got[wnd.Records[0].User] = append(got[wnd.Records[0].User], wnd.Records...)
		}
		done <- got
	}()
	return done
}

// TestControllerClosesTheLoop drives the paper's loop end to end over live
// traffic: a weak deployment serves a stream; mid-stream the designer
// tightens the objectives; the controller's observed estimates violate
// them, it re-runs Define → Model → Configure on the observed data and
// hot-swaps the tighter ε into the gateway. Zero records drop, the swap is
// visible only at window boundaries, and everything emitted before the
// swap is bit-identical to a run that never swapped.
func TestControllerClosesTheLoop(t *testing.T) {
	const (
		flushEvery      = 32
		windowsPerPhase = 3
		gwSeed          = 77
	)
	f := buildLoopFixture(t, flushEvery, windowsPerPhase)
	mkCfg := func() Config {
		cfg := ConfigFromDeployment(f.dep, gwSeed)
		cfg.Shards = 2
		cfg.FlushEvery = flushEvery
		cfg.StageSize = 1
		return cfg
	}

	// Never-swapped baseline.
	gBase, err := New(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	baseDone := collectGateway(gBase)
	if err := gBase.IngestAll(f.phase1); err != nil {
		t.Fatal(err)
	}
	if err := gBase.IngestAll(f.phase2); err != nil {
		t.Fatal(err)
	}
	if err := gBase.Close(); err != nil {
		t.Fatal(err)
	}
	baseline := <-baseDone

	// Controlled run.
	ctx := context.Background()
	g, err := New(ctx, mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(g, f.dep, ControllerConfig{
		Definition:    f.def,
		Objectives:    model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.10},
		SampleFrac:    1,
		WindowRecords: f.phaseLen,
		MinWindows:    1,
		Tolerance:     0.05,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := collectGateway(g)
	if err := g.IngestAll(f.phase1); err != nil {
		t.Fatal(err)
	}
	phase1Total := uint64(len(f.phase1))
	deadline := time.Now().Add(15 * time.Second)
	for g.Stats().Emitted != phase1Total {
		if time.Now().After(deadline) {
			t.Fatalf("phase-1 windows never fully emitted: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// The designer tightens the contract mid-stream on both sides: the
	// loosely-configured ε over-protects (observed utility ≈ 0.54, POI
	// retrieval 0), so the new utility floor is violated and the
	// controller must re-configure — a larger ε that restores utility
	// while staying under the new, much lower privacy cap.
	tight := model.Objectives{MaxPrivacy: 0.30, MinUtility: 0.65}
	if err := ctrl.SetObjectives(tight); err != nil {
		t.Fatal(err)
	}
	swapped, err := ctrl.Evaluate(ctx)
	if err != nil {
		t.Fatalf("evaluate: %v (stats %+v)", err, ctrl.Stats())
	}
	if !swapped {
		t.Fatalf("tightened objectives did not trigger a reconfiguration (estimates %+v)", ctrl.Stats())
	}
	oldEps := f.dep.Params[lppm.EpsilonParam]
	newEps := ctrl.Deployed().Params[lppm.EpsilonParam]
	if newEps == oldEps {
		t.Error("reconfiguration kept the old ε")
	}
	if newEps <= oldEps {
		t.Errorf("utility-driven drift must raise ε (less noise): got %v, had %v", newEps, oldEps)
	}
	if gen := g.Generation(); gen != 1 {
		t.Errorf("gateway generation = %d after swap, want 1", gen)
	}
	// A swap resets the aggregates: an immediate re-evaluation must be a
	// no-op instead of re-swapping on the predecessor's output.
	again, err := ctrl.Evaluate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again {
		t.Error("evaluation right after a swap re-configured on stale pre-swap evidence")
	}

	if err := g.IngestAll(f.phase2); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done

	st := g.Stats()
	if st.Dropped != 0 {
		t.Errorf("hot swap dropped %d records, want 0", st.Dropped)
	}
	if st.Emitted != uint64(len(f.phase1)+len(f.phase2)) {
		t.Errorf("emitted %d, want %d", st.Emitted, len(f.phase1)+len(f.phase2))
	}
	if st.Swaps != 1 {
		t.Errorf("gateway counted %d swaps, want 1", st.Swaps)
	}
	cs := ctrl.Stats()
	if cs.Swaps != 1 || cs.Evaluations == 0 {
		t.Errorf("controller stats %+v, want 1 swap and >= 1 evaluation", cs)
	}

	for u, want := range baseline {
		gotRecs := got[u]
		if len(gotRecs) != len(want) {
			t.Fatalf("user %s: %d records, want %d", u, len(gotRecs), len(want))
		}
		// Pre-swap: bit-identical to the never-swapped run.
		for i := 0; i < f.phaseLen; i++ {
			if gotRecs[i] != want[i] {
				t.Fatalf("user %s pre-swap record %d diverged from never-swapped run", u, i)
			}
		}
		// Post-swap: protected under the new ε — different output, same
		// identity and order (the swap happened at the window boundary).
		var changed int
		for i := f.phaseLen; i < len(want); i++ {
			if gotRecs[i].User != u || gotRecs[i].Time != want[i].Time {
				t.Fatalf("user %s post-swap record %d lost identity/order", u, i)
			}
			if gotRecs[i] != want[i] {
				changed++
			}
		}
		if changed == 0 {
			t.Errorf("user %s: no post-swap record reflects the tighter ε", u)
		}
	}
}

// TestControllerSamplingInterleavingIndependent checks the §3 discipline
// for the tap: which of a user's windows are sampled is a pure function of
// (seed, user, window index), so however shard goroutines interleave their
// Sample calls, identical-seed controllers make identical decisions.
func TestControllerSamplingInterleavingIndependent(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	def := core.Definition{
		Mechanism: mech,
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Controller {
		g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		c, err := NewController(g, dep, ControllerConfig{
			Definition: def,
			Objectives: model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.5},
			SampleFrac: 0.3,
			Seed:       99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// First controller: users strictly alternating.
	a := mk()
	aAlice, aBob := a.User("alice"), a.User("bob")
	var seqA []bool
	for i := 0; i < 40; i++ {
		seqA = append(seqA, aAlice.Sample(8))
		aBob.Sample(8)
	}
	// Second controller: bob's windows all land first (a different shard
	// interleaving); alice's decisions must not move.
	b := mk()
	bAlice, bBob := b.User("alice"), b.User("bob")
	for i := 0; i < 40; i++ {
		bBob.Sample(8)
	}
	for i := 0; i < 40; i++ {
		if got := bAlice.Sample(8); got != seqA[i] {
			t.Fatalf("alice's sampling decision %d depends on interleaving: %v vs %v", i, got, seqA[i])
		}
	}
	sampled := 0
	for _, s := range seqA {
		if s {
			sampled++
		}
	}
	if sampled == 0 || sampled == len(seqA) {
		t.Errorf("SampleFrac 0.3 sampled %d/%d windows", sampled, len(seqA))
	}
}

// TestControllerObserveKeepsWindowPairsAligned covers mechanisms that
// change the record count (dummies inject, sampling drops): the sliding
// aggregate trims whole (actual, protected) window pairs, so both sides
// always cover the same windows of the stream.
func TestControllerObserveKeepsWindowPairsAligned(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(g, dep, ControllerConfig{
		Definition: core.Definition{
			Mechanism: mech,
			Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Objectives:    model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.5},
		WindowRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := func(n int) []trace.Record {
		rs := makeRecords(1, n)
		for i := range rs {
			rs[i].User = "u"
		}
		return rs
	}
	// A dummy-injection-like mechanism: 8 actual records become 16.
	for i := 0; i < 5; i++ {
		ctrl.observe("u", 0, recs(8), recs(16))
	}
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	o := ctrl.users["u"]
	if o.actualLen > 16 {
		t.Errorf("actual aggregate holds %d records, cap is 16", o.actualLen)
	}
	if len(o.wins) != 2 {
		t.Fatalf("kept %d windows, want the 2 newest", len(o.wins))
	}
	for i, w := range o.wins {
		if len(w.actual) != 8 || len(w.protected) != 16 {
			t.Errorf("window %d: %d actual / %d protected, want the pair intact (8/16)",
				i, len(w.actual), len(w.protected))
		}
	}
}

// TestControllerObserveDropsStaleGenerations covers the swap/flush race: a
// shard mid-flush when a swap lands delivers a window protected under the
// old deployment after the aggregates were reset — it must be discarded,
// not counted as evidence about the new configuration.
func TestControllerObserveDropsStaleGenerations(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(g, dep, ControllerConfig{
		Definition: core.Definition{
			Mechanism: mech,
			Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Objectives: model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(1, 8)
	ctrl.mu.Lock()
	ctrl.minGen = 1 // as after a swap to generation 1
	ctrl.mu.Unlock()
	ctrl.observe("u00", 0, recs, recs) // old-generation window: dropped
	if cs := ctrl.Stats(); cs.WindowsObserved != 0 || cs.UsersTracked != 0 {
		t.Errorf("stale-generation window was retained: %+v", cs)
	}
	ctrl.observe("u00", 1, recs, recs) // current generation: kept
	if cs := ctrl.Stats(); cs.WindowsObserved != 1 || cs.UsersTracked != 1 {
		t.Errorf("current-generation window was not retained: %+v", cs)
	}
}

// TestControllerEvictsIdleUsers bounds the controller's memory: a user with
// no sampled window across two consecutive evaluations loses their sliding
// aggregates; active users keep theirs.
func TestControllerEvictsIdleUsers(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(g, dep, ControllerConfig{
		Definition: core.Definition{
			Mechanism: mech,
			Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		// Loose enough that the identity-like observations never drift.
		Objectives:     model.Objectives{MaxPrivacy: 0.99, MinUtility: 0.01},
		MinWindows:     1,
		MinUserRecords: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := func(user string) []trace.Record {
		rs := makeRecords(1, 8)
		for i := range rs {
			rs[i].User = user
		}
		return rs
	}
	alive := func(user string) bool {
		ctrl.mu.Lock()
		defer ctrl.mu.Unlock()
		_, ok := ctrl.users[user]
		return ok
	}
	ctrl.observe("idle", 0, recs("idle"), recs("idle"))
	ctrl.observe("busy", 0, recs("busy"), recs("busy"))
	if _, err := ctrl.Evaluate(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !alive("idle") || !alive("busy") {
		t.Fatal("first evaluation must not evict anyone")
	}
	ctrl.observe("busy", 0, recs("busy"), recs("busy"))
	if _, err := ctrl.Evaluate(context.Background()); err != nil {
		t.Fatal(err)
	}
	if alive("idle") {
		t.Error("user with no sampled window since the previous evaluation must be evicted")
	}
	if !alive("busy") {
		t.Error("user observed since the previous evaluation must survive")
	}
}

// TestControllerDeriveOverrides checks the personalization rule in
// isolation: a user whose observed privacy sits far above the population
// mean gets the ε the shared model inverts for their own target; users the
// global value already covers get none.
func TestControllerDeriveOverrides(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	def := core.Definition{
		Mechanism: mech,
		Param:     lppm.EpsilonParam,
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	dep, err := core.NewDeployment(mech, lppm.Params{lppm.EpsilonParam: 0.0076})
	if err != nil {
		t.Fatal(err)
	}
	dep.Param = lppm.EpsilonParam
	dep.Configuration = model.Configuration{Feasible: true, Value: 0.0076, PredictedPrivacy: 0.2}
	ctrl, err := NewController(g, dep, ControllerConfig{
		Definition:       def,
		Objectives:       model.Objectives{MaxPrivacy: 0.30, MinUtility: 0.10},
		PerUserOverrides: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	analysis := &core.Analysis{
		Definition:   def,
		PrivacyModel: model.LogLinear{A: 1.9, B: 0.347, XMin: 0.003, XMax: 0.1},
	}
	ests := []estimate{
		{user: "outlier", priv: 0.5},
		{user: "typical", priv: 0.1},
	}
	ctrl.deriveOverrides(dep, analysis, ests, 0.3, model.Objectives{MaxPrivacy: 0.30, MinUtility: 0.10})
	if _, ok := dep.Overrides["typical"]; ok {
		t.Error("user at the population mean must not be overridden")
	}
	over, ok := dep.Overrides["outlier"]
	if !ok {
		t.Fatal("outlier user (offset +0.2 above mean) must be overridden")
	}
	// target = 0.3 - 0.2 = 0.1; model inverts to exp((0.1-1.9)/0.347),
	// tighter than the shared 0.0076.
	if eps := over[lppm.EpsilonParam]; eps >= 0.0076 || eps < 0.003 {
		t.Errorf("override ε = %v, want tighter than shared 0.0076 and inside model validity", eps)
	}
}

func TestControllerValidation(t *testing.T) {
	mech := lppm.NewGeoIndistinguishability()
	g, err := New(context.Background(), Config{Mechanism: mech, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	def := core.Definition{
		Mechanism: mech,
		Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
	}
	if _, err := NewController(nil, dep, ControllerConfig{Definition: def}); err == nil {
		t.Error("nil gateway must fail")
	}
	if _, err := NewController(g, nil, ControllerConfig{Definition: def}); err == nil {
		t.Error("nil deployment must fail")
	}
	if _, err := NewController(g, dep, ControllerConfig{}); err == nil {
		t.Error("missing definition must fail")
	}
	badDef := def
	badDef.Mechanism = lppm.NewCoordinateRounding()
	if _, err := NewController(g, dep, ControllerConfig{Definition: badDef}); err == nil {
		t.Error("mechanism mismatch must fail")
	}
	typoDef := def
	typoDef.Param = "epsilonn"
	if _, err := NewController(g, dep, ControllerConfig{Definition: typoDef}); err == nil {
		t.Error("misspelled Param must fail at construction, not at every Evaluate")
	}
	elastic := lppm.NewElasticGeoInd()
	elasticDep, err := core.NewDeployment(elastic, nil)
	if err != nil {
		t.Fatal(err)
	}
	elasticDef := def
	elasticDef.Mechanism = elastic
	if _, err := NewController(g, elasticDep, ControllerConfig{Definition: elasticDef}); err == nil {
		t.Error("multi-parameter mechanism without Param must fail at construction")
	}
	if _, err := NewController(g, dep, ControllerConfig{Definition: def, SampleFrac: 2}); err == nil {
		t.Error("SampleFrac > 1 must fail")
	}
	if _, err := NewController(g, dep, ControllerConfig{Definition: def, MinWindows: -1}); err == nil {
		t.Error("negative MinWindows must fail (would wrap to a huge uint64 gate)")
	}
	if _, err := NewController(g, dep, ControllerConfig{Definition: def, MinUserRecords: -1}); err == nil {
		t.Error("negative MinUserRecords must fail")
	}
	c, err := NewController(g, dep, ControllerConfig{Definition: def})
	if err != nil {
		t.Fatal(err)
	}
	// Too little data: evaluation is a clean no-op — and it must not
	// clear a standing reconfiguration failure the operator hasn't seen.
	c.mu.Lock()
	c.lastErr = errors.New("boom")
	c.mu.Unlock()
	swapped, err := c.Evaluate(context.Background())
	if swapped || err != nil {
		t.Errorf("empty evaluate = (%v, %v), want (false, nil)", swapped, err)
	}
	if le := c.Stats().LastErr; le == nil || le.Error() != "boom" {
		t.Errorf("no-op evaluation cleared LastErr (now %v)", le)
	}
	if err := c.SetObjectives(model.Objectives{MaxPrivacy: 0.1, MinUtility: 0.8}); err != nil {
		t.Fatal(err)
	}
	if got := c.Objectives(); got.MaxPrivacy != 0.1 || got.MinUtility != 0.8 {
		t.Errorf("objectives = %+v after SetObjectives", got)
	}
}
