package service

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
)

// TestObsDoesNotPerturbOutput is the determinism guarantee of §12: the
// instrumentation reads clocks and bumps atomics but feeds nothing back
// into protection, so a collecting run and a disabled run produce
// bit-identical protected output.
func TestObsDoesNotPerturbOutput(t *testing.T) {
	recs := makeRecords(10, 29)
	base := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     3,
		QueueSize:  32,
		FlushEvery: 8,
		Seed:       42,
	}
	on := base
	on.Obs = obs.NewRegistry()
	off := base
	off.Obs = obs.Nop()
	gotOn, _ := runGateway(t, on, recs)
	gotOff, _ := runGateway(t, off, recs)
	if len(gotOn) != len(gotOff) {
		t.Fatalf("user count differs: on=%d off=%d", len(gotOn), len(gotOff))
	}
	for u, rsOn := range gotOn {
		rsOff := gotOff[u]
		if len(rsOn) != len(rsOff) {
			t.Fatalf("user %s: on=%d records, off=%d", u, len(rsOn), len(rsOff))
		}
		for i := range rsOn {
			if rsOn[i] != rsOff[i] {
				t.Fatalf("user %s record %d differs: on=%+v off=%+v", u, i, rsOn[i], rsOff[i])
			}
		}
	}
}

// TestTracingDoesNotPerturbOutput extends the §12 guarantee to the span
// pipeline: a fully-sampled tracing run reuses the stage clock's stamps
// and writes into its own ring, feeding nothing back into protection, so
// it emits bit-identical protected output to a run with everything off.
func TestTracingDoesNotPerturbOutput(t *testing.T) {
	recs := makeRecords(10, 29)
	base := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     3,
		QueueSize:  32,
		FlushEvery: 8,
		Seed:       42,
	}
	on := base
	on.Obs = obs.NewRegistry()
	on.Tracer = tracing.New(tracing.Config{RingSize: 4096})
	off := base
	off.Obs = obs.Nop()
	gotOn, _ := runGateway(t, on, recs)
	gotOff, _ := runGateway(t, off, recs)
	if len(gotOn) != len(gotOff) {
		t.Fatalf("user count differs: on=%d off=%d", len(gotOn), len(gotOff))
	}
	for u, rsOn := range gotOn {
		rsOff := gotOff[u]
		if len(rsOn) != len(rsOff) {
			t.Fatalf("user %s: on=%d records, off=%d", u, len(rsOn), len(rsOff))
		}
		for i := range rsOn {
			if rsOn[i] != rsOff[i] {
				t.Fatalf("user %s record %d differs: on=%+v off=%+v", u, i, rsOn[i], rsOff[i])
			}
		}
	}
	// The equality must not be vacuous: the traced run recorded spans.
	var windows int
	for _, sp := range on.Tracer.Spans() {
		if sp.Name == "window" {
			windows++
		}
	}
	if windows == 0 {
		t.Fatal("traced run recorded no window spans")
	}
}

// TestSetUserTraceCorrelatesWindows binds a client-originated trace to a
// user and checks the user's window spans become children of it — the
// gateway half of end-to-end propagation.
func TestSetUserTraceCorrelatesWindows(t *testing.T) {
	tr := tracing.New(tracing.Config{})
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     2,
		FlushEvery: 4,
		Seed:       5,
		Tracer:     tr,
	}
	g, err := New(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range g.Output() {
		}
	}()
	remote := tracing.NewRootContext()
	if err := g.SetUserTrace("u00", remote); err != nil {
		t.Fatal(err)
	}
	if err := g.IngestAll(makeRecords(2, 8)); err != nil { // u00, u01
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	var bound int
	for _, sp := range tr.Spans() {
		if sp.Name != "window" {
			continue
		}
		if sp.Trace == remote.Trace {
			if sp.Parent != remote.Span {
				t.Errorf("bound window parented to %s, want remote span %s", sp.Parent, remote.Span)
			}
			bound++
		}
	}
	if bound == 0 {
		t.Fatal("no window span carries the bound trace ID")
	}
}

// TestGatewayRegistryExposesShardCounters checks that the Func-backed
// series agree with Stats — the no-drift property /v1/stats relies on.
func TestGatewayRegistryExposesShardCounters(t *testing.T) {
	recs := makeRecords(8, 20)
	cfg := Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Shards:     4,
		FlushEvery: 8,
		Seed:       3,
		Obs:        obs.NewRegistry(),
	}
	g, err := New(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range g.Output() {
		}
	}()
	if err := g.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	st := g.Stats()
	v := obs.NewView(g.Obs().Gather())
	checks := []struct {
		metric string
		want   float64
	}{
		{"lppm_shard_ingested_total", float64(st.Ingested)},
		{"lppm_shard_emitted_total", float64(st.Emitted)},
		{"lppm_shard_flushes_total", float64(st.Flushes)},
		{"lppm_shard_dropped_total", float64(st.Dropped)},
		{"lppm_shard_users", float64(st.Users)},
		{"lppm_gateway_swaps_total", float64(st.Swaps)},
		{"lppm_gateway_generation", float64(st.Generation)},
	}
	for _, c := range checks {
		if got := v.Sum(c.metric); got != c.want {
			t.Errorf("%s = %v, want %v (Stats)", c.metric, got, c.want)
		}
	}
	if got := v.Series("lppm_shard_ingested_total"); got != cfg.Shards {
		t.Errorf("shard series = %d, want %d", got, cfg.Shards)
	}
	// The gateway-internal stages must all have recorded something.
	for _, stage := range []obs.Stage{obs.StageIngest, obs.StageQueue, obs.StageFlush} {
		h := obs.NewStageClock(g.Obs()).Hist(stage)
		if h.Count() == 0 {
			t.Errorf("stage %v recorded no observations", stage)
		}
	}
}

// TestControllerRegistersMetrics checks the controller's series land on the
// gateway's registry at construction.
func TestControllerRegistersMetrics(t *testing.T) {
	g, ctrl := newControllerPair(t, obs.NewRegistry())
	_ = ctrl
	v := obs.NewView(g.Obs().Gather())
	for _, m := range []string{
		"lppm_controller_windows_observed_total",
		"lppm_controller_evaluations_total",
		"lppm_controller_swaps_total",
		"lppm_controller_override_skips_total",
		"lppm_controller_users_tracked",
		"lppm_controller_last_privacy",
		"lppm_controller_last_utility",
	} {
		if got := v.Series(m); got != 1 {
			t.Errorf("series %s = %d, want 1", m, got)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// newControllerPair builds a gateway+controller over the given registry with
// a minimal valid definition, draining output in the background.
func newControllerPair(t *testing.T, reg *obs.Registry) (*Gateway, *Controller) {
	t.Helper()
	mech := lppm.NewGeoIndistinguishability()
	cfg := Config{Mechanism: mech, Shards: 2, Seed: 9, Obs: reg}
	g, err := New(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range g.Output() {
		}
	}()
	dep, err := core.NewDeployment(mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(g, dep, ControllerConfig{
		Definition: core.Definition{
			Mechanism: mech,
			Privacy:   metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
			Utility:   metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		},
		Objectives: model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.5},
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, ctrl
}
