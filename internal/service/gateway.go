// Package service turns the repository's batch-only configurator into an
// online middleware: a sharded, concurrent protection gateway that ingests
// per-user location streams, routes each user to a shard by identity hash,
// keeps per-user LPPM state, and applies a configured mechanism record-at-
// a-time with bounded queues and batch flushing. It is the serving half the
// paper's framework implies — Analyze/Configure pick the parameter value
// offline, the gateway applies it to live traffic.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ErrClosed is returned by Ingest after Close or context cancellation.
var ErrClosed = errors.New("service: gateway closed")

// drainGrace is how long a canceled gateway waits for the Output consumer
// before dropping a flushed window.
const drainGrace = time.Second

// Config parameterizes a Gateway.
type Config struct {
	// Mechanism is the LPPM every record passes through.
	Mechanism lppm.Mechanism
	// Params is the mechanism's full parameter assignment (typically a
	// core.Deployment's Params).
	Params lppm.Params
	// Shards is the number of independent worker shards; 0 uses
	// GOMAXPROCS.
	Shards int
	// QueueSize bounds each shard's input queue in records (rounded down
	// to a whole number of stages); 0 uses 1024. A full queue applies
	// backpressure to Ingest.
	QueueSize int
	// FlushEvery is the per-user window size: a user's pending records
	// are protected and emitted once this many have accumulated; 0 uses
	// 32. Drain flushes any remainder.
	FlushEvery int
	// StageSize is the ingest batch size: records stage per shard and
	// travel the queue StageSize at a time, amortizing channel and
	// scheduling costs across the batch; 0 uses 32, 1 disables staging.
	// A partial stage is swept to its shard every StageInterval, so on a
	// non-saturated shard a record waits at most about one sweep before
	// entering the queue.
	StageSize int
	// StageInterval is the partial-stage sweep period; 0 uses 100 ms.
	StageInterval time.Duration
	// Seed drives all randomness. Per-user streams are derived by name,
	// so output is invariant under the shard count.
	Seed int64
	// Overrides maps user ids to parameter overrides applied on top of
	// Params for that user's records (a core.Deployment's override
	// table). Entries may be partial; they are merged over Params and
	// validated at New.
	Overrides map[string]lppm.Params
	// Obs is the metric registry the gateway (and every component wired
	// to it — controller, HTTP server) registers into; nil gets a fresh
	// private registry. Pass obs.Nop() to disable collection, which also
	// skips the stage clock's wall-clock reads on the hot path.
	Obs *obs.Registry
	// Tracer, when non-nil, records per-window span trees (ingest →
	// shard queue → flush → journal append, continued downstream into
	// dispatch and response write via Window.Span). Span timestamps
	// reuse the stage clock's sampled stamps, so tracing adds no
	// hot-path clock reads beyond the 1-in-obsSampleEvery already
	// budgeted — except for client-traced streams (SetUserTrace), whose
	// explicit opt-in pays its own reads. nil disables tracing.
	Tracer *tracing.Tracer
}

// ConfigFromDeployment wires a step-3 deployment into a gateway
// configuration, leaving the serving knobs at their defaults.
func ConfigFromDeployment(d *core.Deployment, seed int64) Config {
	return Config{Mechanism: d.Mechanism, Params: d.Params, Overrides: d.Overrides, Seed: seed}
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Mechanism == nil {
		return fmt.Errorf("service: nil mechanism")
	}
	if c.Params == nil {
		c.Params = lppm.Defaults(c.Mechanism)
	}
	// Assignment-strict, like the override table: an extra, misspelled
	// key in the base params would serve defaults while looking applied.
	if err := lppm.ValidateAssignment(c.Mechanism, c.Params); err != nil {
		return err
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 1 {
		return fmt.Errorf("service: Shards must be >= 1, got %d", c.Shards)
	}
	if c.QueueSize == 0 {
		c.QueueSize = 1024
	}
	if c.QueueSize < 1 {
		return fmt.Errorf("service: QueueSize must be >= 1, got %d", c.QueueSize)
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 32
	}
	if c.FlushEvery < 1 {
		return fmt.Errorf("service: FlushEvery must be >= 1, got %d", c.FlushEvery)
	}
	if c.StageSize == 0 {
		c.StageSize = 32
	}
	if c.StageSize < 1 {
		return fmt.Errorf("service: StageSize must be >= 1, got %d", c.StageSize)
	}
	// A stage never exceeds the queue bound, so QueueSize keeps its
	// records semantics: at most ⌊QueueSize/StageSize⌋·StageSize records
	// queue per shard (plus one stage in flight).
	if c.StageSize > c.QueueSize {
		c.StageSize = c.QueueSize
	}
	if c.StageInterval == 0 {
		c.StageInterval = 100 * time.Millisecond
	}
	if c.StageInterval < 0 {
		return fmt.Errorf("service: StageInterval must be positive, got %v", c.StageInterval)
	}
	if len(c.Overrides) > 0 {
		merged, err := mergeOverrides(c.Mechanism, c.Params, c.Overrides)
		if err != nil {
			return err
		}
		c.Overrides = merged
	}
	return nil
}

// mergeOverrides completes each (possibly partial) per-user override over
// the base assignment and validates it as a full assignment — undeclared
// names are rejected, not silently ignored — so serving code can hand the
// result to the mechanism directly.
func mergeOverrides(m lppm.Mechanism, base lppm.Params, overrides map[string]lppm.Params) (map[string]lppm.Params, error) {
	merged := make(map[string]lppm.Params, len(overrides))
	for u, p := range overrides {
		if u == "" {
			return nil, fmt.Errorf("service: override for empty user id")
		}
		full, err := lppm.MergeAssignment(m, base, p)
		if err != nil {
			return nil, fmt.Errorf("service: override for %q: %w", u, err)
		}
		merged[u] = full
	}
	return merged, nil
}

// ShardStats is one shard's counters at snapshot time.
type ShardStats struct {
	// Ingested counts records accepted into the shard's stage.
	Ingested uint64
	// Emitted counts protected records delivered to Output.
	Emitted uint64
	// Flushes counts protection calls (windows flushed).
	Flushes uint64
	// Dropped counts records lost because cancellation outran delivery.
	Dropped uint64
	// Reconfigs counts per-user streams refreshed to a newer deployment
	// at a window boundary after a Swap.
	Reconfigs uint64
	// Users is the number of per-user streams the shard holds.
	Users int
	// QueueLen is the instantaneous input-queue occupancy, in batches of
	// up to StageSize records.
	QueueLen int
}

// Stats is a point-in-time snapshot of the whole gateway.
type Stats struct {
	// Ingested, Emitted, Flushes, Dropped and Users aggregate the
	// per-shard counters.
	Ingested, Emitted, Flushes, Dropped uint64
	Users                               int
	// Reconfigs aggregates per-shard stream refreshes; Swaps counts
	// successful deployment hot-swaps since New.
	Reconfigs, Swaps uint64
	// Generation identifies the serving deployment (0 = the one New
	// installed; each Swap increments it).
	Generation uint64
	// PerShard holds one entry per shard, in shard order.
	PerShard []ShardStats
}

// userState is one user's stream plus the deployment generation its
// parameters came from (flush refreshes it lazily after a Swap) and the
// cached per-user tap handle (re-resolved when SetTap installs a new tap).
// in/out/windows are the stream's journal counters: input records
// consumed, protected records emitted, windows flushed — exactly what a
// checkpoint records and what the resume protocol reports to clients.
type userState struct {
	us      *lppm.UserStream
	gen     uint64
	in      uint64
	out     uint64
	windows uint64
	tapSrc  *tapHolder
	tap     TapUser
	// remote is the client-originated trace context bound by
	// SetUserTrace (zero when the stream is not client-traced). When
	// sampled, every window of this user is recorded under it.
	remote tracing.SpanContext
}

// shardMsg is one element of a shard's input queue: a batch of staged
// records, or a control command. Commands ride the same queue as records so
// they observe every record staged before them — a FlushUser issued after
// the last Ingest of a user is guaranteed to see that record in the user's
// pending window.
type shardMsg struct {
	batch []trace.Record
	// enqueuedNS is the obs.Stamp at which the batch entered the queue —
	// the start of its queue-residency measurement; 0 when the stage
	// clock and tracer are both disabled, or for unsampled batches.
	enqueuedNS int64
	// stagedNS is the obs.Stamp at which the batch's first record was
	// staged — the ingest-stage start. Set exactly when enqueuedNS is:
	// the tracer reuses the stage clock's sampled stamps to build the
	// batch span tree without new clock reads.
	stagedNS int64
	// traceUser, when non-empty, binds traceCtx as that user's remote
	// trace context (SetUserTrace). Rides the queue so the binding
	// orders with ingested records.
	traceUser string
	traceCtx  tracing.SpanContext
	// flushUser, when non-empty, asks the worker to flush that user's
	// pending window immediately (an end-of-stream flush for a network
	// connection that will send no more records). done, if non-nil, is
	// closed once the command has been processed.
	flushUser string
	// evictUser, when non-empty, asks the worker to checkpoint that
	// user's stream (pending window included, unflushed — eviction must
	// not change the window split) and drop it from the table; the user
	// restores lazily on their next record.
	evictUser string
	done      chan struct{}
}

// shard is one worker: an ingest stage, a bounded queue of record batches,
// a per-user stream table and counters. Only the shard's goroutine touches
// users; the stage is shared with producers under its own lock.
type shard struct {
	in    chan shardMsg
	users map[string]*userState
	// restore holds checkpoints of users not currently in the table —
	// recovered from the journal at startup or parked by EvictUser. A
	// user's first record after that rebuilds the stream from its entry
	// (lppm.RestoreUserStream), paying the rng re-seek lazily, per
	// returning user. Shard-goroutine-only after newGateway.
	restore map[string]journal.Checkpoint

	stageMu sync.Mutex
	stage   []trace.Record
	dead    bool // no further sends on in; set before in closes
	// stageStartNS is the obs.Stamp at which the stage went empty →
	// non-empty (guarded by stageMu); 0 when empty, when the clock is
	// disabled, or when this batch is not in the 1-in-obsSampleEvery
	// measurement sample.
	stageStartNS int64
	// stageTick counts batches (guarded by stageMu) and flushTick counts
	// window flushes (shard goroutine only); both drive the deterministic
	// 1-in-obsSampleEvery stage-clock sampling.
	stageTick uint64
	flushTick uint64
	// batch is the span context of the sampled batch currently being
	// handled (zero for unsampled batches); windows flushed while
	// processing that batch parent under it. Shard goroutine only.
	batch tracing.SpanContext
	// remote parks SetUserTrace bindings for users with no stream yet;
	// applied (and removed) when the user's state is created. Shard
	// goroutine only after newGateway.
	remote map[string]tracing.SpanContext

	ingested  atomic.Uint64
	emitted   atomic.Uint64
	flushes   atomic.Uint64
	dropped   atomic.Uint64
	reconfigs atomic.Uint64
	userN     atomic.Int64
}

// deployState is the immutable serving deployment a gateway applies:
// installed at New, replaced atomically by Swap. Shard workers load it at
// stream creation and at every window boundary, so a swap becomes visible
// to each user exactly between two windows and never inside one.
type deployState struct {
	gen       uint64
	mech      lppm.Mechanism
	params    lppm.Params
	overrides map[string]lppm.Params
}

// paramsFor returns the assignment serving one user.
func (d *deployState) paramsFor(user string) lppm.Params {
	if p, ok := d.overrides[user]; ok {
		return p
	}
	return d.params
}

// Tap observes a sampled fraction of flushed windows — the reconfiguration
// controller's feed. The gateway asks the tap for one TapUser per user
// stream and caches it on the stream, so the per-flush sampling decision
// runs without any shared lookup; User is called once per (user, SetTap)
// from shard goroutines and must be safe for concurrent use.
type Tap interface {
	User(user string) TapUser
}

// TapUser is a tap's per-user-stream state. The gateway calls it from
// exactly one shard goroutine at a time (a user lives on one shard), on
// the flush hot path: Sample must be cheap and Observe must never block on
// the gateway's own Output. Observe receives the window's pre-protection
// records (a copy the tap owns) and its protected records (shared with the
// Output consumer — read-only; copy to retain).
type TapUser interface {
	// Sample decides, before protection, whether this n-record window is
	// observed.
	Sample(n int) bool
	// Observe delivers a sampled window after a successful flush, tagged
	// with the deployment generation it was protected under so observers
	// spanning a Swap can tell old-deployment output from new.
	Observe(gen uint64, actual, protected []trace.Record)
}

// Gateway is the online protection middleware. Create with New, feed with
// Ingest (any number of goroutines), consume Output until it closes, stop
// with Close. See package comment for the data flow.
type Gateway struct {
	cfg    Config
	ctx    context.Context //lppm:allow ctxflow -- the context IS the gateway's lifetime (fixed at New, honored by every shard loop's select); callers cancel it to stop the pipeline
	root   *rng.Source
	shards []*shard
	out    chan Window
	done   chan struct{} // closed once every shard has exited
	tracer *tracing.Tracer

	deploy atomic.Pointer[deployState]
	// swapMu serializes Swap so the deploy journal record and the
	// deployment installation are one atomic step: no checkpoint taken
	// under generation G can enter the journal queue before the gen-G
	// deploy record (flush enqueues under the shard goroutine after
	// loading the deployment, and the deployment only becomes loadable
	// after its record is enqueued — the FIFO queue preserves that order
	// on disk). It also guards jqClosed, so enqueues from Swap and
	// JournalBarrier never race the queue close.
	swapMu   sync.Mutex
	jqClosed bool
	swaps    atomic.Uint64
	tap      atomic.Pointer[tapHolder]

	// jw, when non-nil, is the stream journal. Appends are write-behind:
	// flush and evict enqueue checkpoints on jq and the pump goroutine
	// encodes, writes and fsyncs them off the protection path, so the
	// journal's cost on the serving hot path is one bounded channel send.
	// Crash safety does not rest on emit-after-append ordering but on the
	// resume protocol: clients trim their send buffers only to the
	// journal's *durable* In (journal.Writer.UserResume) and re-protection
	// after a resend is deterministic, so any window the journal lost is
	// regenerated bit-identically. Swap appends synchronously through the
	// queue (deploy records gate the swap); Close drains the queue and
	// then closes the journal, after the last drain flush.
	jw *journal.Writer
	// jq feeds the journal pump; nil when jw is nil. Bounded: a stalled
	// disk eventually backpressures flushes instead of growing the heap.
	jq chan journalReq
	// jpumpEnd closes when the pump goroutine has drained jq and exited.
	jpumpEnd chan struct{}
	// jhist measures the sampled cost the hot path actually pays for
	// journaling — the enqueue wait, which is ~zero until the pump falls
	// behind (nil when jw is nil or metrics are disabled).
	jhist *obs.Histogram

	reg   *obs.Registry
	clock *obs.StageClock // nil when reg is disabled

	wg        sync.WaitGroup
	closeOnce sync.Once

	graceOnce  sync.Once
	graceUntil time.Time

	errMu sync.Mutex
	err   error
}

// tapHolder boxes a Tap so the interface can live in an atomic.Pointer.
type tapHolder struct{ t Tap }

// New validates the configuration and starts the shard workers. The context
// bounds the gateway's lifetime: cancellation stops intake, drains the
// bounded queues, flushes every per-user window and closes Output.
//
// A gateway built by New does not journal; use Recover to open (or
// create) a stream journal and resume from it.
func New(ctx context.Context, cfg Config) (*Gateway, error) {
	return newGateway(ctx, cfg, nil, 0, nil)
}

// newGateway is the shared constructor: jw, when non-nil, is an
// Install-ed journal writer the gateway owns from now on; gen is the
// deployment generation to resume at; restore seeds the lazy per-user
// restore tables from journaled checkpoints.
func newGateway(ctx context.Context, cfg Config, jw *journal.Writer, gen uint64, restore map[string]journal.Checkpoint) (*Gateway, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:    cfg,
		ctx:    ctx,
		root:   rng.New(cfg.Seed),
		shards: make([]*shard, cfg.Shards),
		out:    make(chan Window, cfg.Shards),
		done:   make(chan struct{}),
		tracer: cfg.Tracer,
		reg:    cfg.Obs,
		jw:     jw,
	}
	if g.reg == nil {
		g.reg = obs.NewRegistry()
	}
	g.clock = obs.NewStageClock(g.reg)
	if jw != nil && !g.reg.Disabled() {
		g.jhist = g.reg.Histogram("lppm_journal_append_ns",
			"sampled hot-path journal enqueue latency", nil)
	}
	if jw != nil {
		g.jq = make(chan journalReq, journalQueueDepth)
		g.jpumpEnd = make(chan struct{})
		go g.journalPump() //lppm:allow goroleak -- exits when Close closes jq after the shards drain; every done channel it answers is made with capacity 1, so no send blocks
	}
	g.deploy.Store(&deployState{
		gen:       gen,
		mech:      cfg.Mechanism,
		params:    cfg.Params.Clone(),
		overrides: cfg.Overrides,
	})
	batches := cfg.QueueSize / cfg.StageSize
	if batches < 1 {
		batches = 1
	}
	for i := range g.shards {
		s := &shard{
			in:      make(chan shardMsg, batches),
			users:   make(map[string]*userState),
			restore: make(map[string]journal.Checkpoint),
			remote:  make(map[string]tracing.SpanContext),
		}
		g.shards[i] = s
	}
	// Distribute journaled checkpoints to their owning shards before any
	// worker starts, so the tables are shard-goroutine-only afterwards.
	for u, cp := range restore {
		g.shards[shardOf(u, len(g.shards))].restore[u] = cp
	}
	for _, s := range g.shards {
		g.wg.Add(1)
		go g.run(s)
	}
	g.registerMetrics()
	go g.watch()
	go g.sweep()
	return g, nil
}

// journalQueueDepth bounds the write-behind journal queue: enough to ride
// out an fsync without stalling flushes, small enough that backpressure
// kicks in before a dead disk hides megabytes of unjournaled windows.
const journalQueueDepth = 256

// Journal request kinds.
const (
	jreqCheckpoint byte = iota
	jreqDeploy
	jreqBarrier
)

// journalReq is one unit of work for the journal pump. done, when
// non-nil, receives the append's result — Swap gates on it, and barriers
// use it as a queue-drained signal.
type journalReq struct {
	kind byte
	cp   journal.Checkpoint
	dep  journal.Deployment
	done chan error
}

// journalPump is the write-behind journal goroutine: it serializes every
// append off the protection path. FIFO order makes the on-disk record
// order identical to the enqueue order, which is what the swapMu ordering
// argument (deploy before dependent checkpoints) relies on.
func (g *Gateway) journalPump() {
	defer close(g.jpumpEnd)
	for req := range g.jq {
		var err error
		switch req.kind {
		case jreqCheckpoint:
			err = g.jw.AppendCheckpoint(req.cp)
		case jreqDeploy:
			err = g.jw.AppendDeploy(req.dep)
		}
		if req.done != nil {
			req.done <- err
		} else if err != nil {
			g.setErr(err)
		}
	}
}

// JournalBarrier waits until every journal append enqueued so far has
// been applied, so the writer's folded state covers everything the
// gateway has emitted. The server's resume/replay handlers call it before
// reading per-user state: without the barrier, a window emitted moments
// ago could be missing from both the client's delivery and the folded
// replay ring. No-op without a journal or after Close (a drained, closed
// journal is trivially current).
func (g *Gateway) JournalBarrier() error {
	done := g.enqueueBarrier()
	if done == nil {
		return nil
	}
	return <-done
}

// enqueueBarrier places a barrier request on the journal queue, holding
// swapMu only for the enqueue (the wait happens in JournalBarrier, after
// the lock is gone). A nil return means there is nothing to wait for:
// the gateway is journal-less, or the queue already drained and closed.
func (g *Gateway) enqueueBarrier() chan error {
	if g.jw == nil {
		return nil
	}
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	if g.jqClosed {
		return nil
	}
	done := make(chan error, 1)
	g.jq <- journalReq{kind: jreqBarrier, done: done} //lppm:allow sendlock -- swapMu excludes Close's channel-close during the send; the pump drains jq unconditionally and never takes swapMu, so the send completes in bounded time
	return done
}

// Journal returns the gateway's stream journal writer, or nil when the
// gateway does not journal. The server's resume/replay endpoints read
// per-user state through it (behind JournalBarrier).
func (g *Gateway) Journal() *journal.Writer { return g.jw }

// Obs returns the gateway's metric registry — the one registry of the
// serving stack; downstream components (controller, HTTP server, admin
// plane) register into and expose this.
func (g *Gateway) Obs() *obs.Registry { return g.reg }

// Tracer returns the gateway's span tracer, or nil when tracing is off
// — the HTTP server continues window traces through it and the admin
// plane mounts its /trace and /debug/flight exports.
func (g *Gateway) Tracer() *tracing.Tracer { return g.tracer }

// registerMetrics exposes the counters the gateway already keeps. All
// series are Func-backed reads of the existing atomics, so registration
// adds zero hot-path cost and the exposed values cannot drift from Stats.
func (g *Gateway) registerMetrics() {
	for i, s := range g.shards {
		l := obs.Labels{"shard": strconv.Itoa(i)}
		g.reg.CounterFunc("lppm_shard_ingested_total",
			"records accepted into the shard stage", l, s.ingested.Load)
		g.reg.CounterFunc("lppm_shard_emitted_total",
			"protected records delivered to the gateway output", l, s.emitted.Load)
		g.reg.CounterFunc("lppm_shard_flushes_total",
			"windows flushed through protection", l, s.flushes.Load)
		g.reg.CounterFunc("lppm_shard_dropped_total",
			"records lost because cancellation outran delivery", l, s.dropped.Load)
		g.reg.CounterFunc("lppm_shard_reconfigs_total",
			"user streams refreshed to a newer deployment", l, s.reconfigs.Load)
		g.reg.GaugeFunc("lppm_shard_users",
			"per-user streams held by the shard", l,
			func() float64 { return float64(s.userN.Load()) })
		g.reg.GaugeFunc("lppm_shard_queue_depth",
			"shard input-queue occupancy in batches", l,
			func() float64 { return float64(len(s.in)) })
	}
	g.reg.GaugeFunc("lppm_gateway_generation",
		"serving deployment generation (0 = installed at New)", nil,
		func() float64 { return float64(g.deploy.Load().gen) })
	g.reg.CounterFunc("lppm_gateway_swaps_total",
		"successful deployment hot-swaps", nil, g.swaps.Load)
	if g.jw != nil {
		g.reg.CounterFunc("lppm_journal_appends_total",
			"checkpoint/deploy records appended to the stream journal", nil,
			func() uint64 { return g.jw.Stats().Appends })
		g.reg.CounterFunc("lppm_journal_snapshots_total",
			"snapshot frames written (startup install + rotations)", nil,
			func() uint64 { return g.jw.Stats().Snapshots })
		g.reg.CounterFunc("lppm_journal_bytes_total",
			"journal bytes written, framing included", nil,
			func() uint64 { return g.jw.Stats().Bytes })
		g.reg.CounterFunc("lppm_journal_errors_total",
			"journal append/sync/remove failures", nil,
			func() uint64 { return g.jw.Stats().Errors })
		g.reg.GaugeFunc("lppm_journal_segment",
			"current journal segment index", nil,
			func() float64 { return float64(g.jw.Stats().Segment) })
		g.reg.GaugeFunc("lppm_journal_queue_depth",
			"write-behind journal queue occupancy in pending appends", nil,
			func() float64 { return float64(len(g.jq)) })
	}
}

// obsSampleEvery is the stage clock's deterministic sampling period: one
// in every obsSampleEvery batches (and, independently, window flushes)
// carries wall-clock stamps; the rest skip every clock read. A 37 ns
// time.Now per stamp times two stamps per window flush was the dominant
// instrumentation cost — sampling keeps the measured overhead well under
// the 2% budget while the histograms, being statistical objects over
// exchangeable batches, lose only tail resolution. Must be a power of two
// (the gate is a mask); the first tick always samples so short tests and
// low-traffic deployments still populate every stage series.
const obsSampleEvery = 8

// takeStage removes the shard's staged batch as a queue message (caller
// holds stageMu), closing out the batch's ingest-stage measurement and
// stamping the start of its queue residency. Unsampled batches (zero
// stageStartNS) carry no stamp and stay off the clock downstream.
func (g *Gateway) takeStage(s *shard) shardMsg {
	msg := shardMsg{batch: s.stage}
	s.stage = nil
	if s.stageStartNS != 0 {
		now := obs.Stamp()
		msg.enqueuedNS = now
		// Carry the ingest-start stamp too: the tracer rebuilds the
		// batch's ingest and queue spans from the same two readings the
		// stage clock already paid for.
		msg.stagedNS = s.stageStartNS
		g.clock.Observe(obs.StageIngest, s.stageStartNS, now)
	}
	s.stageStartNS = 0
	return msg
}

// watch finalizes the gateway once every worker has exited: leftover staged
// or still-queued records (possible only on cancellation — a normal Close
// drain consumes the queue before the worker exits) are accounted as
// dropped, and the output closes so consumers unblock.
func (g *Gateway) watch() {
	g.wg.Wait()
	for _, s := range g.shards {
		s.stageMu.Lock()
		s.dead = true
		if n := len(s.stage); n > 0 {
			s.dropped.Add(uint64(n))
			s.stage = nil
		}
		// Sends happen only under stageMu with dead unset, so after
		// this point the queue can no longer grow; whatever the dead
		// worker left behind is lost and must be counted.
	drainQueue:
		for {
			select {
			case msg, ok := <-s.in:
				if !ok {
					break drainQueue
				}
				s.dropped.Add(uint64(len(msg.batch)))
				if msg.done != nil {
					// Unblock a FlushUser waiter whose command the
					// dead worker never reached.
					close(msg.done)
				}
			default:
				break drainQueue
			}
		}
		s.stageMu.Unlock()
	}
	close(g.out)
	close(g.done)
}

// sweep periodically pushes partial stages into their shard queues so a
// quiet stream still sees records within about one StageInterval.
func (g *Gateway) sweep() {
	t := time.NewTicker(g.cfg.StageInterval)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-g.done:
			return
		case <-t.C:
			for _, s := range g.shards {
				// TryLock: a producer blocked on this shard's full
				// queue holds its stageMu, and waiting on it would
				// stall sweeping for every other shard.
				if !s.stageMu.TryLock() {
					continue
				}
				if !s.dead && len(s.stage) > 0 {
					msg := g.takeStage(s)
					select {
					case s.in <- msg:
					default:
						// Queue full: the worker is busy; put the
						// stage back for the next sweep or until
						// it fills. (Its ingest-stage span is
						// already recorded; the zero start stamp
						// keeps it from being recorded twice.)
						s.stage = msg.batch
					}
				}
				s.stageMu.Unlock()
			}
		}
	}
}

// shardOf routes a user to a shard: FNV-1a over the identity, mod N. Stable
// across processes and shard-local for every record of one user.
func shardOf(user string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(user)) //lppm:allow droppederr -- hash.Hash documents that Write never returns an error
	return int(h.Sum32() % uint32(n))
}

// Ingest routes one record to its user's shard, blocking when the shard
// queue is full (backpressure). Safe for concurrent use. Returns ErrClosed
// after Close, or the context error after cancellation.
func (g *Gateway) Ingest(rec trace.Record) error {
	if rec.User == "" {
		return fmt.Errorf("service: record with empty user id")
	}
	s := g.shards[shardOf(rec.User, len(g.shards))]
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.dead {
		return ErrClosed
	}
	// Refuse intake as soon as the context is canceled — staging the
	// record would only have the drain count it dropped.
	if err := g.ctx.Err(); err != nil {
		return err
	}
	if s.stage == nil {
		s.stage = make([]trace.Record, 0, g.cfg.StageSize)
	}
	if len(s.stage) == 0 && (g.clock != nil || g.tracer != nil) {
		s.stageTick++
		if s.stageTick&(obsSampleEvery-1) == 1 {
			s.stageStartNS = obs.Stamp()
		}
	}
	s.stage = append(s.stage, rec)
	s.ingested.Add(1)
	if len(s.stage) < g.cfg.StageSize {
		return nil
	}
	// Full stage: hand the batch to the worker, blocking for
	// backpressure. The stage lock stays held — competing producers
	// would only block on the same full queue anyway, and holding it
	// keeps every send ordered before any close(s.in).
	msg := g.takeStage(s)
	select {
	case s.in <- msg:
		return nil
	case <-g.ctx.Done():
		s.dropped.Add(uint64(len(msg.batch)))
		return g.ctx.Err()
	}
}

// FlushUser forces the user's pending window through protection now rather
// than at the next FlushEvery boundary or drain — the hook a network
// front-end uses when a connection finishes sending so the client receives
// its tail records before the gateway shuts down. The command travels the
// user's shard queue behind every record already ingested, so it flushes
// exactly the records the caller has pushed; it returns once the flush has
// been processed and the window (if any) handed to Output. An empty pending
// window is a no-op. Forcing a flush mid-stream changes the user's window
// split, so callers relying on the stream ≡ batch bit-identity must flush
// only at points the comparison run also flushes (end of stream).
func (g *Gateway) FlushUser(user string) error {
	if user == "" {
		return fmt.Errorf("service: flush for empty user id")
	}
	s := g.shards[shardOf(user, len(g.shards))]
	done := make(chan struct{})
	// The staged section runs under stageMu with a deferred unlock; the
	// wait on done must happen after release (the worker needs producers
	// to make progress), so it lives outside the closure.
	err := func() error {
		s.stageMu.Lock()
		defer s.stageMu.Unlock()
		if s.dead {
			return ErrClosed
		}
		if err := g.ctx.Err(); err != nil {
			return err
		}
		// Push the stage first so the command cannot overtake records
		// still waiting there; both sends stay under stageMu to keep them
		// ordered before any close(s.in).
		if len(s.stage) > 0 {
			msg := g.takeStage(s)
			select {
			case s.in <- msg:
			case <-g.ctx.Done():
				s.dropped.Add(uint64(len(msg.batch)))
				return g.ctx.Err()
			}
		}
		select {
		case s.in <- shardMsg{flushUser: user, done: done}:
			return nil
		case <-g.ctx.Done():
			return g.ctx.Err()
		}
	}()
	if err != nil {
		return err
	}
	// The worker closes done after flushing; on cancellation the
	// queue-drain accounting in watch closes it instead.
	<-done
	return nil
}

// EvictUser checkpoints a user's stream — pending records included, the
// window split untouched — and releases its memory; the user's next
// record rebuilds the stream from the checkpoint, bit-identically. With
// a journal attached the checkpoint is durable; without one it is held
// in memory. The command rides the shard queue behind every record
// already ingested, like FlushUser, and returns once processed. Evicting
// an unknown user is a no-op.
func (g *Gateway) EvictUser(user string) error {
	if user == "" {
		return fmt.Errorf("service: evict for empty user id")
	}
	s := g.shards[shardOf(user, len(g.shards))]
	done := make(chan struct{})
	err := func() error {
		s.stageMu.Lock()
		defer s.stageMu.Unlock()
		if s.dead {
			return ErrClosed
		}
		if err := g.ctx.Err(); err != nil {
			return err
		}
		// Push the stage first so the eviction sees every record already
		// ingested for this user (same ordering rule as FlushUser).
		if len(s.stage) > 0 {
			msg := g.takeStage(s)
			select {
			case s.in <- msg:
			case <-g.ctx.Done():
				s.dropped.Add(uint64(len(msg.batch)))
				return g.ctx.Err()
			}
		}
		select {
		case s.in <- shardMsg{evictUser: user, done: done}:
			return nil
		case <-g.ctx.Done():
			return g.ctx.Err()
		}
	}()
	if err != nil {
		return err
	}
	<-done
	return nil
}

// SetUserTrace binds a remote, client-originated trace context to a
// user's stream: every window flushed for that user from then on is
// recorded as a child of the remote span — how a traceparent that
// arrived on an HTTP stream shows up in GET /trace with the gateway's
// window/journal/dispatch/write spans under it. The command rides the
// user's shard queue like FlushUser, so it orders with records already
// ingested, but does not wait to be processed (a binding can only
// start one window early, never tear one). The binding persists until
// replaced — a zero context unbinds. No-op without a tracer.
func (g *Gateway) SetUserTrace(user string, sc tracing.SpanContext) error {
	if g.tracer == nil {
		return nil
	}
	if user == "" {
		return fmt.Errorf("service: trace bind for empty user id")
	}
	s := g.shards[shardOf(user, len(g.shards))]
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.dead {
		return ErrClosed
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	select {
	case s.in <- shardMsg{traceUser: user, traceCtx: sc}:
		return nil
	case <-g.ctx.Done():
		return g.ctx.Err()
	}
}

// IngestAll feeds a slice of records in order, stopping at the first error.
func (g *Gateway) IngestAll(recs []trace.Record) error {
	for _, rec := range recs {
		if err := g.Ingest(rec); err != nil {
			return err
		}
	}
	return nil
}

// Window is one flushed window on the gateway output: the protected
// records of a single user, in time order, plus the span context of
// the window's trace — zero when tracing is off or this flush was not
// in the trace sample — so downstream hops (the server's dispatcher
// and response writer) attach their spans to the same tree.
type Window struct {
	Records []trace.Record
	Span    tracing.SpanContext
}

// Output returns the protected stream. Each element is one flushed window
// of a single user. Windows of one user arrive in stream order; windows of
// different users interleave freely. The channel closes once every shard
// has drained (after Close or cancellation); consumers must read until
// then.
func (g *Gateway) Output() <-chan Window { return g.out }

// Swap hot-swaps the serving deployment — mechanism, parameters and
// per-user override table — without restart or record loss. The swap is
// atomic for the gateway and becomes visible to each user's stream lazily
// at its next window boundary: every emitted window is protected under
// exactly one deployment, windows already flushed are untouched, and
// pending records simply flush under the new parameters when their window
// completes. Per-user random sources continue uninterrupted, so output
// emitted before the swap is bit-identical to a never-swapped run. Safe to
// call concurrently with Ingest and from any goroutine. Partial overrides
// are merged over the deployment's Params and validated; an invalid
// deployment is rejected with the old one left serving.
func (g *Gateway) Swap(d *core.Deployment) error {
	if d == nil || d.Mechanism == nil {
		return fmt.Errorf("service: swap with nil deployment or mechanism")
	}
	params := d.Params.Clone()
	if len(params) == 0 {
		params = lppm.Defaults(d.Mechanism)
	}
	if err := lppm.ValidateAssignment(d.Mechanism, params); err != nil {
		return err
	}
	var overrides map[string]lppm.Params
	if len(d.Overrides) > 0 {
		var err error
		if overrides, err = mergeOverrides(d.Mechanism, params, d.Overrides); err != nil {
			return err
		}
	}
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	cur := g.deploy.Load()
	next := &deployState{
		gen:       cur.gen + 1,
		mech:      d.Mechanism,
		params:    params,
		overrides: overrides,
	}
	// The deploy record must precede any gen-G checkpoint in the journal,
	// or recovery could fold a checkpoint from a journal that never heard
	// of generation G — enqueueing under swapMu before the deployment
	// becomes loadable guarantees that via the queue's FIFO order. Unlike
	// window checkpoints, the swap waits for the append result: a journal
	// that cannot persist the record rejects the swap, and the old
	// deployment keeps serving and keeps matching the journal.
	if g.jq != nil {
		if g.jqClosed {
			g.tracer.Flight().Snapshot("swap rejected: journal closed")
			return fmt.Errorf("service: swap rejected: %w", journal.ErrClosed)
		}
		done := make(chan error, 1)
		g.jq <- journalReq{kind: jreqDeploy, dep: journalDeployment(next), done: done} //lppm:allow sendlock -- the deploy record must enter the queue under swapMu to order ahead of gen-G checkpoints; the pump drains jq unconditionally and never takes swapMu, so the send completes in bounded time
		if err := <-done; err != nil {
			g.tracer.Flight().Snapshot("swap rejected: journal append failed: " + err.Error())
			return fmt.Errorf("service: swap rejected, journal append failed: %w", err)
		}
	}
	g.deploy.Store(next)
	g.swaps.Add(1)
	return nil
}

// journalDeployment renders a deployState as its journal record.
func journalDeployment(d *deployState) journal.Deployment {
	jd := journal.Deployment{
		Generation: d.gen,
		Mechanism:  d.mech.Name(),
		Params:     map[string]float64(d.params),
	}
	if len(d.overrides) > 0 {
		jd.Overrides = make(map[string]map[string]float64, len(d.overrides))
		for u, p := range d.overrides {
			jd.Overrides[u] = map[string]float64(p)
		}
	}
	return jd
}

// Generation returns the serving deployment's generation: 0 until the
// first Swap, then incremented by each successful one.
func (g *Gateway) Generation() uint64 { return g.deploy.Load().gen }

// DeploymentInfo is a wire-friendly snapshot of the serving deployment —
// what GET /v1/deployment reports.
type DeploymentInfo struct {
	// Generation identifies the deployment (0 = the one New installed).
	Generation uint64 `json:"generation"`
	// Mechanism is the serving mechanism's registered name.
	Mechanism string `json:"mechanism"`
	// Params is the full base parameter assignment.
	Params lppm.Params `json:"params"`
	// Overrides is the per-user override table, complete assignments per
	// user; omitted when empty.
	Overrides map[string]lppm.Params `json:"overrides,omitempty"`
}

// Deployment snapshots the serving deployment's identity and assignment.
// The returned maps are clones; mutating them does not affect serving.
func (g *Gateway) Deployment() DeploymentInfo {
	d := g.deploy.Load()
	info := DeploymentInfo{
		Generation: d.gen,
		Mechanism:  d.mech.Name(),
		Params:     d.params.Clone(),
	}
	if len(d.overrides) > 0 {
		info.Overrides = make(map[string]lppm.Params, len(d.overrides))
		for u, p := range d.overrides {
			info.Overrides[u] = p.Clone()
		}
	}
	return info
}

// ServingDeployment rebuilds the serving deployment as a core.Deployment —
// the handle a unary batch endpoint protects with, and the base a manual
// reconfiguration merges new values over. Params and overrides are cloned;
// the mechanism is shared (mechanisms are stateless).
func (g *Gateway) ServingDeployment() *core.Deployment {
	d := g.deploy.Load()
	dep := &core.Deployment{Mechanism: d.mech, Params: d.params.Clone()}
	if len(d.overrides) > 0 {
		dep.Overrides = make(map[string]lppm.Params, len(d.overrides))
		for u, p := range d.overrides {
			dep.Overrides[u] = p.Clone()
		}
	}
	return dep
}

// SetTap installs (or, with nil, removes) the window-sampling tap. Safe to
// call at any time; windows flushed after the call see the new tap.
func (g *Gateway) SetTap(t Tap) {
	if t == nil {
		g.tap.Store(nil)
		return
	}
	g.tap.Store(&tapHolder{t: t})
}

// Close stops intake, drains the shards (staged and queued records are
// still protected and emitted), closes Output once the drain finishes, and
// returns the first mechanism error encountered, if any. Callers must stop
// Ingest-ing before Close and keep consuming Output until it closes.
// Idempotent.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		for _, s := range g.shards {
			s.stageMu.Lock()
			if !s.dead {
				if len(s.stage) > 0 {
					msg := g.takeStage(s)
					select {
					case s.in <- msg:
					case <-g.ctx.Done():
						s.dropped.Add(uint64(len(msg.batch)))
					}
				}
				s.dead = true
				close(s.in)
			}
			s.stageMu.Unlock()
		}
	})
	// Wait for watch(), not just the workers: the leftover-record
	// accounting runs there, and returning earlier would let a
	// Close-then-Stats caller observe Ingested > Emitted+Dropped.
	<-g.done
	// Every drain flush has enqueued its checkpoint by now; close the
	// queue, wait for the pump to drain it, then close the journal — so
	// it closes after the last tail window, the drain → journal-close
	// ordering the server's shutdown path relies on. jqClosed is guarded
	// by swapMu so a concurrent Swap or JournalBarrier never sends on the
	// closed channel; Close stays idempotent.
	if g.jw != nil {
		g.swapMu.Lock()
		if !g.jqClosed {
			g.jqClosed = true
			close(g.jq)
		}
		g.swapMu.Unlock()
		<-g.jpumpEnd
		if err := g.jw.Close(); err != nil {
			g.setErr(err)
		}
	}
	g.errMu.Lock()
	defer g.errMu.Unlock()
	return g.err
}

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Swaps:      g.swaps.Load(),
		Generation: g.deploy.Load().gen,
		PerShard:   make([]ShardStats, len(g.shards)),
	}
	for i, s := range g.shards {
		ss := ShardStats{
			Ingested:  s.ingested.Load(),
			Emitted:   s.emitted.Load(),
			Flushes:   s.flushes.Load(),
			Dropped:   s.dropped.Load(),
			Reconfigs: s.reconfigs.Load(),
			Users:     int(s.userN.Load()),
			QueueLen:  len(s.in),
		}
		st.PerShard[i] = ss
		st.Ingested += ss.Ingested
		st.Emitted += ss.Emitted
		st.Flushes += ss.Flushes
		st.Dropped += ss.Dropped
		st.Reconfigs += ss.Reconfigs
		st.Users += ss.Users
	}
	return st
}

// setErr records the first error.
func (g *Gateway) setErr(err error) {
	g.errMu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.errMu.Unlock()
}

// run is the shard worker loop: consume queued batches, window per user,
// flush full windows. On cancellation it drains whatever is already queued
// (bounded by QueueSize) and flushes every user's remainder; on channel
// close (Close) it does the same after the queue empties.
func (g *Gateway) run(s *shard) {
	defer g.wg.Done()
	for {
		select {
		case msg, ok := <-s.in:
			if !ok {
				g.drain(s)
				return
			}
			g.handleMsg(s, msg)
		case <-g.ctx.Done():
			for {
				select {
				case msg, ok := <-s.in:
					if !ok {
						g.drain(s)
						return
					}
					g.handleMsg(s, msg)
				default:
					g.drain(s)
					return
				}
			}
		}
	}
}

// handleMsg windows each record of a queued batch and executes any control
// command, acknowledging it.
func (g *Gateway) handleMsg(s *shard, msg shardMsg) {
	if msg.enqueuedNS != 0 {
		dequeued := obs.Stamp()
		g.clock.Observe(obs.StageQueue, msg.enqueuedNS, dequeued)
		if g.tracer != nil {
			// A sampled batch gets its span tree from the three stamps
			// the stage clock already read: staged → enqueued → dequeued.
			// ForceRoot, not Root — the 1-in-obsSampleEvery tick mask is
			// the sampling decision here. Windows flushed while this
			// batch is being handled parent under it (s.batch).
			root := g.tracer.ForceRootAt("batch", msg.stagedNS)
			sc := root.Context()
			g.tracer.ChildAt(sc, "ingest", msg.stagedNS).EndAt(msg.enqueuedNS)
			g.tracer.ChildAt(sc, "queue", msg.enqueuedNS).EndAt(dequeued)
			root.AttrInt("records", int64(len(msg.batch))).EndAt(dequeued)
			s.batch = sc
		}
	} else if g.tracer != nil {
		s.batch = tracing.SpanContext{}
	}
	for _, rec := range msg.batch {
		g.handle(s, rec)
	}
	if msg.traceUser != "" {
		if u := s.users[msg.traceUser]; u != nil {
			u.remote = msg.traceCtx
		} else {
			s.remote[msg.traceUser] = msg.traceCtx
		}
	}
	if msg.flushUser != "" {
		if u := s.users[msg.flushUser]; u != nil {
			g.flush(s, u)
		}
	}
	if msg.evictUser != "" {
		g.evict(s, msg.evictUser)
	}
	if msg.done != nil {
		close(msg.done)
	}
}

// handle buffers one record on its user's stream and flushes a full window.
func (g *Gateway) handle(s *shard, rec trace.Record) {
	u := s.users[rec.User]
	if u == nil {
		// Per-user randomness is derived by name from the root seed,
		// matching lppm.ProtectDataset: a user's protected stream is
		// identical whatever the shard count — and, for mechanisms
		// that draw randomness strictly per record, identical to the
		// batch result. Parameters come from the serving deployment,
		// override table included. A checkpointed user (recovered from
		// the journal or parked by EvictUser) restores instead: same
		// named source, re-seeked to the checkpointed draw position,
		// pending window re-buffered — bit-identical to the stream the
		// checkpoint described.
		dep := g.deploy.Load()
		src := g.root.Named(rec.User)
		var us *lppm.UserStream
		var err error
		if cp, ok := s.restore[rec.User]; ok {
			us, err = lppm.RestoreUserStream(dep.mech, dep.paramsFor(rec.User), rec.User, src, cp.RNGPos, cp.Pending)
			if err == nil {
				delete(s.restore, rec.User)
				u = &userState{us: us, gen: dep.gen, in: cp.In, out: cp.Out, windows: cp.Windows}
			}
		} else {
			us, err = lppm.NewUserStream(dep.mech, dep.paramsFor(rec.User), rec.User, src)
			if err == nil {
				u = &userState{us: us, gen: dep.gen}
			}
		}
		if err != nil {
			g.setErr(err)
			s.dropped.Add(1)
			return
		}
		if sc, ok := s.remote[rec.User]; ok {
			// A SetUserTrace binding that arrived before the user's
			// first record.
			u.remote = sc
			delete(s.remote, rec.User)
		}
		s.users[rec.User] = u
		s.userN.Add(1)
	}
	if err := u.us.Push(rec); err != nil {
		g.setErr(err)
		s.dropped.Add(1)
		return
	}
	u.in++
	if u.us.Pending() >= g.cfg.FlushEvery {
		g.flush(s, u)
	}
}

// evict checkpoints one user's stream — pending window included,
// unflushed, so the window split (and with it the bit-identity
// equivalence) is preserved — parks the checkpoint in the restore table
// and drops the stream. Journaled when a journal is attached; purely
// in-memory otherwise. A user with no stream is a no-op.
func (g *Gateway) evict(s *shard, user string) {
	u := s.users[user]
	if u == nil {
		return
	}
	cp := journal.Checkpoint{
		User:       user,
		Generation: u.gen,
		RNGPos:     u.us.Pos(),
		In:         u.in,
		Out:        u.out,
		Windows:    u.windows,
		Pending:    append([]trace.Record(nil), u.us.PendingRecords()...),
	}
	if g.jq != nil {
		// Write-behind like flush; an append error latches via the pump,
		// and the in-memory restore entry stays exact regardless.
		g.jq <- journalReq{kind: jreqCheckpoint, cp: cp}
	}
	s.restore[user] = cp
	delete(s.users, user)
	s.userN.Add(-1)
}

// flush protects one user's window and emits it. The window boundary is
// where a hot-swapped deployment becomes visible: the stream refreshes to
// the current deployment before protecting, so the whole window — and every
// later one until the next swap — is protected under exactly one parameter
// set, and no record is ever dropped or re-protected by a swap.
func (g *Gateway) flush(s *shard, u *userState) {
	us := u.us
	n := us.Pending()
	if n == 0 {
		return
	}
	// Sampled like the ingest/queue stages: most flushes skip both clock
	// reads, one in obsSampleEvery measures window-flush → emission.
	var flushStart int64
	if g.clock != nil || g.tracer != nil {
		s.flushTick++
		if s.flushTick&(obsSampleEvery-1) == 1 {
			flushStart = obs.Stamp()
		}
	}
	// The window span reuses the flush stamps. Parent priority: a
	// client-originated trace bound by SetUserTrace wins (and, being an
	// explicit opt-in, is recorded on every flush — paying its own
	// clock read when this flush isn't in the sample); otherwise a
	// sampled flush parents under the sampled batch that triggered it,
	// or stands alone as a root.
	var wspan *tracing.Span
	if g.tracer != nil {
		switch {
		case u.remote.Sampled():
			start := flushStart
			if start == 0 {
				start = obs.Stamp()
			}
			wspan = g.tracer.ChildAt(u.remote, "window", start)
		case flushStart != 0 && s.batch.Sampled():
			wspan = g.tracer.ChildAt(s.batch, "window", flushStart)
		case flushStart != 0:
			wspan = g.tracer.ForceRootAt("window", flushStart)
		}
		wspan.Attr("user", us.User()).AttrInt("records", int64(n))
	}
	if dep := g.deploy.Load(); dep.gen != u.gen {
		if err := us.Reconfigure(dep.mech, dep.paramsFor(us.User())); err != nil {
			// Reject the refresh but keep serving the old, valid
			// parameters; Swap validates, so this is defensive.
			g.setErr(err)
		} else {
			u.gen = dep.gen
			s.reconfigs.Add(1)
		}
	}
	// The tap samples before protection so it can copy the actual window
	// (Flush reuses the buffer) and pair it with the protected output.
	// The per-user handle is cached on the stream, so the steady-state
	// cost is one atomic load and a pointer compare.
	var tp TapUser
	var actual []trace.Record
	if h := g.tap.Load(); h != nil {
		if u.tapSrc != h {
			u.tapSrc, u.tap = h, h.t.User(us.User())
		}
		if u.tap != nil && u.tap.Sample(n) {
			tp = u.tap
			actual = append(make([]trace.Record, 0, n), us.PendingRecords()...)
		}
	}
	recs, err := us.Flush()
	if err != nil {
		g.setErr(err)
		// Flush retains its buffer (and rewinds the stream's source) on
		// error; discard so the window is counted dropped exactly once
		// rather than again per retry.
		s.dropped.Add(uint64(us.Discard()))
		wspan.EndErr(err)
		return
	}
	wspan.AttrUint("generation", u.gen)
	s.flushes.Add(1)
	u.windows++
	u.out += uint64(len(recs))
	// Write-behind: the checkpoint (with this window's protected records)
	// is enqueued for the journal pump and the window is emitted without
	// waiting for the disk. Crash safety survives the reordering because
	// clients only trim their send buffers to the journal's durable In
	// and re-protection of a resend is deterministic — a window the
	// journal never saw is regenerated bit-identically from the client's
	// buffer. The bounded queue turns a stalled disk into flush
	// backpressure; append errors latch via the pump.
	if g.jq != nil {
		cp := journal.Checkpoint{
			User:       us.User(),
			Generation: u.gen,
			RNGPos:     us.Pos(),
			In:         u.in,
			Out:        u.out,
			Windows:    u.windows,
			Window:     recs,
		}
		var jStart int64
		if (g.jhist != nil && flushStart != 0) || wspan != nil {
			jStart = obs.Stamp()
		}
		g.jq <- journalReq{kind: jreqCheckpoint, cp: cp}
		if jStart != 0 {
			jEnd := obs.Stamp()
			if g.jhist != nil && flushStart != 0 {
				g.jhist.Observe(jEnd - jStart)
			}
			g.tracer.ChildAt(wspan.Context(), "journal.append", jStart).EndAt(jEnd)
		}
	}
	if tp != nil {
		tp.Observe(u.gen, actual, recs)
	}
	select {
	case g.out <- Window{Records: recs, Span: wspan.Context()}:
		s.emitted.Add(uint64(len(recs)))
		if flushStart != 0 || wspan != nil {
			end := obs.Stamp()
			g.clock.Observe(obs.StageFlush, flushStart, end)
			wspan.EndAt(end)
		}
		return
	case <-g.ctx.Done():
	}
	// Canceled: the consumer may be gone, and losing the window beats
	// deadlocking the drain — but give a live consumer a grace period so
	// cancellation with a draining reader loses nothing. The deadline is
	// gateway-wide, not per window, so an absent consumer costs the
	// whole drain one grace period rather than one per user.
	g.graceOnce.Do(func() { g.graceUntil = time.Now().Add(drainGrace) })
	timer := time.NewTimer(time.Until(g.graceUntil))
	defer timer.Stop()
	select {
	case g.out <- Window{Records: recs, Span: wspan.Context()}:
		s.emitted.Add(uint64(len(recs)))
		if flushStart != 0 || wspan != nil {
			end := obs.Stamp()
			g.clock.Observe(obs.StageFlush, flushStart, end)
			wspan.EndAt(end)
		}
	case <-timer.C:
		s.dropped.Add(uint64(len(recs)))
		wspan.EndErr(errWindowDropped)
	}
}

// errWindowDropped marks a window span whose delivery lost the race
// with cancellation.
var errWindowDropped = errors.New("window dropped: output consumer gone")

// drain flushes every user's remaining window, in sorted user order so the
// shutdown flush sequence is deterministic across runs (§3: identical seeds
// must give identical output, and Go map iteration order would not).
// Per-user record order is preserved as always.
func (g *Gateway) drain(s *shard) {
	users := make([]string, 0, len(s.users))
	for u := range s.users {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		g.flush(s, s.users[u])
	}
}
