package service

import (
	"testing"

	"repro/internal/leakcheck"
)

// The gateway runs shard, watcher, and sweeper goroutines per instance;
// leakcheck fails this binary if any survives the tests (DESIGN.md §11).
func TestMain(m *testing.M) { leakcheck.Main(m) }
