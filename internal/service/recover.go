package service

import (
	"context"
	"fmt"

	"repro/internal/journal"
	"repro/internal/lppm"
	"repro/internal/obs"
)

// JournalConfig wires a stream journal into a gateway.
type JournalConfig struct {
	// Dir is the journal directory (required).
	Dir string
	// FS overrides the filesystem (fault-injection tests); nil uses the
	// host filesystem.
	FS journal.FS
	// SyncEvery fsyncs every Nth append; <=1 (the default) syncs every
	// append — the setting the crash-matrix equivalence proof assumes.
	SyncEvery int
	// CompactEvery rotates to a fresh snapshot-headed segment after this
	// many appends; 0 uses the journal default (4096).
	CompactEvery int
	// RetainWindows bounds the per-user reconnect-replay ring; 0 uses
	// the journal default (8).
	RetainWindows int
	// Resolve maps a journaled mechanism name back to an instance at
	// recovery; nil uses the standard lppm registry.
	Resolve func(name string) (lppm.Mechanism, error)
}

// RecoveryInfo reports what Recover found — surfaced by /healthz.
type RecoveryInfo struct {
	// Resumed is true when state was recovered from an existing journal
	// (false for a fresh directory).
	Resumed bool `json:"resumed"`
	// Users is how many per-user checkpoints were recovered.
	Users int `json:"users"`
	// Generation is the deployment generation serving resumes at.
	Generation uint64 `json:"generation"`
	// Segments and Entries describe the scanned journal: candidate
	// segment files and records folded.
	Segments int `json:"segments"`
	Entries  int `json:"entries"`
	// Corrupted is true when a torn or corrupt frame was found (recovery
	// truncated to the last valid record — expected after a crash).
	Corrupted bool `json:"corrupted"`
}

// Recover opens (or creates) the stream journal in jc.Dir and
// builds a journaling gateway from it. A fresh directory starts a new
// journal seeded from cfg; an existing one resumes: the journaled
// deployment (mechanism by name, parameters, overrides, generation)
// replaces cfg's, and every checkpointed user is parked in the restore
// tables so their streams rebuild lazily — re-seeked to the journaled
// rng position with the pending window re-buffered — on their first
// record. A gateway recovered this way produces, for every user, the
// byte-for-byte output a never-restarted gateway would have produced
// from the same input (see DESIGN.md §13 for the argument; the crash
// matrix in recover_test.go checks it at every record boundary).
//
// Opening always installs a fresh compacted snapshot segment and
// removes older ones, so recovery cost is bounded by the checkpointed
// user set, not by journal history.
func Recover(ctx context.Context, cfg Config, jc JournalConfig) (*Gateway, *RecoveryInfo, error) {
	if jc.Dir == "" {
		return nil, nil, fmt.Errorf("service: journal dir required")
	}
	var recStart int64
	if cfg.Tracer != nil {
		recStart = obs.Stamp()
	}
	w, st, open, err := journal.Open(jc.Dir, journal.Options{
		FS:            jc.FS,
		SyncEvery:     jc.SyncEvery,
		CompactEvery:  jc.CompactEvery,
		RetainWindows: jc.RetainWindows,
	})
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{
		Resumed:   open.Resumed,
		Segments:  open.Segments,
		Entries:   open.Entries,
		Corrupted: open.Corrupted,
	}
	var gen uint64
	var restore map[string]journal.Checkpoint
	if st == nil {
		// Fresh journal: seed it with the configured deployment. The
		// snapshot must describe a normalized config (defaults filled,
		// overrides merged) so a later recovery rebuilds exactly what
		// served.
		if err := cfg.normalize(); err != nil {
			return nil, nil, closeOnErr(w, err)
		}
		st = journal.NewState(cfg.Seed)
		st.Deploy = journal.Deployment{
			Mechanism: cfg.Mechanism.Name(),
			Params:    map[string]float64(cfg.Params),
		}
		if len(cfg.Overrides) > 0 {
			st.Deploy.Overrides = make(map[string]map[string]float64, len(cfg.Overrides))
			for u, p := range cfg.Overrides {
				st.Deploy.Overrides[u] = map[string]float64(p)
			}
		}
	} else {
		// Resumed: the journal is authoritative. A different seed would
		// silently break every re-seeked stream, so reject rather than
		// prefer either side.
		if cfg.Seed != st.Seed {
			return nil, nil, closeOnErr(w, fmt.Errorf(
				"service: journal %s was written under seed %d, config says %d",
				jc.Dir, st.Seed, cfg.Seed))
		}
		resolve := jc.Resolve
		if resolve == nil {
			reg := lppm.NewRegistry()
			resolve = reg.Get
		}
		mech, err := resolve(st.Deploy.Mechanism)
		if err != nil {
			return nil, nil, closeOnErr(w, fmt.Errorf("service: recover deployment: %w", err))
		}
		cfg.Mechanism = mech
		cfg.Params = lppm.Params(st.Deploy.Params).Clone()
		cfg.Overrides = nil
		if len(st.Deploy.Overrides) > 0 {
			cfg.Overrides = make(map[string]lppm.Params, len(st.Deploy.Overrides))
			for u, p := range st.Deploy.Overrides {
				cfg.Overrides[u] = lppm.Params(p).Clone()
			}
		}
		gen = st.Deploy.Generation
		restore = make(map[string]journal.Checkpoint, len(st.Users))
		for u, us := range st.Users {
			restore[u] = us.Checkpoint
		}
		info.Users = len(restore)
		info.Generation = gen
	}
	// Install writes the compacted snapshot segment and removes the old
	// ones; only then can the gateway append.
	if err := w.Install(st); err != nil {
		return nil, nil, closeOnErr(w, err)
	}
	g, err := newGateway(ctx, cfg, w, gen, restore)
	if err != nil {
		return nil, nil, closeOnErr(w, err)
	}
	if cfg.Tracer != nil {
		// Recovery is rare and load-bearing: always record its span, and
		// freeze a flight snapshot when state was actually resumed so
		// the post-restart /debug/flight explains what was rebuilt.
		sp := cfg.Tracer.ForceRootAt("recover", recStart)
		sp.Attr("dir", jc.Dir).
			AttrInt("segments", int64(info.Segments)).
			AttrInt("entries", int64(info.Entries)).
			AttrInt("users", int64(info.Users)).
			AttrUint("generation", info.Generation)
		if info.Resumed {
			sp.Attr("resumed", "true")
		}
		if info.Corrupted {
			sp.Attr("corrupted", "true")
		}
		sp.End()
		if info.Resumed {
			cfg.Tracer.Flight().Snapshot("recovery: resumed from journal")
		}
	}
	return g, info, nil
}

// closeOnErr releases the journal writer on a failed recovery, keeping
// the original error (the close error, if any, is secondary and the
// writer's sticky state already records it).
func closeOnErr(w *journal.Writer, err error) error {
	_ = w.Close() //lppm:allow droppederr -- best-effort release on the error path; err (returned) is the primary failure
	return err
}
