package core

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// smallFleet generates a compact synthetic dataset shared by the tests.
func smallFleet(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.NumDrivers = 14
	cfg.Duration = 12 * time.Hour
	fleet, err := synth.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fleet.Dataset
}

func testDefinition() Definition {
	return Definition{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: 17,
		Repeats:    2,
		Seed:       42,
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	d := smallFleet(t)
	a, err := Analyze(context.Background(), testDefinition(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sweep.Points) != 17 {
		t.Fatalf("sweep points = %d", len(a.Sweep.Points))
	}
	// Both fitted models must rise with ε and fit reasonably.
	if a.PrivacyModel.B <= 0 {
		t.Errorf("privacy slope = %v, want > 0", a.PrivacyModel.B)
	}
	if a.UtilityModel.B <= 0 {
		t.Errorf("utility slope = %v, want > 0", a.UtilityModel.B)
	}
	if a.PrivacyModel.R2 < 0.7 || a.UtilityModel.R2 < 0.7 {
		t.Errorf("poor fits: privacy R²=%v utility R²=%v", a.PrivacyModel.R2, a.UtilityModel.R2)
	}
	// Privacy must transition over a narrower ε range than utility —
	// the paper's core observation (Figure 1).
	prDecades := math.Log10(a.PrivacyModel.XMax) - math.Log10(a.PrivacyModel.XMin)
	utDecades := math.Log10(a.UtilityModel.XMax) - math.Log10(a.UtilityModel.XMin)
	if prDecades >= utDecades {
		t.Errorf("privacy active zone (%v decades) should be narrower than utility (%v)",
			prDecades, utDecades)
	}
	// GEO-I on this data should need no dataset properties, as in the
	// paper's illustration.
	if props := a.Properties.SelectedNames(); len(props) > 1 {
		t.Errorf("unexpectedly many selected properties: %v", props)
	}
}

func TestAnalyzeThenConfigureHeadline(t *testing.T) {
	d := smallFleet(t)
	a, err := Analyze(context.Background(), testDefinition(), d)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := a.Configure(model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("paper objectives infeasible: %+v", cfg)
	}
	// The recommended ε must be within GEO-I's declared range and in the
	// paper's decade neighbourhood.
	if cfg.Value < 1e-4 || cfg.Value > 1 {
		t.Errorf("recommended ε = %v outside declared range", cfg.Value)
	}
	if cfg.Value < 0.001 || cfg.Value > 0.1 {
		t.Errorf("recommended ε = %v, want within [0.001, 0.1] (paper: 0.01)", cfg.Value)
	}
}

func TestConfigurationVerifiedEmpirically(t *testing.T) {
	// The real test of the framework: protect the data at the
	// recommended ε and check the measured metrics meet the objectives.
	d := smallFleet(t)
	def := testDefinition()
	a, err := Analyze(context.Background(), def, d)
	if err != nil {
		t.Fatal(err)
	}
	obj := model.Objectives{MaxPrivacy: 0.15, MinUtility: 0.75}
	cfg, err := a.Configure(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("objectives infeasible: %+v", cfg)
	}

	pr, ut := measureAt(t, def, d, cfg.Value)
	// Allow modest slack: the verification run uses fresh noise.
	if pr > obj.MaxPrivacy+0.1 {
		t.Errorf("measured privacy %v far above objective %v", pr, obj.MaxPrivacy)
	}
	if ut < obj.MinUtility-0.1 {
		t.Errorf("measured utility %v far below objective %v", ut, obj.MinUtility)
	}
}

// measureAt protects the dataset at one ε and returns mean privacy/utility.
func measureAt(t *testing.T, def Definition, d *trace.Dataset, eps float64) (pr, ut float64) {
	t.Helper()
	protected, err := lppm.ProtectDataset(d, def.Mechanism,
		lppm.Params{lppm.EpsilonParam: eps}, rng.New(12345))
	if err != nil {
		t.Fatal(err)
	}
	var prs, uts []float64
	for _, u := range d.Users() {
		p, err := def.Privacy.Evaluate(d.Trace(u), protected.Trace(u))
		if err != nil {
			t.Fatal(err)
		}
		v, err := def.Utility.Evaluate(d.Trace(u), protected.Trace(u))
		if err != nil {
			t.Fatal(err)
		}
		prs = append(prs, p)
		uts = append(uts, v)
	}
	return mean(prs), mean(uts)
}

func TestDefinitionNormalizeErrors(t *testing.T) {
	d := smallFleet(t)
	mutations := map[string]func(*Definition){
		"nil mechanism":  func(def *Definition) { def.Mechanism = nil },
		"nil privacy":    func(def *Definition) { def.Privacy = nil },
		"nil utility":    func(def *Definition) { def.Utility = nil },
		"swapped kinds":  func(def *Definition) { def.Privacy, def.Utility = def.Utility, def.Privacy },
		"few gridpoints": func(def *Definition) { def.GridPoints = 2 },
		"neg repeats":    func(def *Definition) { def.Repeats = -1 },
		"unknown param":  func(def *Definition) { def.Param = "nope" },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			def := testDefinition()
			mutate(&def)
			if _, err := Analyze(context.Background(), def, d); err == nil {
				t.Errorf("%s should fail", name)
			}
		})
	}
	// Parameterless mechanism.
	def := testDefinition()
	def.Mechanism = lppm.Identity{}
	def.Param = ""
	if _, err := Analyze(context.Background(), def, d); err == nil {
		t.Error("parameterless mechanism should fail")
	}
}

func TestAnalyzeEmptyDataset(t *testing.T) {
	if _, err := Analyze(context.Background(), testDefinition(), trace.NewDataset()); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Analyze(context.Background(), testDefinition(), nil); err == nil {
		t.Error("nil dataset should error")
	}
}

func TestAnalyzeCancellation(t *testing.T) {
	d := smallFleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, testDefinition(), d); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestAnalyzeDefaultParamResolution(t *testing.T) {
	// Param left empty resolves to the sole parameter.
	d := smallFleet(t)
	def := testDefinition()
	def.Param = ""
	def.GridPoints = 5
	a, err := Analyze(context.Background(), def, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Definition.Param != lppm.EpsilonParam {
		t.Errorf("resolved param = %q", a.Definition.Param)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestCachePropertiesMemo pins the memo's keying: the property vectors are
// reused when a *different* Dataset object holds the same traces (the
// controller rebuilds a Dataset per evaluation around memoized traces), and
// recomputed when a trace or the cell size changes.
func TestCachePropertiesMemo(t *testing.T) {
	d := smallFleet(t)
	c := NewCache(testDefinition())

	p1 := c.properties(d, 500)
	if len(p1) != d.NumUsers() {
		t.Fatalf("got %d property rows for %d users", len(p1), d.NumUsers())
	}

	// Same traces wrapped in a fresh Dataset: must hit (same slice back).
	wrapped := trace.NewDataset()
	for _, tr := range d.Traces() {
		wrapped.Add(tr)
	}
	if p2 := c.properties(wrapped, 500); &p2[0] != &p1[0] {
		t.Fatal("identical trace set in a new Dataset should hit the memo")
	}

	// Different cell size: recompute.
	if p3 := c.properties(d, 200); &p3[0] == &p1[0] {
		t.Fatal("changed cell size should recompute")
	}

	// One replaced trace: recompute.
	p4 := c.properties(d, 500)
	changed := trace.NewDataset()
	for _, tr := range d.Traces() {
		changed.Add(tr)
	}
	u := d.Users()[0]
	changed.Add(d.Trace(u).Clone())
	if p5 := c.properties(changed, 500); &p5[0] == &p4[0] {
		t.Fatal("replaced trace should recompute")
	}
}

// TestAnalyzeCachedMatchesAnalyze runs the same definition twice through
// one cache and once without, requiring identical sweeps and models.
func TestAnalyzeCachedMatchesAnalyze(t *testing.T) {
	d := smallFleet(t)
	def := testDefinition()
	def.GridPoints = 5
	def.Repeats = 1
	def.Workers = 1

	plain, err := Analyze(context.Background(), def, d)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(def)
	for round := 0; round < 2; round++ {
		cached, err := AnalyzeCached(context.Background(), def, d, cache)
		if err != nil {
			t.Fatal(err)
		}
		if cached.PrivacyModel != plain.PrivacyModel || cached.UtilityModel != plain.UtilityModel {
			t.Fatalf("round %d: cached models diverge: %+v vs %+v", round, cached.PrivacyModel, plain.PrivacyModel)
		}
		for i, p := range plain.Sweep.Points {
			for name, v := range p.Mean {
				if cv := cached.Sweep.Points[i].Mean[name]; cv != v {
					t.Fatalf("round %d: point %d %s: %v vs %v", round, i, name, cv, v)
				}
			}
		}
	}
}
