package core

import (
	"fmt"

	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Deployment is a configured mechanism ready to serve: the framework's
// step-3 output turned into the complete parameter assignment an online
// gateway or batch job applies. It closes the loop the paper leaves open —
// Configure recommends a value, Deployment is that value made operational.
type Deployment struct {
	// Mechanism is the LPPM to run.
	Mechanism lppm.Mechanism
	// Params is the full parameter assignment: mechanism defaults with
	// the configured parameter overridden.
	Params lppm.Params
	// Param names the parameter the configuration chose (empty when the
	// deployment was built from explicit values rather than an analysis).
	Param string
	// Configuration is the step-3 evidence behind Params[Param]; zero
	// for explicitly-built deployments.
	Configuration model.Configuration
}

// Deploy inverts the fitted models under the objectives (Configure) and
// wraps the result into a ready-to-serve Deployment. Infeasible objectives
// are an error: there is no parameter value worth shipping.
func (a *Analysis) Deploy(obj model.Objectives) (*Deployment, error) {
	cfg, err := a.Configure(obj)
	if err != nil {
		return nil, err
	}
	if !cfg.Feasible {
		return nil, fmt.Errorf("core: objectives infeasible for %q (feasible privacy needs ≤ %v, utility needs ≥ %v)",
			a.Definition.Mechanism.Name(), obj.MaxPrivacy, obj.MinUtility)
	}
	p := lppm.Defaults(a.Definition.Mechanism)
	p[a.Definition.Param] = cfg.Value
	return &Deployment{
		Mechanism:     a.Definition.Mechanism,
		Params:        p,
		Param:         a.Definition.Param,
		Configuration: cfg,
	}, nil
}

// NewDeployment builds a deployment from explicit parameter values — the
// escape hatch when no analysis ran (hand-picked ε on a CLI, replaying a
// stored configuration). Missing parameters fall back to mechanism
// defaults; present ones are validated.
func NewDeployment(m lppm.Mechanism, p lppm.Params) (*Deployment, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil mechanism")
	}
	full := lppm.Defaults(m)
	for k, v := range p {
		full[k] = v
	}
	if err := lppm.ValidateParams(m, full); err != nil {
		return nil, err
	}
	return &Deployment{Mechanism: m, Params: full}, nil
}

// Protect applies the deployment to a whole dataset — the batch path, for
// comparison with (and validation of) the streaming gateway.
func (d *Deployment) Protect(ds *trace.Dataset, root *rng.Source) (*trace.Dataset, error) {
	return lppm.ProtectDataset(ds, d.Mechanism, d.Params, root)
}
