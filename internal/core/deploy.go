package core

import (
	"context"
	"fmt"

	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Deployment is a configured mechanism ready to serve: the framework's
// step-3 output turned into the complete parameter assignment an online
// gateway or batch job applies. It closes the loop the paper leaves open —
// Configure recommends a value, Deployment is that value made operational.
type Deployment struct {
	// Mechanism is the LPPM to run.
	Mechanism lppm.Mechanism
	// Params is the full parameter assignment: mechanism defaults with
	// the configured parameter overridden.
	Params lppm.Params
	// Param names the parameter the configuration chose (empty when the
	// deployment was built from explicit values rather than an analysis).
	Param string
	// Configuration is the step-3 evidence behind Params[Param]; zero
	// for explicitly-built deployments.
	Configuration model.Configuration
	// Overrides maps user ids to complete per-user parameter assignments
	// that replace Params for that user's records — the reconfiguration
	// controller's lever for users whose observed privacy diverges from
	// the population the shared model was fitted on. Entries are always
	// full, validated assignments; use Override to add them.
	Overrides map[string]lppm.Params
}

// Deploy inverts the fitted models under the objectives (Configure) and
// wraps the result into a ready-to-serve Deployment. Infeasible objectives
// are an error: there is no parameter value worth shipping.
func (a *Analysis) Deploy(obj model.Objectives) (*Deployment, error) {
	cfg, err := a.Configure(obj)
	if err != nil {
		return nil, err
	}
	if !cfg.Feasible {
		return nil, fmt.Errorf("core: objectives infeasible for %q (feasible privacy needs ≤ %v, utility needs ≥ %v)",
			a.Definition.Mechanism.Name(), obj.MaxPrivacy, obj.MinUtility)
	}
	p := lppm.Defaults(a.Definition.Mechanism)
	p[a.Definition.Param] = cfg.Value
	return &Deployment{
		Mechanism:     a.Definition.Mechanism,
		Params:        p,
		Param:         a.Definition.Param,
		Configuration: cfg,
	}, nil
}

// NewDeployment builds a deployment from explicit parameter values — the
// escape hatch when no analysis ran (hand-picked ε on a CLI, replaying a
// stored configuration). Missing parameters fall back to mechanism
// defaults; present ones are validated.
func NewDeployment(m lppm.Mechanism, p lppm.Params) (*Deployment, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil mechanism")
	}
	full := lppm.Defaults(m)
	for k, v := range p {
		full[k] = v
	}
	// ValidateAssignment also rejects names the mechanism does not
	// declare: a misspelled -set or map key would otherwise be carried
	// along and silently ignored.
	if err := lppm.ValidateAssignment(m, full); err != nil {
		return nil, err
	}
	return &Deployment{Mechanism: m, Params: full}, nil
}

// Redeploy re-runs the whole Define → Model → Configure loop on freshly
// observed data and wraps the result for serving: the reconfiguration
// controller's drift response. It is Analyze + Deploy in one call, with the
// definition's dataset replaced by what the live stream actually carried.
// The Analysis is returned alongside so callers can keep refining the
// deployment from the fitted models (per-user overrides); it is non-nil
// whenever the analysis itself succeeded, even if the objectives then
// proved infeasible.
func Redeploy(ctx context.Context, def Definition, observed *trace.Dataset, obj model.Objectives) (*Deployment, *Analysis, error) {
	return RedeployCached(ctx, def, observed, obj, nil)
}

// RedeployCached is Redeploy drawing on a caller-owned Cache: a controller
// that redeploys periodically reuses prepared actual-side metric state for
// every observed trace that is unchanged since the cache last saw it.
func RedeployCached(ctx context.Context, def Definition, observed *trace.Dataset, obj model.Objectives, cache *Cache) (*Deployment, *Analysis, error) {
	a, err := AnalyzeCached(ctx, def, observed, cache)
	if err != nil {
		return nil, nil, fmt.Errorf("core: redeploy analysis: %w", err)
	}
	dep, err := a.Deploy(obj)
	if err != nil {
		return nil, a, err
	}
	return dep, a, nil
}

// Override installs a per-user parameter override. The given values are
// merged over the deployment's base Params, validated, and stored as a
// complete assignment, so serving code can hand ParamsFor's result to the
// mechanism directly.
func (d *Deployment) Override(user string, p lppm.Params) error {
	if user == "" {
		return fmt.Errorf("core: override for empty user id")
	}
	// Assignment-strict: an override naming an undeclared parameter (a
	// typo) must fail loudly, not personalize nothing.
	full, err := lppm.MergeAssignment(d.Mechanism, d.Params, p)
	if err != nil {
		return fmt.Errorf("core: override for %q: %w", user, err)
	}
	if d.Overrides == nil {
		d.Overrides = make(map[string]lppm.Params)
	}
	d.Overrides[user] = full
	return nil
}

// ParamsFor returns the parameter assignment serving the given user: the
// user's override if one is installed, the deployment's base Params
// otherwise. The returned map must not be mutated.
func (d *Deployment) ParamsFor(user string) lppm.Params {
	if p, ok := d.Overrides[user]; ok {
		return p
	}
	return d.Params
}

// Clone returns a deep copy of the deployment (params and override table),
// so a controller can derive a successor without racing the copy a gateway
// is serving from.
func (d *Deployment) Clone() *Deployment {
	c := *d
	c.Params = d.Params.Clone()
	if d.Overrides != nil {
		c.Overrides = make(map[string]lppm.Params, len(d.Overrides))
		for u, p := range d.Overrides {
			c.Overrides[u] = p.Clone()
		}
	}
	return &c
}

// Protect applies the deployment to a whole dataset — the batch path, for
// comparison with (and validation of) the streaming gateway. Per-user
// overrides are honored via lppm.ProtectDatasetWith, whose by-name random
// derivation makes batch and streamed output agree per user whatever the
// override table says about the others.
func (d *Deployment) Protect(ds *trace.Dataset, root *rng.Source) (*trace.Dataset, error) {
	if err := lppm.ValidateParams(d.Mechanism, d.Params); err != nil {
		return nil, err
	}
	return lppm.ProtectDatasetWith(ds, d.Mechanism, d.ParamsFor, root)
}
