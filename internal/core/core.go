// Package core is the paper's contribution: a framework for the easy,
// automated configuration of Location Privacy Protection Mechanisms. It
// wires the three automated steps together (paper §3):
//
//  1. System definition — the privacy metric Pr, the utility metric Ut, the
//     LPPM's configuration parameters with their ranges, and the dataset
//     properties d_i (screened by PCA).
//  2. Modeling — automated experiments sweep the parameters while metrics
//     are measured, and the invertible relationship (Pr, Ut) = f(p, d) of
//     Equation 2 is fitted on the non-saturated zone.
//  3. Configuration — f is inverted under the designer's privacy and
//     utility objectives to produce the parameter value to deploy.
package core

import (
	"context"
	"fmt"

	"repro/internal/eval"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
)

// Definition is framework step 1: what to analyze and with which yardsticks.
type Definition struct {
	// Mechanism is the LPPM under analysis (e.g. GEO-I).
	Mechanism lppm.Mechanism
	// Param is the configuration parameter to model (e.g. "epsilon").
	// Empty selects the mechanism's sole parameter.
	Param string
	// Privacy and Utility are the objective metrics.
	Privacy, Utility metrics.Metric
	// GridPoints is the sweep resolution (≥ 3; the paper uses ~25 points
	// across four decades).
	GridPoints int
	// Repeats averages this many protection runs per grid value.
	Repeats int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
	// SaturationTolFrac is the plateau-detection tolerance for the
	// non-saturated-zone detection (0 uses 0.05).
	SaturationTolFrac float64
	// PropertyCellMeters discretizes space for dataset-property
	// computation (0 uses 500 m).
	PropertyCellMeters float64
}

// normalize fills defaults and validates.
func (d *Definition) normalize() error {
	if d.Mechanism == nil {
		return fmt.Errorf("core: nil mechanism")
	}
	if d.Privacy == nil || d.Utility == nil {
		return fmt.Errorf("core: both privacy and utility metrics are required")
	}
	if d.Privacy.Kind() != metrics.Privacy {
		return fmt.Errorf("core: %q is not a privacy metric", d.Privacy.Name())
	}
	if d.Utility.Kind() != metrics.Utility {
		return fmt.Errorf("core: %q is not a utility metric", d.Utility.Name())
	}
	specs := d.Mechanism.Params()
	if len(specs) == 0 {
		return fmt.Errorf("core: mechanism %q has no configurable parameters", d.Mechanism.Name())
	}
	if d.Param == "" {
		if len(specs) > 1 {
			return fmt.Errorf("core: mechanism %q has %d parameters; Param must name one", d.Mechanism.Name(), len(specs))
		}
		d.Param = specs[0].Name
	}
	if d.GridPoints == 0 {
		d.GridPoints = 25
	}
	if d.GridPoints < 3 {
		return fmt.Errorf("core: GridPoints must be >= 3, got %d", d.GridPoints)
	}
	if d.Repeats == 0 {
		d.Repeats = 1
	}
	if d.Repeats < 1 {
		return fmt.Errorf("core: Repeats must be >= 1, got %d", d.Repeats)
	}
	if d.SaturationTolFrac == 0 {
		d.SaturationTolFrac = 0.05
	}
	if d.PropertyCellMeters == 0 {
		d.PropertyCellMeters = 500
	}
	return nil
}

// Validate checks the definition is runnable without running it: the
// normalize pass plus parameter-spec resolution, filling defaults in place
// (Param for single-parameter mechanisms, grid sizes, tolerances). Long-
// lived callers that hold a definition to re-run later — the service
// controller — use it to fail at construction instead of at every
// evaluation.
func (d *Definition) Validate() error {
	if err := d.normalize(); err != nil {
		return err
	}
	_, err := d.paramSpec()
	return err
}

// paramSpec returns the spec of the modeled parameter.
func (d *Definition) paramSpec() (lppm.ParamSpec, error) {
	for _, s := range d.Mechanism.Params() {
		if s.Name == d.Param {
			return s, nil
		}
	}
	return lppm.ParamSpec{}, fmt.Errorf("core: mechanism %q has no parameter %q", d.Mechanism.Name(), d.Param)
}

// Analysis is the output of the modeling phase (step 2): the raw sweep, the
// two fitted models, and the dataset-property screening.
type Analysis struct {
	// Definition echoes the (normalized) input definition.
	Definition Definition
	// Sweep is the raw experiment outcome (Figure 1's data).
	Sweep *eval.Result
	// PrivacyModel and UtilityModel are the fitted halves of Equation 2.
	PrivacyModel, UtilityModel model.LogLinear
	// Properties is the PCA screening of dataset properties; its
	// Selected list is empty when — as in the paper's GEO-I case — no
	// property need enter the model.
	Properties *model.PropertySelection
}

// Cache carries dataset-derived evaluation state that repeated analyses
// sharing one definition's metrics can reuse: the prepared-metric
// evaluators of the sweep engine (keyed per user by actual-trace identity,
// so entries survive exactly as long as the underlying traces do) and the
// dataset-property vectors of the screening step (memoized while the
// dataset is unchanged). The reconfiguration controller owns one for its
// lifetime; CLI or example code analyzing the same dataset under several
// definitions that share metrics can too.
//
// A Cache is not safe for concurrent use, and cached entries assume the
// traces and dataset they were derived from are not mutated.
type Cache struct {
	metrics *eval.MetricCache
	// propsKey records the trace identity of every user the memoized
	// property vectors were computed from. Keying on trace identities —
	// not the dataset pointer — lets callers that rebuild a Dataset
	// around unchanged traces each round (the controller snapshots into
	// a fresh Dataset per evaluation) still hit the memo.
	propsKey  map[string]*trace.Trace
	propsCell float64
	props     []trace.UserProperties
}

// NewCache builds a cache for analyses using the definition's metric pair
// (privacy first, utility second — the sweep order AnalyzeCached uses).
func NewCache(def Definition) *Cache {
	return &Cache{metrics: eval.NewMetricCache([]metrics.Metric{def.Privacy, def.Utility})}
}

// MetricCache exposes the prepared-evaluator cache, for callers (the
// controller's online estimation) that score single protected traces with
// the same metrics outside a full sweep.
func (c *Cache) MetricCache() *eval.MetricCache { return c.metrics }

// Reset drops every memoized entry — prepared evaluators and property
// vectors alike — releasing the traces they pin. Callers invalidate when
// the data the cache was built over is gone for good (the controller after
// a swap).
func (c *Cache) Reset() {
	c.metrics.Reset()
	c.props = nil
	c.propsKey = nil
}

// properties returns trace.DatasetProperties(ds, cellMeters), reusing the
// previous computation while the dataset still holds the same traces (by
// identity, per user) at the same cell size. The identity walk is O(users);
// the computation it skips is O(records).
func (c *Cache) properties(ds *trace.Dataset, cellMeters float64) []trace.UserProperties {
	if c.props != nil && c.propsCell == cellMeters && c.sameTraces(ds) { //lppm:allow floatcmp -- memo key: the cached result is valid only for a bit-identical cell size; approximate matches must recompute
		return c.props
	}
	c.props = trace.DatasetProperties(ds, cellMeters)
	c.propsCell = cellMeters
	c.propsKey = make(map[string]*trace.Trace, ds.NumUsers())
	for _, t := range ds.Traces() {
		c.propsKey[t.User] = t
	}
	return c.props
}

// sameTraces reports whether ds holds exactly the traces the memo was
// computed from.
func (c *Cache) sameTraces(ds *trace.Dataset) bool {
	if ds.NumUsers() != len(c.propsKey) {
		return false
	}
	for _, t := range ds.Traces() {
		if c.propsKey[t.User] != t {
			return false
		}
	}
	return true
}

// Analyze runs framework steps 1 and 2 on the dataset: sweep the parameter
// across its declared range, measure both metrics, screen dataset
// properties, and fit the invertible models.
func Analyze(ctx context.Context, def Definition, actual *trace.Dataset) (*Analysis, error) {
	return AnalyzeCached(ctx, def, actual, nil)
}

// AnalyzeCached is Analyze drawing prepared evaluators and memoized dataset
// properties from a caller-owned Cache — the repeated-analysis path. A nil
// cache recomputes everything, which is Analyze's behavior.
func AnalyzeCached(ctx context.Context, def Definition, actual *trace.Dataset, cache *Cache) (*Analysis, error) {
	if err := def.normalize(); err != nil {
		return nil, err
	}
	if actual == nil || actual.NumUsers() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	spec, err := def.paramSpec()
	if err != nil {
		return nil, err
	}

	values, err := grid(spec, def.GridPoints)
	if err != nil {
		return nil, err
	}
	sweep := &eval.Sweep{
		Mechanism: def.Mechanism,
		Param:     def.Param,
		Values:    values,
		// Multi-parameter mechanisms hold their other parameters at
		// their defaults while one is modeled (framework step 1 models
		// one p_i at a time).
		Fixed:   lppm.Defaults(def.Mechanism),
		Metrics: []metrics.Metric{def.Privacy, def.Utility},
		Repeats: def.Repeats,
		Seed:    def.Seed,
		Workers: def.Workers,
	}
	var mcache *eval.MetricCache
	if cache != nil {
		mcache = cache.metrics
	}
	result, err := eval.RunCached(ctx, sweep, actual, mcache)
	if err != nil {
		return nil, err
	}

	a := &Analysis{Definition: def, Sweep: result}

	xs, ys, err := result.Series(def.Privacy.Name())
	if err != nil {
		return nil, err
	}
	a.PrivacyModel, err = model.FitLogLinear(xs, ys, def.SaturationTolFrac)
	if err != nil {
		return nil, fmt.Errorf("core: privacy model: %w", err)
	}
	xs, ys, err = result.Series(def.Utility.Name())
	if err != nil {
		return nil, err
	}
	a.UtilityModel, err = model.FitLogLinear(xs, ys, def.SaturationTolFrac)
	if err != nil {
		return nil, fmt.Errorf("core: utility model: %w", err)
	}

	a.Properties, err = screenProperties(def, actual, result, cache)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// screenProperties correlates per-user dataset properties with per-user
// privacy outcomes at the middle of the sweep, the framework's PCA-based
// step-1 analysis. The property vectors are the one dataset-wide pass of
// the analysis; with a cache they are hoisted out of repeated analyses of
// an unchanged dataset.
func screenProperties(def Definition, actual *trace.Dataset, result *eval.Result, cache *Cache) (*model.PropertySelection, error) {
	var props []trace.UserProperties
	if cache != nil {
		props = cache.properties(actual, def.PropertyCellMeters)
	} else {
		props = trace.DatasetProperties(actual, def.PropertyCellMeters)
	}
	rows := make([][]float64, len(props))
	for i, p := range props {
		rows[i] = p.PropertyVector()
	}
	if len(rows) < 3 {
		// Too few users to screen anything; report an empty selection.
		return &model.PropertySelection{Names: trace.PropertyNames()}, nil
	}
	mid := result.Points[len(result.Points)/2]
	perUser := mid.PerUser[def.Privacy.Name()]
	users := actual.Users()
	metricVals := make([]float64, len(users))
	for i, u := range users {
		metricVals[i] = perUser[u]
	}
	return model.SelectProperties(trace.PropertyNames(), rows, metricVals, 0.2, 0.5)
}

// Configure is framework step 3: invert the fitted models under the
// designer's objectives.
func (a *Analysis) Configure(obj model.Objectives) (model.Configuration, error) {
	cfg, err := model.Configure(a.PrivacyModel, a.UtilityModel, obj)
	if err != nil {
		return model.Configuration{}, err
	}
	// Clamp the recommendation into the mechanism's declared range.
	spec, err := a.Definition.paramSpec()
	if err != nil {
		return model.Configuration{}, err
	}
	if cfg.Value < spec.Min {
		cfg.Value = spec.Min
	}
	if cfg.Value > spec.Max {
		cfg.Value = spec.Max
	}
	return cfg, nil
}

// grid builds the sweep grid from a parameter spec: log-spaced for LogScale
// parameters, linear otherwise.
func grid(spec lppm.ParamSpec, n int) ([]float64, error) {
	if spec.Min >= spec.Max {
		return nil, fmt.Errorf("core: parameter %q has degenerate range [%v, %v]", spec.Name, spec.Min, spec.Max)
	}
	if spec.LogScale {
		if spec.Min <= 0 {
			return nil, fmt.Errorf("core: log-scale parameter %q has non-positive min %v", spec.Name, spec.Min)
		}
		return logSpace(spec.Min, spec.Max, n), nil
	}
	return linSpace(spec.Min, spec.Max, n), nil
}
