package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// FullCurveModels fits the sigmoid (full-curve) alternatives to Equation
// 2's log-linear models on the analysis' sweep. Where the log-linear pair
// is valid only inside the non-saturated zone, the sigmoids model plateaus
// too, at the cost of the paper's closed form.
func (a *Analysis) FullCurveModels() (privacy, utility model.Sigmoid, err error) {
	xs, ys, err := a.Sweep.Series(a.Definition.Privacy.Name())
	if err != nil {
		return model.Sigmoid{}, model.Sigmoid{}, err
	}
	privacy, err = model.FitSigmoidModel(xs, ys)
	if err != nil {
		return model.Sigmoid{}, model.Sigmoid{}, fmt.Errorf("core: privacy sigmoid: %w", err)
	}
	xs, ys, err = a.Sweep.Series(a.Definition.Utility.Name())
	if err != nil {
		return model.Sigmoid{}, model.Sigmoid{}, err
	}
	utility, err = model.FitSigmoidModel(xs, ys)
	if err != nil {
		return model.Sigmoid{}, model.Sigmoid{}, fmt.Errorf("core: utility sigmoid: %w", err)
	}
	return privacy, utility, nil
}

// ConfigureFullCurve is Configure using the sigmoid models instead of the
// log-linear ones. The recommendation is clamped into the mechanism's
// declared parameter range like Configure's.
func (a *Analysis) ConfigureFullCurve(obj model.Objectives) (model.Configuration, error) {
	pm, um, err := a.FullCurveModels()
	if err != nil {
		return model.Configuration{}, err
	}
	cfg, err := model.ConfigureSigmoid(pm, um, obj)
	if err != nil {
		return model.Configuration{}, err
	}
	spec, err := a.Definition.paramSpec()
	if err != nil {
		return model.Configuration{}, err
	}
	if cfg.Value < spec.Min {
		cfg.Value = spec.Min
	}
	if cfg.Value > spec.Max {
		cfg.Value = spec.Max
	}
	return cfg, nil
}

// Pareto returns the empirically non-dominated operating points of the
// sweep — the trade-offs the mechanism can actually reach. Designers
// consult it when Configure reports the objectives infeasible.
func (a *Analysis) Pareto() ([]model.SweepPoint, error) {
	xs, prs, err := a.Sweep.Series(a.Definition.Privacy.Name())
	if err != nil {
		return nil, err
	}
	_, uts, err := a.Sweep.Series(a.Definition.Utility.Name())
	if err != nil {
		return nil, err
	}
	pts, err := model.ZipSweep(xs, prs, uts)
	if err != nil {
		return nil, err
	}
	return model.ParetoFront(pts), nil
}

// ConfigureWithConfidence augments Configure with a bootstrap confidence
// interval on the recommended parameter value, quantifying how much the
// recommendation depends on sweep measurement noise. iters bootstrap
// replicates are run at the given two-sided level (e.g. 0.90).
func (a *Analysis) ConfigureWithConfidence(obj model.Objectives, iters int, level float64) (model.ConfigurationCI, error) {
	xs, prs, err := a.Sweep.Series(a.Definition.Privacy.Name())
	if err != nil {
		return model.ConfigurationCI{}, err
	}
	_, uts, err := a.Sweep.Series(a.Definition.Utility.Name())
	if err != nil {
		return model.ConfigurationCI{}, err
	}
	r := rng.New(a.Definition.Seed).Named("bootstrap")
	return model.BootstrapConfigure(r, xs, prs, uts, a.Definition.SaturationTolFrac, obj, iters, level)
}
