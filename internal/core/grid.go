package core

import "repro/internal/stat"

// logSpace and linSpace delegate to the stat package; kept as tiny wrappers
// so core reads without a stat import at every call site.
func logSpace(lo, hi float64, n int) []float64 { return stat.LogSpace(lo, hi, n) }

func linSpace(lo, hi float64, n int) []float64 { return stat.LinSpace(lo, hi, n) }
