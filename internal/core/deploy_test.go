package core

import (
	"context"
	"testing"

	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/rng"
)

// TestDeployFromAnalysis runs the full pipeline — analyze, configure,
// deploy — and checks the deployment carries the configured value inside
// the mechanism's full parameter assignment.
func TestDeployFromAnalysis(t *testing.T) {
	a, err := Analyze(context.Background(), testDefinition(), smallFleet(t))
	if err != nil {
		t.Fatal(err)
	}
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	d, err := a.Deploy(obj)
	if err != nil {
		t.Fatal(err)
	}
	if d.Param != lppm.EpsilonParam {
		t.Errorf("deployed param %q, want %q", d.Param, lppm.EpsilonParam)
	}
	if d.Params[d.Param] != d.Configuration.Value {
		t.Errorf("Params[%s] = %v, want configured %v", d.Param, d.Params[d.Param], d.Configuration.Value)
	}
	if !d.Configuration.Feasible {
		t.Error("deployment built from infeasible configuration")
	}
	// Impossible objectives must refuse to deploy.
	if _, err := a.Deploy(model.Objectives{MaxPrivacy: -1, MinUtility: 2}); err == nil {
		t.Error("infeasible objectives must fail Deploy")
	}
}

// TestRedeploy checks the controller's drift response primitive: one call
// re-runs the analysis on observed data and both deploys and hands back the
// fitted models; infeasible objectives return the analysis without a
// deployment.
func TestRedeploy(t *testing.T) {
	ds := smallFleet(t)
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	dep, analysis, err := Redeploy(context.Background(), testDefinition(), ds, obj)
	if err != nil {
		t.Fatal(err)
	}
	if analysis == nil {
		t.Fatal("Redeploy must return the analysis behind the deployment")
	}
	if dep.Params[dep.Param] != dep.Configuration.Value {
		t.Errorf("Params[%s] = %v, want configured %v", dep.Param, dep.Params[dep.Param], dep.Configuration.Value)
	}
	dep2, analysis2, err := Redeploy(context.Background(), testDefinition(), ds, model.Objectives{MaxPrivacy: -1, MinUtility: 2})
	if err == nil || dep2 != nil {
		t.Error("infeasible objectives must fail Redeploy without a deployment")
	}
	if analysis2 == nil {
		t.Error("a successful analysis must be returned even when deploy fails")
	}
}

func TestNewDeploymentFillsDefaultsAndValidates(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	d, err := NewDeployment(m, lppm.Params{"epsilon": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Params["epsilon"]; got != 0.05 {
		t.Errorf("epsilon = %v, want 0.05", got)
	}
	if _, err := NewDeployment(m, lppm.Params{"epsilon": -3}); err == nil {
		t.Error("out-of-range value must fail")
	}
	if _, err := NewDeployment(m, lppm.Params{"epsilonn": 0.05}); err == nil {
		t.Error("undeclared parameter name must fail")
	}
	if _, err := NewDeployment(nil, nil); err == nil {
		t.Error("nil mechanism must fail")
	}
	d, err = NewDeployment(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Params["epsilon"], lppm.Defaults(m)["epsilon"]; got != want {
		t.Errorf("default epsilon = %v, want %v", got, want)
	}
}

func TestDeploymentOverrides(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	d, err := NewDeployment(m, lppm.Params{"epsilon": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Override("", lppm.Params{"epsilon": 0.01}); err == nil {
		t.Error("empty user override must fail")
	}
	if err := d.Override("u1", lppm.Params{"epsilon": -1}); err == nil {
		t.Error("invalid override must fail")
	}
	if err := d.Override("u1", lppm.Params{"epsilonn": 0.01}); err == nil {
		t.Error("misspelled parameter name must fail, not be silently ignored")
	}
	if d.Overrides != nil {
		t.Error("failed overrides must not install entries")
	}
	if err := d.Override("u1", lppm.Params{"epsilon": 0.01}); err != nil {
		t.Fatal(err)
	}
	if got := d.ParamsFor("u1")["epsilon"]; got != 0.01 {
		t.Errorf("ParamsFor(u1)[epsilon] = %v, want 0.01", got)
	}
	if got := d.ParamsFor("u2")["epsilon"]; got != 0.05 {
		t.Errorf("ParamsFor(u2)[epsilon] = %v, want base 0.05", got)
	}
	// Overrides are stored as complete assignments.
	if err := lppm.ValidateParams(m, d.ParamsFor("u1")); err != nil {
		t.Errorf("override assignment incomplete: %v", err)
	}

	c := d.Clone()
	if err := c.Override("u2", lppm.Params{"epsilon": 0.02}); err != nil {
		t.Fatal(err)
	}
	c.Params["epsilon"] = 0.5
	c.Overrides["u1"]["epsilon"] = 0.5
	if _, ok := d.Overrides["u2"]; ok {
		t.Error("Clone shares the override table")
	}
	if d.Params["epsilon"] != 0.05 || d.Overrides["u1"]["epsilon"] != 0.01 {
		t.Error("Clone shares parameter maps")
	}
}

// TestDeploymentProtectHonorsOverrides checks the batch path applies the
// override to exactly the overridden user and leaves every other user
// bit-identical to the no-override run (same per-user named sources).
func TestDeploymentProtectHonorsOverrides(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	ds := smallFleet(t)
	users := ds.Users()
	if len(users) < 2 {
		t.Fatal("need at least two users")
	}
	base, err := NewDeployment(m, lppm.Params{"epsilon": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := base.Protect(ds, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	over := base.Clone()
	if err := over.Override(users[0], lppm.Params{"epsilon": 0.001}); err != nil {
		t.Fatal(err)
	}
	got, err := over.Protect(ds, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	same := func(u string) bool {
		gr, pr := got.Trace(u).Records, plain.Trace(u).Records
		if len(gr) != len(pr) {
			return false
		}
		for i := range gr {
			if gr[i] != pr[i] {
				return false
			}
		}
		return true
	}
	if same(users[0]) {
		t.Errorf("overridden user %s unchanged by a 50x epsilon change", users[0])
	}
	for _, u := range users[1:] {
		if !same(u) {
			t.Errorf("non-overridden user %s affected by another user's override", u)
		}
	}
}

func TestDeploymentProtectMatchesProtectDataset(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	d, err := NewDeployment(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallFleet(t)
	got, err := d.Protect(ds, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lppm.ProtectDataset(ds, m, d.Params, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Users() {
		gr, wr := got.Trace(u).Records, want.Trace(u).Records
		if len(gr) != len(wr) {
			t.Fatalf("user %s: %d records, want %d", u, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("user %s record %d differs", u, i)
			}
		}
	}
}
