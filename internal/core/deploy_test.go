package core

import (
	"context"
	"testing"

	"repro/internal/lppm"
	"repro/internal/model"
	"repro/internal/rng"
)

// TestDeployFromAnalysis runs the full pipeline — analyze, configure,
// deploy — and checks the deployment carries the configured value inside
// the mechanism's full parameter assignment.
func TestDeployFromAnalysis(t *testing.T) {
	a, err := Analyze(context.Background(), testDefinition(), smallFleet(t))
	if err != nil {
		t.Fatal(err)
	}
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	d, err := a.Deploy(obj)
	if err != nil {
		t.Fatal(err)
	}
	if d.Param != lppm.EpsilonParam {
		t.Errorf("deployed param %q, want %q", d.Param, lppm.EpsilonParam)
	}
	if d.Params[d.Param] != d.Configuration.Value {
		t.Errorf("Params[%s] = %v, want configured %v", d.Param, d.Params[d.Param], d.Configuration.Value)
	}
	if !d.Configuration.Feasible {
		t.Error("deployment built from infeasible configuration")
	}
	// Impossible objectives must refuse to deploy.
	if _, err := a.Deploy(model.Objectives{MaxPrivacy: -1, MinUtility: 2}); err == nil {
		t.Error("infeasible objectives must fail Deploy")
	}
}

func TestNewDeploymentFillsDefaultsAndValidates(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	d, err := NewDeployment(m, lppm.Params{"epsilon": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Params["epsilon"]; got != 0.05 {
		t.Errorf("epsilon = %v, want 0.05", got)
	}
	if _, err := NewDeployment(m, lppm.Params{"epsilon": -3}); err == nil {
		t.Error("out-of-range value must fail")
	}
	if _, err := NewDeployment(nil, nil); err == nil {
		t.Error("nil mechanism must fail")
	}
	d, err = NewDeployment(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Params["epsilon"], lppm.Defaults(m)["epsilon"]; got != want {
		t.Errorf("default epsilon = %v, want %v", got, want)
	}
}

func TestDeploymentProtectMatchesProtectDataset(t *testing.T) {
	m := lppm.NewGeoIndistinguishability()
	d, err := NewDeployment(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallFleet(t)
	got, err := d.Protect(ds, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lppm.ProtectDataset(ds, m, d.Params, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Users() {
		gr, wr := got.Trace(u).Records, want.Trace(u).Records
		if len(gr) != len(wr) {
			t.Fatalf("user %s: %d records, want %d", u, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("user %s record %d differs", u, i)
			}
		}
	}
}
