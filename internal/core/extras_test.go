package core

import (
	"context"
	"testing"

	"repro/internal/lppm"
	"repro/internal/model"
)

// analyzeSmall runs the full analysis once and caches nothing — tests each
// exercise different outputs of the same Analyze call.
func analyzeSmall(t *testing.T) *Analysis {
	t.Helper()
	a, err := Analyze(context.Background(), testDefinition(), smallFleet(t))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFullCurveModelsFitTheSweep(t *testing.T) {
	a := analyzeSmall(t)
	pm, um, err := a.FullCurveModels()
	if err != nil {
		t.Fatal(err)
	}
	if pm.Fit.K <= 0 {
		t.Errorf("privacy sigmoid steepness = %v, want > 0 (leakage rises with ε)", pm.Fit.K)
	}
	if um.Fit.K <= 0 {
		t.Errorf("utility sigmoid steepness = %v, want > 0", um.Fit.K)
	}
	// The sigmoid covers the whole sweep, so its fit should be at least
	// as good as the zone-restricted log-linear evaluated globally.
	if pm.R2() < 0.85 {
		t.Errorf("privacy sigmoid R² = %v, want ≥ 0.85", pm.R2())
	}
	// Privacy transitions faster than utility (Figure 1's core claim) —
	// in sigmoid terms, a larger steepness.
	if pm.Fit.K <= um.Fit.K {
		t.Errorf("privacy steepness %v should exceed utility steepness %v", pm.Fit.K, um.Fit.K)
	}
}

func TestConfigureFullCurveAgreesWithLogLinear(t *testing.T) {
	a := analyzeSmall(t)
	obj := model.Objectives{MaxPrivacy: 0.10, MinUtility: 0.80}
	linear, err := a.Configure(obj)
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.ConfigureFullCurve(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !linear.Feasible || !full.Feasible {
		t.Fatalf("both configurations should be feasible: linear=%+v full=%+v", linear, full)
	}
	// The two model families must agree on the order of magnitude — the
	// decision-relevant quantity.
	ratio := full.Value / linear.Value
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("model families disagree: log-linear ε=%v vs sigmoid ε=%v", linear.Value, full.Value)
	}
}

func TestParetoFrontFromSweep(t *testing.T) {
	a := analyzeSmall(t)
	front, err := a.Pareto()
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("front has %d points, want ≥ 3 on a 17-point sweep", len(front))
	}
	// Along a privacy-sorted front, utility must be non-decreasing —
	// otherwise a point would be dominated.
	for i := 1; i < len(front); i++ {
		if front[i].Utility < front[i-1].Utility {
			t.Errorf("front utility decreases at %d: %+v", i, front[i])
		}
	}
	if _, ok := model.KneePoint(front); !ok {
		t.Error("non-empty front must have a knee")
	}
}

func TestConfigureWithConfidence(t *testing.T) {
	a := analyzeSmall(t)
	// Relaxed objectives give a wide feasible window, so the bootstrap
	// exercises the estimator rather than the window's knife edge (the
	// paper's exact objectives sit in a narrow window on this fixture —
	// that is an EXPERIMENTS.md finding, not a test target).
	obj := model.Objectives{MaxPrivacy: 0.5, MinUtility: 0.6}
	ci, err := a.ConfigureWithConfidence(obj, 150, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Value.Lo > ci.Value.Hi {
		t.Errorf("malformed CI: %+v", ci.Value)
	}
	if ci.Value.Point < ci.Value.Lo/3 || ci.Value.Point > ci.Value.Hi*3 {
		t.Errorf("point estimate %v far outside CI [%v, %v]", ci.Value.Point, ci.Value.Lo, ci.Value.Hi)
	}
	if ci.FeasibleFraction < 0.5 {
		t.Errorf("feasible fraction = %v, want ≥ 0.5 with relaxed objectives", ci.FeasibleFraction)
	}
	// The interval must stay within the sweep's decade neighbourhood —
	// a sanity bound, not a tight one.
	if ci.Value.Lo < 1e-4 || ci.Value.Hi > 1 {
		t.Errorf("CI [%v, %v] escapes the swept range", ci.Value.Lo, ci.Value.Hi)
	}
}

func TestAnalyzeMultiParameterMechanism(t *testing.T) {
	// A mechanism with more than one parameter must sweep the named one
	// while holding the others at their defaults (framework step 1
	// models one p_i at a time).
	def := testDefinition()
	def.Mechanism = lppm.NewElasticGeoInd()
	def.Param = lppm.EpsilonParam
	def.GridPoints = 9
	a, err := Analyze(context.Background(), def, smallFleet(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.PrivacyModel.B <= 0 {
		t.Errorf("elastic privacy slope = %v, want > 0", a.PrivacyModel.B)
	}
	// Omitting Param on a multi-parameter mechanism must fail loudly.
	bad := testDefinition()
	bad.Mechanism = lppm.NewElasticGeoInd()
	bad.Param = ""
	if _, err := Analyze(context.Background(), bad, smallFleet(t)); err == nil {
		t.Error("ambiguous parameter selection should fail")
	}
}

func TestAnalyzePipelineMechanism(t *testing.T) {
	pipe, err := lppm.NewPipeline("sampled-geoi", lppm.NewTemporalSampling(), lppm.NewGeoIndistinguishability())
	if err != nil {
		t.Fatal(err)
	}
	def := testDefinition()
	def.Mechanism = pipe
	def.Param = "geoi.epsilon"
	def.GridPoints = 9
	a, err := Analyze(context.Background(), def, smallFleet(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.UtilityModel.B <= 0 {
		t.Errorf("pipeline utility slope = %v, want > 0", a.UtilityModel.B)
	}
}
