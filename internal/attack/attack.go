// Package attack implements inference attacks against protected mobility
// data. The paper's privacy metric asks how many POIs survive protection;
// these attacks ask the sharper operational questions behind it — can an
// adversary with background knowledge re-identify whose trace a protected
// release is, and can it find a user's most important place (home/depot)?
// They extend the framework's metric catalogue (paper §3: "by using
// different metrics ... adapt the provided model to specific privacy
// guarantees").
package attack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/poi"
	"repro/internal/trace"
)

// ReidentConfig tunes the POI-fingerprint re-identification attack.
type ReidentConfig struct {
	// Extractor configures POI extraction on both the background
	// knowledge and the protected traces.
	Extractor poi.ExtractorConfig
	// MatchRadiusMeters is the distance within which two POIs are
	// considered the same place.
	MatchRadiusMeters float64
}

// DefaultReidentConfig returns the configuration used in experiments.
func DefaultReidentConfig() ReidentConfig {
	return ReidentConfig{
		Extractor:         poi.DefaultExtractorConfig(),
		MatchRadiusMeters: 200,
	}
}

// Validate reports configuration errors.
func (c ReidentConfig) Validate() error {
	if c.MatchRadiusMeters <= 0 {
		return fmt.Errorf("attack: MatchRadiusMeters must be positive, got %v", c.MatchRadiusMeters)
	}
	return c.Extractor.Validate()
}

// ReidentResult is the outcome of a re-identification attack over a whole
// dataset release.
type ReidentResult struct {
	// SuccessRate is the fraction of protected traces linked to the
	// correct user.
	SuccessRate float64
	// Linked maps each protected user to the background-knowledge user
	// the attack linked it to ("" when the trace exposed no POIs).
	Linked map[string]string
	// Candidates is the number of background-knowledge users.
	Candidates int
}

// Reidentify mounts a POI-fingerprint linkage attack: the adversary knows
// every user's actual POI set (background knowledge, e.g. from a previous
// unprotected release) and receives the protected traces pseudonymized. For
// each protected trace it extracts POIs and links the trace to the
// background user with the highest fingerprint similarity (fraction of
// matched POIs, ties broken by mean matched distance). The success rate is
// the canonical privacy measure of LPPM evaluation suites.
func Reidentify(actual, protected *trace.Dataset, cfg ReidentConfig) (*ReidentResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if actual == nil || protected == nil || actual.NumUsers() == 0 {
		return nil, fmt.Errorf("attack: empty datasets")
	}
	extractor, err := poi.NewExtractor(cfg.Extractor)
	if err != nil {
		return nil, err
	}

	// Background knowledge: actual POI fingerprints.
	users := actual.Users()
	background := make(map[string][]poi.POI, len(users))
	for _, u := range users {
		background[u] = extractor.POIs(actual.Trace(u))
	}

	res := &ReidentResult{Linked: make(map[string]string), Candidates: len(users)}
	correct := 0
	evaluated := 0
	for _, u := range protected.Users() {
		if actual.Trace(u) == nil {
			return nil, fmt.Errorf("attack: protected user %q absent from background", u)
		}
		observed := extractor.POIs(protected.Trace(u))
		linked := linkFingerprint(observed, background, users, cfg.MatchRadiusMeters)
		res.Linked[u] = linked
		evaluated++
		if linked == u {
			correct++
		}
	}
	if evaluated > 0 {
		res.SuccessRate = float64(correct) / float64(evaluated)
	}
	return res, nil
}

// linkFingerprint returns the background user best matching the observed POI
// set, or "" when nothing matches at all.
func linkFingerprint(observed []poi.POI, background map[string][]poi.POI, users []string, radius float64) string {
	bestUser := ""
	bestScore := 0.0
	bestDist := math.MaxFloat64
	for _, u := range users {
		score, dist := fingerprintSimilarity(observed, background[u], radius)
		if score > bestScore || (score == bestScore && score > 0 && dist < bestDist) { //lppm:allow floatcmp -- deterministic tie-break on bit-equal scores; a tolerance would make the attack's verdict depend on candidate order
			bestUser, bestScore, bestDist = u, score, dist
		}
	}
	return bestUser
}

// fingerprintSimilarity returns the fraction of background POIs matched by
// an observed POI within radius, and the mean distance of those matches.
func fingerprintSimilarity(observed, background []poi.POI, radius float64) (score, meanDist float64) {
	if len(background) == 0 || len(observed) == 0 {
		return 0, math.MaxFloat64
	}
	matched := 0
	var distSum float64
	for _, b := range background {
		best := math.MaxFloat64
		for _, o := range observed {
			if d := geo.Equirectangular(b.Center, o.Center); d < best {
				best = d
			}
		}
		if best <= radius {
			matched++
			distSum += best
		}
	}
	if matched == 0 {
		return 0, math.MaxFloat64
	}
	return float64(matched) / float64(len(background)), distSum / float64(matched)
}

// TopPOIConfig tunes the home/depot inference attack.
type TopPOIConfig struct {
	// Extractor configures POI extraction.
	Extractor poi.ExtractorConfig
	// HitRadiusMeters is how close the inferred top place must be to the
	// actual one to count as a successful inference.
	HitRadiusMeters float64
}

// DefaultTopPOIConfig returns the configuration used in experiments.
func DefaultTopPOIConfig() TopPOIConfig {
	return TopPOIConfig{
		Extractor:       poi.DefaultExtractorConfig(),
		HitRadiusMeters: 200,
	}
}

// InferTopPOI mounts the "find the user's most important place" attack on
// one user: it extracts POIs from the protected trace, picks the one with
// the largest total dwell, and succeeds when it lies within HitRadiusMeters
// of the actual top POI. The second return value is false when either trace
// exposes no POI (attack impossible — maximal privacy).
func InferTopPOI(actual, protected *trace.Trace, cfg TopPOIConfig) (hit, possible bool, err error) {
	if cfg.HitRadiusMeters <= 0 {
		return false, false, fmt.Errorf("attack: HitRadiusMeters must be positive, got %v", cfg.HitRadiusMeters)
	}
	extractor, err := poi.NewExtractor(cfg.Extractor)
	if err != nil {
		return false, false, err
	}
	actualTop, ok := topPOI(extractor.POIs(actual))
	if !ok {
		return false, false, nil
	}
	observedTop, ok := topPOI(extractor.POIs(protected))
	if !ok {
		return false, true, nil
	}
	d := geo.Equirectangular(actualTop.Center, observedTop.Center)
	return d <= cfg.HitRadiusMeters, true, nil
}

// topPOI returns the POI with the largest total dwell.
func topPOI(pois []poi.POI) (poi.POI, bool) {
	if len(pois) == 0 {
		return poi.POI{}, false
	}
	sort.Slice(pois, func(i, j int) bool {
		if pois[i].TotalDwell != pois[j].TotalDwell {
			return pois[i].TotalDwell > pois[j].TotalDwell
		}
		// Deterministic tie-break by location.
		if pois[i].Center.Lat != pois[j].Center.Lat { //lppm:allow floatcmp -- sort comparator: strict-weak ordering needs exact equality; a tolerance here is not transitive
			return pois[i].Center.Lat < pois[j].Center.Lat
		}
		return pois[i].Center.Lng < pois[j].Center.Lng
	})
	return pois[0], true
}
