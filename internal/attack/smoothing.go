package attack

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Smooth mounts the trajectory-denoising attack: a centered moving average
// of the published coordinates over the given window (in records). GEO-I
// draws noise independently per point while the underlying movement is
// strongly autocorrelated, so averaging cancels noise faster than it blurs
// the path — the classic caveat that per-point ε guarantees erode over
// trajectories. The window must be odd and ≥ 1; window 1 returns a clone.
func Smooth(t *trace.Trace, window int) (*trace.Trace, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("attack: smoothing window must be odd and ≥ 1, got %d", window)
	}
	out := t.Clone()
	if window == 1 || t.Len() < 2 {
		return out, nil
	}
	pts := t.Points()
	origin := pts[0]
	proj := geo.NewProjection(origin)
	east := make([]float64, len(pts))
	north := make([]float64, len(pts))
	for i, p := range pts {
		east[i], north[i] = proj.ToPlane(p)
	}
	half := window / 2
	for i := range pts {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(pts)-1 {
			hi = len(pts) - 1
		}
		var se, sn float64
		for j := lo; j <= hi; j++ {
			se += east[j]
			sn += north[j]
		}
		n := float64(hi - lo + 1)
		out.Records[i].Point = proj.FromPlane(se/n, sn/n)
	}
	return out, nil
}

// SmoothingGain quantifies the denoising attack's success: the relative
// reduction of the mean true-position error achieved by smoothing the
// protected release with the given window. 0 means smoothing did not help
// (or hurt); approaching 1 means the noise was almost entirely removed.
// Requires the actual and protected traces to be aligned record-for-record
// (perturbation mechanisms preserve alignment).
func SmoothingGain(actual, protected *trace.Trace, window int) (float64, error) {
	if actual.Len() != protected.Len() {
		return 0, fmt.Errorf("attack: smoothing gain needs aligned traces, got %d and %d records", actual.Len(), protected.Len())
	}
	if actual.Len() == 0 {
		return 0, fmt.Errorf("attack: smoothing gain of empty traces")
	}
	smoothed, err := Smooth(protected, window)
	if err != nil {
		return 0, err
	}
	before := meanAlignedError(actual, protected)
	after := meanAlignedError(actual, smoothed)
	if before == 0 {
		return 0, nil
	}
	gain := (before - after) / before
	if gain < 0 {
		gain = 0
	}
	return gain, nil
}

// meanAlignedError returns the mean distance between records at equal
// indexes.
func meanAlignedError(a, b *trace.Trace) float64 {
	var sum float64
	for i := range a.Records {
		sum += geo.Equirectangular(a.Records[i].Point, b.Records[i].Point)
	}
	return sum / float64(a.Len())
}

// SmoothingAdvantage is a privacy metric built on the denoising attack: the
// fraction of the release's positional noise an adversary removes with a
// fixed smoothing window. Mechanisms whose noise is independent per point
// (GEO-I, Gaussian) score high at low ε; mechanisms that distort the
// trajectory structurally (Promesse, cloaking) score ~0 because there is no
// i.i.d. noise to average away. Higher = more leakage recovered.
type SmoothingAdvantage struct {
	// Window is the smoothing window in records; 0 uses 9.
	Window int
}

// Name implements metrics.Metric.
func (SmoothingAdvantage) Name() string { return "smoothing_advantage" }

// Kind implements metrics.Metric.
func (SmoothingAdvantage) Kind() metrics.Kind { return metrics.Privacy }

// Evaluate implements metrics.Metric. Misaligned releases (mechanisms that
// drop or add records) score 0 — the attack does not apply to them.
func (a SmoothingAdvantage) Evaluate(actual, protected *trace.Trace) (float64, error) {
	w := a.Window
	if w == 0 {
		w = 9
	}
	if actual.Len() != protected.Len() || actual.Len() == 0 {
		return 0, nil
	}
	return SmoothingGain(actual, protected, w)
}

var _ metrics.Metric = SmoothingAdvantage{}
