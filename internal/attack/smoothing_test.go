package attack

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

// drivingTrace builds a smooth continuous drive (no stops), the worst case
// for i.i.d. noise: strong autocorrelation to exploit.
func drivingTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			User:  "u1",
			Time:  at0.Add(time.Duration(i) * 30 * time.Second),
			Point: aBase.Offset(float64(i)*120, float64(i)*40),
		}
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSmoothWindowValidation(t *testing.T) {
	tr := drivingTrace(t, 20)
	if _, err := Smooth(tr, 0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := Smooth(tr, 4); err == nil {
		t.Error("even window should fail")
	}
	out, err := Smooth(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if out.Records[i].Point != tr.Records[i].Point {
			t.Fatal("window 1 must be the identity")
		}
	}
}

func TestSmoothingRemovesIIDNoise(t *testing.T) {
	tr := drivingTrace(t, 300)
	g := lppm.NewGeoIndistinguishability()
	prot, err := g.Protect(tr, lppm.Params{lppm.EpsilonParam: 0.005}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gain, err := SmoothingGain(tr, prot, 9)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0.4 {
		t.Errorf("smoothing gain = %v on GEO-I noise over a smooth drive, want ≥ 0.4", gain)
	}
}

func TestSmoothingGainZeroOnCleanRelease(t *testing.T) {
	tr := drivingTrace(t, 100)
	gain, err := SmoothingGain(tr, tr.Clone(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if gain != 0 {
		t.Errorf("gain on an exact release = %v, want 0", gain)
	}
}

func TestSmoothingGainErrors(t *testing.T) {
	tr := drivingTrace(t, 50)
	shorter := tr.TimeWindow(at0, at0.Add(10*time.Minute))
	if _, err := SmoothingGain(tr, shorter, 9); err == nil {
		t.Error("misaligned traces should fail")
	}
	empty := &trace.Trace{User: "u1"}
	if _, err := SmoothingGain(empty, empty, 9); err == nil {
		t.Error("empty traces should fail")
	}
}

func TestSmoothingAdvantageMetric(t *testing.T) {
	m := SmoothingAdvantage{}
	if m.Kind() != metrics.Privacy {
		t.Error("smoothing advantage must be a privacy metric")
	}
	tr := drivingTrace(t, 200)

	// GEO-I: i.i.d. noise → substantial advantage.
	g := lppm.NewGeoIndistinguishability()
	prot, err := g.Protect(tr, lppm.Params{lppm.EpsilonParam: 0.01}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	vNoise, err := m.Evaluate(tr, prot)
	if err != nil {
		t.Fatal(err)
	}
	if vNoise <= 0.2 {
		t.Errorf("GEO-I smoothing advantage = %v, want > 0.2", vNoise)
	}

	// Promesse: no i.i.d. noise and different record counts → metric
	// reports 0 instead of erroring, so sweeps across mechanisms work.
	p := lppm.NewPromesse()
	pprot, err := p.Protect(tr, lppm.Params{lppm.AlphaParam: 500}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	vPromesse, err := m.Evaluate(tr, pprot)
	if err != nil {
		t.Fatal(err)
	}
	if vPromesse != 0 {
		t.Errorf("Promesse smoothing advantage = %v, want 0 (misaligned release)", vPromesse)
	}
}

func TestSmoothPreservesMetadata(t *testing.T) {
	tr := drivingTrace(t, 30)
	out, err := Smooth(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.User != tr.User || out.Len() != tr.Len() {
		t.Fatal("smoothing must preserve user and record count")
	}
	for i := range out.Records {
		if !out.Records[i].Time.Equal(tr.Records[i].Time) {
			t.Fatal("smoothing must preserve timestamps")
		}
	}
	// Interior points of a straight line are fixed points of averaging.
	mid := tr.Len() / 2
	if d := geo.Haversine(out.Records[mid].Point, tr.Records[mid].Point); d > 1.5 {
		t.Errorf("straight-line midpoint moved %.2f m under smoothing, want ≈ 0", d)
	}
}
