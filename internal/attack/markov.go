package attack

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// MarkovConfig tunes the mobility-Markov-chain attack.
type MarkovConfig struct {
	// CellSizeMeters discretizes space into Markov states.
	CellSizeMeters float64
	// SmoothingAlpha is the additive (Laplace) smoothing mass given to
	// unseen transitions; 0 uses 0.1.
	SmoothingAlpha float64
}

// DefaultMarkovConfig returns the experiment configuration: 500 m states.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{CellSizeMeters: 500, SmoothingAlpha: 0.1}
}

// Validate reports configuration errors.
func (c MarkovConfig) Validate() error {
	if c.CellSizeMeters <= 0 {
		return fmt.Errorf("attack: CellSizeMeters must be positive, got %v", c.CellSizeMeters)
	}
	if c.SmoothingAlpha < 0 {
		return fmt.Errorf("attack: SmoothingAlpha must be non-negative, got %v", c.SmoothingAlpha)
	}
	return nil
}

// MobilityMarkov is a first-order mobility Markov chain over grid cells —
// the classical mobility profile of Gambs et al. used for de-anonymization
// and next-place prediction. The adversary fits it on background knowledge
// (the actual trace) and measures how well a protected release still
// matches the profile.
type MobilityMarkov struct {
	cfg    MarkovConfig
	grid   *geo.Grid
	counts map[geo.Cell]map[geo.Cell]float64
	totals map[geo.Cell]float64
	states int
}

// FitMarkov fits the mobility profile of the given trace. The trace needs
// at least two records (one transition).
func FitMarkov(t *trace.Trace, cfg MarkovConfig) (*MobilityMarkov, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SmoothingAlpha == 0 {
		cfg.SmoothingAlpha = 0.1
	}
	if t.Len() < 2 {
		return nil, fmt.Errorf("attack: Markov fit needs ≥ 2 records, got %d", t.Len())
	}
	first := t.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, cfg.CellSizeMeters)
	m := &MobilityMarkov{
		cfg:    cfg,
		grid:   grid,
		counts: make(map[geo.Cell]map[geo.Cell]float64),
		totals: make(map[geo.Cell]float64),
	}
	states := make(map[geo.Cell]struct{})
	prev := grid.CellOf(t.Records[0].Point)
	states[prev] = struct{}{}
	for _, rec := range t.Records[1:] {
		cur := grid.CellOf(rec.Point)
		states[cur] = struct{}{}
		row := m.counts[prev]
		if row == nil {
			row = make(map[geo.Cell]float64)
			m.counts[prev] = row
		}
		row[cur]++
		m.totals[prev]++
		prev = cur
	}
	m.states = len(states)
	return m, nil
}

// States returns the number of distinct cells in the fitted profile.
func (m *MobilityMarkov) States() int { return m.states }

// TransitionProb returns the smoothed probability of moving from cell a to
// cell b in one step.
func (m *MobilityMarkov) TransitionProb(a, b geo.Cell) float64 {
	alpha := m.cfg.SmoothingAlpha
	v := float64(m.states + 1) // +1 for the unseen-state bucket
	total := m.totals[a]
	var count float64
	if row := m.counts[a]; row != nil {
		count = row[b]
	}
	return (count + alpha) / (total + alpha*v)
}

// PredictNext returns the most likely successor of cell a, and false when a
// was never left in the training data.
func (m *MobilityMarkov) PredictNext(a geo.Cell) (geo.Cell, bool) {
	row := m.counts[a]
	if len(row) == 0 {
		return geo.Cell{}, false
	}
	var best geo.Cell
	bestCount := -1.0
	for c, n := range row {
		if n > bestCount || (n == bestCount && less(c, best)) { //lppm:allow floatcmp -- deterministic tie-break on bit-equal transition counts; argmax over a map must not depend on iteration order
			best, bestCount = c, n
		}
	}
	return best, true
}

// less orders cells deterministically so PredictNext ties break stably.
func less(a, b geo.Cell) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.Row < b.Row
}

// Fitness returns the per-transition geometric-mean probability of the
// observed trace under the fitted profile — a value in (0, 1], 1 meaning
// every step is the profile's certain continuation. Traces with fewer than
// two records score 0: they expose no transition to test.
func (m *MobilityMarkov) Fitness(observed *trace.Trace) float64 {
	if observed.Len() < 2 {
		return 0
	}
	var logSum float64
	n := 0
	prev := m.grid.CellOf(observed.Records[0].Point)
	for _, rec := range observed.Records[1:] {
		cur := m.grid.CellOf(rec.Point)
		logSum += math.Log(m.TransitionProb(prev, cur))
		prev = cur
		n++
	}
	return math.Exp(logSum / float64(n))
}

// MarkovPredictability is a privacy metric built on the attack: how closely
// a protected release still follows the user's actual mobility profile.
// Identity releases score near the profile's self-fitness; strong noise
// decorrelates transitions and drives the score toward the smoothing floor.
// Higher = more leakage, matching the repository's privacy convention.
type MarkovPredictability struct {
	// Config tunes the underlying attack; the zero value uses defaults.
	Config MarkovConfig
}

// Name implements metrics.Metric.
func (MarkovPredictability) Name() string { return "markov_predictability" }

// Kind implements metrics.Metric.
func (MarkovPredictability) Kind() metrics.Kind { return metrics.Privacy }

// Evaluate implements metrics.Metric.
func (a MarkovPredictability) Evaluate(actual, protected *trace.Trace) (float64, error) {
	cfg := a.Config
	if cfg.CellSizeMeters == 0 {
		cfg = DefaultMarkovConfig()
	}
	if actual.Len() < 2 {
		return 0, fmt.Errorf("attack: markov predictability needs ≥ 2 actual records, got %d", actual.Len())
	}
	model, err := FitMarkov(actual, cfg)
	if err != nil {
		return 0, err
	}
	// Normalize by the profile's own self-fitness so the metric is ~1
	// for an identity release regardless of how deterministic the user
	// is.
	self := model.Fitness(actual)
	if self == 0 {
		return 0, nil
	}
	v := model.Fitness(protected) / self
	return math.Min(v, 1), nil
}

var _ metrics.Metric = MarkovPredictability{}
