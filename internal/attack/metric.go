package attack

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TopPOIInference adapts the home/depot inference attack to the framework's
// per-user Metric interface so it can drive sweeps and models exactly like
// the paper's POI-retrieval metric: the value is 1 when the attack locates
// the user's top place from the protected trace, 0 otherwise (and 0 when the
// user has no POIs — nothing to find).
type TopPOIInference struct {
	// Config tunes the attack; the zero value uses DefaultTopPOIConfig.
	Config TopPOIConfig
}

// Name implements metrics.Metric.
func (TopPOIInference) Name() string { return "top_poi_inference" }

// Kind implements metrics.Metric.
func (TopPOIInference) Kind() metrics.Kind { return metrics.Privacy }

// Evaluate implements metrics.Metric.
func (m TopPOIInference) Evaluate(actual, protected *trace.Trace) (float64, error) {
	cfg := m.Config
	if cfg.HitRadiusMeters == 0 && cfg.Extractor.MaxDiameterMeters == 0 {
		cfg = DefaultTopPOIConfig()
	}
	hit, possible, err := InferTopPOI(actual, protected, cfg)
	if err != nil {
		return 0, fmt.Errorf("attack: top-POI metric: %w", err)
	}
	if !possible || !hit {
		return 0, nil
	}
	return 1, nil
}
