package attack

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	at0    = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	aBase  = geo.Point{Lat: 37.7749, Lng: -122.4194}
	aWork  = aBase.Offset(3000, 0)
	aLunch = aBase.Offset(3000, 2000)
)

// commuteTrace builds a repetitive home→work→lunch→work→home day pattern,
// the kind of regular mobility a Markov profile captures well.
func commuteTrace(t *testing.T, days int) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	at := at0
	emit := func(p geo.Point, n int) {
		for i := 0; i < n; i++ {
			recs = append(recs, trace.Record{User: "u1", Time: at, Point: p})
			at = at.Add(5 * time.Minute)
		}
	}
	for d := 0; d < days; d++ {
		emit(aBase, 6)
		emit(aWork, 12)
		emit(aLunch, 3)
		emit(aWork, 10)
		emit(aBase, 8)
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFitMarkovBasics(t *testing.T) {
	tr := commuteTrace(t, 5)
	m, err := FitMarkov(tr, DefaultMarkovConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.States() < 3 {
		t.Errorf("States = %d, want ≥ 3 (home, work, lunch)", m.States())
	}
	// Transition probabilities out of any visited cell sum to < 1 +
	// smoothing slack and the self-loop at home is dominant.
	home := m.grid.CellOf(aBase)
	next, ok := m.PredictNext(home)
	if !ok {
		t.Fatal("home cell should have successors")
	}
	if p := m.TransitionProb(home, next); p < 0.5 {
		t.Errorf("dominant transition from home has p = %v, want ≥ 0.5 on repetitive data", p)
	}
}

func TestFitMarkovErrors(t *testing.T) {
	short := &trace.Trace{User: "u1", Records: []trace.Record{{User: "u1", Time: at0, Point: aBase}}}
	if _, err := FitMarkov(short, DefaultMarkovConfig()); err == nil {
		t.Error("single-record trace should fail")
	}
	tr := commuteTrace(t, 1)
	if _, err := FitMarkov(tr, MarkovConfig{CellSizeMeters: -5}); err == nil {
		t.Error("negative cell size should fail")
	}
	if _, err := FitMarkov(tr, MarkovConfig{CellSizeMeters: 500, SmoothingAlpha: -1}); err == nil {
		t.Error("negative smoothing should fail")
	}
}

func TestMarkovSelfFitnessHigh(t *testing.T) {
	tr := commuteTrace(t, 5)
	m, err := FitMarkov(tr, DefaultMarkovConfig())
	if err != nil {
		t.Fatal(err)
	}
	self := m.Fitness(tr)
	if self < 0.7 {
		t.Errorf("self-fitness = %v, want ≥ 0.7 on repetitive mobility", self)
	}
	if self > 1 {
		t.Errorf("fitness must not exceed 1, got %v", self)
	}
}

func TestMarkovFitnessDropsWithNoise(t *testing.T) {
	tr := commuteTrace(t, 5)
	m, err := FitMarkov(tr, DefaultMarkovConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	noisy := tr.Clone()
	for i := range noisy.Records {
		noisy.Records[i].Point = noisy.Records[i].Point.Offset(3000*r.NormFloat64(), 3000*r.NormFloat64())
	}
	if self, noised := m.Fitness(tr), m.Fitness(noisy); noised >= self/2 {
		t.Errorf("noise should at least halve fitness: self=%v noised=%v", self, noised)
	}
}

func TestMarkovPredictabilityMetric(t *testing.T) {
	metric := MarkovPredictability{}
	if metric.Kind() != metrics.Privacy {
		t.Error("markov predictability must be a privacy metric")
	}
	tr := commuteTrace(t, 4)
	identity, err := metric.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(identity-1) > 1e-9 {
		t.Errorf("identity release predictability = %v, want 1", identity)
	}
	r := rng.New(7)
	noisy := tr.Clone()
	for i := range noisy.Records {
		noisy.Records[i].Point = noisy.Records[i].Point.Offset(5000*r.NormFloat64(), 5000*r.NormFloat64())
	}
	noised, err := metric.Evaluate(tr, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if noised >= identity {
		t.Errorf("noised release must leak less: identity=%v noised=%v", identity, noised)
	}
	if _, err := metric.Evaluate(&trace.Trace{User: "u1"}, tr); err == nil {
		t.Error("empty actual should error")
	}
}

func TestMarkovPredictNextDeterministicTieBreak(t *testing.T) {
	// Two successors with equal counts: prediction must be stable.
	var recs []trace.Record
	at := at0
	pts := []geo.Point{aBase, aWork, aBase, aLunch, aBase, aWork, aBase, aLunch}
	for _, p := range pts {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: p})
		at = at.Add(5 * time.Minute)
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := FitMarkov(tr, DefaultMarkovConfig())
	if err != nil {
		t.Fatal(err)
	}
	home := m1.grid.CellOf(aBase)
	a, ok := m1.PredictNext(home)
	if !ok {
		t.Fatal("expected successors")
	}
	for i := 0; i < 5; i++ {
		m2, err := FitMarkov(tr, DefaultMarkovConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, _ := m2.PredictNext(home)
		if a != b {
			t.Fatal("tie-break must be deterministic")
		}
	}
}
