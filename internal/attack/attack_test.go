package attack

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	anchor = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// userTrace builds a trace with a long stop at `home` (the top POI), a
// shorter stop at `second`, and travel in between.
func userTrace(t *testing.T, user string, home, second geo.Point) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	add := func(p geo.Point, minutes int) {
		for i := 0; i < minutes; i++ {
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(len(recs)) * time.Minute),
				Point: p.Offset(float64(i%4)*3, float64(i%3)*3),
			})
		}
	}
	travel := func(a, b geo.Point, steps int) {
		pr := geo.NewProjection(a)
		e, n := pr.ToPlane(b)
		for i := 0; i < steps; i++ {
			f := float64(i+1) / float64(steps+1)
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(len(recs)) * time.Minute),
				Point: pr.FromPlane(e*f, n*f),
			})
		}
	}
	add(home, 45) // top POI by dwell
	travel(home, second, 20)
	add(second, 20)
	travel(second, home, 20)
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// twoUserWorld builds two users with well-separated places.
func twoUserWorld(t *testing.T) *trace.Dataset {
	t.Helper()
	d := trace.NewDataset()
	d.Add(userTrace(t, "alice", anchor, anchor.Offset(2500, 0)))
	d.Add(userTrace(t, "bob", anchor.Offset(0, 6000), anchor.Offset(3000, 6000)))
	return d
}

func TestReidentifyUnprotectedIsPerfect(t *testing.T) {
	d := twoUserWorld(t)
	res, err := Reidentify(d, d.Clone(), DefaultReidentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1 {
		t.Errorf("unprotected re-identification = %v, want 1 (linked: %v)", res.SuccessRate, res.Linked)
	}
	if res.Candidates != 2 {
		t.Errorf("candidates = %d", res.Candidates)
	}
}

func TestReidentifyHeavyNoiseDefeatsAttack(t *testing.T) {
	d := twoUserWorld(t)
	g := lppm.NewGeoIndistinguishability()
	protected, err := lppm.ProtectDataset(d, g, lppm.Params{lppm.EpsilonParam: 0.001}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reidentify(d, protected, DefaultReidentConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With 2 km mean noise no POI survives, so no link is made.
	for u, linked := range res.Linked {
		if linked != "" {
			t.Errorf("user %s linked to %q under heavy noise", u, linked)
		}
	}
	if res.SuccessRate != 0 {
		t.Errorf("heavy-noise success rate = %v", res.SuccessRate)
	}
}

func TestReidentifyMonotoneInEpsilon(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.NumDrivers = 10
	cfg.Duration = 8 * time.Hour
	fleet, err := synth.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := fleet.Dataset
	g := lppm.NewGeoIndistinguishability()
	prev := -1.0
	for _, eps := range []float64{0.003, 0.03, 0.3} {
		protected, err := lppm.ProtectDataset(d, g, lppm.Params{lppm.EpsilonParam: eps}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Reidentify(d, protected, DefaultReidentConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.SuccessRate < prev-0.15 {
			t.Fatalf("re-identification not (weakly) increasing in eps: %v after %v", res.SuccessRate, prev)
		}
		prev = res.SuccessRate
	}
	if prev < 0.8 {
		t.Errorf("near-raw release should re-identify most users, got %v", prev)
	}
}

func TestReidentifyErrors(t *testing.T) {
	d := twoUserWorld(t)
	bad := DefaultReidentConfig()
	bad.MatchRadiusMeters = 0
	if _, err := Reidentify(d, d, bad); err == nil {
		t.Error("bad config should error")
	}
	if _, err := Reidentify(trace.NewDataset(), d, DefaultReidentConfig()); err == nil {
		t.Error("empty background should error")
	}
	// Protected user unknown to the background.
	stranger := trace.NewDataset()
	stranger.Add(userTrace(t, "mallory", anchor.Offset(0, 9000), anchor.Offset(1000, 9000)))
	if _, err := Reidentify(d, stranger, DefaultReidentConfig()); err == nil {
		t.Error("unknown protected user should error")
	}
}

func TestInferTopPOI(t *testing.T) {
	tr := userTrace(t, "alice", anchor, anchor.Offset(2500, 0))
	hit, possible, err := InferTopPOI(tr, tr.Clone(), DefaultTopPOIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !possible || !hit {
		t.Errorf("unprotected top-POI inference should succeed: hit=%v possible=%v", hit, possible)
	}

	// Shift the protected trace far away: attack possible but must miss.
	shifted := tr.Clone()
	for i := range shifted.Records {
		shifted.Records[i].Point = shifted.Records[i].Point.Offset(5000, 5000)
	}
	hit, possible, err = InferTopPOI(tr, shifted, DefaultTopPOIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !possible || hit {
		t.Errorf("far-shifted inference: hit=%v possible=%v, want miss", hit, possible)
	}

	// No POIs in the actual trace: attack impossible.
	var moving []trace.Record
	for i := 0; i < 30; i++ {
		moving = append(moving, trace.Record{
			User: "m", Time: t0.Add(time.Duration(i) * time.Minute),
			Point: anchor.Offset(float64(i)*400, 0),
		})
	}
	mt, err := trace.NewTrace("m", moving)
	if err != nil {
		t.Fatal(err)
	}
	_, possible, err = InferTopPOI(mt, mt.Clone(), DefaultTopPOIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if possible {
		t.Error("no-POI trace should make the attack impossible")
	}

	// Bad config.
	bad := DefaultTopPOIConfig()
	bad.HitRadiusMeters = -1
	if _, _, err := InferTopPOI(tr, tr, bad); err == nil {
		t.Error("bad config should error")
	}
}

func TestTopPOIInferenceMetric(t *testing.T) {
	var m TopPOIInference
	if m.Name() != "top_poi_inference" || m.Kind() != metrics.Privacy {
		t.Errorf("metric identity wrong: %s %v", m.Name(), m.Kind())
	}
	tr := userTrace(t, "alice", anchor, anchor.Offset(2500, 0))
	v, err := m.Evaluate(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("unprotected inference metric = %v, want 1", v)
	}
	g := lppm.NewGeoIndistinguishability()
	protected, err := g.Protect(tr, lppm.Params{lppm.EpsilonParam: 0.0005}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	v, err = m.Evaluate(tr, protected)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("heavy-noise inference metric = %v, want 0", v)
	}
}

func TestTopPOIInferenceMetricInRegistry(t *testing.T) {
	// The attack metric must be registrable alongside the paper metrics,
	// demonstrating the framework's metric modularity.
	r := metrics.NewRegistry()
	if err := r.Register(TopPOIInference{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("top_poi_inference"); err != nil {
		t.Error(err)
	}
}
