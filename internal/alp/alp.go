// Package alp reimplements the greedy configurator of ALP (Adaptive
// Location Privacy, Primault et al., SRDS'16) — the only prior system the
// paper identifies for automated LPPM configuration, and the baseline our
// model-inversion framework is compared against (experiment X2 in
// DESIGN.md).
//
// ALP does not model the mechanism: it repeatedly protects the data at a
// candidate parameter value, measures the privacy and utility metrics, and
// greedily nudges the parameter up or down (multiplicative steps, shrinking
// on direction reversals) until the objectives are met or the evaluation
// budget is exhausted. Each probe costs a full protect-and-evaluate pass,
// which is exactly the cost our one-shot inversion amortizes into the
// offline modeling phase.
package alp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// Config parameterizes the greedy search.
type Config struct {
	// Mechanism is the LPPM to configure.
	Mechanism lppm.Mechanism
	// Param is the configuration parameter being searched.
	Param string
	// Fixed holds the mechanism's other parameters.
	Fixed lppm.Params
	// PrivacyMetric and UtilityMetric score candidates (same conventions
	// as package metrics: privacy lower-is-better, utility
	// higher-is-better).
	PrivacyMetric, UtilityMetric metrics.Metric
	// MaxPrivacy and MinUtility are the objectives.
	MaxPrivacy, MinUtility float64
	// MaxEvaluations bounds the number of protect-and-evaluate probes.
	MaxEvaluations int
	// InitialStepFactor is the multiplicative step (> 1), e.g. 4.
	InitialStepFactor float64
	// InitialValue is the search's starting parameter value; 0 uses the
	// parameter's declared default.
	InitialValue float64
	// Seed drives the stochastic mechanisms during probing.
	Seed int64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Mechanism == nil:
		return fmt.Errorf("alp: nil mechanism")
	case c.PrivacyMetric == nil || c.UtilityMetric == nil:
		return fmt.Errorf("alp: both metrics are required")
	case c.MaxEvaluations < 1:
		return fmt.Errorf("alp: MaxEvaluations must be >= 1, got %d", c.MaxEvaluations)
	case c.InitialStepFactor <= 1:
		return fmt.Errorf("alp: InitialStepFactor must be > 1, got %v", c.InitialStepFactor)
	}
	for _, spec := range c.Mechanism.Params() {
		if spec.Name == c.Param {
			return nil
		}
	}
	return fmt.Errorf("alp: mechanism %q has no parameter %q", c.Mechanism.Name(), c.Param)
}

// Probe is one evaluated candidate.
type Probe struct {
	Value            float64
	Privacy, Utility float64
	Score            float64
}

// Result is the outcome of a greedy search.
type Result struct {
	// Best is the lowest-score probe seen (score 0 means both objectives
	// met).
	Best Probe
	// Satisfied reports whether Best meets both objectives.
	Satisfied bool
	// Evaluations is the number of protect-and-evaluate probes spent —
	// the cost axis of the comparison with model inversion.
	Evaluations int
	// Trajectory is every probe in order, for inspection and plotting.
	Trajectory []Probe
}

// score measures constraint violation: 0 when both objectives hold.
func score(privacy, utility, maxPrivacy, minUtility float64) float64 {
	var s float64
	if privacy > maxPrivacy {
		s += (privacy - maxPrivacy) / math.Max(maxPrivacy, 1e-9)
	}
	if utility < minUtility {
		s += (minUtility - utility) / math.Max(minUtility, 1e-9)
	}
	return s
}

// Run executes the greedy search over the dataset.
func Run(ctx context.Context, cfg *Config, actual *trace.Dataset) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if actual == nil || actual.NumUsers() == 0 {
		return nil, fmt.Errorf("alp: empty dataset")
	}
	var spec lppm.ParamSpec
	for _, s := range cfg.Mechanism.Params() {
		if s.Name == cfg.Param {
			spec = s
			break
		}
	}

	root := rng.New(cfg.Seed)
	res := &Result{}
	evaluate := func(value float64) (Probe, error) {
		params := cfg.Fixed.Clone()
		if params == nil {
			params = make(lppm.Params, 1)
		}
		params[cfg.Param] = value
		protected, err := lppm.ProtectDataset(actual, cfg.Mechanism, params, root.Split(int64(res.Evaluations)))
		if err != nil {
			return Probe{}, err
		}
		var privVals, utilVals []float64
		for _, u := range actual.Users() {
			pv, err := cfg.PrivacyMetric.Evaluate(actual.Trace(u), protected.Trace(u))
			if err != nil {
				return Probe{}, fmt.Errorf("alp: privacy metric: %w", err)
			}
			uv, err := cfg.UtilityMetric.Evaluate(actual.Trace(u), protected.Trace(u))
			if err != nil {
				return Probe{}, fmt.Errorf("alp: utility metric: %w", err)
			}
			privVals = append(privVals, pv)
			utilVals = append(utilVals, uv)
		}
		p := Probe{Value: value, Privacy: stat.Mean(privVals), Utility: stat.Mean(utilVals)}
		p.Score = score(p.Privacy, p.Utility, cfg.MaxPrivacy, cfg.MinUtility)
		res.Evaluations++
		res.Trajectory = append(res.Trajectory, p)
		return p, nil
	}

	value := spec.Default
	if cfg.InitialValue != 0 {
		if err := spec.Validate(cfg.InitialValue); err != nil {
			return nil, err
		}
		value = cfg.InitialValue
	}
	stepFactor := cfg.InitialStepFactor

	best, err := evaluate(value)
	if err != nil {
		return nil, err
	}
	res.Best = best

	// Greedy multiplicative search with adaptive step: probe value·step
	// and value/step and move to the better one. Metric plateaus are wide
	// on the log axis (Figure 1), so when neither neighbour improves the
	// step EXPANDS (squared) to jump across the plateau; after a
	// successful move it resets. The search stops when both probes are
	// pinned to the parameter bounds without improvement, or the budget
	// runs out.
	for res.Evaluations < cfg.MaxEvaluations && res.Best.Score > 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("alp: cancelled: %w", ctx.Err())
		default:
		}

		up := stat.Clamp(value*stepFactor, spec.Min, spec.Max)
		down := stat.Clamp(value/stepFactor, spec.Min, spec.Max)

		improved := false
		for _, cand := range []float64{down, up} {
			if cand == value || res.Evaluations >= cfg.MaxEvaluations { //lppm:allow floatcmp -- Clamp returns the current value bit-exactly when the step hits a bound; only that exact fixed point should skip re-evaluation
				continue
			}
			p, err := evaluate(cand)
			if err != nil {
				return nil, err
			}
			if p.Score < res.Best.Score {
				res.Best = p
				value = cand
				improved = true
				break
			}
		}
		switch {
		case improved:
			stepFactor = cfg.InitialStepFactor
		case up == spec.Max && down == spec.Min: //lppm:allow floatcmp -- Clamp returns the bound itself bit-exactly; this detects full-range bracketing, not approximate closeness
			// The whole range has been bracketed without progress.
			res.Satisfied = res.Best.Score == 0
			return res, nil
		default:
			stepFactor *= stepFactor // expand across the plateau
		}
	}
	res.Satisfied = res.Best.Score == 0
	return res, nil
}
