package alp

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 8, 0, 0, 0, time.UTC)
	anchor = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

func testDataset(t *testing.T, users int) *trace.Dataset {
	t.Helper()
	d := trace.NewDataset()
	for u := 0; u < users; u++ {
		base := anchor.Offset(float64(u)*3000, float64(u)*1000)
		var recs []trace.Record
		user := string(rune('a' + u))
		for i := 0; i < 25; i++ {
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(i) * time.Minute),
				Point: base.Offset(float64(i%4)*4, float64(i%3)*4),
			})
		}
		for i := 0; i < 25; i++ {
			recs = append(recs, trace.Record{
				User: user, Time: t0.Add(time.Duration(25+i) * time.Minute),
				Point: base.Offset(float64(i+1)*120, 60),
			})
		}
		tr, err := trace.NewTrace(user, recs)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(tr)
	}
	return d
}

func testConfig() *Config {
	return &Config{
		Mechanism:         lppm.NewGeoIndistinguishability(),
		Param:             lppm.EpsilonParam,
		PrivacyMetric:     metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		UtilityMetric:     metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		MaxPrivacy:        0.20,
		MinUtility:        0.60,
		MaxEvaluations:    40,
		InitialStepFactor: 4,
		Seed:              3,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := map[string]func(*Config){
		"nil mechanism": func(c *Config) { c.Mechanism = nil },
		"nil privacy":   func(c *Config) { c.PrivacyMetric = nil },
		"nil utility":   func(c *Config) { c.UtilityMetric = nil },
		"zero budget":   func(c *Config) { c.MaxEvaluations = 0 },
		"step <= 1":     func(c *Config) { c.InitialStepFactor = 1 },
		"bad param":     func(c *Config) { c.Param = "nope" },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			c := testConfig()
			mutate(c)
			if err := c.Validate(); err == nil {
				t.Errorf("%s should fail", name)
			}
		})
	}
}

func TestRunSatisfiesReachableObjectives(t *testing.T) {
	d := testDataset(t, 3)
	cfg := testConfig()
	res, err := Run(context.Background(), cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("ALP failed to satisfy reachable objectives: best %+v after %d evals",
			res.Best, res.Evaluations)
	}
	if res.Best.Privacy > cfg.MaxPrivacy {
		t.Errorf("best privacy %v > %v", res.Best.Privacy, cfg.MaxPrivacy)
	}
	if res.Best.Utility < cfg.MinUtility {
		t.Errorf("best utility %v < %v", res.Best.Utility, cfg.MinUtility)
	}
	if res.Evaluations < 1 || res.Evaluations > cfg.MaxEvaluations {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
	if len(res.Trajectory) != res.Evaluations {
		t.Errorf("trajectory %d entries for %d evaluations", len(res.Trajectory), res.Evaluations)
	}
}

func TestRunRespectsBudget(t *testing.T) {
	d := testDataset(t, 2)
	cfg := testConfig()
	// Unsatisfiable: no leakage at all AND perfect coverage.
	cfg.MaxPrivacy = 0.0
	cfg.MinUtility = 1.0
	cfg.MaxEvaluations = 10
	res, err := Run(context.Background(), cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("unsatisfiable objectives reported satisfied")
	}
	if res.Evaluations > 10 {
		t.Errorf("budget exceeded: %d evaluations", res.Evaluations)
	}
}

func TestRunCancelled(t *testing.T) {
	d := testDataset(t, 2)
	cfg := testConfig()
	cfg.MaxPrivacy = 0 // force a long search
	cfg.MinUtility = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg, d); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	if _, err := Run(context.Background(), testConfig(), trace.NewDataset()); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Run(context.Background(), testConfig(), nil); err == nil {
		t.Error("nil dataset should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	d := testDataset(t, 2)
	r1, err := Run(context.Background(), testConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), testConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Evaluations != r2.Evaluations || r1.Best.Value != r2.Best.Value {
		t.Errorf("non-deterministic: %+v vs %+v", r1.Best, r2.Best)
	}
}

func TestScore(t *testing.T) {
	if s := score(0.05, 0.9, 0.1, 0.8); s != 0 {
		t.Errorf("satisfied score = %v, want 0", s)
	}
	if s := score(0.2, 0.9, 0.1, 0.8); s <= 0 {
		t.Errorf("privacy violation score = %v, want > 0", s)
	}
	if s := score(0.05, 0.5, 0.1, 0.8); s <= 0 {
		t.Errorf("utility violation score = %v, want > 0", s)
	}
	both := score(0.2, 0.5, 0.1, 0.8)
	one := score(0.2, 0.9, 0.1, 0.8)
	if both <= one {
		t.Errorf("double violation %v should exceed single %v", both, one)
	}
}
