package lppm

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// mkStopAndGoTrace builds a trace that dwells at basePt for dwell minutes
// (one record per minute), then drives east at 600 m/min for driveKm
// kilometers.
func mkStopAndGoTrace(t *testing.T, user string, dwellMin, driveKm int) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	at := t0
	for i := 0; i < dwellMin; i++ {
		recs = append(recs, trace.Record{User: user, Time: at, Point: basePt})
		at = at.Add(time.Minute)
	}
	steps := driveKm * 1000 / 600
	for i := 0; i <= steps; i++ {
		recs = append(recs, trace.Record{User: user, Time: at, Point: basePt.Offset(float64(i)*600, 0)})
		at = at.Add(time.Minute)
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPromesseUniformSpacing(t *testing.T) {
	m := NewPromesse()
	tr := mkStopAndGoTrace(t, "u1", 30, 12)
	out, err := m.Protect(tr, Params{AlphaParam: 500}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 2 {
		t.Fatalf("expected a resampled trace, got %d records", out.Len())
	}
	for i := 1; i < out.Len(); i++ {
		d := geo.Haversine(out.Records[i-1].Point, out.Records[i].Point)
		if math.Abs(d-500) > 5 {
			t.Fatalf("gap %d is %.1f m, want 500±5", i, d)
		}
	}
}

func TestPromesseErasesDwell(t *testing.T) {
	m := NewPromesse()
	tr := mkStopAndGoTrace(t, "u1", 60, 10)
	out, err := m.Protect(tr, Params{AlphaParam: 500}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// The 60-minute dwell contributes zero path length, so at most one
	// published point may sit within 100 m of the stop.
	near := 0
	for _, rec := range out.Records {
		if geo.Haversine(rec.Point, basePt) < 100 {
			near++
		}
	}
	if near > 1 {
		t.Errorf("%d published points near the stay point, dwell not erased", near)
	}
}

func TestPromesseConstantPublishedSpeed(t *testing.T) {
	m := NewPromesse()
	tr := mkStopAndGoTrace(t, "u1", 45, 15)
	out, err := m.Protect(tr, Params{AlphaParam: 300}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 3 {
		t.Fatalf("too few records: %d", out.Len())
	}
	gap0 := out.Records[1].Time.Sub(out.Records[0].Time)
	for i := 2; i < out.Len(); i++ {
		gap := out.Records[i].Time.Sub(out.Records[i-1].Time)
		if gap <= 0 {
			t.Fatalf("non-increasing timestamps at %d", i)
		}
		if math.Abs(gap.Seconds()-gap0.Seconds()) > 1 {
			t.Fatalf("irregular time gap at %d: %v vs %v", i, gap, gap0)
		}
	}
}

func TestPromesseShortTracePublishesNothing(t *testing.T) {
	m := NewPromesse()
	tr := mkTrace(t, "u1", 3) // ~90 m of path
	out, err := m.Protect(tr, Params{AlphaParam: 5000}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("path shorter than alpha should publish nothing, got %d records", out.Len())
	}
	single, err := trace.NewTrace("u2", []trace.Record{{User: "u2", Time: t0, Point: basePt}})
	if err != nil {
		t.Fatal(err)
	}
	out, err = m.Protect(single, Params{AlphaParam: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("single-record trace should publish nothing, got %d", out.Len())
	}
}

func TestPromesseStaysOnPath(t *testing.T) {
	m := NewPromesse()
	tr := mkStopAndGoTrace(t, "u1", 10, 8)
	out, err := m.Protect(tr, Params{AlphaParam: 250}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every published point must be within a few meters of the original
	// straight-line path (lat is constant along it).
	for _, rec := range out.Records {
		if math.Abs(rec.Point.Lat-basePt.Lat) > 1e-3 {
			t.Fatalf("published point %v strays off the path", rec.Point)
		}
	}
}

func TestPromesseParamValidation(t *testing.T) {
	m := NewPromesse()
	tr := mkTrace(t, "u1", 5)
	if _, err := m.Protect(tr, Params{}, rng.New(1)); err == nil {
		t.Error("missing alpha should fail")
	}
	if _, err := m.Protect(tr, Params{AlphaParam: 1}, rng.New(1)); err == nil {
		t.Error("out-of-range alpha should fail")
	}
}
