package lppm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

func streamRecords(n int) []trace.Record {
	t0 := time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			User:  "u1",
			Time:  t0.Add(time.Duration(i) * time.Minute),
			Point: base.Offset(float64(i)*75, float64(i%5)*20),
		}
	}
	return recs
}

func TestUserStreamValidation(t *testing.T) {
	m := NewGeoIndistinguishability()
	if _, err := NewUserStream(m, Defaults(m), "", rng.New(1)); err == nil {
		t.Error("empty user must fail")
	}
	if _, err := NewUserStream(m, Defaults(m), "u1", nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := NewUserStream(m, Params{"epsilon": -1}, "u1", rng.New(1)); err == nil {
		t.Error("invalid params must fail")
	}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(trace.Record{User: "u2"}); err == nil {
		t.Error("wrong-user record must be rejected")
	}
	if recs, err := s.Flush(); err != nil || recs != nil {
		t.Errorf("empty flush = (%v, %v), want (nil, nil)", recs, err)
	}
}

// TestUserStreamMatchesBatch verifies the window-invariance contract: for a
// per-record-randomness mechanism (GEO-I), streaming through any window
// split is bit-identical to one batch Protect with the same source.
func TestUserStreamMatchesBatch(t *testing.T) {
	m := NewGeoIndistinguishability()
	p := Defaults(m)
	recs := streamRecords(50)
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Protect(tr, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 7, 50} {
		s, err := NewUserStream(m, p, "u1", rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var got []trace.Record
		for i, rec := range recs {
			if err := s.Push(rec); err != nil {
				t.Fatal(err)
			}
			if s.Pending() >= window || i == len(recs)-1 {
				out, err := s.Flush()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, out...)
			}
		}
		if len(got) != len(want.Records) {
			t.Fatalf("window %d: %d records, want %d", window, len(got), len(want.Records))
		}
		for i := range got {
			if got[i] != want.Records[i] {
				t.Fatalf("window %d record %d: got %v, want %v", window, i, got[i], want.Records[i])
			}
		}
	}
}

// flakyMechanism wraps a real mechanism and fails the first `failures`
// Protect calls — after consuming a few draws, like a mechanism dying
// mid-trace would. It exercises the deterministic-failure contract of
// UserStream.Flush.
type flakyMechanism struct {
	inner    Mechanism
	failures int
}

func (f *flakyMechanism) Name() string        { return f.inner.Name() }
func (f *flakyMechanism) Params() []ParamSpec { return f.inner.Params() }

func (f *flakyMechanism) Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error) {
	if f.failures > 0 {
		f.failures--
		// Consume draws for roughly half the records, then die.
		for i := 0; i < t.Len()/2+1; i++ {
			r.Float64()
			r.Float64()
		}
		return nil, errors.New("flaky: transient mid-trace failure")
	}
	return f.inner.Protect(t, p, r)
}

// TestUserStreamFlushFailureIsDeterministic is the regression test for the
// retry hazard: a mechanism error used to leave the stream's source advanced
// by however many draws the failed Protect consumed, so a retry silently
// diverged from the batch output. Flush now rewinds the source, so a
// failed-then-retried stream must stay bit-identical to a never-failed one.
func TestUserStreamFlushFailureIsDeterministic(t *testing.T) {
	geoi := NewGeoIndistinguishability()
	p := Defaults(geoi)
	recs := streamRecords(40)
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 321
	want, err := geoi.Protect(tr, p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}

	flaky := &flakyMechanism{inner: geoi, failures: 2}
	s, err := NewUserStream(flaky, p, "u1", rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var got []trace.Record
	fails := 0
	for i, rec := range recs {
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
		if s.Pending() >= 8 || i == len(recs)-1 {
			out, err := s.Flush()
			for err != nil {
				fails++
				if fails > 5 {
					t.Fatal("flaky mechanism failing more than injected")
				}
				if s.Pending() == 0 {
					t.Fatal("failed Flush must retain the buffer")
				}
				out, err = s.Flush() // retry: must replay identical draws
			}
			got = append(got, out...)
		}
	}
	if fails != 2 {
		t.Fatalf("saw %d injected failures, want 2", fails)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("got %d records, want %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d diverged after failed+retried flush: got %v, want %v",
				i, got[i], want.Records[i])
		}
	}
}

func TestUserStreamReconfigure(t *testing.T) {
	m := NewGeoIndistinguishability()
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(4)
	for _, r := range recs {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reconfigure(nil, Params{"epsilon": -4}); err == nil {
		t.Error("invalid params must be rejected")
	}
	if err := s.Reconfigure(nil, Params{"epsilon": 0.01, "epsilonn": 0.001}); err == nil {
		t.Error("undeclared param name must be rejected, not silently ignored")
	}
	if s.Pending() != 4 {
		t.Errorf("pending = %d after rejected Reconfigure, want 4", s.Pending())
	}
	newP := Defaults(m)
	newP["epsilon"] = newP["epsilon"] / 2
	if err := s.Reconfigure(nil, newP); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 4 {
		t.Errorf("pending = %d after Reconfigure, want 4 (no record loss)", s.Pending())
	}
	out, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("flushed %d records, want 4", len(out))
	}
	// The window flushed after the swap must match a stream configured with
	// the new parameters from the start (same source position): exactly one
	// parameter set per window.
	s2, err := NewUserStream(m, newP, "u1", rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s2.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	out2, err := s2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("record %d: swapped stream %v != fresh stream %v", i, out[i], out2[i])
		}
	}
	// Swapping the mechanism keeps the buffer too.
	if err := s.Push(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(Identity{}, Params{}); err != nil {
		t.Fatal(err)
	}
	out, err = s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != recs[0] {
		t.Fatalf("identity after mechanism swap: got %v, want %v", out, recs[0])
	}
}

func TestUserStreamDiscard(t *testing.T) {
	m := Identity{}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range streamRecords(3) {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Discard(); n != 3 {
		t.Errorf("Discard = %d, want 3", n)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after Discard, want 0", s.Pending())
	}
	if n := s.Discard(); n != 0 {
		t.Errorf("second Discard = %d, want 0", n)
	}
}

func TestUserStreamPendingAndClear(t *testing.T) {
	m := Identity{}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(5)
	for _, r := range recs {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d, want 5", s.Pending())
	}
	out, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || s.Pending() != 0 {
		t.Errorf("flush returned %d records, pending now %d; want 5 and 0", len(out), s.Pending())
	}
	for i := range out {
		if out[i] != recs[i] {
			t.Errorf("identity stream changed record %d: %v != %v", i, out[i], recs[i])
		}
	}
}
