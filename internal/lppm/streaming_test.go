package lppm

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

func streamRecords(n int) []trace.Record {
	t0 := time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			User:  "u1",
			Time:  t0.Add(time.Duration(i) * time.Minute),
			Point: base.Offset(float64(i)*75, float64(i%5)*20),
		}
	}
	return recs
}

func TestUserStreamValidation(t *testing.T) {
	m := NewGeoIndistinguishability()
	if _, err := NewUserStream(m, Defaults(m), "", rng.New(1)); err == nil {
		t.Error("empty user must fail")
	}
	if _, err := NewUserStream(m, Defaults(m), "u1", nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := NewUserStream(m, Params{"epsilon": -1}, "u1", rng.New(1)); err == nil {
		t.Error("invalid params must fail")
	}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(trace.Record{User: "u2"}); err == nil {
		t.Error("wrong-user record must be rejected")
	}
	if recs, err := s.Flush(); err != nil || recs != nil {
		t.Errorf("empty flush = (%v, %v), want (nil, nil)", recs, err)
	}
}

// TestUserStreamMatchesBatch verifies the window-invariance contract: for a
// per-record-randomness mechanism (GEO-I), streaming through any window
// split is bit-identical to one batch Protect with the same source.
func TestUserStreamMatchesBatch(t *testing.T) {
	m := NewGeoIndistinguishability()
	p := Defaults(m)
	recs := streamRecords(50)
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Protect(tr, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 7, 50} {
		s, err := NewUserStream(m, p, "u1", rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var got []trace.Record
		for i, rec := range recs {
			if err := s.Push(rec); err != nil {
				t.Fatal(err)
			}
			if s.Pending() >= window || i == len(recs)-1 {
				out, err := s.Flush()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, out...)
			}
		}
		if len(got) != len(want.Records) {
			t.Fatalf("window %d: %d records, want %d", window, len(got), len(want.Records))
		}
		for i := range got {
			if got[i] != want.Records[i] {
				t.Fatalf("window %d record %d: got %v, want %v", window, i, got[i], want.Records[i])
			}
		}
	}
}

func TestUserStreamDiscard(t *testing.T) {
	m := Identity{}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range streamRecords(3) {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Discard(); n != 3 {
		t.Errorf("Discard = %d, want 3", n)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after Discard, want 0", s.Pending())
	}
	if n := s.Discard(); n != 0 {
		t.Errorf("second Discard = %d, want 0", n)
	}
}

func TestUserStreamPendingAndClear(t *testing.T) {
	m := Identity{}
	s, err := NewUserStream(m, Defaults(m), "u1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(5)
	for _, r := range recs {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d, want 5", s.Pending())
	}
	out, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || s.Pending() != 0 {
		t.Errorf("flush returned %d records, pending now %d; want 5 and 0", len(out), s.Pending())
	}
	for i := range out {
		if out[i] != recs[i] {
			t.Errorf("identity stream changed record %d: %v != %v", i, out[i], recs[i])
		}
	}
}
