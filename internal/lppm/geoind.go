package lppm

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// EpsilonParam is the name of GEO-I's single configuration parameter, the ε
// of ε·d-privacy, expressed in meters⁻¹. Lower ε means more noise: the
// expected displacement of a reported location is 2/ε meters.
const EpsilonParam = "epsilon"

// GeoIndistinguishability is the LPPM of Andrés et al. (CCS'13) analyzed by
// the paper: it perturbs every location independently with noise drawn from
// the planar Laplace distribution, achieving ε-geo-indistinguishability —
// the differential-privacy analogue for location data. Sampling is exact
// (polar method through the Lambert W₋₁ inverse CDF), not a Gaussian
// approximation.
type GeoIndistinguishability struct {
	spec ParamSpec
}

// NewGeoIndistinguishability returns the mechanism with the paper's sweep
// range ε ∈ [10⁻⁴, 10⁰] m⁻¹ (Figure 1's x axis).
func NewGeoIndistinguishability() *GeoIndistinguishability {
	return &GeoIndistinguishability{
		spec: ParamSpec{
			Name:     EpsilonParam,
			Unit:     "1/m",
			Min:      1e-4,
			Max:      1,
			Default:  0.01,
			LogScale: true,
		},
	}
}

// Name implements Mechanism.
func (g *GeoIndistinguishability) Name() string { return "geoi" }

// Params implements Mechanism.
func (g *GeoIndistinguishability) Params() []ParamSpec { return []ParamSpec{g.spec} }

// Protect implements Mechanism: each record's location is displaced by an
// independent planar-Laplace draw; timestamps and user identity are
// untouched.
func (g *GeoIndistinguishability) Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error) {
	eps, err := p.Get(EpsilonParam)
	if err != nil {
		return nil, err
	}
	if err := g.spec.Validate(eps); err != nil {
		return nil, err
	}
	out := t.Clone()
	for i := range out.Records {
		east, north := stat.SamplePlanarLaplace(r, eps)
		out.Records[i].Point = out.Records[i].Point.Offset(east, north)
	}
	return out, nil
}

// AccuracyRadius returns the radius within which a GEO-I-protected location
// stays with the given confidence — the (α, δ)-accuracy bound of the
// planar Laplace mechanism, useful to explain a chosen ε to a system
// designer.
func (g *GeoIndistinguishability) AccuracyRadius(epsilon, confidence float64) (float64, error) {
	if confidence < 0 || confidence >= 1 {
		return 0, fmt.Errorf("lppm: confidence must be in [0, 1), got %v", confidence)
	}
	return stat.PlanarLaplaceRadiusQuantile(epsilon, confidence)
}
