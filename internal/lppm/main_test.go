package lppm

import (
	"testing"

	"repro/internal/leakcheck"
)

// The evaluation engine fans analysis out to worker goroutines;
// leakcheck fails this binary if any outlives the tests (DESIGN.md §11).
func TestMain(m *testing.M) { leakcheck.Main(m) }
