// Package lppm implements Location Privacy Protection Mechanisms. Every
// mechanism transforms a mobility trace under a set of named numeric
// configuration parameters; the framework sweeps those parameters to model
// their effect on privacy and utility. The package ships the paper's subject
// mechanism — Geo-Indistinguishability with exact planar-Laplace noise — plus
// baseline mechanisms (Gaussian perturbation, grid cloaking, temporal
// sampling, identity) used by the extension experiments.
package lppm

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Params holds a concrete assignment of configuration-parameter values by
// name.
type Params map[string]float64

// Get returns the value of the named parameter, or an error if absent.
func (p Params) Get(name string) (float64, error) {
	v, ok := p[name]
	if !ok {
		return 0, fmt.Errorf("lppm: missing parameter %q", name)
	}
	return v, nil
}

// Clone returns a copy of the parameter assignment.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// ParamSpec describes one configuration parameter of a mechanism: its name,
// admissible range, sweep scale and default. This is the machine-readable
// form of framework step 1's "configuration parameters p_i and their range
// of values".
type ParamSpec struct {
	// Name is the parameter identifier, unique within a mechanism.
	Name string
	// Unit is a human-readable unit (e.g. "1/m", "m", "s").
	Unit string
	// Min and Max bound the admissible values.
	Min, Max float64
	// Default is a reasonable starting value.
	Default float64
	// LogScale indicates sweeps should be logarithmically spaced.
	LogScale bool
}

// Validate checks v is admissible for this spec.
func (s ParamSpec) Validate(v float64) error {
	if v < s.Min || v > s.Max {
		return fmt.Errorf("lppm: parameter %q value %v outside [%v, %v]", s.Name, v, s.Min, s.Max)
	}
	return nil
}

// Mechanism is an LPPM: a randomized (or deterministic) transformation of a
// user's mobility trace. Implementations must be stateless and safe for
// concurrent use; all randomness comes from the provided source.
type Mechanism interface {
	// Name returns the mechanism's registry identifier.
	Name() string
	// Params describes the mechanism's configuration parameters.
	Params() []ParamSpec
	// Protect returns the protected version of the trace under the given
	// parameter values, drawing randomness from r.
	Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error)
}

// ValidateParams checks that every declared parameter is present and in
// range.
func ValidateParams(m Mechanism, p Params) error {
	for _, spec := range m.Params() {
		v, err := p.Get(spec.Name)
		if err != nil {
			return err
		}
		if err := spec.Validate(v); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAssignment checks p as a complete assignment for m: every declared
// parameter present and in range (ValidateParams), and no undeclared names —
// a misspelled parameter would otherwise be stored and silently ignored,
// leaving the caller convinced a value is applied when it is not.
func ValidateAssignment(m Mechanism, p Params) error {
	if err := ValidateParams(m, p); err != nil {
		return err
	}
	specs := m.Params()
	declared := make(map[string]bool, len(specs))
	for _, s := range specs {
		declared[s.Name] = true
	}
	for name := range p {
		if !declared[name] {
			return fmt.Errorf("lppm: mechanism %q has no parameter %q", m.Name(), name)
		}
	}
	return nil
}

// MergeAssignment completes a partial parameter override over a base
// assignment and validates the result as a full, assignment-strict map —
// the one rule behind both a deployment's per-user override table and the
// gateway's override merging, kept here so the batch and serving paths
// cannot drift apart.
func MergeAssignment(m Mechanism, base, partial Params) (Params, error) {
	full := base.Clone()
	for k, v := range partial {
		full[k] = v
	}
	if err := ValidateAssignment(m, full); err != nil {
		return nil, err
	}
	return full, nil
}

// Defaults returns the mechanism's default parameter assignment.
func Defaults(m Mechanism) Params {
	p := make(Params)
	for _, spec := range m.Params() {
		p[spec.Name] = spec.Default
	}
	return p
}

// ProtectDataset applies the mechanism to every trace of a dataset, deriving
// an independent per-user random stream from root so that results do not
// depend on iteration order.
func ProtectDataset(d *trace.Dataset, m Mechanism, p Params, root *rng.Source) (*trace.Dataset, error) {
	if err := ValidateParams(m, p); err != nil {
		return nil, err
	}
	return ProtectDatasetWith(d, m, func(string) Params { return p }, root)
}

// ProtectDatasetWith is ProtectDataset with a per-user parameter lookup —
// the batch counterpart of a deployment's override table. Each user's
// assignment is validated before use; random streams derive from root by
// user name exactly as in ProtectDataset, so two runs differing only in
// another user's parameters still agree bit-for-bit on everyone else.
func ProtectDatasetWith(d *trace.Dataset, m Mechanism, paramsFor func(user string) Params, root *rng.Source) (*trace.Dataset, error) {
	out := trace.NewDataset()
	for _, t := range d.Traces() {
		p := paramsFor(t.User)
		if err := ValidateParams(m, p); err != nil {
			return nil, fmt.Errorf("lppm: params for %s: %w", t.User, err)
		}
		r := root.Named(t.User)
		pt, err := m.Protect(t, p, r)
		if err != nil {
			return nil, fmt.Errorf("lppm: protect %s: %w", t.User, err)
		}
		out.Add(pt)
	}
	return out, nil
}

// Registry maps mechanism names to implementations. The zero value is ready
// to use.
type Registry struct {
	mechanisms map[string]Mechanism
}

// NewRegistry returns a registry pre-populated with every built-in
// mechanism.
func NewRegistry() *Registry {
	r := &Registry{}
	for _, m := range []Mechanism{
		NewGeoIndistinguishability(),
		NewGaussianPerturbation(),
		NewGridCloaking(),
		NewTemporalSampling(),
		NewPromesse(),
		NewCoordinateRounding(),
		NewDummyInjection(),
		NewElasticGeoInd(),
		Identity{},
	} {
		// Built-ins have unique names; Register cannot fail here.
		if err := r.Register(m); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds a mechanism; duplicate names are rejected.
func (r *Registry) Register(m Mechanism) error {
	if r.mechanisms == nil {
		r.mechanisms = make(map[string]Mechanism)
	}
	if _, dup := r.mechanisms[m.Name()]; dup {
		return fmt.Errorf("lppm: mechanism %q already registered", m.Name())
	}
	r.mechanisms[m.Name()] = m
	return nil
}

// Get returns the named mechanism.
func (r *Registry) Get(name string) (Mechanism, error) {
	m, ok := r.mechanisms[name]
	if !ok {
		return nil, fmt.Errorf("lppm: unknown mechanism %q (have %v)", name, r.Names())
	}
	return m, nil
}

// Names lists registered mechanism names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.mechanisms))
	for n := range r.mechanisms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
