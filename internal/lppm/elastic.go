package lppm

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// ElasticityParam configures ElasticGeoInd: how strongly the local density
// modulates the per-point privacy budget (0 disables the modulation and the
// mechanism degenerates to plain GEO-I).
const ElasticityParam = "elasticity"

// elasticCellMeters is the density-grid resolution. It matches the default
// dataset-property cell used elsewhere in the framework.
const elasticCellMeters = 500

// ElasticGeoInd adapts GEO-I's noise to the local density of the user's own
// trace, in the spirit of the elastic distinguishability metrics of
// Chatzikokolakis et al. (PETS'15) — the paper's reference [3]. Dense,
// frequently-visited areas offer more places to hide among, so they receive
// the nominal ε (less noise); rarely-visited cells are where a single
// report is most identifying, so their effective ε shrinks (more noise):
//
//	ε_eff(cell) = ε · (1 + elasticity·density(cell)) / (1 + elasticity)
//
// with density normalized to [0, 1] over the trace. ε_eff equals ε in the
// densest cell and ε/(1+elasticity) in unvisited terrain, so the nominal
// guarantee is a floor stretched smoothly by up to a (1+elasticity) factor.
type ElasticGeoInd struct {
	eps  ParamSpec
	elas ParamSpec
}

// NewElasticGeoInd returns the mechanism with GEO-I's ε range and
// elasticity in [0, 10].
func NewElasticGeoInd() *ElasticGeoInd {
	return &ElasticGeoInd{
		eps:  ParamSpec{Name: EpsilonParam, Unit: "1/m", Min: 1e-4, Max: 1, Default: 0.01, LogScale: true},
		elas: ParamSpec{Name: ElasticityParam, Unit: "", Min: 0, Max: 10, Default: 2},
	}
}

// Name implements Mechanism.
func (*ElasticGeoInd) Name() string { return "elastic" }

// Params implements Mechanism.
func (m *ElasticGeoInd) Params() []ParamSpec { return []ParamSpec{m.eps, m.elas} }

// Protect implements Mechanism.
func (m *ElasticGeoInd) Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error) {
	eps, err := p.Get(EpsilonParam)
	if err != nil {
		return nil, err
	}
	if err := m.eps.Validate(eps); err != nil {
		return nil, err
	}
	elas, err := p.Get(ElasticityParam)
	if err != nil {
		return nil, err
	}
	if err := m.elas.Validate(elas); err != nil {
		return nil, err
	}
	out := t.Clone()
	if len(out.Records) == 0 {
		return out, nil
	}
	grid, density := traceDensity(t)
	for i := range out.Records {
		d := density[grid.CellOf(out.Records[i].Point)]
		effEps := eps * (1 + elas*d) / (1 + elas)
		east, north := stat.SamplePlanarLaplace(r, effEps)
		out.Records[i].Point = out.Records[i].Point.Offset(east, north)
	}
	return out, nil
}

// traceDensity builds the trace's visit-density map at elasticCellMeters
// resolution, normalized so the most-visited cell has density 1.
func traceDensity(t *trace.Trace) (*geo.Grid, map[geo.Cell]float64) {
	first := t.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, elasticCellMeters)
	counts := make(map[geo.Cell]int)
	max := 0
	for _, rec := range t.Records {
		c := grid.CellOf(rec.Point)
		counts[c]++
		if counts[c] > max {
			max = counts[c]
		}
	}
	density := make(map[geo.Cell]float64, len(counts))
	for c, n := range counts {
		density[c] = float64(n) / float64(max)
	}
	return grid, density
}
