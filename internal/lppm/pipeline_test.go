package lppm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

func mkPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline("sampled-geoi", NewTemporalSampling(), NewGeoIndistinguishability())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewPipeline("p"); err == nil {
		t.Error("zero stages should fail")
	}
	if _, err := NewPipeline("p", Identity{}, Identity{}); err == nil {
		t.Error("duplicate stage names should fail")
	}
}

func TestPipelineParamsAreNamespaced(t *testing.T) {
	p := mkPipeline(t)
	specs := p.Params()
	if len(specs) != 2 {
		t.Fatalf("got %d params, want 2", len(specs))
	}
	want := map[string]bool{"sampling.period_sec": true, "geoi.epsilon": true}
	for _, s := range specs {
		if !want[s.Name] {
			t.Errorf("unexpected param %q", s.Name)
		}
	}
}

func TestPipelineAppliesStagesInOrder(t *testing.T) {
	p := mkPipeline(t)
	tr := mkTrace(t, "u1", 60)
	out, err := p.Protect(tr, Params{
		"sampling.period_sec": 300, // keep one record per 5 min
		"geoi.epsilon":        0.01,
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Sampling first: 60 one-minute records → 12 five-minute records.
	if want := tr.Resample(5 * time.Minute).Len(); out.Len() != want {
		t.Errorf("pipeline kept %d records, want %d (sampling applied)", out.Len(), want)
	}
	// GEO-I second: surviving records are displaced.
	kept := tr.Resample(5 * time.Minute)
	var moved int
	for i := range out.Records {
		if geo.Haversine(out.Records[i].Point, kept.Records[i].Point) > 1 {
			moved++
		}
	}
	if moved < out.Len()/2 {
		t.Errorf("only %d/%d records displaced; noise stage missing", moved, out.Len())
	}
}

func TestPipelineMissingParam(t *testing.T) {
	p := mkPipeline(t)
	tr := mkTrace(t, "u1", 10)
	_, err := p.Protect(tr, Params{"geoi.epsilon": 0.01}, rng.New(1))
	if err == nil || !strings.Contains(err.Error(), "sampling.period_sec") {
		t.Errorf("missing stage param should fail naming it, got %v", err)
	}
}

func TestPipelineStageRandomnessIndependent(t *testing.T) {
	// Adding an upstream no-noise stage must not change the noise drawn
	// by the geoi stage (per-stage Named streams).
	tr := mkTrace(t, "u1", 20)
	solo, err := NewPipeline("solo", NewGeoIndistinguishability())
	if err != nil {
		t.Fatal(err)
	}
	chained, err := NewPipeline("chained", Identity{}, NewGeoIndistinguishability())
	if err != nil {
		t.Fatal(err)
	}
	a, err := solo.Protect(tr, Params{"geoi.epsilon": 0.01}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := chained.Protect(tr, Params{"geoi.epsilon": 0.01}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Point != b.Records[i].Point {
			t.Fatal("identity prefix changed the noise stream; stages must draw independently")
		}
	}
}

func TestPipelineDefaultsValidate(t *testing.T) {
	p := mkPipeline(t)
	if err := ValidateParams(p, Defaults(p)); err != nil {
		t.Errorf("pipeline defaults should validate: %v", err)
	}
}

func TestSplitParamName(t *testing.T) {
	stage, param, ok := SplitParamName("geoi.epsilon")
	if !ok || stage != "geoi" || param != "epsilon" {
		t.Errorf("SplitParamName = %q, %q, %v", stage, param, ok)
	}
	for _, bad := range []string{"epsilon", ".epsilon", "geoi.", ""} {
		if _, _, ok := SplitParamName(bad); ok {
			t.Errorf("SplitParamName(%q) should not parse", bad)
		}
	}
}
