package lppm

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Pipeline chains mechanisms: the trace is protected by each stage in
// order, the output of one feeding the next (e.g. temporal sampling for
// data minimization, then GEO-I noise on what remains). Deployments
// routinely stack defenses exactly like this, which makes the pipeline the
// natural source of *multi-parameter* configuration problems — the general
// f(p1..pn) of the paper's Equation 1 — beyond single-knob mechanisms.
//
// Parameter names are namespaced as "<stage>.<param>" ("sampling.period_sec",
// "geoi.epsilon"), so stages of the same type cannot collide and sweep
// definitions stay explicit.
type Pipeline struct {
	name   string
	stages []Mechanism
}

// NewPipeline builds a pipeline of the given stages, applied in order. At
// least one stage is required; duplicate stage names are rejected (name
// the composition unambiguous).
func NewPipeline(name string, stages ...Mechanism) (*Pipeline, error) {
	if name == "" {
		return nil, fmt.Errorf("lppm: pipeline needs a name")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("lppm: pipeline %q needs at least one stage", name)
	}
	seen := make(map[string]bool, len(stages))
	for _, s := range stages {
		if seen[s.Name()] {
			return nil, fmt.Errorf("lppm: pipeline %q has duplicate stage %q", name, s.Name())
		}
		seen[s.Name()] = true
	}
	return &Pipeline{name: name, stages: append([]Mechanism(nil), stages...)}, nil
}

// Name implements Mechanism.
func (p *Pipeline) Name() string { return p.name }

// Stages returns the stage mechanisms in application order.
func (p *Pipeline) Stages() []Mechanism { return append([]Mechanism(nil), p.stages...) }

// Params implements Mechanism: the union of every stage's parameters under
// namespaced names.
func (p *Pipeline) Params() []ParamSpec {
	var specs []ParamSpec
	for _, s := range p.stages {
		for _, spec := range s.Params() {
			spec.Name = s.Name() + "." + spec.Name
			specs = append(specs, spec)
		}
	}
	return specs
}

// Protect implements Mechanism: stages run in order, each drawing from its
// own derived random stream so that adding a stage never perturbs the
// randomness of the others.
func (p *Pipeline) Protect(t *trace.Trace, params Params, r *rng.Source) (*trace.Trace, error) {
	cur := t
	for _, s := range p.stages {
		stageParams, err := p.stageParams(s, params)
		if err != nil {
			return nil, err
		}
		next, err := s.Protect(cur, stageParams, r.Named(s.Name()))
		if err != nil {
			return nil, fmt.Errorf("lppm: pipeline %q stage %q: %w", p.name, s.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// stageParams extracts and un-namespaces the parameters of one stage.
func (p *Pipeline) stageParams(s Mechanism, params Params) (Params, error) {
	prefix := s.Name() + "."
	out := make(Params)
	for _, spec := range s.Params() {
		v, err := params.Get(prefix + spec.Name)
		if err != nil {
			return nil, fmt.Errorf("lppm: pipeline %q: %w", p.name, err)
		}
		out[spec.Name] = v
	}
	return out, nil
}

// SplitParamName separates a namespaced pipeline parameter into its stage
// and stage-local parameter names; ok is false when the name carries no
// namespace.
func SplitParamName(name string) (stage, param string, ok bool) {
	i := strings.IndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

var _ Mechanism = (*Pipeline)(nil)
