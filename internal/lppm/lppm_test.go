package lppm

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	basePt = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

func mkTrace(t *testing.T, user string, n int) *trace.Trace {
	t.Helper()
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			User:  user,
			Time:  t0.Add(time.Duration(i) * time.Minute),
			Point: basePt.Offset(float64(i)*30, float64(i%7)*10),
		}
	}
	tr, err := trace.NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParamsGetClone(t *testing.T) {
	p := Params{"epsilon": 0.01}
	if v, err := p.Get("epsilon"); err != nil || v != 0.01 {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := p.Get("missing"); err == nil {
		t.Error("missing parameter should error")
	}
	c := p.Clone()
	c["epsilon"] = 9
	if p["epsilon"] != 0.01 {
		t.Error("Clone must not alias")
	}
}

func TestParamSpecValidate(t *testing.T) {
	s := ParamSpec{Name: "x", Min: 1, Max: 10}
	if err := s.Validate(5); err != nil {
		t.Errorf("5 should validate: %v", err)
	}
	if err := s.Validate(0.5); err == nil {
		t.Error("below min should fail")
	}
	if err := s.Validate(11); err == nil {
		t.Error("above max should fail")
	}
}

func TestValidateParamsAndDefaults(t *testing.T) {
	g := NewGeoIndistinguishability()
	if err := ValidateParams(g, Defaults(g)); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	if err := ValidateParams(g, Params{}); err == nil {
		t.Error("empty params should fail")
	}
	if err := ValidateParams(g, Params{EpsilonParam: 5}); err == nil {
		t.Error("out-of-range epsilon should fail")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{"cloaking", "dummies", "elastic", "gaussian", "geoi", "identity", "promesse", "rounding", "sampling"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := r.Get("geoi"); err != nil {
		t.Errorf("Get(geoi): %v", err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown mechanism should error")
	}
	if err := r.Register(Identity{}); err == nil {
		t.Error("duplicate registration should error")
	}
}

func TestRegistryZeroValueUsable(t *testing.T) {
	var r Registry
	if err := r.Register(Identity{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("identity"); err != nil {
		t.Error(err)
	}
}

func TestProtectDatasetDeterministicPerUser(t *testing.T) {
	d := trace.NewDataset()
	d.Add(mkTrace(t, "a", 20))
	d.Add(mkTrace(t, "b", 20))
	g := NewGeoIndistinguishability()
	p := Params{EpsilonParam: 0.01}

	out1, err := ProtectDataset(d, g, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ProtectDataset(d, g, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range d.Users() {
		ta, tb := out1.Trace(u), out2.Trace(u)
		for i := range ta.Records {
			if ta.Records[i].Point != tb.Records[i].Point {
				t.Fatalf("user %s record %d differs across identical runs", u, i)
			}
		}
	}
	// Different users must receive different noise.
	same := 0
	a, b := out1.Trace("a"), out1.Trace("b")
	for i := range a.Records {
		da := geo.Equirectangular(a.Records[i].Point, d.Trace("a").Records[i].Point)
		db := geo.Equirectangular(b.Records[i].Point, d.Trace("b").Records[i].Point)
		if da == db {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d identical displacements across users", same)
	}
}

func TestProtectDatasetRejectsBadParams(t *testing.T) {
	d := trace.NewDataset()
	d.Add(mkTrace(t, "a", 3))
	if _, err := ProtectDataset(d, NewGeoIndistinguishability(), Params{}, rng.New(1)); err == nil {
		t.Error("missing epsilon should error")
	}
}
