package lppm

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestDummyInjectionGrowsTraceByWalkers(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 40)
	for _, k := range []int{1, 4, 8} {
		out, err := m.Protect(tr, Params{WalkersParam: float64(k)}, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := out.Len(), tr.Len()*(k+1); got != want {
			t.Errorf("walkers=%d: %d records, want %d", k, got, want)
		}
	}
}

func TestDummyInjectionPreservesRealRecords(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 30)
	out, err := m.Protect(tr, Params{WalkersParam: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every real record must appear verbatim in the release.
	have := make(map[trace.Record]bool, out.Len())
	for _, rec := range out.Records {
		have[rec] = true
	}
	for _, rec := range tr.Records {
		if !have[rec] {
			t.Fatalf("real record %v missing from the release", rec)
		}
	}
}

func TestDummyInjectionRecordsSortedAndSameUser(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 25)
	out, err := m.Protect(tr, Params{WalkersParam: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sorted() {
		t.Error("release must be time-sorted")
	}
	for _, rec := range out.Records {
		if rec.User != "u1" {
			t.Fatalf("record published under %q, want u1", rec.User)
		}
	}
}

func TestDummyWalkersHavePlausibleSpeed(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 60)
	out, err := m.Protect(tr, Params{WalkersParam: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Split the release back into real and dummy records: dummies are the
	// ones not present in the original.
	real := make(map[trace.Record]bool, tr.Len())
	for _, rec := range tr.Records {
		real[rec] = true
	}
	var dummy []trace.Record
	for _, rec := range out.Records {
		if !real[rec] {
			dummy = append(dummy, rec)
		}
	}
	if len(dummy) != tr.Len() {
		t.Fatalf("%d dummy records, want %d", len(dummy), tr.Len())
	}
	for i := 1; i < len(dummy); i++ {
		dt := dummy[i].Time.Sub(dummy[i-1].Time).Seconds()
		if dt <= 0 {
			continue
		}
		speed := geo.Haversine(dummy[i-1].Point, dummy[i].Point) / dt
		if speed > 9 {
			t.Fatalf("dummy segment %d moves at %.1f m/s, want ≤ 9 (walker speed cap)", i, speed)
		}
	}
}

func TestDummyInjectionDeterministicPerSeed(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 20)
	a, err := m.Protect(tr, Params{WalkersParam: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Protect(tr, Params{WalkersParam: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("same seed must reproduce the same release")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed must reproduce the same release")
		}
	}
}

func TestDummyInjectionShortTraceUntouched(t *testing.T) {
	m := NewDummyInjection()
	single, err := trace.NewTrace("u1", []trace.Record{{User: "u1", Time: t0, Point: basePt}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Protect(single, Params{WalkersParam: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("short trace should be released as-is, got %d records", out.Len())
	}
}

func TestDummyInjectionParamValidation(t *testing.T) {
	m := NewDummyInjection()
	tr := mkTrace(t, "u1", 5)
	if _, err := m.Protect(tr, Params{}, rng.New(1)); err == nil {
		t.Error("missing walkers should fail")
	}
	if _, err := m.Protect(tr, Params{WalkersParam: 100}, rng.New(1)); err == nil {
		t.Error("out-of-range walkers should fail")
	}
}
