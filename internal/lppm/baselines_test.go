package lppm

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestGaussianPerturbation(t *testing.T) {
	tr := mkTrace(t, "u", 2000)
	g := NewGaussianPerturbation()
	out, err := g.Protect(tr, Params{SigmaParam: 100}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var sum2 float64
	for i := range out.Records {
		d := geo.Equirectangular(tr.Records[i].Point, out.Records[i].Point)
		sum2 += d * d
	}
	// E[d²] = 2σ² for isotropic Gaussian noise.
	rms := math.Sqrt(sum2 / float64(out.Len()))
	want := 100 * math.Sqrt2
	if math.Abs(rms-want) > want*0.1 {
		t.Errorf("rms displacement = %v, want ~%v", rms, want)
	}
	if _, err := g.Protect(tr, Params{SigmaParam: 0}, rng.New(1)); err == nil {
		t.Error("sigma below min should error")
	}
	if _, err := g.Protect(tr, Params{}, rng.New(1)); err == nil {
		t.Error("missing sigma should error")
	}
}

func TestGridCloakingSnapsConsistently(t *testing.T) {
	tr := mkTrace(t, "u", 40)
	c := NewGridCloaking()
	out, err := c.Protect(tr, Params{CellSizeParam: 500}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Nearby points must collapse to few distinct snapped locations.
	distinct := make(map[geo.Point]struct{})
	for _, r := range out.Records {
		distinct[r.Point] = struct{}{}
	}
	if len(distinct) >= tr.Len()/2 {
		t.Errorf("cloaking left %d distinct points out of %d", len(distinct), tr.Len())
	}
	// Deterministic: same input gives same output.
	out2, err := c.Protect(tr, Params{CellSizeParam: 500}, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		if out.Records[i].Point != out2.Records[i].Point {
			t.Fatal("cloaking must be deterministic")
		}
	}
	// Each snapped point is within half a cell diagonal of its original.
	maxD := 500 * math.Sqrt2 / 2
	for i := range out.Records {
		if d := geo.Equirectangular(tr.Records[i].Point, out.Records[i].Point); d > maxD+1 {
			t.Errorf("record %d moved %v m, max %v", i, d, maxD)
		}
	}
}

func TestGridCloakingEmptyTrace(t *testing.T) {
	empty, err := trace.NewTrace("u", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewGridCloaking()
	out, err := c.Protect(empty, Params{CellSizeParam: 500}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("empty in, empty out")
	}
}

func TestTemporalSampling(t *testing.T) {
	tr := mkTrace(t, "u", 60) // 1/min
	s := NewTemporalSampling()
	out, err := s.Protect(tr, Params{PeriodSecParam: 600}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("sampled len = %d, want 6", out.Len())
	}
	if _, err := s.Protect(tr, Params{PeriodSecParam: 0}, rng.New(1)); err == nil {
		t.Error("period below min should error")
	}
}

func TestIdentity(t *testing.T) {
	tr := mkTrace(t, "u", 5)
	var id Identity
	out, err := id.Protect(tr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		if out.Records[i] != tr.Records[i] {
			t.Fatal("identity must preserve records")
		}
	}
	out.Records[0].Point = geo.Point{Lat: 1, Lng: 1}
	if tr.Records[0].Point == out.Records[0].Point {
		t.Error("identity must return a copy, not an alias")
	}
	if id.Params() != nil {
		t.Error("identity has no parameters")
	}
}

func TestBaselineSpecsSane(t *testing.T) {
	for _, m := range []Mechanism{
		NewGaussianPerturbation(), NewGridCloaking(), NewTemporalSampling(),
	} {
		specs := m.Params()
		if len(specs) != 1 {
			t.Errorf("%s: %d params, want 1", m.Name(), len(specs))
			continue
		}
		s := specs[0]
		if s.Min >= s.Max || s.Default < s.Min || s.Default > s.Max {
			t.Errorf("%s: inconsistent spec %+v", m.Name(), s)
		}
	}
}
