package lppm

import (
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// DigitsParam configures CoordinateRounding: the number of decimal digits
// kept on latitude and longitude.
const DigitsParam = "digits"

// CoordinateRounding is the practitioner's folk LPPM: truncate coordinate
// precision by rounding latitude and longitude to a fixed number of decimal
// digits (3 digits ≈ a 110 m grid in latitude). It is what many data
// releases actually do, carries no formal guarantee, and — because its cell
// geometry stretches with latitude and its parameter moves in factor-of-ten
// jumps — is exactly the kind of mechanism whose privacy/utility behaviour a
// designer cannot eyeball, motivating the framework.
type CoordinateRounding struct {
	spec ParamSpec
}

// NewCoordinateRounding returns the mechanism with 0–6 digits kept.
func NewCoordinateRounding() *CoordinateRounding {
	return &CoordinateRounding{
		spec: ParamSpec{Name: DigitsParam, Unit: "digits", Min: 0, Max: 6, Default: 3},
	}
}

// Name implements Mechanism.
func (*CoordinateRounding) Name() string { return "rounding" }

// Params implements Mechanism.
func (m *CoordinateRounding) Params() []ParamSpec { return []ParamSpec{m.spec} }

// Protect implements Mechanism. It is deterministic; r is unused. A
// fractional digits value rounds to the nearest integer digit count, so the
// sweep grid remains meaningful on this intrinsically discrete parameter.
func (m *CoordinateRounding) Protect(t *trace.Trace, p Params, _ *rng.Source) (*trace.Trace, error) {
	digits, err := p.Get(DigitsParam)
	if err != nil {
		return nil, err
	}
	if err := m.spec.Validate(digits); err != nil {
		return nil, err
	}
	scale := math.Pow(10, math.Round(digits))
	out := t.Clone()
	for i := range out.Records {
		pt := &out.Records[i].Point
		pt.Lat = math.Round(pt.Lat*scale) / scale
		pt.Lng = math.Round(pt.Lng*scale) / scale
	}
	return out, nil
}
