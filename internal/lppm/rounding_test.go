package lppm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestRoundingSnapsToDecimalGrid(t *testing.T) {
	m := NewCoordinateRounding()
	tr := mkTrace(t, "u1", 20)
	out, err := m.Protect(tr, Params{DigitsParam: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range out.Records {
		for _, v := range []float64{rec.Point.Lat, rec.Point.Lng} {
			scaled := v * 100
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
				t.Fatalf("coordinate %v not on the 0.01° grid", v)
			}
		}
	}
}

func TestRoundingSixDigitsIsNearIdentity(t *testing.T) {
	m := NewCoordinateRounding()
	tr := mkTrace(t, "u1", 20)
	out, err := m.Protect(tr, Params{DigitsParam: 6}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		d := geo.Haversine(tr.Records[i].Point, out.Records[i].Point)
		if d > 0.2 {
			t.Fatalf("record %d displaced %.3f m at 6 digits, want < 0.2 m", i, d)
		}
	}
}

func TestRoundingCoarserDigitsDisplaceMore(t *testing.T) {
	m := NewCoordinateRounding()
	tr := mkTrace(t, "u1", 50)
	meanDisp := func(digits float64) float64 {
		out, err := m.Protect(tr, Params{DigitsParam: digits}, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range tr.Records {
			sum += geo.Haversine(tr.Records[i].Point, out.Records[i].Point)
		}
		return sum / float64(tr.Len())
	}
	d4, d2 := meanDisp(4), meanDisp(2)
	if d2 <= d4 {
		t.Errorf("2-digit displacement %.2f should exceed 4-digit %.2f", d2, d4)
	}
}

func TestRoundingDeterministicAndIdempotent(t *testing.T) {
	m := NewCoordinateRounding()
	tr := mkTrace(t, "u1", 15)
	p := Params{DigitsParam: 3}
	a, err := m.Protect(tr, p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Protect(tr, p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Protect(a, p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Point != b.Records[i].Point {
			t.Fatal("rounding must be deterministic")
		}
		if a.Records[i].Point != c.Records[i].Point {
			t.Fatal("rounding must be idempotent")
		}
	}
}

func TestRoundingDisplacementBoundProperty(t *testing.T) {
	// Property: at d digits, displacement is bounded by half a grid
	// diagonal: (10^-d degrees) · ~111 km/degree · √2 / 2, with slack for
	// the spherical metric.
	f := func(latSeed, lngSeed uint16, digitsRaw uint8) bool {
		digits := float64(digitsRaw % 7)
		pt := geo.Point{
			Lat: -80 + 160*float64(latSeed)/65535,
			Lng: -179 + 358*float64(lngSeed)/65535,
		}
		scale := math.Pow(10, digits)
		rounded := geo.Point{
			Lat: math.Round(pt.Lat*scale) / scale,
			Lng: math.Round(pt.Lng*scale) / scale,
		}
		bound := math.Pow(10, -digits) * 111320 * math.Sqrt2 / 2 * 1.01
		return geo.Haversine(pt, rounded) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundingParamValidation(t *testing.T) {
	m := NewCoordinateRounding()
	tr := mkTrace(t, "u1", 5)
	if _, err := m.Protect(tr, Params{}, rng.New(1)); err == nil {
		t.Error("missing digits should fail")
	}
	if _, err := m.Protect(tr, Params{DigitsParam: 9}, rng.New(1)); err == nil {
		t.Error("out-of-range digits should fail")
	}
}
