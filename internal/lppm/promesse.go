package lppm

import (
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// AlphaParam configures Promesse: the uniform spatial interval, in meters,
// between consecutive published locations.
const AlphaParam = "alpha"

// Promesse is the speed-smoothing LPPM of Primault et al. (TrustCom'15),
// built by the same group as the paper and the natural "other LPPM" for its
// future-work agenda (§4). Instead of perturbing locations it re-samples the
// trajectory at a uniform spatial interval α and redistributes timestamps
// uniformly, so published speed is constant: stops vanish (stay points emit
// no distance, hence no samples) while the travelled path is preserved
// almost exactly. Privacy comes from erasing the dwell signal that POI
// extraction needs; utility is spatial, not temporal.
type Promesse struct {
	spec ParamSpec
}

// NewPromesse returns the mechanism with α from 10 m to 5 km.
func NewPromesse() *Promesse {
	return &Promesse{
		spec: ParamSpec{Name: AlphaParam, Unit: "m", Min: 10, Max: 5000, Default: 200, LogScale: true},
	}
}

// Name implements Mechanism.
func (*Promesse) Name() string { return "promesse" }

// Params implements Mechanism.
func (m *Promesse) Params() []ParamSpec { return []ParamSpec{m.spec} }

// Protect implements Mechanism. It is deterministic; r is unused.
//
// The published trace walks the input polyline emitting a point every α
// meters of accumulated path distance, then assigns timestamps linearly
// between the input's first and last instants. Traces whose total path is
// shorter than α publish nothing — there is not enough movement to hide a
// stop in, the same release rule as the original mechanism.
func (m *Promesse) Protect(t *trace.Trace, p Params, _ *rng.Source) (*trace.Trace, error) {
	alpha, err := p.Get(AlphaParam)
	if err != nil {
		return nil, err
	}
	if err := m.spec.Validate(alpha); err != nil {
		return nil, err
	}
	out := &trace.Trace{User: t.User}
	if len(t.Records) < 2 {
		return out, nil
	}
	pts := resampleUniform(t.Points(), alpha)
	if len(pts) == 0 {
		return out, nil
	}
	start := t.Records[0].Time
	span := t.Records[len(t.Records)-1].Time.Sub(start)
	out.Records = make([]trace.Record, len(pts))
	for i, pt := range pts {
		var at time.Time
		if len(pts) == 1 {
			at = start.Add(span / 2)
		} else {
			at = start.Add(time.Duration(float64(span) * float64(i) / float64(len(pts)-1)))
		}
		out.Records[i] = trace.Record{User: t.User, Time: at, Point: pt}
	}
	return out, nil
}

// resampleUniform walks the polyline and returns one point every alpha
// meters of accumulated path distance, starting at the first point. It
// returns nil when the total path length is below alpha.
func resampleUniform(pts []geo.Point, alpha float64) []geo.Point {
	if len(pts) < 2 || geo.PathLength(pts) < alpha {
		return nil
	}
	out := []geo.Point{pts[0]}
	var carried float64 // distance already walked on the current budget
	for i := 1; i < len(pts); i++ {
		seg := geo.Haversine(pts[i-1], pts[i])
		if seg == 0 {
			continue
		}
		from := pts[i-1]
		for carried+seg >= alpha {
			// The next sample lies (alpha − carried) meters into
			// the remaining segment.
			need := alpha - carried
			bearing := from.BearingTo(pts[i])
			sample := from.Destination(need, bearing)
			out = append(out, sample)
			seg -= need
			from = sample
			carried = 0
		}
		carried += seg
	}
	return out
}
