package lppm

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stat"
)

func TestGeoIProtectPreservesStructure(t *testing.T) {
	tr := mkTrace(t, "u", 50)
	g := NewGeoIndistinguishability()
	out, err := g.Protect(tr, Params{EpsilonParam: 0.01}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != tr.Len() || out.User != tr.User {
		t.Fatalf("protect changed shape: %d records user %s", out.Len(), out.User)
	}
	for i := range out.Records {
		if !out.Records[i].Time.Equal(tr.Records[i].Time) {
			t.Fatal("protect must not change timestamps")
		}
		if out.Records[i].Point == tr.Records[i].Point {
			t.Errorf("record %d not perturbed", i)
		}
	}
	// Input must be untouched.
	if tr.Records[0].Point != basePt {
		t.Error("protect mutated its input")
	}
}

func TestGeoIMeanDisplacementMatchesTheory(t *testing.T) {
	tr := mkTrace(t, "u", 2000)
	g := NewGeoIndistinguishability()
	for _, eps := range []float64{0.005, 0.01, 0.1} {
		out, err := g.Protect(tr, Params{EpsilonParam: eps}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range out.Records {
			sum += geo.Equirectangular(tr.Records[i].Point, out.Records[i].Point)
		}
		mean := sum / float64(out.Len())
		want := stat.PlanarLaplaceMeanRadius(eps)
		if math.Abs(mean-want) > want*0.1 {
			t.Errorf("eps=%v: mean displacement %v, want ~%v", eps, mean, want)
		}
	}
}

func TestGeoIEpsilonValidation(t *testing.T) {
	tr := mkTrace(t, "u", 3)
	g := NewGeoIndistinguishability()
	for _, eps := range []float64{0, -1, 2, 1e-5} {
		if _, err := g.Protect(tr, Params{EpsilonParam: eps}, rng.New(1)); err == nil {
			t.Errorf("epsilon %v should be rejected", eps)
		}
	}
	if _, err := g.Protect(tr, Params{}, rng.New(1)); err == nil {
		t.Error("missing epsilon should be rejected")
	}
}

func TestGeoIParamSpec(t *testing.T) {
	g := NewGeoIndistinguishability()
	specs := g.Params()
	if len(specs) != 1 {
		t.Fatalf("GEO-I should expose exactly one parameter, got %d", len(specs))
	}
	s := specs[0]
	if s.Name != EpsilonParam || !s.LogScale || s.Min != 1e-4 || s.Max != 1 {
		t.Errorf("spec = %+v", s)
	}
	if g.Name() != "geoi" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestGeoIAccuracyRadius(t *testing.T) {
	g := NewGeoIndistinguishability()
	// At ε=0.01, 95% of reported points fall within C⁻¹(0.95).
	r95, err := g.AccuracyRadius(0.01, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r95 < 400 || r95 > 600 {
		t.Errorf("95%% radius at eps=0.01 = %v, want ~474", r95)
	}
	if got := stat.PlanarLaplaceRadiusCDF(0.01, r95); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("CDF(radius) = %v, want 0.95", got)
	}
	if _, err := g.AccuracyRadius(0.01, 1); err == nil {
		t.Error("confidence 1 should error")
	}
	if _, err := g.AccuracyRadius(0.01, -0.1); err == nil {
		t.Error("negative confidence should error")
	}
}

// TestGeoIIndistinguishabilityProperty empirically verifies the ε·d-privacy
// guarantee on a discretized domain: for two nearby locations x1, x2 and any
// reported cell S, P[S|x1] ≤ e^(ε·d(x1,x2)) · P[S|x2].
func TestGeoIIndistinguishabilityProperty(t *testing.T) {
	const (
		eps    = 0.02
		trials = 120000
		cell   = 250.0 // coarse observation cells
	)
	x1 := basePt
	x2 := basePt.Offset(100, 0) // d = 100 m
	grid := geo.NewGrid(basePt, cell)

	counts1 := make(map[geo.Cell]int)
	counts2 := make(map[geo.Cell]int)
	r := rng.New(99)
	for i := 0; i < trials; i++ {
		e, n := stat.SamplePlanarLaplace(r, eps)
		counts1[grid.CellOf(x1.Offset(e, n))]++
		e, n = stat.SamplePlanarLaplace(r, eps)
		counts2[grid.CellOf(x2.Offset(e, n))]++
	}
	bound := math.Exp(eps * 100) // e^(ε·d) ≈ 7.39
	for c, n1 := range counts1 {
		n2 := counts2[c]
		if n1 < 200 || n2 < 200 {
			continue // skip cells with too little mass for a stable ratio
		}
		ratio := float64(n1) / float64(n2)
		if ratio > bound*1.25 || 1/ratio > bound*1.25 {
			t.Errorf("cell %v: likelihood ratio %v exceeds e^(εd)=%v", c, ratio, bound)
		}
	}
}
