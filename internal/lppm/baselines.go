package lppm

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/trace"
)

// SigmaParam configures GaussianPerturbation (meters).
const SigmaParam = "sigma"

// GaussianPerturbation is a baseline noise LPPM: isotropic Gaussian noise of
// a configurable standard deviation per axis. It provides no differential
// guarantee; the ablation benches contrast it with GEO-I's planar Laplace.
type GaussianPerturbation struct {
	spec ParamSpec
}

// NewGaussianPerturbation returns the mechanism with σ ∈ [1 m, 20 km].
func NewGaussianPerturbation() *GaussianPerturbation {
	return &GaussianPerturbation{
		spec: ParamSpec{Name: SigmaParam, Unit: "m", Min: 1, Max: 2e4, Default: 100, LogScale: true},
	}
}

// Name implements Mechanism.
func (g *GaussianPerturbation) Name() string { return "gaussian" }

// Params implements Mechanism.
func (g *GaussianPerturbation) Params() []ParamSpec { return []ParamSpec{g.spec} }

// Protect implements Mechanism.
func (g *GaussianPerturbation) Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error) {
	sigma, err := p.Get(SigmaParam)
	if err != nil {
		return nil, err
	}
	if err := g.spec.Validate(sigma); err != nil {
		return nil, err
	}
	out := t.Clone()
	for i := range out.Records {
		east, north := stat.SampleGaussian2D(r, sigma)
		out.Records[i].Point = out.Records[i].Point.Offset(east, north)
	}
	return out, nil
}

// CellSizeParam configures GridCloaking (meters).
const CellSizeParam = "cell_size"

// GridCloaking is a spatial-generalization LPPM: every location is snapped
// to the center of its enclosing grid cell, so all points inside a cell
// become indistinguishable. The grid is anchored at a data-independent
// origin (the whole-degree corner below the trace) so that all of a user's
// records share one tessellation.
type GridCloaking struct {
	spec ParamSpec
}

// NewGridCloaking returns the mechanism with cell sizes from 10 m to 20 km.
func NewGridCloaking() *GridCloaking {
	return &GridCloaking{
		spec: ParamSpec{Name: CellSizeParam, Unit: "m", Min: 10, Max: 2e4, Default: 500, LogScale: true},
	}
}

// Name implements Mechanism.
func (g *GridCloaking) Name() string { return "cloaking" }

// Params implements Mechanism.
func (g *GridCloaking) Params() []ParamSpec { return []ParamSpec{g.spec} }

// Protect implements Mechanism. It is deterministic; r is unused.
func (g *GridCloaking) Protect(t *trace.Trace, p Params, _ *rng.Source) (*trace.Trace, error) {
	size, err := p.Get(CellSizeParam)
	if err != nil {
		return nil, err
	}
	if err := g.spec.Validate(size); err != nil {
		return nil, err
	}
	out := t.Clone()
	if len(out.Records) == 0 {
		return out, nil
	}
	first := out.Records[0].Point
	origin := geo.Point{Lat: math.Floor(first.Lat), Lng: math.Floor(first.Lng)}
	grid := geo.NewGrid(origin, size)
	for i := range out.Records {
		out.Records[i].Point = grid.SnapToCellCenter(out.Records[i].Point)
	}
	return out, nil
}

// PeriodSecParam configures TemporalSampling (seconds).
const PeriodSecParam = "period_sec"

// TemporalSampling is a data-minimization LPPM: it keeps at most one record
// per period, hiding dwell durations and densities rather than locations.
type TemporalSampling struct {
	spec ParamSpec
}

// NewTemporalSampling returns the mechanism with periods from 1 s to 24 h.
func NewTemporalSampling() *TemporalSampling {
	return &TemporalSampling{
		spec: ParamSpec{Name: PeriodSecParam, Unit: "s", Min: 1, Max: 86400, Default: 300, LogScale: true},
	}
}

// Name implements Mechanism.
func (s *TemporalSampling) Name() string { return "sampling" }

// Params implements Mechanism.
func (s *TemporalSampling) Params() []ParamSpec { return []ParamSpec{s.spec} }

// Protect implements Mechanism. It is deterministic; r is unused.
func (s *TemporalSampling) Protect(t *trace.Trace, p Params, _ *rng.Source) (*trace.Trace, error) {
	period, err := p.Get(PeriodSecParam)
	if err != nil {
		return nil, err
	}
	if err := s.spec.Validate(period); err != nil {
		return nil, err
	}
	return t.Resample(time.Duration(period * float64(time.Second))), nil
}

// Identity is the no-op LPPM: it publishes the raw trace. It anchors the
// privacy/utility extremes in comparison experiments.
type Identity struct{}

// Name implements Mechanism.
func (Identity) Name() string { return "identity" }

// Params implements Mechanism.
func (Identity) Params() []ParamSpec { return nil }

// Protect implements Mechanism.
func (Identity) Protect(t *trace.Trace, _ Params, _ *rng.Source) (*trace.Trace, error) {
	return t.Clone(), nil
}
