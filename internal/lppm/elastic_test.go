package lppm

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// mkDenseSparsTrace builds a trace that spends most records clustered at
// basePt (dense cell) and a few records far away (sparse cells).
func mkDenseSparseTrace(t *testing.T, denseN, sparseN int) *trace.Trace {
	t.Helper()
	var recs []trace.Record
	at := t0
	for i := 0; i < denseN; i++ {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: basePt.Offset(float64(i%5)*10, 0)})
		at = at.Add(time.Minute)
	}
	for i := 0; i < sparseN; i++ {
		recs = append(recs, trace.Record{User: "u1", Time: at, Point: basePt.Offset(8000+float64(i)*3000, 5000)})
		at = at.Add(time.Minute)
	}
	tr, err := trace.NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestElasticZeroElasticityMatchesGeoI(t *testing.T) {
	tr := mkTrace(t, "u1", 30)
	e := NewElasticGeoInd()
	g := NewGeoIndistinguishability()
	outE, err := e.Protect(tr, Params{EpsilonParam: 0.01, ElasticityParam: 0}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	outG, err := g.Protect(tr, Params{EpsilonParam: 0.01}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range outE.Records {
		if outE.Records[i].Point != outG.Records[i].Point {
			t.Fatalf("elasticity 0 must reproduce GEO-I exactly; record %d differs", i)
		}
	}
}

func TestElasticSparseCellsGetMoreNoise(t *testing.T) {
	tr := mkDenseSparseTrace(t, 200, 8)
	e := NewElasticGeoInd()
	p := Params{EpsilonParam: 0.02, ElasticityParam: 8}
	// Average displacement over repeated runs, separately for dense and
	// sparse records.
	var denseSum, sparseSum float64
	var denseN, sparseN int
	for rep := 0; rep < 20; rep++ {
		out, err := e.Protect(tr, p, rng.New(int64(rep)))
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range out.Records {
			d := geo.Haversine(tr.Records[i].Point, rec.Point)
			if geo.Haversine(tr.Records[i].Point, basePt) < 1000 {
				denseSum += d
				denseN++
			} else {
				sparseSum += d
				sparseN++
			}
		}
	}
	dense := denseSum / float64(denseN)
	sparse := sparseSum / float64(sparseN)
	if sparse < 2*dense {
		t.Errorf("sparse cells got %.0f m mean noise vs dense %.0f m; want ≥ 2× more", sparse, dense)
	}
}

func TestElasticNoiseFloorIsNominalEpsilon(t *testing.T) {
	// In the densest cell ε_eff = ε, so mean displacement there should be
	// close to GEO-I's 2/ε.
	tr := mkDenseSparseTrace(t, 300, 5)
	e := NewElasticGeoInd()
	eps := 0.05
	var sum float64
	var n int
	for rep := 0; rep < 30; rep++ {
		out, err := e.Protect(tr, Params{EpsilonParam: eps, ElasticityParam: 4}, rng.New(int64(100+rep)))
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range out.Records {
			if geo.Haversine(tr.Records[i].Point, basePt) < 200 {
				sum += geo.Haversine(tr.Records[i].Point, rec.Point)
				n++
			}
		}
	}
	mean := sum / float64(n)
	want := 2 / eps
	if mean < 0.8*want || mean > 1.3*want {
		t.Errorf("dense-cell mean displacement %.1f m, want ≈ %.1f (2/ε)", mean, want)
	}
}

func TestElasticEmptyTrace(t *testing.T) {
	e := NewElasticGeoInd()
	empty := &trace.Trace{User: "u1"}
	out, err := e.Protect(empty, Params{EpsilonParam: 0.01, ElasticityParam: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty trace should stay empty, got %d records", out.Len())
	}
}

func TestElasticParamValidation(t *testing.T) {
	e := NewElasticGeoInd()
	tr := mkTrace(t, "u1", 5)
	if _, err := e.Protect(tr, Params{EpsilonParam: 0.01}, rng.New(1)); err == nil {
		t.Error("missing elasticity should fail")
	}
	if _, err := e.Protect(tr, Params{ElasticityParam: 1}, rng.New(1)); err == nil {
		t.Error("missing epsilon should fail")
	}
	if _, err := e.Protect(tr, Params{EpsilonParam: 5, ElasticityParam: 1}, rng.New(1)); err == nil {
		t.Error("out-of-range epsilon should fail")
	}
	if len(e.Params()) != 2 {
		t.Errorf("elastic should declare 2 params, got %d", len(e.Params()))
	}
}
