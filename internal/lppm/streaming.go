package lppm

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
)

// UserStream adapts a trace-at-a-time Mechanism to online, record-at-a-time
// operation for a single user. Records are buffered and protected in windows:
// Push appends, Flush protects the pending window as a mini-trace and
// returns the protected records.
//
// The stream owns one persistent random source. Mechanisms that consume
// randomness strictly per record in order (GEO-I, Gaussian perturbation)
// therefore produce bit-identical output whether a trace is protected in one
// batch or streamed through any window split; deterministic mechanisms
// (rounding, cloaking, identity) are trivially window-invariant. Windowed
// mechanisms (Promesse, sampling) remain usable online but see each window
// independently.
//
// Failures are deterministic: a Flush whose mechanism errors rewinds the
// random source to its pre-flush position (see Flush), so an error consumes
// no randomness and cannot silently break the stream ≡ batch bit-identity.
//
// A UserStream is not safe for concurrent use; the gateway gives each user
// to exactly one shard.
type UserStream struct {
	mech    Mechanism
	params  Params
	r       *rng.Source
	user    string
	pending []trace.Record
}

// NewUserStream validates the parameters and returns a stream for the given
// user, drawing all randomness from r.
func NewUserStream(m Mechanism, p Params, user string, r *rng.Source) (*UserStream, error) {
	if user == "" {
		return nil, fmt.Errorf("lppm: stream for empty user id")
	}
	if r == nil {
		return nil, fmt.Errorf("lppm: stream for %q needs a random source", user)
	}
	if err := ValidateParams(m, p); err != nil {
		return nil, err
	}
	return &UserStream{mech: m, params: p.Clone(), r: r, user: user}, nil
}

// User returns the stream's user identifier.
func (s *UserStream) User() string { return s.user }

// Pos returns the stream's random-source draw position. Together with
// the pending buffer it is the stream's complete resumable state: a
// stream rebuilt by RestoreUserStream from (Pos, PendingRecords) is
// bit-identical to this one for all future operations.
func (s *UserStream) Pos() uint64 { return s.r.Pos() }

// Pending returns the number of buffered, not-yet-protected records.
func (s *UserStream) Pending() int { return len(s.pending) }

// PendingRecords returns the buffered, not-yet-protected records. The slice
// aliases the stream's buffer and is valid only until the next Push, Flush
// or Discard; callers that keep it (the gateway's sampling tap) must copy.
func (s *UserStream) PendingRecords() []trace.Record { return s.pending }

// Reconfigure swaps the stream's mechanism and parameter assignment, keeping
// the pending buffer and the random source: no record is lost and the
// stream's draw sequence continues uninterrupted. A nil mechanism keeps the
// current one. The new assignment takes effect at the next Flush, so a
// caller that reconfigures only between flushes — as the gateway does at
// window boundaries — preserves the invariant that every emitted window was
// protected under exactly one parameter set.
func (s *UserStream) Reconfigure(m Mechanism, p Params) error {
	if m == nil {
		m = s.mech
	}
	// Assignment-strict, like every other reconfiguration entry point: a
	// misspelled parameter name must fail, not ride along ignored.
	if err := ValidateAssignment(m, p); err != nil {
		return err
	}
	s.mech = m
	s.params = p.Clone()
	return nil
}

// RestoreUserStream rebuilds a stream from checkpointed state: it
// creates the stream, seeks the (freshly seeded) random source to the
// journaled draw position, and re-buffers the pending window. The
// result is bit-identical to the stream the checkpoint described — same
// future draws, same window split — which is the foundation of the
// crash-recovery equivalence proof (DESIGN.md §13). The SeekTo replays
// r from its seed, so restore cost grows with stream age; recovery pays
// it lazily, per returning user (see internal/service).
func RestoreUserStream(m Mechanism, p Params, user string, r *rng.Source, pos uint64, pending []trace.Record) (*UserStream, error) {
	s, err := NewUserStream(m, p, user, r)
	if err != nil {
		return nil, err
	}
	if cur := r.Pos(); cur > pos {
		return nil, fmt.Errorf("lppm: restore %s: source already at draw %d, past checkpoint %d", user, cur, pos)
	}
	r.SeekTo(pos)
	for _, rec := range pending {
		if err := s.Push(rec); err != nil {
			return nil, fmt.Errorf("lppm: restore %s: %w", user, err)
		}
	}
	return s, nil
}

// Push buffers one record. Records of other users are rejected.
func (s *UserStream) Push(rec trace.Record) error {
	if rec.User != s.user {
		return fmt.Errorf("lppm: record of %q pushed to stream of %q", rec.User, s.user)
	}
	s.pending = append(s.pending, rec)
	return nil
}

// Flush protects the pending window and returns the protected records in
// time order, clearing the buffer. An empty buffer flushes to nil.
//
// Failure is deterministic: on error the buffer is retained and the random
// source is rewound to its pre-flush position, so a failed flush consumes
// no randomness. A retry therefore replays exactly the draws the first
// attempt saw, and the documented stream ≡ batch bit-identity survives
// transient mechanism failures; a caller that will not retry should Discard
// instead. The rewind replays the source from its seed (rng.SeekTo), so
// its cost grows with the stream's age — a deliberate trade: mechanism
// errors are a cold path (parameters are validated up front), and the
// no-randomness-consumed invariant is what keeps failure reproducible.
func (s *UserStream) Flush() ([]trace.Record, error) {
	if len(s.pending) == 0 {
		return nil, nil
	}
	t, err := trace.NewTrace(s.user, s.pending)
	if err != nil {
		return nil, err
	}
	pos := s.r.Pos()
	pt, err := s.mech.Protect(t, s.params, s.r)
	if err != nil {
		s.r.SeekTo(pos)
		return nil, fmt.Errorf("lppm: stream flush for %s: %w", s.user, err)
	}
	s.pending = s.pending[:0]
	return pt.Records, nil
}

// Discard drops the pending window, returning how many records were
// discarded. Callers that will not retry a failed Flush use it so the same
// records are not counted again by the next window.
func (s *UserStream) Discard() int {
	n := len(s.pending)
	s.pending = s.pending[:0]
	return n
}
