package lppm

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// WalkersParam configures DummyInjection: the number of synthetic decoy
// walkers whose records are interleaved with the real trace.
const WalkersParam = "walkers"

// DummyInjection is the classic decoy LPPM (Kido et al., ICPS'05 lineage):
// the published trace mixes the user's real records with the records of k
// synthetic "walkers" moving plausibly through the same area over the same
// time window — an adversary must first decide which records are real.
// Dummy walkers dwell occasionally so they also deposit fake stay points
// into POI extractors.
//
// The mechanism publishes everything under the user's identity (that is the
// point: the server cannot tell records apart), so protected traces grow by
// a factor of k+1. It trades bandwidth and server-side quality for
// plausible deniability instead of perturbing true locations — a third
// behavioural family alongside noise (GEO-I) and generalization (cloaking),
// which is what makes it worth modeling.
type DummyInjection struct {
	spec ParamSpec
}

// NewDummyInjection returns the mechanism with 1–32 dummy walkers.
func NewDummyInjection() *DummyInjection {
	return &DummyInjection{
		spec: ParamSpec{Name: WalkersParam, Unit: "walkers", Min: 1, Max: 32, Default: 4, LogScale: true},
	}
}

// Name implements Mechanism.
func (*DummyInjection) Name() string { return "dummies" }

// Params implements Mechanism.
func (m *DummyInjection) Params() []ParamSpec { return []ParamSpec{m.spec} }

// Protect implements Mechanism. A fractional walkers value rounds down, so
// log-scale sweep grids remain valid on this discrete parameter.
func (m *DummyInjection) Protect(t *trace.Trace, p Params, r *rng.Source) (*trace.Trace, error) {
	v, err := p.Get(WalkersParam)
	if err != nil {
		return nil, err
	}
	if err := m.spec.Validate(v); err != nil {
		return nil, err
	}
	k := int(v)
	out := t.Clone()
	if len(t.Records) < 2 {
		return out, nil
	}
	box, ok := geo.NewBBox(t.Points())
	if !ok {
		// Unreachable behind the len check above; fail safe as a no-op.
		return out, nil
	}
	// Give walkers room around the real trace so decoys do not trivially
	// outline it.
	area := box.Buffer(1000)
	for w := 0; w < k; w++ {
		walker := r.Split(int64(w))
		out.Records = append(out.Records, dummyWalk(t, area, walker)...)
	}
	sort.SliceStable(out.Records, func(i, j int) bool { return out.Records[i].Time.Before(out.Records[j].Time) })
	return out, nil
}

// dummyWalk synthesizes one decoy walker: it follows the real trace's
// timestamps, moving between random waypoints inside area at a plausible
// urban speed and dwelling at some waypoints long enough to look like a
// stay.
func dummyWalk(t *trace.Trace, area geo.BBox, r *rng.Source) []trace.Record {
	const (
		speedMPS      = 8.0 // brisk urban driving average
		dwellProb     = 0.3 // chance a reached waypoint becomes a fake stay
		minDwell      = 5 * time.Minute
		maxDwell      = 40 * time.Minute
		arriveEpsilon = 30.0 // meters at which a waypoint counts as reached
	)
	pos := randPointIn(area, r)
	dest := randPointIn(area, r)
	var dwellUntil time.Time
	records := make([]trace.Record, 0, len(t.Records))
	prevTime := t.Records[0].Time
	for _, rec := range t.Records {
		dt := rec.Time.Sub(prevTime).Seconds()
		prevTime = rec.Time
		if rec.Time.Before(dwellUntil) {
			// Parked at a fake stay: deposit the same position.
			records = append(records, trace.Record{User: t.User, Time: rec.Time, Point: pos})
			continue
		}
		if dist := geo.Haversine(pos, dest); dist <= arriveEpsilon {
			if r.Float64() < dwellProb {
				dwell := minDwell + time.Duration(r.Float64()*float64(maxDwell-minDwell))
				dwellUntil = rec.Time.Add(dwell)
			}
			dest = randPointIn(area, r)
		} else if dt > 0 {
			step := speedMPS * dt
			if step > dist {
				step = dist
			}
			pos = pos.Destination(step, pos.BearingTo(dest))
		}
		records = append(records, trace.Record{User: t.User, Time: rec.Time, Point: pos})
	}
	return records
}

// randPointIn draws a uniform point inside the bounding box.
func randPointIn(b geo.BBox, r *rng.Source) geo.Point {
	return geo.Point{
		Lat: b.MinLat + r.Float64()*(b.MaxLat-b.MinLat),
		Lng: b.MinLng + r.Float64()*(b.MaxLng-b.MinLng),
	}
}
