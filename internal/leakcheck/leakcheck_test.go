package leakcheck_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// leakForever blocks in module code until released — the shape Check
// must catch. The frame is in package leakcheck_test, which the
// self-exclusion prefix (trailing dot) deliberately does not cover.
func leakForever(release chan struct{}) {
	<-release
}

func TestCheckCatchesLeakThenClears(t *testing.T) {
	release := make(chan struct{})
	go leakForever(release)
	leaks := leakcheck.Check(100 * time.Millisecond)
	if len(leaks) == 0 {
		t.Fatal("Check missed a goroutine parked in module code")
	}
	found := false
	for _, l := range leaks {
		if strings.Contains(l, "leakForever") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report does not name the parked function:\n%s", leaks)
	}
	close(release)
	if leaks := leakcheck.Check(5 * time.Second); len(leaks) != 0 {
		t.Errorf("Check still reports leaks after release:\n%v", leaks)
	}
}

func TestCheckCleanByDefault(t *testing.T) {
	if leaks := leakcheck.Check(time.Second); len(leaks) != 0 {
		t.Errorf("clean process reported as leaking:\n%v", leaks)
	}
}
