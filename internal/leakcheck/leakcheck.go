// Package leakcheck is the runtime half of the concurrency-invariant
// suite (DESIGN.md §11). The static analyzers in internal/analysis
// (goroleak, wgdiscipline, …) prove spawn-site discipline — every go
// statement has a visible termination path. That proof is structural,
// not temporal: a goroutine can have a perfectly sound exit path that
// a buggy caller simply never triggers (a Close never called, a context
// never canceled, a channel never drained). leakcheck closes that gap
// at test time: after a package's tests finish, it snapshots all
// goroutine stacks and fails the binary if any goroutine is still
// running module code.
//
// Wire it through TestMain, one per test binary:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Detection parses runtime.Stack(all) rather than counting goroutines:
// counting flags unrelated runtime and net/http infrastructure
// (persistConn keep-alives, timer scavengers) that this module neither
// started nor can stop, while stack filtering pins blame to frames
// inside this module. A goroutine blocked in a stdlib primitive still
// shows its module caller frames, so sends, selects, and Waits in
// module code are all caught.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// modulePrefix marks a stack frame as ours: function symbols qualify as
// repro/internal/service.(*Gateway).run, repro/internal/server.…, etc.
const modulePrefix = "repro/"

// selfPrefix excludes leakcheck's own frames (the goroutine running the
// check) and nothing else; the trailing dot keeps sibling packages and
// the leakcheck_test self-test visible.
const selfPrefix = "repro/internal/leakcheck."

// grace is how long Main waits for in-flight goroutines to drain before
// declaring a leak. Tests legitimately return a beat before their
// workers finish (a deferred Close, an http test server tearing down);
// only goroutines that outlive the grace window are stuck, not slow.
const grace = 5 * time.Second

// runner is the subset of *testing.M leakcheck needs; taking the
// interface keeps the testing package out of this (non-test) package's
// import graph.
type runner interface{ Run() int }

// Main runs the package's tests, then fails the binary (exit 1) if any
// goroutine is still executing module code once the grace window
// closes. Leaked stacks are printed in full so the offending spawn site
// is one read away. A failing test run keeps its own exit code; leak
// output is still printed so one debugging session sees both.
func Main(m runner) {
	code := m.Run()
	if leaks := Check(grace); len(leaks) > 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still in module code after tests:\n\n%s\n",
			len(leaks), strings.Join(leaks, "\n\n"))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no goroutine runs module code or the grace window
// expires, then returns the stacks of the stragglers (empty means
// clean). Exported for tests that want a leak gate mid-package rather
// than at binary exit.
func Check(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		leaks := moduleGoroutines()
		if len(leaks) == 0 || time.Now().After(deadline) {
			return leaks
		}
		<-tick.C
	}
}

// moduleGoroutines snapshots every goroutine and keeps the stacks with
// at least one module frame, excluding leakcheck itself.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var leaked []string
	for _, block := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(block, modulePrefix) || strings.Contains(block, selfPrefix) {
			continue
		}
		leaked = append(leaked, strings.TrimSpace(block))
	}
	return leaked
}
