package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(123).Seed(); got != 123 {
		t.Errorf("Seed() = %d, want 123", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c0, c1 := root.Split(0), root.Split(1)
	if c0.Seed() == c1.Seed() {
		t.Fatal("sibling splits must have distinct seeds")
	}
	// Splitting must be stable: same index gives same stream.
	again := New(7).Split(0)
	for i := 0; i < 10; i++ {
		if c0.Float64() != again.Float64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestNamedStreams(t *testing.T) {
	root := New(7)
	a := root.Named("mobility")
	b := root.Named("noise")
	if a.Seed() == b.Seed() {
		t.Fatal("distinct labels must give distinct seeds")
	}
	a2 := New(7).Named("mobility")
	if a.Seed() != a2.Seed() {
		t.Fatal("Named must be deterministic")
	}
}

func TestSplitChildrenUniformish(t *testing.T) {
	// Weak statistical check: child streams should cover [0,1) roughly
	// uniformly in aggregate.
	root := New(99)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += root.Split(int64(i)).Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("child-stream first draws mean %v, want ~0.5", mean)
	}
}

func TestPosCountsDraws(t *testing.T) {
	s := New(5)
	if s.Pos() != 0 {
		t.Fatalf("fresh source Pos = %d, want 0", s.Pos())
	}
	s.Float64()
	s.Int63()
	s.Uint64()
	if s.Pos() == 0 {
		t.Fatal("Pos did not advance with draws")
	}
}

func TestSeekToRewindReplaysIdentically(t *testing.T) {
	s := New(42)
	for i := 0; i < 17; i++ {
		s.Float64()
	}
	pos := s.Pos()
	want := make([]float64, 25)
	for i := range want {
		want[i] = s.Float64()
	}
	// Consume more, including a normal draw, then rewind.
	s.NormFloat64()
	s.Intn(1000)
	s.SeekTo(pos)
	if s.Pos() != pos {
		t.Fatalf("after SeekTo Pos = %d, want %d", s.Pos(), pos)
	}
	for i, w := range want {
		if got := s.Float64(); got != w {
			t.Fatalf("replayed draw %d = %v, want %v", i, got, w)
		}
	}
}

func TestSeekToForward(t *testing.T) {
	a, b := New(9), New(9)
	for i := 0; i < 13; i++ {
		a.Float64()
	}
	b.SeekTo(a.Pos())
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("forward SeekTo must align the streams")
		}
	}
}

func TestSeekToDoesNotChangeSequence(t *testing.T) {
	// The counting wrapper must not alter the underlying stream: a source
	// that seeks to its own position draws exactly what an untouched
	// source draws.
	a, b := New(1234), New(1234)
	for i := 0; i < 50; i++ {
		if i%7 == 0 {
			a.SeekTo(a.Pos())
		}
		if a.Float64() != b.Float64() {
			t.Fatalf("draw %d diverged after no-op SeekTo", i)
		}
	}
}

func TestChildSeedMatchesNamed(t *testing.T) {
	root := New(31)
	if got, want := ChildSeed(31, "controller-sample"), root.Named("controller-sample").Seed(); got != want {
		t.Errorf("ChildSeed = %d, Named seed = %d", got, want)
	}
}

func TestMixUnit(t *testing.T) {
	var sum float64
	const n = 4000
	for i := int64(0); i < n; i++ {
		v := MixUnit(123, i)
		if v < 0 || v >= 1 {
			t.Fatalf("MixUnit(123, %d) = %v outside [0, 1)", i, v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("MixUnit mean %v, want ~0.5", mean)
	}
	if MixUnit(1, 7) != MixUnit(1, 7) {
		t.Error("MixUnit must be a pure function")
	}
	if MixUnit(1, 7) == MixUnit(2, 7) {
		t.Error("distinct seeds should give distinct values")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent indices must produce wildly different seeds.
	s1, s2 := mix(1, 0), mix(1, 1)
	diff := s1 ^ s2
	bits := 0
	for i := 0; i < 64; i++ {
		if diff&(1<<i) != 0 {
			bits++
		}
	}
	if bits < 16 {
		t.Errorf("mix avalanche too weak: only %d differing bits", bits)
	}
}
