package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(123).Seed(); got != 123 {
		t.Errorf("Seed() = %d, want 123", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c0, c1 := root.Split(0), root.Split(1)
	if c0.Seed() == c1.Seed() {
		t.Fatal("sibling splits must have distinct seeds")
	}
	// Splitting must be stable: same index gives same stream.
	again := New(7).Split(0)
	for i := 0; i < 10; i++ {
		if c0.Float64() != again.Float64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestNamedStreams(t *testing.T) {
	root := New(7)
	a := root.Named("mobility")
	b := root.Named("noise")
	if a.Seed() == b.Seed() {
		t.Fatal("distinct labels must give distinct seeds")
	}
	a2 := New(7).Named("mobility")
	if a.Seed() != a2.Seed() {
		t.Fatal("Named must be deterministic")
	}
}

func TestSplitChildrenUniformish(t *testing.T) {
	// Weak statistical check: child streams should cover [0,1) roughly
	// uniformly in aggregate.
	root := New(99)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += root.Split(int64(i)).Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("child-stream first draws mean %v, want ~0.5", mean)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent indices must produce wildly different seeds.
	s1, s2 := mix(1, 0), mix(1, 1)
	diff := s1 ^ s2
	bits := 0
	for i := 0; i < 64; i++ {
		if diff&(1<<i) != 0 {
			bits++
		}
	}
	if bits < 16 {
		t.Errorf("mix avalanche too weak: only %d differing bits", bits)
	}
}
