// Package rng centralizes the repository's pseudo-randomness. Every
// experiment, generator and mechanism draws from an explicit *Source so that
// results are bit-reproducible from a master seed, and parallel workers can
// obtain statistically independent streams via Split without sharing locks.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with a
// splittable-seed discipline: child streams derived via Split or Named are
// independent of the parent's subsequent draws.
//
// A Source is NOT safe for concurrent use; give each goroutine its own via
// Split.
type Source struct {
	*rand.Rand
	seed int64
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split returns the i-th child stream of this source. Children with distinct
// indices, and children of sources with distinct seeds, are independent.
func (s *Source) Split(i int64) *Source {
	return New(mix(s.seed, i))
}

// Named returns a child stream keyed by a string label, useful to decorrelate
// subsystems ("mobility", "noise", ...) without coordinating integer indexes.
func (s *Source) Named(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label)) // fnv never errors
	return New(mix(s.seed, int64(h.Sum64())))
}

// mix combines a seed and a stream index into a well-dispersed child seed
// using the SplitMix64 finalizer.
func mix(seed, i int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
