// Package rng centralizes the repository's pseudo-randomness. Every
// experiment, generator and mechanism draws from an explicit *Source so that
// results are bit-reproducible from a master seed, and parallel workers can
// obtain statistically independent streams via Split without sharing locks.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with a
// splittable-seed discipline: child streams derived via Split or Named are
// independent of the parent's subsequent draws.
//
// A Source also tracks its position — the count of base generator steps
// consumed so far — so callers wrapping fallible randomized operations can
// snapshot the position with Pos and roll a failed attempt back with
// SeekTo, keeping retries bit-identical (the streaming layer's Flush error
// semantics rely on this).
//
// A Source is NOT safe for concurrent use; give each goroutine its own via
// Split.
type Source struct {
	*rand.Rand
	cs   *countingSource
	seed int64
}

// countingSource counts the base generator steps flowing through a
// rand.Source64. Int63 and Uint64 both advance math/rand's generator by
// exactly one step, so a single counter captures the position regardless of
// which entry point rand.Rand uses.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) {
	// Reseeding in place would leave Source.seed stale, so a later
	// SeekTo would replay the original stream instead of the reseeded
	// one — silently breaking the bit-identical-retry contract. No
	// caller needs it; fail loudly instead of corrupting determinism.
	panic("rng: reseeding a Source is not supported; create a new Source with rng.New")
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{Rand: rand.New(cs), cs: cs, seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Pos returns the source's position: how many base generator steps have been
// consumed since creation (or the last SeekTo rewind past this point). Equal
// positions on equal-seeded sources imply identical future draws.
func (s *Source) Pos() uint64 { return s.cs.n }

// SeekTo moves the source to an earlier or later position, as previously
// observed via Pos. Rewinding replays the generator from the seed, so its
// cost is proportional to the target position; it is meant for cold error
// paths (undoing the draws of a failed operation), not hot loops. The
// embedded Rand is rebuilt so no buffered state from the abandoned draws
// survives.
func (s *Source) SeekTo(pos uint64) {
	if pos < s.cs.n {
		s.cs.src = rand.NewSource(s.seed).(rand.Source64)
		s.cs.n = 0
	}
	for s.cs.n < pos {
		s.cs.src.Int63()
		s.cs.n++
	}
	s.Rand = rand.New(s.cs)
}

// Split returns the i-th child stream of this source. Children with distinct
// indices, and children of sources with distinct seeds, are independent.
func (s *Source) Split(i int64) *Source {
	return New(mix(s.seed, i))
}

// Named returns a child stream keyed by a string label, useful to decorrelate
// subsystems ("mobility", "noise", ...) without coordinating integer indexes.
func (s *Source) Named(label string) *Source {
	return New(ChildSeed(s.seed, label))
}

// ChildSeed returns the seed Named(label) would build its child from,
// without allocating the source — for callers that keep many per-key seeds
// (the controller's per-user samplers) and draw from them via MixUnit.
func ChildSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label)) //lppm:allow droppederr -- hash.Hash documents that Write never returns an error
	return mix(seed, int64(h.Sum64()))
}

// MixUnit maps (seed, i) to a uniform value in [0, 1) through the SplitMix64
// finalizer: a stateless, allocation-free draw whose value depends only on
// its arguments, so concurrent callers indexing their own counters get
// sequences independent of interleaving.
func MixUnit(seed, i int64) float64 {
	return float64(uint64(mix(seed, i))>>11) / (1 << 53)
}

// mix combines a seed and a stream index into a well-dispersed child seed
// using the SplitMix64 finalizer.
func mix(seed, i int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
