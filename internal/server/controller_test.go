package server_test

import (
	"context"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

// netLoopFixture is the network twin of the service package's loop
// fixture: a synthetic fleet truncated to exactly two phases per user,
// analyzed and deployed under loose objectives so a mid-stream tightening
// forces a reconfiguration.
type netLoopFixture struct {
	def      core.Definition
	dep      *core.Deployment
	phase1   []trace.Record
	phase2   []trace.Record
	phaseLen int
}

func buildNetLoopFixture(t *testing.T, flushEvery, windowsPerPhase int) *netLoopFixture {
	t.Helper()
	phase := flushEvery * windowsPerPhase
	gen := synth.DefaultConfig()
	gen.NumDrivers = 8
	gen.Duration = 8 * time.Hour
	fleet, err := synth.Generate(gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := trace.NewDataset()
	for _, tr := range fleet.Dataset.Traces() {
		if tr.Len() < 2*phase {
			continue
		}
		nt, err := trace.NewTrace(tr.User, tr.Records[:2*phase])
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(nt)
	}
	if ds.NumUsers() < 4 {
		t.Fatalf("synthetic fleet too sparse: %d users with >= %d records", ds.NumUsers(), 2*phase)
	}
	def := core.Definition{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Privacy:    metrics.MustPOIRetrieval(metrics.DefaultPOIRetrievalConfig()),
		Utility:    metrics.MustAreaCoverage(metrics.DefaultAreaCoverageConfig()),
		GridPoints: 9,
		Repeats:    1,
		Seed:       11,
	}
	analysis, err := core.Analyze(context.Background(), def, ds)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := analysis.Deploy(model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	f := &netLoopFixture{def: def, dep: dep, phaseLen: phase}
	for _, tr := range ds.Traces() {
		f.phase1 = append(f.phase1, tr.Records[:phase]...)
		f.phase2 = append(f.phase2, tr.Records[phase:]...)
	}
	byTime := func(recs []trace.Record) {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	}
	byTime(f.phase1)
	byTime(f.phase2)
	return f
}

// TestControllerUnderNetworkLoad extends TestControllerClosesTheLoop
// through the network path: a drift reconfiguration fires while a
// /v1/stream connection is live, and no window is dropped or double-served
// across the Swap — every record sent over the socket comes back exactly
// once, pre-swap output is bit-identical to a never-swapped server, and
// post-swap output reflects the new parameter at the window boundary.
func TestControllerUnderNetworkLoad(t *testing.T) {
	const (
		flushEvery      = 32
		windowsPerPhase = 3
		gwSeed          = 77
	)
	f := buildNetLoopFixture(t, flushEvery, windowsPerPhase)
	mkCfg := func() service.Config {
		cfg := service.ConfigFromDeployment(f.dep, gwSeed)
		cfg.Shards = 2
		cfg.FlushEvery = flushEvery
		cfg.StageSize = 1
		return cfg
	}

	// Never-swapped baseline, over the same network path.
	baseEnv := newEnv(t, mkCfg(), nil)
	baseline := streamAll(t, baseEnv.cl, append(append([]trace.Record{}, f.phase1...), f.phase2...))

	// Controlled run: gateway + controller, server wired to both.
	gw, err := service.New(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := service.NewController(gw, f.dep, service.ControllerConfig{
		Definition:    f.def,
		Objectives:    model.Objectives{MaxPrivacy: 0.95, MinUtility: 0.10},
		SampleFrac:    1,
		WindowRecords: f.phaseLen,
		MinWindows:    1,
		Tolerance:     0.05,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Gateway: gw, Controller: ctrl, Seed: gwSeed})
	if err != nil {
		t.Fatal(err)
	}
	cl := startServer(t, srv)

	ctx := context.Background()
	st, err := cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]trace.Record)
	var mu sync.Mutex
	var recvN atomic.Int64
	recvDone := make(chan error, 1)
	go func() {
		for {
			rec, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			mu.Lock()
			got[rec.User] = append(got[rec.User], rec)
			mu.Unlock()
			recvN.Add(1)
		}
	}()
	for _, rec := range f.phase1 {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the client has received all of phase 1: every window is
	// flushed, delivered AND observed by the controller's tap (Observe
	// runs before the window is emitted).
	deadline := time.Now().Add(15 * time.Second)
	for recvN.Load() != int64(len(f.phase1)) {
		if time.Now().After(deadline) {
			t.Fatalf("phase-1 records never fully received: %d of %d", recvN.Load(), len(f.phase1))
		}
		time.Sleep(time.Millisecond)
	}

	// The designer tightens the contract mid-stream; the controller's
	// estimates violate it and the drift reconfiguration fires while the
	// stream connection is live.
	tight := model.Objectives{MaxPrivacy: 0.30, MinUtility: 0.65}
	if err := ctrl.SetObjectives(tight); err != nil {
		t.Fatal(err)
	}
	swapped, err := ctrl.Evaluate(ctx)
	if err != nil {
		t.Fatalf("evaluate: %v (stats %+v)", err, ctrl.Stats())
	}
	if !swapped {
		t.Fatalf("tightened objectives did not trigger a reconfiguration (stats %+v)", ctrl.Stats())
	}

	for _, rec := range f.phase2 {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gateway.Dropped != 0 {
		t.Errorf("swap under network load dropped %d records", stats.Gateway.Dropped)
	}
	total := len(f.phase1) + len(f.phase2)
	if stats.Gateway.Emitted != uint64(total) || recvN.Load() != int64(total) {
		t.Errorf("emitted %d, received %d, want %d — no window may be dropped or double-served",
			stats.Gateway.Emitted, recvN.Load(), total)
	}
	if stats.Gateway.Swaps != 1 || stats.Gateway.Generation != 1 {
		t.Errorf("gateway swaps=%d generation=%d, want 1 and 1", stats.Gateway.Swaps, stats.Gateway.Generation)
	}
	if stats.Controller == nil || stats.Controller.Swaps != 1 || stats.Controller.Evaluations == 0 {
		t.Errorf("controller stats %+v, want 1 swap and >= 1 evaluation", stats.Controller)
	}

	for u, want := range baseline {
		gotRecs := got[u]
		if len(gotRecs) != len(want) {
			t.Fatalf("user %s: %d records, want %d", u, len(gotRecs), len(want))
		}
		// Pre-swap: bit-identical to the never-swapped server.
		for i := 0; i < f.phaseLen; i++ {
			if gotRecs[i] != want[i] {
				t.Fatalf("user %s pre-swap record %d diverged from never-swapped run", u, i)
			}
		}
		// Post-swap: same identity and order, different protection.
		changed := 0
		for i := f.phaseLen; i < len(want); i++ {
			if gotRecs[i].User != u || gotRecs[i].Time != want[i].Time {
				t.Fatalf("user %s post-swap record %d lost identity/order", u, i)
			}
			if gotRecs[i] != want[i] {
				changed++
			}
		}
		if changed == 0 {
			t.Errorf("user %s: no post-swap record reflects the reconfigured parameter", u)
		}
	}
}
