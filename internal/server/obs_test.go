package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server/client"
)

// TestStatsMatchesRegistry is the no-drift check of the stats rework: the
// /v1/stats body and the registry must quote the same numbers, because the
// former is now assembled from the latter's Gather.
func TestStatsMatchesRegistry(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(11), nil)
	recs := makeRecords(6, 24)
	streamAll(t, env.cl, recs)

	st, err := env.cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v := obs.NewView(env.gw.Obs().Gather())
	if got, want := st.Gateway.Ingested, uint64(v.Sum("lppm_shard_ingested_total")); got != want {
		t.Errorf("stats ingested = %d, registry says %d", got, want)
	}
	if got, want := st.Gateway.Emitted, uint64(v.Sum("lppm_shard_emitted_total")); got != want {
		t.Errorf("stats emitted = %d, registry says %d", got, want)
	}
	if st.Gateway.Ingested != uint64(len(recs)) {
		t.Errorf("ingested = %d, want %d", st.Gateway.Ingested, len(recs))
	}
	if got, want := st.Server.StreamsTotal, uint64(v.Value("lppm_server_streams_total")); got != want {
		t.Errorf("stats streams_total = %d, registry says %d", got, want)
	}
	if st.Server.StreamsTotal != 1 {
		t.Errorf("streams_total = %d, want 1", st.Server.StreamsTotal)
	}
	if st.Gateway.Shards != 3 {
		t.Errorf("shards = %d, want 3", st.Gateway.Shards)
	}
}

// TestStatsResponseShape is the golden test on the legacy wire contract:
// the exact key paths of /v1/stats must survive the registry-backed
// rewrite, or deployed scrapers break silently.
func TestStatsResponseShape(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(13), nil)
	streamAll(t, env.cl, makeRecords(2, 8))

	resp, err := http.Get(env.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}

	keysOf := func(section string) []string {
		raw, ok := body[section]
		if !ok {
			t.Fatalf("response missing %q section", section)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("section %q not an object: %v", section, err)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	golden := map[string]string{
		"server": "active_streams,draining,dropped_windows,orphan_windows," +
			"rate_limited,streams_rejected,streams_total",
		"gateway": "dropped,emitted,flushes,generation,ingested,reconfigs," +
			"shards,swaps,users",
	}
	for section, want := range golden {
		if got := strings.Join(keysOf(section), ","); got != want {
			t.Errorf("%s keys = %s\nwant       %s", section, got, want)
		}
	}
	if _, ok := body["controller"]; ok {
		t.Error("controller section present without a controller configured")
	}
}

// TestStageHistogramsCoverPipeline drives records end to end and checks
// every stage — ingest, queue, flush, dispatch, write — recorded latency.
func TestStageHistogramsCoverPipeline(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(17), nil)
	streamAll(t, env.cl, makeRecords(4, 32))

	clk := obs.NewStageClock(env.gw.Obs())
	for st := obs.StageIngest; st <= obs.StageWrite; st++ {
		h := clk.Hist(st)
		if h.Count() == 0 {
			t.Errorf("stage %v recorded no observations", st)
			continue
		}
		if h.Quantile(0.5) < 0 {
			t.Errorf("stage %v negative p50", st)
		}
	}
}

// TestEndpointRequestMetrics checks the per-endpoint counters: status
// classes split 2xx from 4xx and the in-flight gauge settles back to zero.
func TestEndpointRequestMetrics(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(19), nil)
	ctx := context.Background()
	if err := env.cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := env.cl.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	// A bad reconfigure body → 4xx on the reconfigure endpoint.
	resp, err := http.Post(env.ts.URL+"/v1/reconfigure", "application/json",
		strings.NewReader(`{"params": {"no-such-param": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 4 {
		t.Fatalf("bad reconfigure answered %d, want 4xx", resp.StatusCode)
	}

	samples := env.gw.Obs().Gather()
	count := func(endpoint, class string) float64 {
		for _, s := range samples {
			if s.Name == "lppm_http_requests_total" &&
				s.Labels["endpoint"] == endpoint && s.Labels["class"] == class {
				return s.Value
			}
		}
		return -1
	}
	if got := count("healthz", "2xx"); got != 1 {
		t.Errorf("healthz 2xx = %v, want 1", got)
	}
	if got := count("stats", "2xx"); got != 1 {
		t.Errorf("stats 2xx = %v, want 1", got)
	}
	if got := count("reconfigure", "4xx"); got != 1 {
		t.Errorf("reconfigure 4xx = %v, want 1", got)
	}
	v := obs.NewView(samples)
	if got := v.Sum("lppm_http_inflight"); got != 0 {
		t.Errorf("in-flight sum = %v after all requests done, want 0", got)
	}
}

// TestClientWithObs checks the client-side instruments: request counters,
// the shared latency histogram type, and the stream record counters.
func TestClientWithObs(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(23), nil)
	reg := obs.NewRegistry()
	cl := client.New(env.ts.URL, client.WithObs(reg))
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(2, 16)
	st, err := cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, r := range recs {
			_ = st.Send(r)
		}
		_ = st.CloseSend()
	}()
	n := 0
	for {
		if _, err := st.Recv(); err != nil {
			break
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("received %d records, want %d", n, len(recs))
	}

	v := obs.NewView(reg.Gather())
	if got := v.Value("lppm_client_stream_sent_total"); got != float64(len(recs)) {
		t.Errorf("sent counter = %v, want %d", got, len(recs))
	}
	if got := v.Value("lppm_client_stream_received_total"); got != float64(len(recs)) {
		t.Errorf("received counter = %v, want %d", got, len(recs))
	}
	var latCount uint64
	for _, s := range reg.Gather() {
		if s.Name == "lppm_client_request_ns" && s.Labels["op"] == "health" {
			latCount = s.Hist.Count
		}
	}
	if latCount != 1 {
		t.Errorf("health latency histogram count = %d, want 1", latCount)
	}
}
