package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// tenantHeader names the request header identifying the tenant for rate
// limiting; absent, the client's host is the tenant.
const tenantHeader = "X-Tenant"

// maxTenantBuckets caps the limiter's tenant table. X-Tenant is
// client-controlled, so without a bound a client rotating tenant names
// would grow the map without limit; past the cap, long-idle buckets are
// evicted first, then arbitrary ones. (An evicted tenant restarts with a
// full burst — rotation therefore also sidesteps the *limit* itself, which
// is inherent to client-supplied identity: deploy behind an auth proxy
// that pins X-Tenant when the rate limit must be adversary-proof.)
const maxTenantBuckets = 4096

// limiter is a per-tenant token bucket: Rate tokens per second refill up to
// Burst, one token per admitted request. nil or zero-rate admits everything.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow takes one token from the tenant's bucket, reporting whether one was
// available. Buckets start full: a tenant's first Burst requests always
// pass, and sustained load settles at Rate per second.
func (l *limiter) allow(tenant string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenantBuckets {
			l.evict(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evict makes room in a full tenant table: idle buckets (no request for a
// second — already refilled past any state worth keeping) go first, and if
// the cap was reached within that second, arbitrary ones follow until a
// quarter of the table is free. Called with the lock held.
func (l *limiter) evict(now time.Time) {
	target := maxTenantBuckets - maxTenantBuckets/4
	for tenant, b := range l.buckets {
		if len(l.buckets) <= target {
			return
		}
		if now.Sub(b.last) > time.Second {
			delete(l.buckets, tenant)
		}
	}
	for tenant := range l.buckets {
		if len(l.buckets) <= target {
			return
		}
		delete(l.buckets, tenant)
	}
}

// tenantOf identifies the requester for rate limiting: the X-Tenant header
// when present, the remote host otherwise.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "default"
}

// allowTenant applies the per-tenant rate limit, answering 429 on refusal.
func (s *Server) allowTenant(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter.allow(tenantOf(r)) {
		return true
	}
	s.rateLimited.Add(1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "server: tenant rate limit exceeded")
	return false
}

// admitUnary is the admission gate for the unary endpoints: rate limit,
// then drain state.
func (s *Server) admitUnary(w http.ResponseWriter, r *http.Request) bool {
	if !s.allowTenant(w, r) {
		return false
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "server: draining")
		return false
	}
	return true
}

// admitStream is the admission gate for /v1/stream: rate limit, drain
// state, then the concurrent-stream cap. On success the stream is counted
// active; the handler decrements on exit.
func (s *Server) admitStream(w http.ResponseWriter, r *http.Request) bool {
	if !s.allowTenant(w, r) {
		return false
	}
	switch s.tryAdmitStream() {
	case admitOK:
		s.streamsTotal.Add(1)
		return true
	case admitDraining:
		httpError(w, http.StatusServiceUnavailable, "server: draining")
		return false
	default: // admitFull
		s.streamsRejected.Add(1)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("server: %d concurrent streams already active", s.cfg.MaxStreams))
		return false
	}
}

type admitResult int

const (
	admitOK admitResult = iota
	admitDraining
	admitFull
)

// tryAdmitStream checks drain state and the stream cap and claims a slot,
// all under one lock hold; the HTTP responses happen after release.
func (s *Server) tryAdmitStream() admitResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return admitDraining
	}
	if s.cfg.MaxStreams > 0 && s.activeStreams >= s.cfg.MaxStreams {
		return admitFull
	}
	s.activeStreams++
	return admitOK
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// healthResponse is GET /healthz's body. Recovery is present when the
// process resumed from a journal: what service.Recover
// reconstructed at startup.
type healthResponse struct {
	Status   string                `json:"status"`
	Recovery *service.RecoveryInfo `json:"recovery,omitempty"`
}

// resumeResponse is GET /v1/resume's body: the journal's progress for one
// user. Known is false (with zero counters) when the journal has no
// checkpoint for the user — a fresh user resumes from zero. In is the
// live absorbed count (never re-send below it to a live server);
// DurableIn is what has reached stable storage (never *trim* below it —
// the write-behind tail between the two can be lost by a crash and must
// then be refilled by resending). With the default per-append fsync the
// two are equal.
type resumeResponse struct {
	User       string `json:"user"`
	Known      bool   `json:"known"`
	Generation uint64 `json:"generation"`
	In         uint64 `json:"in"`
	DurableIn  uint64 `json:"durable_in"`
	Out        uint64 `json:"out"`
	Windows    uint64 `json:"windows"`
}

// reconfigureRequest is POST /v1/reconfigure's body: parameter values
// merged over the serving mechanism's defaults, plus optional per-user
// overrides merged over those.
type reconfigureRequest struct {
	Params    map[string]float64            `json:"params"`
	Overrides map[string]map[string]float64 `json:"overrides,omitempty"`
}

// reconfigureResponse reports the generation the swap produced.
type reconfigureResponse struct {
	Generation uint64 `json:"generation"`
}

// ServerStats are the front-end's own counters in /v1/stats.
type ServerStats struct {
	ActiveStreams   int    `json:"active_streams"`
	StreamsTotal    uint64 `json:"streams_total"`
	StreamsRejected uint64 `json:"streams_rejected"`
	RateLimited     uint64 `json:"rate_limited"`
	OrphanWindows   uint64 `json:"orphan_windows"`
	DroppedWindows  uint64 `json:"dropped_windows"`
	Draining        bool   `json:"draining"`
}

// GatewayStats is the gateway's aggregate snapshot on the wire.
type GatewayStats struct {
	Ingested   uint64 `json:"ingested"`
	Emitted    uint64 `json:"emitted"`
	Flushes    uint64 `json:"flushes"`
	Dropped    uint64 `json:"dropped"`
	Reconfigs  uint64 `json:"reconfigs"`
	Swaps      uint64 `json:"swaps"`
	Generation uint64 `json:"generation"`
	Users      int    `json:"users"`
	Shards     int    `json:"shards"`
}

// ControllerStats is the reconfiguration loop's snapshot on the wire.
type ControllerStats struct {
	WindowsObserved uint64  `json:"windows_observed"`
	RecordsObserved uint64  `json:"records_observed"`
	UsersTracked    int     `json:"users_tracked"`
	Evaluations     uint64  `json:"evaluations"`
	Swaps           uint64  `json:"swaps"`
	LastPrivacy     float64 `json:"last_privacy"`
	LastUtility     float64 `json:"last_utility"`
	LastError       string  `json:"last_error,omitempty"`
}

// StatsResponse is GET /v1/stats's body.
type StatsResponse struct {
	Server     ServerStats      `json:"server"`
	Gateway    GatewayStats     `json:"gateway"`
	Controller *ControllerStats `json:"controller,omitempty"`
}

// statsSnapshot assembles the /v1/stats body from the metric registry —
// the same Gather /metrics serves, so the two surfaces cannot drift. Field
// names are the legacy wire contract; only the backing store changed. A
// disabled registry (obs.Nop, benchmarking) gathers nothing, so that path
// falls back to reading the sources directly.
func (s *Server) statsSnapshot() StatsResponse {
	if s.reg.Disabled() {
		return s.statsDirect()
	}
	v := obs.NewView(s.reg.Gather())
	resp := StatsResponse{
		Server: ServerStats{
			ActiveStreams:   int(v.Value("lppm_server_active_streams")),
			StreamsTotal:    uint64(v.Value("lppm_server_streams_total")),
			StreamsRejected: uint64(v.Value("lppm_server_streams_rejected_total")),
			RateLimited:     uint64(v.Value("lppm_server_rate_limited_total")),
			OrphanWindows:   uint64(v.Value("lppm_server_orphan_windows_total")),
			DroppedWindows:  uint64(v.Value("lppm_server_dropped_windows_total")),
			Draining:        v.Value("lppm_server_draining") != 0,
		},
		Gateway: GatewayStats{
			Ingested:   uint64(v.Sum("lppm_shard_ingested_total")),
			Emitted:    uint64(v.Sum("lppm_shard_emitted_total")),
			Flushes:    uint64(v.Sum("lppm_shard_flushes_total")),
			Dropped:    uint64(v.Sum("lppm_shard_dropped_total")),
			Reconfigs:  uint64(v.Sum("lppm_shard_reconfigs_total")),
			Swaps:      uint64(v.Value("lppm_gateway_swaps_total")),
			Generation: uint64(v.Value("lppm_gateway_generation")),
			Users:      int(v.Sum("lppm_shard_users")),
			Shards:     v.Series("lppm_shard_ingested_total"),
		},
	}
	if s.cfg.Controller != nil {
		cs := &ControllerStats{
			WindowsObserved: uint64(v.Value("lppm_controller_windows_observed_total")),
			RecordsObserved: uint64(v.Value("lppm_controller_records_observed_total")),
			UsersTracked:    int(v.Value("lppm_controller_users_tracked")),
			Evaluations:     uint64(v.Value("lppm_controller_evaluations_total")),
			Swaps:           uint64(v.Value("lppm_controller_swaps_total")),
			LastPrivacy:     finiteOrZero(v.Value("lppm_controller_last_privacy")),
			LastUtility:     finiteOrZero(v.Value("lppm_controller_last_utility")),
		}
		// The error is the one stat with no numeric series; read it from
		// the controller directly.
		if err := s.cfg.Controller.Stats().LastErr; err != nil {
			cs.LastError = err.Error()
		}
		resp.Controller = cs
	}
	return resp
}

// statsDirect assembles the /v1/stats body straight from the sources — the
// fallback when the registry collects nothing.
func (s *Server) statsDirect() StatsResponse {
	s.mu.Lock()
	srv := ServerStats{
		ActiveStreams: s.activeStreams,
		Draining:      s.draining,
	}
	s.mu.Unlock()
	srv.StreamsTotal = s.streamsTotal.Load()
	srv.StreamsRejected = s.streamsRejected.Load()
	srv.RateLimited = s.rateLimited.Load()
	srv.OrphanWindows = s.orphanWindows.Load()
	srv.DroppedWindows = s.droppedWindows.Load()

	gst := s.gw.Stats()
	resp := StatsResponse{
		Server: srv,
		Gateway: GatewayStats{
			Ingested:   gst.Ingested,
			Emitted:    gst.Emitted,
			Flushes:    gst.Flushes,
			Dropped:    gst.Dropped,
			Reconfigs:  gst.Reconfigs,
			Swaps:      gst.Swaps,
			Generation: gst.Generation,
			Users:      gst.Users,
			Shards:     len(gst.PerShard),
		},
	}
	if s.cfg.Controller != nil {
		resp.Controller = controllerStats(s.cfg.Controller.Stats())
	}
	return resp
}

// controllerStats maps the service snapshot to its wire form, stringifying
// the error and squashing non-finite estimates (JSON has no NaN).
func controllerStats(cs service.ControllerStats) *ControllerStats {
	out := &ControllerStats{
		WindowsObserved: cs.WindowsObserved,
		RecordsObserved: cs.RecordsObserved,
		UsersTracked:    cs.UsersTracked,
		Evaluations:     cs.Evaluations,
		Swaps:           cs.Swaps,
		LastPrivacy:     finiteOrZero(cs.LastPrivacy),
		LastUtility:     finiteOrZero(cs.LastUtility),
	}
	if cs.LastErr != nil {
		out.LastError = cs.LastErr.Error()
	}
	return out
}

func finiteOrZero(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeJSON answers with a JSON body, best effort on the write itself. The
// response is flushed explicitly: an answer that refuses a streaming
// request (429/503 on /v1/stream) must reach the client while its request
// body is still in flight — buffered, it would sit behind the server-side
// body drain and deadlock the handshake.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //lppm:allow droppederr -- the response body is best-effort by design: a client gone mid-write has nowhere to report the failure to
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// decodeJSONBody strictly decodes a single JSON object request body.
func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}
