package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/trace"
)

// ResumeInfo is GET /v1/resume's answer: the journal's progress counters
// for one user. In is the record count the live server has absorbed — a
// reconnecting client must not re-send below it, or the mechanism would
// draw fresh randomness for records it already protected. DurableIn is
// the count on stable storage: the buffer must not be trimmed below it,
// because a crash can roll the server back that far. The two split only
// while the journal runs write-behind or group-commits (SyncEvery > 1);
// after a crash-restart the fold equalizes them.
type ResumeInfo struct {
	User       string `json:"user"`
	Known      bool   `json:"known"`
	Generation uint64 `json:"generation"`
	In         uint64 `json:"in"`
	DurableIn  uint64 `json:"durable_in"`
	Out        uint64 `json:"out"`
	Windows    uint64 `json:"windows"`
}

// Resume fetches GET /v1/resume for one user. A server running without a
// journal answers 404 (surfaced as *APIError): resume-by-counter is
// exactly the capability the journal adds.
func (c *Client) Resume(ctx context.Context, user string) (ResumeInfo, error) {
	done := c.track("resume")
	var info ResumeInfo
	err := c.getJSON(ctx, "/v1/resume?user="+url.QueryEscape(user), &info)
	done(err)
	return info, err
}

// Replay fetches GET /v1/replay: the protected records for user with
// absolute output index >= from, from the server's retained-window ring —
// the delivery gap after a disconnect. 410 (as *APIError) means the ring
// no longer reaches back to from.
func (c *Client) Replay(ctx context.Context, user string, from uint64) (recs []trace.Record, err error) {
	done := c.track("replay")
	defer func() { done(err) }()
	path := fmt.Sprintf("/v1/replay?user=%s&from=%d", url.QueryEscape(user), from)
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	if err := trace.ScanRecords(resp.Body, trace.FormatJSONL, func(rec trace.Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return recs, nil
}

// Sleeper waits for d or until ctx is done, whichever comes first. Tests
// inject one to make backoff deterministic and instantaneous.
type Sleeper func(ctx context.Context, d time.Duration) error

// sleepCtx is the default Sleeper: a real timer, stopped on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BackoffConfig shapes a ResumableStream's reconnect schedule: capped
// exponential, delay(n) = min(Base<<n, Max), Retries attempts per outage.
// The zero value means 100ms base, 5s cap, 8 attempts, real sleeping.
type BackoffConfig struct {
	Base    time.Duration
	Max     time.Duration
	Retries int
	Sleep   Sleeper
}

func (b BackoffConfig) withDefaults() BackoffConfig {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Retries <= 0 {
		b.Retries = 8
	}
	if b.Sleep == nil {
		b.Sleep = sleepCtx
	}
	return b
}

// delay is the backoff before attempt n (0-based): Base<<n capped at Max.
func (b BackoffConfig) delay(n int) time.Duration {
	if n >= 62 {
		return b.Max
	}
	d := b.Base << n
	if d <= 0 || d > b.Max {
		d = b.Max
	}
	return d
}

// ResumableStream is a duplex record stream that survives server restarts
// and connection loss. It buffers every record it sends; when the
// underlying stream dies it reconnects with capped exponential backoff and
// resynchronizes against the server's stream journal:
//
//   - /v1/resume reports, per user, how many records the live server has
//     absorbed (in_u) and how many are on stable storage (durable_in_u).
//     The send buffer is trimmed to durable_in_u — a crash can roll the
//     server back that far — and re-sent only from in_u, because
//     re-sending a record the live server already absorbed would draw
//     fresh randomness for it. Records the journal lost to a crash
//     (delivered but above the durable counters) are re-protected
//     deterministically from the checkpointed rng position, so the
//     regenerated duplicates are bit-identical and skipped by exact count.
//   - /v1/replay returns the protected records that were emitted (and
//     journaled) but never delivered; they surface through Recv ahead of
//     live windows, so the application sees every protected record exactly
//     once, byte-identical to an uninterrupted run.
//
// Against a journal-less server (404 on /v1/resume) the helper degrades to
// a count-dedupe fallback: it re-sends everything and drops the first
// delivered_u re-protected records. That keeps counts right after a clean
// server restart but cannot be bit-identical — bit-identity is precisely
// what the journal adds.
//
// One goroutine may call Send/CloseSend while another calls Recv; either
// side may observe a failure first, and reconnection is serialized
// internally. Send buffers grow with the journal's checkpoint lag (at most
// one unflushed window per user once trimmed), not with stream length.
type ResumableStream struct {
	c  *Client
	bo BackoffConfig

	mu        sync.Mutex
	st        *Stream
	gen       uint64 // bumped on every successful reconnect
	sent      map[string][]trace.Record
	base      map[string]uint64 // absolute index of sent[u][0]
	delivered map[string]uint64
	skip      map[string]uint64 // count-dedupe fallback (journal-less)
	order     []string          // users in first-send order
	replayed  []trace.Record    // journal replay awaiting Recv
	sendDone  bool
	closed    bool
	dead      error // terminal failure; all operations return it
}

// ResumableStream opens a resumable duplex stream. The initial dial also
// runs the resync protocol, so a client restarting after its own crash can
// pre-seed nothing and still resume: the server's journal is authoritative
// for what was absorbed.
func (c *Client) ResumableStream(ctx context.Context, bo BackoffConfig) (*ResumableStream, error) {
	r := &ResumableStream{
		c:         c,
		bo:        bo.withDefaults(),
		sent:      make(map[string][]trace.Record),
		base:      make(map[string]uint64),
		delivered: make(map[string]uint64),
		skip:      make(map[string]uint64),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.resyncLocked(ctx); err != nil {
		return nil, err
	}
	return r, nil
}

// Send pushes one record, reconnecting and re-syncing on failure. The
// record is buffered before the wire write, so a mid-send failure is
// covered by the reconnect's resend (journal-trimmed — no double draw).
func (r *ResumableStream) Send(ctx context.Context, rec trace.Record) error {
	if err := r.buffer(rec); err != nil {
		return err
	}
	for {
		st, gen, err := r.current()
		if err != nil {
			return err
		}
		if err := st.Send(rec); err == nil {
			return nil
		}
		covered, err := r.recover(ctx, gen)
		if err != nil {
			return err
		}
		if covered {
			return nil // the resync's resend included rec
		}
	}
}

// CloseSend ends the sending half. After it, a reconnect re-closes the
// fresh stream once the resend is through, so the server's tail flush
// happens exactly once per connection and Recv still ends in io.EOF.
func (r *ResumableStream) CloseSend(ctx context.Context) error {
	r.mu.Lock()
	r.sendDone = true
	r.mu.Unlock()
	for {
		st, gen, err := r.current()
		if err != nil {
			return err
		}
		if err := st.CloseSend(); err == nil {
			return nil
		}
		covered, err := r.recover(ctx, gen)
		if err != nil {
			return err
		}
		if covered {
			return nil // resyncLocked re-closed the fresh stream
		}
	}
}

// Recv returns the next protected record: journal-replayed gap records
// first, then live windows. io.EOF after CloseSend once the tail has
// arrived. A dead stream triggers reconnect with backoff; a stream ended
// by a server drain reconnects the same way, riding out the restart.
func (r *ResumableStream) Recv(ctx context.Context) (trace.Record, error) {
	for {
		if rec, ok := r.popReplayed(); ok {
			return rec, nil
		}
		st, gen, err := r.current()
		if err != nil {
			return trace.Record{}, err
		}
		rec, err := st.Recv()
		if err == nil {
			if !r.admit(rec.User) {
				continue // count-skip: a re-protection of an already delivered record
			}
			return rec, nil
		}
		if errors.Is(err, io.EOF) {
			r.mu.Lock()
			done := r.sendDone
			r.mu.Unlock()
			if done {
				return trace.Record{}, io.EOF
			}
		}
		if _, rerr := r.recover(ctx, gen); rerr != nil {
			return trace.Record{}, rerr
		}
	}
}

// Close abandons the stream without the CloseSend handshake.
func (r *ResumableStream) Close() error {
	r.mu.Lock()
	r.closed = true
	st := r.st
	r.st = nil
	r.mu.Unlock()
	if st != nil {
		return st.Close()
	}
	return nil
}

func (r *ResumableStream) usableLocked() error {
	if r.closed {
		return fmt.Errorf("client: resumable stream closed")
	}
	return r.dead
}

// buffer appends rec to the user's resend buffer before any wire write,
// so a mid-send failure is always covered by the reconnect's resend.
func (r *ResumableStream) buffer(rec trace.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.usableLocked(); err != nil {
		return err
	}
	if _, ok := r.sent[rec.User]; !ok {
		r.order = append(r.order, rec.User)
	}
	r.sent[rec.User] = append(r.sent[rec.User], rec)
	return nil
}

// popReplayed takes the next journal-replayed gap record, if any —
// those are delivered ahead of live windows to preserve per-user order.
func (r *ResumableStream) popReplayed() (trace.Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.replayed) == 0 {
		return trace.Record{}, false
	}
	rec := r.replayed[0]
	r.replayed = r.replayed[1:]
	return rec, true
}

// admit counts one live record for user, reporting false when the
// record is a post-resync re-protection of output already delivered —
// the caller drops it and the pending skip shrinks by one.
func (r *ResumableStream) admit(user string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.skip[user] > 0 {
		r.skip[user]--
		return false
	}
	r.delivered[user]++
	return true
}

// current returns the live stream and its generation, for failure
// attribution in recover.
func (r *ResumableStream) current() (*Stream, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.usableLocked(); err != nil {
		return nil, 0, err
	}
	return r.st, r.gen, nil
}

// recover re-establishes the stream after a failure observed on
// generation gen. If another operation already reconnected (gen moved),
// it reports covered=false and the caller retries on the fresh stream;
// otherwise it runs the backoff loop and reports covered=true — the
// resync's journal-trimmed resend already carried the caller's buffered
// records. Exhausting the backoff schedule poisons the stream.
func (r *ResumableStream) recover(ctx context.Context, gen uint64) (covered bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.usableLocked(); err != nil {
		return false, err
	}
	if r.gen != gen {
		return false, nil
	}
	if r.st != nil {
		_ = r.st.Close() //lppm:allow droppederr -- the stream already failed; closing only releases the dead connection
		r.st = nil
	}
	var lastErr error
	for attempt := 0; attempt < r.bo.Retries; attempt++ {
		if serr := r.bo.Sleep(ctx, r.bo.delay(attempt)); serr != nil {
			r.dead = serr
			return false, serr
		}
		lastErr = r.resyncLocked(ctx)
		if lastErr == nil {
			return true, nil
		}
		var apiErr *APIError
		if errors.As(lastErr, &apiErr) && apiErr.Status == http.StatusGone {
			break // the replay ring no longer covers our gap: unrecoverable
		}
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
	}
	r.dead = fmt.Errorf("client: resume failed after %d attempts: %w", r.bo.Retries, lastErr)
	return false, r.dead
}

// resyncLocked runs one resume round: query the journal's durable
// per-user counters, fetch the undelivered replay gap, dial a fresh
// stream, re-send the unabsorbed tail of each user's buffer, and re-close
// the sending half if CloseSend already happened. Called with mu held;
// the HTTP round trips inside are bounded by the server answering or ctx.
func (r *ResumableStream) resyncLocked(ctx context.Context) error {
	resend := make(map[string][]trace.Record, len(r.sent))
	for _, u := range r.order {
		info, err := r.c.Resume(ctx, u)
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				// Journal-less server: full resend, count-based dedupe.
				resend[u] = r.sent[u]
				r.skip[u] = r.delivered[u]
				continue
			}
			return err
		}
		// Trim the buffer only below the durable count: everything above
		// DurableIn could be rolled back by a crash and must stay
		// resendable. base tracks the absolute index of the buffer head so
		// repeated trims compose.
		if info.DurableIn > r.base[u] {
			cut := info.DurableIn - r.base[u]
			if cut > uint64(len(r.sent[u])) {
				cut = uint64(len(r.sent[u]))
			}
			r.sent[u] = r.sent[u][cut:]
			r.base[u] += cut
		}
		// Re-send only from the live absorbed count: a server that kept
		// running (plain disconnect) already protected [DurableIn, In) and
		// must not see those records twice. After a crash In == DurableIn,
		// so the whole retained buffer goes back out.
		start := uint64(0)
		if info.In > r.base[u] {
			start = info.In - r.base[u]
			if start > uint64(len(r.sent[u])) {
				start = uint64(len(r.sent[u]))
			}
		}
		resend[u] = r.sent[u][start:]
		if info.Known && r.delivered[u] < info.Out {
			gap, err := r.c.Replay(ctx, u, r.delivered[u])
			if err != nil {
				return err
			}
			r.replayed = append(r.replayed, gap...)
			r.delivered[u] += uint64(len(gap))
		}
		// A group-commit journal (SyncEvery > 1) can lose its unsynced
		// tail in a crash, so the restarted server regenerates windows we
		// already delivered. Re-protection from the checkpointed rng
		// position is deterministic, so the regenerated records are
		// bit-identical and skipping them by count is exact — unlike the
		// journal-less fallback above, where the skipped output is merely
		// positionally equivalent. Assign rather than accumulate: a skip
		// pending from a previous resync counted duplicates on a stream
		// that no longer exists.
		if r.delivered[u] > info.Out {
			r.skip[u] = r.delivered[u] - info.Out
		} else {
			r.skip[u] = 0
		}
	}
	st, err := r.c.Stream(ctx)
	if err != nil {
		return err
	}
	for _, u := range r.order {
		for _, rec := range resend[u] {
			if err := st.Send(rec); err != nil {
				_ = st.Close() //lppm:allow droppederr -- the dial is being abandoned; err (returned) is the primary failure
				return err
			}
		}
	}
	if r.sendDone {
		if err := st.CloseSend(); err != nil {
			_ = st.Close() //lppm:allow droppederr -- the dial is being abandoned; err (returned) is the primary failure
			return err
		}
	}
	r.st = st
	r.gen++
	return nil
}
