package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Regression for the WaitHealthy timer leak: the poll loop used
// time.After inside the retry loop, allocating a fresh 10 ms timer per
// probe and abandoning it. The loop now hoists one NewTicker and stops
// it on exit (enforced statically by the timeleak analyzer); these
// tests pin the behavior around that rewrite.

func TestWaitHealthyRetriesUntilReady(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := New(srv.URL).WaitHealthy(ctx); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}
	if got := calls.Load(); got < 3 {
		t.Fatalf("server answered after %d probes, want at least 3 (two 503s then ok)", got)
	}
}

func TestWaitHealthyHonorsCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "never ready", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- New(srv.URL).WaitHealthy(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WaitHealthy returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitHealthy did not return after cancellation")
	}
}
