// Package client is the typed Go client for the protection server
// (internal/server): a duplex record stream over POST /v1/stream, unary
// batch protection, and the control-plane endpoints. It speaks the same
// trace-package JSONL codec as the server and the file path, so a client
// round trip adds no serialization of its own.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/trace"
)

// APIError is a non-2xx answer from the server, carrying its JSON error
// body when one was sent.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("server answered %d", e.Status)
	}
	return fmt.Sprintf("server answered %d: %s", e.Status, e.Msg)
}

// Client talks to one protection server. Safe for concurrent use; each
// Stream is its own connection.
type Client struct {
	base   string
	hc     *http.Client
	tenant string
	met    map[string]*opMetrics
	sent   *obs.Counter
	recv   *obs.Counter
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports). The default client has no timeout: streams are long-lived.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant sets the X-Tenant header on every request — the identity the
// server's token buckets meter.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// WithObs registers client-side metrics on reg: per-operation request and
// error counts, request latency as the same power-of-two histogram type the
// server's stage clock uses (so client reports and server self-reports
// quote comparable quantiles), and stream record counters.
func WithObs(reg *obs.Registry) Option {
	return func(c *Client) {
		if reg == nil || reg.Disabled() {
			return
		}
		c.met = make(map[string]*opMetrics)
		for _, op := range []string{"health", "stats", "deployment", "reconfigure", "protect", "stream", "resume", "replay"} {
			l := obs.Labels{"op": op}
			c.met[op] = &opMetrics{
				reqs: reg.Counter("lppm_client_requests_total", "client requests issued", l),
				errs: reg.Counter("lppm_client_errors_total", "client requests that failed", l),
				lat:  reg.Histogram("lppm_client_request_ns", "client-observed request latency in nanoseconds", l),
			}
		}
		c.sent = reg.Counter("lppm_client_stream_sent_total", "records pushed into streams", nil)
		c.recv = reg.Counter("lppm_client_stream_received_total", "protected records received from streams", nil)
	}
}

// opMetrics is one operation's pre-registered client instruments.
type opMetrics struct {
	reqs, errs *obs.Counter
	lat        *obs.Histogram
}

// track starts one operation's measurement; call the result with the
// operation's outcome. A client without WithObs records nothing.
func (c *Client) track(op string) func(error) {
	m := c.met[op]
	if m == nil {
		return func(error) {}
	}
	start := obs.Stamp()
	return func(err error) {
		m.reqs.Inc()
		if err != nil {
			m.errs.Inc()
		}
		m.lat.Observe(obs.Stamp() - start)
	}
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the server address the client talks to.
func (c *Client) BaseURL() string { return c.base }

// apiError reads a failed response's JSON body into an APIError.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16)) //lppm:allow droppederr -- the response is already a failure; a truncated body only degrades the message, and the status code survives regardless
	if json.Unmarshal(raw, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	return &APIError{Status: resp.StatusCode, Msg: body.Error}
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	// W3C trace propagation: a caller that put a span or a bare span
	// context in ctx (tracing.ContextWithSpanContext) gets it injected
	// as a traceparent header, so the server's spans for this request —
	// and, on a stream, every window of its users — join the caller's
	// trace.
	if sc := tracing.FromContext(ctx); sc.Valid() {
		req.Header.Set(tracing.Header, sc.Traceparent())
	}
	return req, nil
}

// getJSON performs a GET and decodes the JSON answer.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Health checks GET /healthz, returning nil while the server serves and an
// *APIError once it drains.
func (c *Client) Health(ctx context.Context) error {
	done := c.track("health")
	var h struct {
		Status string `json:"status"`
	}
	err := c.getJSON(ctx, "/healthz", &h)
	done(err)
	return err
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	done := c.track("stats")
	var st server.StatsResponse
	err := c.getJSON(ctx, "/v1/stats", &st)
	done(err)
	return st, err
}

// Deployment fetches GET /v1/deployment: the serving generation and
// parameter assignment, in the gateway's own wire type.
func (c *Client) Deployment(ctx context.Context) (service.DeploymentInfo, error) {
	done := c.track("deployment")
	var d service.DeploymentInfo
	err := c.getJSON(ctx, "/v1/deployment", &d)
	done(err)
	return d, err
}

// Reconfigure triggers POST /v1/reconfigure: a manual hot-swap to the
// given parameter values (merged over mechanism defaults), with optional
// per-user overrides. Returns the new serving generation.
func (c *Client) Reconfigure(ctx context.Context, params map[string]float64, overrides map[string]map[string]float64) (gen uint64, err error) {
	done := c.track("reconfigure")
	defer func() { done(err) }()
	body, err := json.Marshal(struct {
		Params    map[string]float64            `json:"params"`
		Overrides map[string]map[string]float64 `json:"overrides,omitempty"`
	}{params, overrides})
	if err != nil {
		return 0, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/reconfigure", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Generation, nil
}

// Protect runs a unary batch through POST /v1/protect and returns the
// protected records (grouped per user, each user's records in time order —
// the dataset iteration order of the batch path).
func (c *Client) Protect(ctx context.Context, recs []trace.Record) (protected []trace.Record, err error) {
	done := c.track("protect")
	defer func() { done(err) }()
	var buf bytes.Buffer
	rw, err := trace.NewRecordWriter(&buf, trace.FormatJSONL)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := rw.Write(rec); err != nil {
			return nil, err
		}
	}
	if err := rw.Flush(); err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/protect", &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out []trace.Record
	if err := trace.ScanRecords(resp.Body, trace.FormatJSONL, func(rec trace.Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Stream is one duplex record stream: Send pushes records to the gateway,
// Recv pulls protected records as their windows flush. Send and Recv may
// run on different goroutines (and must, for flows larger than the
// transport buffers — the server applies backpressure). Finish with
// CloseSend then drain Recv until io.EOF.
type Stream struct {
	pw   *io.PipeWriter
	rw   *trace.RecordWriter
	resp *http.Response

	recs    chan trace.Record
	readErr error // set before recs closes

	sent *obs.Counter // nil without WithObs
	recv *obs.Counter
}

// Stream opens POST /v1/stream. It returns once the server has admitted
// the stream (headers received); admission refusals (429, 503) surface as
// *APIError.
func (c *Client) Stream(ctx context.Context) (st *Stream, err error) {
	done := c.track("stream") // measures the admission handshake
	defer func() { done(err) }()
	pr, pw := io.Pipe()
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close()
		return nil, apiError(resp)
	}
	rw, err := trace.NewRecordWriter(pw, trace.FormatJSONL)
	if err != nil {
		pw.Close()
		resp.Body.Close() //lppm:allow droppederr -- best-effort abort of a stream that never started; err already carries the cause
		return nil, err
	}
	st = &Stream{pw: pw, rw: rw, resp: resp, recs: make(chan trace.Record, 64), sent: c.sent, recv: c.recv}
	go st.decodeLoop() //lppm:allow goroleak -- sends on st.recs until EOF; the Stream contract (Recv-until-nil or Close, whose drainer empties recs) guarantees a receiver
	return st, nil
}

// decodeLoop scans the response into the Recv channel, then records the
// terminal state: a scan error, or the server's X-Stream-Error trailer
// (readable only after the body hits EOF).
func (st *Stream) decodeLoop() {
	err := trace.ScanRecords(st.resp.Body, trace.FormatJSONL, func(rec trace.Record) error {
		if st.recv != nil {
			st.recv.Inc()
		}
		st.recs <- rec
		return nil
	})
	if err == nil {
		if msg := st.resp.Trailer.Get("X-Stream-Error"); msg != "" {
			err = fmt.Errorf("server: stream ended: %s", msg)
		}
	}
	st.readErr = err
	close(st.recs)
}

// Send pushes one record into the stream. It blocks while the server
// exerts backpressure. Interleave with Recv (or run Recv on its own
// goroutine): the response windows must keep draining for sends to make
// progress on a saturated gateway.
func (st *Stream) Send(rec trace.Record) error {
	if err := st.rw.Write(rec); err != nil {
		return err
	}
	if st.sent != nil {
		st.sent.Inc()
	}
	// Flush per record: the pipe has no liveness of its own, and a
	// buffered tail would stall a quiet stream's windows indefinitely.
	return st.rw.Flush()
}

// CloseSend ends the request body: the server flushes this connection's
// pending windows and closes the response after delivering them. Recv
// drains the remainder and then reports io.EOF.
func (st *Stream) CloseSend() error {
	if err := st.rw.Flush(); err != nil {
		return err
	}
	return st.pw.Close()
}

// Recv returns the next protected record, or io.EOF once the server has
// delivered everything after CloseSend. A server-side stream error (from
// the response trailer) is returned in place of io.EOF.
func (st *Stream) Recv() (trace.Record, error) {
	rec, ok := <-st.recs
	if !ok {
		if st.readErr != nil {
			return trace.Record{}, st.readErr
		}
		return trace.Record{}, io.EOF
	}
	return rec, nil
}

// Close aborts the stream immediately, without the CloseSend handshake.
// Safe after CloseSend; then it only releases the response.
func (st *Stream) Close() error {
	st.pw.CloseWithError(context.Canceled)
	// Unblock decodeLoop if it is mid-send, then release the connection.
	go func() {
		for range st.recs {
		}
	}()
	return st.resp.Body.Close()
}

// WaitHealthy polls /healthz until it answers ok or the context expires —
// a convenience for tests and the load generator racing a freshly spawned
// server.
func (c *Client) WaitHealthy(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
