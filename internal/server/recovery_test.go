package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/service"
	"repro/internal/trace"
)

// journaledConfig is the gateway shape the recovery tests share:
// small windows so restarts land between several flushes.
func journaledConfig(seed int64) service.Config {
	cfg := baseGatewayConfig(seed)
	cfg.Shards = 2
	cfg.FlushEvery = 4
	cfg.StageSize = 2
	return cfg
}

// getJSONRaw fetches url and decodes the JSON body, tolerating non-200
// (the status is returned for the caller to assert on).
func getJSONRaw(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestResumeAndReplayEndpoints: /v1/resume reports the journal's durable
// per-user counters and /v1/replay re-serves the retained protected
// windows byte-for-byte — the two halves of the client resume protocol.
func TestResumeAndReplayEndpoints(t *testing.T) {
	cfg := journaledConfig(51)
	gw, info, err := service.Recover(context.Background(), cfg, service.JournalConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Gateway: gw, Seed: cfg.Seed, Recovery: info})
	if err != nil {
		t.Fatal(err)
	}
	cl := startServer(t, srv)

	recs := makeRecords(1, 8) // u00: two full windows of 4
	got := streamAll(t, cl, recs)
	if len(got["u00"]) != 8 {
		t.Fatalf("streamed %d records, want 8", len(got["u00"]))
	}

	res, err := cl.Resume(context.Background(), "u00")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Known || res.In != 8 || res.Out != 8 || res.Windows != 2 {
		t.Errorf("resume: %+v, want known in=8 out=8 windows=2", res)
	}
	if res, err := cl.Resume(context.Background(), "nobody"); err != nil || res.Known {
		t.Errorf("unknown user: %+v, %v — want known=false, nil error", res, err)
	}

	// Replay re-serves the exact protected bytes the stream delivered.
	for _, from := range []uint64{0, 4, 6, 8} {
		gap, err := cl.Replay(context.Background(), "u00", from)
		if err != nil {
			t.Fatalf("replay from %d: %v", from, err)
		}
		want := got["u00"][from:]
		if len(gap) != len(want) {
			t.Fatalf("replay from %d: %d records, want %d", from, len(gap), len(want))
		}
		for i := range want {
			if gap[i] != want[i] {
				t.Errorf("replay from %d record %d: %v, want %v", from, i, gap[i], want[i])
			}
		}
	}

	// Parameter validation.
	base := srvBaseURL(t, cl)
	if code := getJSONRaw(t, base+"/v1/resume", nil); code != http.StatusBadRequest {
		t.Errorf("resume without user: %d, want 400", code)
	}
	if code := getJSONRaw(t, base+"/v1/replay?user=u00&from=x", nil); code != http.StatusBadRequest {
		t.Errorf("replay with bad from: %d, want 400", code)
	}
	if code := getJSONRaw(t, base+"/v1/replay?user=nobody&from=0", nil); code != http.StatusNotFound {
		t.Errorf("replay for unknown user: %d, want 404", code)
	}
}

// TestReplayRingBounded: a gap older than the retained ring answers 410
// Gone — the journal proves the records existed but no longer holds them.
func TestReplayRingBounded(t *testing.T) {
	cfg := journaledConfig(53)
	gw, _, err := service.Recover(context.Background(), cfg,
		service.JournalConfig{Dir: t.TempDir(), RetainWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Gateway: gw, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cl := startServer(t, srv)
	streamAll(t, cl, makeRecords(1, 12)) // three windows; ring keeps the last

	if _, err := cl.Replay(context.Background(), "u00", 8); err != nil {
		t.Errorf("replay inside the ring: %v", err)
	}
	var apiErr *client.APIError
	if _, err := cl.Replay(context.Background(), "u00", 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
		t.Errorf("replay past the ring: %v, want 410", err)
	}
}

// TestResumeWithoutJournal: a journal-less server answers 404 on both
// resume endpoints — resume-by-counter is the capability the journal adds.
func TestResumeWithoutJournal(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(57), nil)
	var apiErr *client.APIError
	if _, err := env.cl.Resume(context.Background(), "u00"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("resume: %v, want 404", err)
	}
	if _, err := env.cl.Replay(context.Background(), "u00", 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("replay: %v, want 404", err)
	}
	if code := getJSONRaw(t, srvBaseURL(t, env.cl)+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", code)
	}
}

// srvBaseURL recovers the test server's base URL from the client (the
// helpers only hand back a client).
func srvBaseURL(t *testing.T, cl *client.Client) string {
	t.Helper()
	return cl.BaseURL()
}

// TestRecoveryUnderLiveTraffic is the end-to-end crash-safety story over
// HTTP: a client streams through a journaled server, the server drains
// and restarts from its journal mid-stream, the client's ResumableStream
// rides out the outage with backoff, and the full per-user output equals
// an uninterrupted run byte-for-byte.
func TestRecoveryUnderLiveTraffic(t *testing.T) {
	cfg := journaledConfig(99)
	const nUsers, perUser, cut = 3, 20, 8
	recs := makeRecords(nUsers, perUser)

	// Reference: the same traffic through a never-restarted server.
	ref := streamAll(t, newEnv(t, cfg, nil).cl, recs)

	// Live stack behind a swappable front, so the restarted server keeps
	// the same address the client reconnects to.
	dir := t.TempDir()
	ctx := context.Background()
	gw1, _, err := service.Recover(ctx, cfg, service.JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := server.New(server.Config{Gateway: gw1, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[server.Server]
	cur.Store(srv1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cur.Load().Drain(dctx)
		ts.Close()
	})
	cl := client.New(ts.URL)

	rs, err := cl.ResumableStream(ctx, client.BackoffConfig{
		Base:    time.Millisecond,
		Max:     10 * time.Millisecond,
		Retries: 500,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	got := make(map[string][]trace.Record)
	count := 0
	recvDone := make(chan error, 1)
	go func() {
		for {
			rec, err := rs.Recv(ctx)
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			mu.Lock()
			got[rec.User] = append(got[rec.User], rec)
			count++
			mu.Unlock()
		}
	}()

	// Phase 1: the first cut records per user — window-aligned, so the
	// restart lands on a checkpoint boundary and bit-identity is exact.
	for _, rec := range recs[:nUsers*cut] {
		if err := rs.Send(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-1 delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count >= nUsers*cut
	})

	// Restart: drain the serving process, rebuild it from the journal,
	// swap it in at the same address.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := srv1.Drain(dctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	gw2, info2, err := service.Recover(ctx, cfg, service.JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Resumed || info2.Users != nUsers {
		t.Fatalf("recovery info: %+v, want resumed with %d users", info2, nUsers)
	}
	srv2, err := server.New(server.Config{Gateway: gw2, Seed: cfg.Seed, Recovery: info2})
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(srv2)

	// /healthz now reports what the restart recovered.
	var health struct {
		Status   string                `json:"status"`
		Recovery *service.RecoveryInfo `json:"recovery"`
	}
	if code := getJSONRaw(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after restart: %d", code)
	}
	if health.Recovery == nil || !health.Recovery.Resumed || health.Recovery.Users != nUsers {
		t.Errorf("healthz recovery: %+v, want resumed with %d users", health.Recovery, nUsers)
	}

	// Phase 2: the rest of the traffic. The first send hits the dead
	// connection, reconnects with backoff, resyncs against the journal
	// (nothing to re-send: everything so far is checkpointed) and
	// continues on the fresh process.
	for _, rec := range recs[nUsers*cut:] {
		if err := rs.Send(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.CloseSend(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for u, want := range ref {
		if len(got[u]) != len(want) {
			t.Fatalf("user %s: %d records across the restart, want %d", u, len(got[u]), len(want))
		}
		for i := range want {
			if got[u][i] != want[i] {
				t.Fatalf("user %s record %d diverged across the restart: %v, want %v (exact bit-identity required)",
					u, i, got[u][i], want[i])
			}
		}
	}
	if len(got) != len(ref) {
		t.Fatalf("users: %d, want %d", len(got), len(ref))
	}
}

// TestResumableStreamBackoffSchedule pins the reconnect schedule: capped
// exponential delays recorded by an injected sleeper, a poisoned stream
// after the attempts are exhausted, and no further sleeping once dead.
func TestResumableStreamBackoffSchedule(t *testing.T) {
	cfg := baseGatewayConfig(61)
	gw, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Gateway: gw, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(dctx)
	})
	ts := httptest.NewServer(srv)
	cl := client.New(ts.URL)

	var delays []time.Duration
	rs, err := cl.ResumableStream(context.Background(), client.BackoffConfig{
		Base:    10 * time.Millisecond,
		Max:     40 * time.Millisecond,
		Retries: 5,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Send(context.Background(), recs1(t)[0]); err != nil {
		t.Fatal(err)
	}

	// Kill the listener for good: every reconnect attempt must fail.
	ts.CloseClientConnections()
	ts.Close()

	var sendErr error
	waitFor(t, "send failure after listener death", func() bool {
		sendErr = rs.Send(context.Background(), recs1(t)[1])
		return sendErr != nil
	})
	want := []time.Duration{10, 20, 40, 40, 40}
	if len(delays) != len(want) {
		t.Fatalf("backoff slept %d times (%v), want %d", len(delays), delays, len(want))
	}
	for i, d := range want {
		if delays[i] != d*time.Millisecond {
			t.Errorf("delay %d: %v, want %v (min(Base<<n, Max))", i, delays[i], d*time.Millisecond)
		}
	}
	// Dead is dead: no new attempts, no new sleeps.
	if err := rs.Send(context.Background(), recs1(t)[2]); err == nil {
		t.Error("send on a poisoned stream succeeded")
	}
	if len(delays) != len(want) {
		t.Errorf("poisoned stream slept again: %v", delays)
	}
}

// recs1 is a tiny single-user record set for the backoff test.
func recs1(t *testing.T) []trace.Record {
	t.Helper()
	out := makeRecords(1, 3)
	if len(out) != 3 {
		t.Fatal("makeRecords shape changed")
	}
	return out
}

// TestResumableStreamJournalLessFallback: against a server with no
// journal, the helper still reconnects (full resend + count dedupe) —
// degraded but functional, and explicitly not bit-identical.
func TestResumableStreamJournalLessFallback(t *testing.T) {
	cfg := journaledConfig(63)
	gw1, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := server.New(server.Config{Gateway: gw1, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[server.Server]
	cur.Store(srv1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cur.Load().Drain(dctx)
		ts.Close()
	})
	cl := client.New(ts.URL)

	rs, err := cl.ResumableStream(context.Background(), client.BackoffConfig{
		Base: time.Millisecond, Max: 10 * time.Millisecond, Retries: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(1, 8)
	var mu sync.Mutex
	var got []trace.Record
	recvDone := make(chan error, 1)
	go func() {
		for {
			rec, err := rs.Recv(context.Background())
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				recvDone <- err
				return
			}
			mu.Lock()
			got = append(got, rec)
			mu.Unlock()
		}
	}()
	for _, rec := range recs[:4] {
		if err := rs.Send(context.Background(), rec); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "first window", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 4
	})

	// Restart without a journal: server state is lost.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Drain(dctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	gw2, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Config{Gateway: gw2, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(srv2)

	for _, rec := range recs[4:] {
		if err := rs.Send(context.Background(), rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.CloseSend(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
	// Count semantics, not bit-identity: every input index surfaces
	// exactly once despite the full resend (the dedupe drops the 4
	// re-protections of already-delivered records).
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(recs) {
		t.Fatalf("delivered %d records, want %d (count dedupe)", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Time != recs[i].Time {
			t.Errorf("record %d: time %v, want %v (order by input index)", i, rec.Time, recs[i].Time)
		}
	}
}
