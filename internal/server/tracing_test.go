package server_test

import (
	"context"
	"io"
	"net/http"
	"testing"

	"repro/internal/obs/tracing"
)

// findSpans filters a ring snapshot by name and trace ID.
func findSpans(spans []*tracing.SpanData, name string, trace tracing.TraceID) []*tracing.SpanData {
	var out []*tracing.SpanData
	for _, sp := range spans {
		if sp.Name == name && sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// TestTraceparentPropagation is the end-to-end acceptance check: a
// client-originated trace injected as a traceparent header must reappear
// on the server's spans for the same stream — the HTTP span as a direct
// child, and the user's window/dispatch/write spans correlated through
// the gateway's user binding.
func TestTraceparentPropagation(t *testing.T) {
	gwCfg := baseGatewayConfig(61)
	tr := tracing.New(tracing.Config{})
	gwCfg.Tracer = tr
	env := newEnv(t, gwCfg, nil)

	remote := tracing.NewRootContext()
	ctx := tracing.ContextWithSpanContext(context.Background(), remote)
	st, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(1, 16) // FlushEvery 8: two full windows
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := st.Recv(); err != nil {
				if err == io.EOF {
					err = nil
				}
				done <- err
				return
			}
		}
	}()
	for _, rec := range recs {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if hs := findSpans(spans, "http.stream", remote.Trace); len(hs) != 1 {
		t.Fatalf("http.stream spans under client trace = %d, want 1", len(hs))
	} else if hs[0].Parent != remote.Span {
		t.Errorf("http.stream parented to %s, want client span %s", hs[0].Parent, remote.Span)
	}
	// The gateway bound the stream's trace to its user, so every flushed
	// window — and its dispatch/write children back on the server side —
	// carries the client's trace ID.
	windows := findSpans(spans, "window", remote.Trace)
	if len(windows) < 2 {
		t.Fatalf("window spans under client trace = %d, want >= 2", len(windows))
	}
	for _, name := range []string{"dispatch", "write"} {
		if len(findSpans(spans, name, remote.Trace)) < 2 {
			t.Errorf("%s spans under client trace = %d, want >= 2",
				name, len(findSpans(spans, name, remote.Trace)))
		}
	}

	// A unary endpoint joins the same machinery via its own header.
	remote2 := tracing.NewRootContext()
	if _, err := env.cl.Stats(tracing.ContextWithSpanContext(context.Background(), remote2)); err != nil {
		t.Fatal(err)
	}
	if hs := findSpans(tr.Spans(), "http.stats", remote2.Trace); len(hs) != 1 {
		t.Fatalf("http.stats spans under client trace = %d, want 1", len(hs))
	}

	// A malformed header never errors: the server starts a fresh root.
	req, err := http.NewRequest("GET", env.ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(tracing.Header, "garbage")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with bad traceparent: %d", resp.StatusCode)
	}
	var health []*tracing.SpanData
	for _, sp := range tr.Spans() {
		if sp.Name == "http.healthz" {
			health = append(health, sp)
		}
	}
	if len(health) != 1 {
		t.Fatalf("http.healthz spans = %d, want 1", len(health))
	}
	if !health[0].Parent.IsZero() {
		t.Errorf("bad traceparent produced a parented span: %+v", health[0])
	}
}
