package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// The server spawns per-connection and dispatcher goroutines; leakcheck
// fails this binary if any of them outlives the tests (DESIGN.md §11).
func TestMain(m *testing.M) { leakcheck.Main(m) }
