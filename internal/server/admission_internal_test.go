package server

import (
	"testing"
	"time"
)

// TestLimiterRefillAndIsolation: buckets start full, drain per request,
// refill at the configured rate, and tenants are independent.
func TestLimiterRefillAndIsolation(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 2; i++ {
		if !l.allow("a") {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	if l.allow("a") {
		t.Fatal("past-burst request admitted")
	}
	if !l.allow("b") {
		t.Fatal("tenant b throttled by tenant a's bucket")
	}
	now = now.Add(1500 * time.Millisecond) // refills 1.5 tokens
	if !l.allow("a") {
		t.Fatal("refilled token refused")
	}
	if l.allow("a") {
		t.Fatal("half a token admitted a request")
	}
}

// TestLimiterBoundsTenantTable: rotating client-controlled tenant names
// cannot grow the bucket table past its cap.
func TestLimiterBoundsTenantTable(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(1, 1, func() time.Time { return now })
	for i := 0; i < 3*maxTenantBuckets; i++ {
		l.allow(string(rune('a'+i%26)) + string(rune('0'+i%10)) + time.Duration(i).String())
		now = now.Add(time.Microsecond)
	}
	if len(l.buckets) > maxTenantBuckets {
		t.Fatalf("tenant table grew to %d, cap is %d", len(l.buckets), maxTenantBuckets)
	}
}
