// Package server is the network front-end over the protection gateway: the
// paper's framework is middleware, and middleware earns its keep with an
// explicit transport layer. The server exposes the running
// service.Gateway/service.Controller over HTTP:
//
//	POST /v1/stream       chunked NDJSON records in → protected NDJSON out
//	POST /v1/protect      unary batch: NDJSON in, protected NDJSON out
//	GET  /v1/stats        server + gateway (+ controller) counters
//	GET  /v1/deployment   serving generation and parameter assignment
//	POST /v1/reconfigure  manual hot-swap of the serving deployment
//	GET  /healthz         liveness (503 while draining)
//
// The wire format at both boundaries is the trace package's JSONL codec
// (trace.ScanRecords / trace.RecordWriter): exactly the bytes the file path
// reads and writes, so the determinism discipline (§3) carries over — for a
// given seed and per-user record sequence, the protected stream is
// bit-identical whether records arrive via file or socket.
//
// One gateway serves every connection. A /v1/stream connection multiplexes
// its users onto the gateway's shards: the first connection to send a
// user's record owns that user until the connection ends, and the
// dispatcher routes each flushed window back to its owner. Backpressure is
// end-to-end: a full shard queue blocks Ingest, which stalls the
// connection's body read, which TCP flow control propagates to the client;
// symmetrically, a slow reader fills its window queue, blocks the
// dispatcher and ultimately the flush path. Admission control bounds what
// backpressure cannot: concurrent streams are capped (503) and per-tenant
// token buckets rate-limit requests (429).
//
// Shutdown is a graceful drain: new work is refused, in-flight streams stop
// ingesting, and Gateway.Close flushes every per-user stream exactly once —
// connected clients receive their tail windows before the response ends.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lppm"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/trace"
)

// wireFormat is the one format spoken on the network: NDJSON via the trace
// codec. CSV stays a file-path concern.
const wireFormat = trace.FormatJSONL

// ndjsonContentType labels streaming record bodies.
const ndjsonContentType = "application/x-ndjson"

// streamErrTrailer carries a stream's terminal error out-of-band, so the
// body stays pure records (codec reuse) even when the stream ends early.
const streamErrTrailer = "X-Stream-Error"

// errDraining aborts stream intake when the server begins its drain.
var errDraining = errors.New("server: draining")

// Config parameterizes a Server.
type Config struct {
	// Gateway is the running protection gateway every endpoint fronts.
	// The server becomes the gateway's sole Output consumer; nothing else
	// may read Gateway.Output once the server is constructed.
	Gateway *service.Gateway
	// Controller, when set, adds its stats to /v1/stats. The server does
	// not drive it; wire Run yourself.
	Controller *service.Controller
	// MaxStreams caps concurrent /v1/stream connections; 0 uses 64,
	// negative disables the cap.
	MaxStreams int
	// WindowBuffer is each connection's outbound window queue length, in
	// flushed windows; 0 uses 32. A full buffer blocks the dispatcher —
	// backpressure, not loss.
	WindowBuffer int
	// RatePerSec is each tenant's sustained request budget across the /v1
	// endpoints, in requests per second (token bucket, 429 beyond); 0
	// disables rate limiting.
	RatePerSec float64
	// Burst is the token bucket's capacity; 0 uses max(1, ⌈RatePerSec⌉).
	Burst int
	// MaxBatchRecords caps a /v1/protect body; 0 uses 1<<20.
	MaxBatchRecords int
	// WriteStallTimeout bounds how long a stream write may sit in a full
	// TCP buffer before the connection is declared stalled and abandoned;
	// 0 uses 30s. Without it a client that stops reading its response
	// (but keeps the socket open) would freeze its writer, fill its
	// window queue, and wedge the dispatcher — and with it every other
	// connection. The deadline is rolling (re-armed per window), so
	// long-lived streams are unaffected while the client keeps reading.
	WriteStallTimeout time.Duration
	// Seed drives /v1/protect's batch randomness. The unary endpoint is
	// stateless: identical requests protect identically, matching the
	// batch file path under the same seed.
	Seed int64
	// Recovery, when set, is the journal recovery report from
	// service.Recover; /healthz includes it so operators (and reconnecting
	// clients) can see whether this process resumed from a
	// journal and how much state it reconstructed.
	Recovery *service.RecoveryInfo

	// now is the admission clock, replaceable in tests.
	now func() time.Time
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Gateway == nil {
		return fmt.Errorf("server: nil gateway")
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 64
	}
	if c.WindowBuffer == 0 {
		c.WindowBuffer = 32
	}
	if c.WindowBuffer < 1 {
		return fmt.Errorf("server: WindowBuffer must be >= 1, got %d", c.WindowBuffer)
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("server: RatePerSec must be non-negative, got %v", c.RatePerSec)
	}
	if c.Burst < 0 {
		return fmt.Errorf("server: Burst must be non-negative, got %d", c.Burst)
	}
	if c.Burst == 0 {
		c.Burst = int(math.Max(1, math.Ceil(c.RatePerSec)))
	}
	if c.MaxBatchRecords == 0 {
		c.MaxBatchRecords = 1 << 20
	}
	if c.MaxBatchRecords < 1 {
		return fmt.Errorf("server: MaxBatchRecords must be >= 1, got %d", c.MaxBatchRecords)
	}
	if c.WriteStallTimeout == 0 {
		c.WriteStallTimeout = 30 * time.Second
	}
	if c.WriteStallTimeout < 0 {
		return fmt.Errorf("server: WriteStallTimeout must be positive, got %v", c.WriteStallTimeout)
	}
	if c.now == nil {
		c.now = time.Now
	}
	return nil
}

// timedWindow is one flushed window in a connection's outbound queue,
// carrying the obs.Stamp at which the dispatcher received it (0 when the
// stage clock is off) so the writer can attribute queue residency to the
// dispatch stage and the wire time to the write stage, plus the window's
// trace context so those hops extend the window's span tree.
type timedWindow struct {
	recs []trace.Record
	ns   int64
	span tracing.SpanContext
}

// streamConn is one /v1/stream connection's server-side state: the window
// queue the dispatcher fills and the writer drains, plus the set of users
// the connection owns (guarded by the server mutex).
type streamConn struct {
	windows chan timedWindow
	gone    chan struct{} // closed when the response sink is abandoned
	users   map[string]struct{}
	// trace is the connection's request-span context — the client's
	// traceparent continued, or a fresh server-side root. Written once
	// by the stream handler before the reader goroutine starts.
	trace tracing.SpanContext

	closeOnce sync.Once
	goneOnce  sync.Once
}

func newStreamConn(buffer int) *streamConn {
	return &streamConn{
		windows: make(chan timedWindow, buffer),
		gone:    make(chan struct{}),
		users:   make(map[string]struct{}),
	}
}

// closeWindows ends the connection's output. Called only when no dispatcher
// send can be in flight: after a barrier with the users unregistered, or
// from finish once the dispatcher has exited.
func (c *streamConn) closeWindows() { c.closeOnce.Do(func() { close(c.windows) }) }

// abandon marks the response sink dead so the dispatcher drops instead of
// blocking on this connection.
func (c *streamConn) abandon() { c.goneOnce.Do(func() { close(c.gone) }) }

// Server fronts a gateway over HTTP. Create with New, mount as an
// http.Handler, stop with Drain.
type Server struct {
	cfg     Config
	gw      *service.Gateway
	mux     *http.ServeMux
	limiter *limiter

	mu            sync.Mutex
	owners        map[string]*streamConn
	conns         map[*streamConn]struct{}
	activeStreams int
	draining      bool

	drainCh      chan struct{}      // closed when Drain begins
	barrierCh    chan chan struct{} // dispatcher barrier handshake
	dispatchDone chan struct{}      // closed once the dispatcher has exited

	streamsTotal    atomic.Uint64
	streamsRejected atomic.Uint64
	rateLimited     atomic.Uint64
	orphanWindows   atomic.Uint64
	droppedWindows  atomic.Uint64
	stallAbandons   atomic.Uint64

	reg    *obs.Registry
	clock  *obs.StageClock // nil when the gateway's registry is disabled
	tracer *tracing.Tracer // the gateway's tracer; nil when tracing is off
}

// New validates the configuration and starts the dispatcher that routes
// gateway output windows to their owning connections.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		gw:           cfg.Gateway,
		mux:          http.NewServeMux(),
		limiter:      newLimiter(cfg.RatePerSec, cfg.Burst, cfg.now),
		owners:       make(map[string]*streamConn),
		conns:        make(map[*streamConn]struct{}),
		drainCh:      make(chan struct{}),
		barrierCh:    make(chan chan struct{}),
		dispatchDone: make(chan struct{}),
		reg:          cfg.Gateway.Obs(),
		tracer:       cfg.Gateway.Tracer(),
	}
	s.clock = obs.NewStageClock(s.reg)
	s.registerMetrics()
	s.mux.Handle("POST /v1/stream", s.instrument("stream", s.handleStream))
	s.mux.Handle("POST /v1/protect", s.instrument("protect", s.handleProtect))
	s.mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.Handle("GET /v1/deployment", s.instrument("deployment", s.handleDeployment))
	s.mux.Handle("POST /v1/reconfigure", s.instrument("reconfigure", s.handleReconfigure))
	s.mux.Handle("GET /v1/resume", s.instrument("resume", s.handleResume))
	s.mux.Handle("GET /v1/replay", s.instrument("replay", s.handleReplay))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	go s.dispatch()
	return s, nil
}

// registerMetrics exposes the front-end's counters on the gateway's
// registry — Func-backed reads of the atomics the server already keeps.
func (s *Server) registerMetrics() {
	s.reg.CounterFunc("lppm_server_streams_total",
		"stream connections admitted", nil, s.streamsTotal.Load)
	s.reg.CounterFunc("lppm_server_streams_rejected_total",
		"stream connections refused by the concurrency cap (503)", nil, s.streamsRejected.Load)
	s.reg.CounterFunc("lppm_server_rate_limited_total",
		"requests refused by the per-tenant token bucket (429)", nil, s.rateLimited.Load)
	s.reg.CounterFunc("lppm_server_orphan_windows_total",
		"flushed windows with no owning connection", nil, s.orphanWindows.Load)
	s.reg.CounterFunc("lppm_server_dropped_windows_total",
		"windows dropped on abandoned connections", nil, s.droppedWindows.Load)
	s.reg.CounterFunc("lppm_server_stall_abandons_total",
		"streams abandoned on a dead or stalled response sink (write-stall deadline included)",
		nil, s.stallAbandons.Load)
	s.reg.GaugeFunc("lppm_server_active_streams",
		"concurrent /v1/stream connections", nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.activeStreams)
		})
	s.reg.GaugeFunc("lppm_server_draining",
		"1 while the server drains, 0 while serving", nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
}

// epMetrics is one endpoint's pre-registered instruments: request counts by
// status class plus an in-flight gauge. Pre-registration keeps the request
// path to plain atomic updates.
type epMetrics struct {
	inflight *obs.Gauge
	// classes is indexed by status/100; unreachable classes fall back to
	// index 0 ("other").
	classes [6]*obs.Counter
}

func (m *epMetrics) done(code int) {
	i := code / 100
	if i < 0 || i > 5 || m.classes[i] == nil {
		i = 0
	}
	m.classes[i].Inc()
}

// instrument wraps a handler with the endpoint's request metrics. The
// wrapper's writer preserves ResponseController access (Unwrap) and
// flushing, so the stream handler's full-duplex machinery is unaffected.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	m := &epMetrics{
		inflight: s.reg.Gauge("lppm_http_inflight",
			"requests currently being served", obs.Labels{"endpoint": endpoint}),
	}
	for _, c := range []struct {
		idx   int
		class string
	}{{0, "other"}, {2, "2xx"}, {4, "4xx"}, {5, "5xx"}} {
		m.classes[c.idx] = s.reg.Counter("lppm_http_requests_total",
			"requests served, by status class", obs.Labels{"endpoint": endpoint, "class": c.class})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		var sp *tracing.Span
		if s.tracer != nil {
			// W3C propagation: continue the client's trace when the
			// request carries a valid traceparent (Extract treats a
			// malformed header as absent — fresh root, never an error),
			// otherwise head-sample a server-side root.
			if remote := tracing.Extract(r.Header.Get(tracing.Header)); remote.Sampled() {
				sp = s.tracer.Child(remote, "http."+endpoint)
			} else {
				sp = s.tracer.Root("http." + endpoint)
			}
			if sp != nil {
				r = r.WithContext(tracing.ContextWithSpan(r.Context(), sp))
			}
		}
		h(sw, r)
		code := sw.statusCode()
		m.done(code)
		sp.AttrInt("status", int64(code)).End()
	})
}

// statusWriter records the response status for the endpoint metrics while
// staying transparent to everything the handlers need from the underlying
// writer: Unwrap hands http.ResponseController the real writer (full
// duplex, deadlines), Flush keeps refusal answers and window-granular
// streaming working.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) statusCode() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain shuts the serving path down gracefully: new work is refused (503),
// stream intake stops, and the gateway drain flushes every per-user stream
// exactly once — each still-connected client receives its tail windows
// before its response ends. Drain returns once every flushed window has
// been routed, or with the context's error if the deadline passes first.
// Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.drainCh)
	}
	// Close flushes every user's remainder and closes Output, which ends
	// the dispatcher, which closes every connection's window queue.
	err := s.gw.Close()
	select {
	case <-s.dispatchDone:
		return err
	case <-ctx.Done():
		return errors.Join(err, ctx.Err())
	}
}

// dispatch is the gateway's sole Output consumer: it routes each flushed
// window to the connection owning the window's user. Barrier requests let a
// finishing stream establish "everything flushed so far has been routed":
// the dispatcher drains what the output channel already holds before
// acknowledging, and since it acknowledges from its own loop, no route for
// the requester can still be in flight afterwards.
func (s *Server) dispatch() {
	out := s.gw.Output()
	for {
		select {
		case wnd, ok := <-out:
			if !ok {
				s.finish()
				return
			}
			s.route(wnd)
		case ack := <-s.barrierCh:
			for drained := false; !drained; {
				select {
				case wnd, ok := <-out:
					if !ok {
						close(ack)
						s.finish()
						return
					}
					s.route(wnd)
				default:
					drained = true
				}
			}
			close(ack)
		}
	}
}

// route hands one flushed window to its owner, or drops it when the owner
// is gone (client left) or was never registered (windows flushed by the
// gateway drain after their connection ended).
func (s *Server) route(wnd service.Window) {
	recs := wnd.Records
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	c := s.owners[recs[0].User]
	s.mu.Unlock()
	if c == nil {
		s.orphanWindows.Add(1)
		return
	}
	tw := timedWindow{recs: recs, span: wnd.Span}
	// A traced window gets its dispatch stamp even when the stage clock
	// is off: the window's trace already opted in upstream.
	if s.clock != nil || (s.tracer != nil && wnd.Span.Sampled()) {
		tw.ns = obs.Stamp()
	}
	select {
	case c.windows <- tw:
	case <-c.gone:
		s.droppedWindows.Add(1)
	}
}

// finish runs when the gateway output closes (drain complete): every
// still-open connection gets its end-of-stream, and barrier waiters are
// released via dispatchDone.
func (s *Server) finish() {
	s.mu.Lock()
	conns := make([]*streamConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c) //lppm:allow maporder -- close order across connections is observable only as shutdown interleaving, which is already concurrent; nothing numeric accumulates
	}
	s.owners = make(map[string]*streamConn)
	s.conns = make(map[*streamConn]struct{})
	s.mu.Unlock()
	for _, c := range conns {
		c.closeWindows()
	}
	close(s.dispatchDone)
}

// awaitDispatch blocks until every window the gateway has emitted so far
// has been routed.
func (s *Server) awaitDispatch() {
	ack := make(chan struct{})
	select {
	case s.barrierCh <- ack:
		<-ack
	case <-s.dispatchDone:
	}
}

// claim registers the connection as the user's owner, reporting whether
// this call established the ownership (first record of the user on this
// connection). A user already owned by another live connection is a
// conflict: two writers would interleave one stream and windows could
// not be attributed.
func (s *Server) claim(user string, c *streamConn) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.owners[user]; ok {
		if cur != c {
			return false, fmt.Errorf("server: user %q is already streaming on another connection", user)
		}
		return false, nil
	}
	s.owners[user] = c
	c.users[user] = struct{}{}
	return true, nil
}

// releaseStream ends a connection's serving: flush each owned user's
// pending tail through the gateway, wait for the dispatcher to route every
// resulting window, then unregister and close the window queue. If the
// gateway is already closing (server drain), the handover is the other way
// around — the gateway drain flushes every stream exactly once and finish
// closes the queue — so the release simply backs off.
func (s *Server) releaseStream(c *streamConn) {
	s.mu.Lock()
	users := make([]string, 0, len(c.users))
	for u := range c.users {
		users = append(users, u)
	}
	s.mu.Unlock()
	sort.Strings(users)
	for _, u := range users {
		if err := s.gw.FlushUser(u); err != nil {
			// ErrClosed or a canceled context: the drain owns the tail.
			return
		}
	}
	s.awaitDispatch()
	s.mu.Lock()
	for _, u := range users {
		if s.owners[u] == c {
			delete(s.owners, u)
		}
	}
	delete(s.conns, c)
	s.mu.Unlock()
	// Post-barrier and unregistered: no dispatcher send can be in flight
	// for this connection, so closing its queue is race-free.
	c.closeWindows()
}

// handleStream serves POST /v1/stream: a full-duplex NDJSON exchange. The
// request body is scanned record-at-a-time into the gateway; flushed
// windows stream back as they emerge. The response ends when the client
// finishes sending (EOF) and the tail windows have been delivered, or when
// the server drains. Errors surface in the X-Stream-Error trailer so the
// body stays pure records.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	// HTTP/1.1 needs explicit full duplex to read the body while the
	// response streams; HTTP/2 is duplex natively, where this errors and
	// is safely ignored. It must precede even the admission answers: the
	// first response flush on a non-duplex HTTP/1.1 connection consumes
	// the unread request body, and a rejected streaming client holding
	// its body open would deadlock the refusal handshake.
	_ = rc.EnableFullDuplex() //lppm:allow droppederr -- errors exactly on HTTP/2, which is duplex natively (see comment above)
	// One stream, one connection: a stream body is not guaranteed to be
	// consumed to EOF (admission refusal, drain, abort), and net/http's
	// keep-alive machinery must not try to serve a second request behind
	// a body a goroutine may still be reading.
	w.Header().Set("Connection", "close")
	if !s.admitStream(w, r) {
		return
	}
	defer func() {
		s.mu.Lock()
		s.activeStreams--
		s.mu.Unlock()
	}()
	c := newStreamConn(s.cfg.WindowBuffer)
	defer c.abandon()
	if sp := tracing.SpanFromContext(r.Context()); sp != nil {
		// Before the reader goroutine starts, so the write is race-free.
		c.trace = sp.Context()
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	w.Header().Set("Content-Type", ndjsonContentType)
	w.Header().Set("Trailer", streamErrTrailer)
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush() //lppm:allow droppederr -- release headers so the client unblocks before the first window; a dead sink surfaces on the first window write

	readDone := make(chan error, 1)
	go func() { readDone <- s.readStream(r, c) }()

	writeErr := s.writeStream(w, rc, c)
	var readErr error
	if writeErr != nil {
		// Dead response sink: mark the connection gone so the dispatcher
		// drops instead of blocking, then collect the reader if it has
		// already finished — if not, it cleans up on its own once the
		// handler return tears the request down.
		s.stallAbandons.Add(1)
		c.abandon()
		select {
		case readErr = <-readDone:
		default:
		}
	} else {
		// The window queue closed: either the reader finished the
		// end-of-stream sequence, or the server is draining and the
		// reader may still be blocked on an idle body — kick it loose.
		select {
		case readErr = <-readDone:
		case <-s.drainCh:
			_ = rc.SetReadDeadline(time.Now()) //lppm:allow droppederr -- best-effort kick of a blocked reader; unsupported deadlines only mean the reader exits via request teardown instead
			readErr = <-readDone
		}
	}
	switch {
	case readErr != nil && !errors.Is(readErr, errDraining):
		w.Header().Set(streamErrTrailer, readErr.Error())
		// A real stream error (not the routine drain handover) freezes
		// the flight recorder, so the post-mortem has the spans and log
		// events leading up to it.
		s.tracer.Flight().Snapshot("stream error: " + readErr.Error())
	case readErr != nil:
		w.Header().Set(streamErrTrailer, errDraining.Error())
	case writeErr != nil:
		// Best effort: if the sink died the trailer rarely arrives.
		w.Header().Set(streamErrTrailer, writeErr.Error())
		s.tracer.Flight().Snapshot("stream write failed: " + writeErr.Error())
	}
}

// readStream is the connection's intake half: scan the body, claim each
// record's user, ingest, and on end of stream run the release sequence so
// the tail windows reach the writer. The returned error is what the
// trailer reports; a drain abort leaves release to the gateway drain.
func (s *Server) readStream(r *http.Request, c *streamConn) error {
	scanErr := trace.ScanRecords(r.Body, wireFormat, func(rec trace.Record) error {
		select {
		case <-s.drainCh:
			return errDraining
		case <-c.gone:
			return context.Canceled
		default:
		}
		claimed, err := s.claim(rec.User, c)
		if err != nil {
			return err
		}
		if claimed && c.trace.Sampled() {
			// First record of this user on a traced connection: continue
			// the trace into the gateway, so the user's windows are
			// recorded under the request span (and, through it, under a
			// client-originated traceparent).
			_ = s.gw.SetUserTrace(rec.User, c.trace) //lppm:allow droppederr -- best-effort diagnostic binding: losing it to a shutdown race costs spans only, and the Ingest below surfaces the closure
		}
		if err := s.gw.Ingest(rec); err != nil {
			if errors.Is(err, service.ErrClosed) {
				return errDraining
			}
			return err
		}
		return nil
	})
	// A drain that began while the scan was blocked surfaces as whatever
	// error the interrupted body read produced; normalize either shape to
	// the drain handover — the gateway drain flushes this connection's
	// users exactly once and finish() ends the window queue, so releasing
	// here would race it.
	if !errors.Is(scanErr, errDraining) {
		select {
		case <-s.drainCh:
			scanErr = errDraining
		default:
		}
	}
	if errors.Is(scanErr, errDraining) {
		return errDraining
	}
	s.releaseStream(c)
	return scanErr
}

// writeStream is the connection's delivery half: windows out of the queue,
// records onto the wire, one flush per window so clients see output with
// window granularity rather than buffer granularity.
func (s *Server) writeStream(w http.ResponseWriter, rc *http.ResponseController, c *streamConn) error {
	rw, err := trace.NewRecordWriter(w, wireFormat)
	if err != nil {
		return err
	}
	for tw := range c.windows {
		// A traced window reuses the dispatch/write stamps for its last
		// two spans — same readings, no extra clock cost.
		traced := s.tracer != nil && tw.span.Sampled() && tw.ns != 0
		var pickup int64
		if s.clock != nil || traced {
			pickup = obs.Stamp()
			s.clock.Observe(obs.StageDispatch, tw.ns, pickup)
			if traced {
				s.tracer.ChildAt(tw.span, "dispatch", tw.ns).EndAt(pickup)
			}
		}
		// Rolling stall deadline: a client that keeps reading never hits
		// it; one that stopped reading errors this write, the handler
		// abandons the connection, and route() stops blocking on it —
		// one stalled peer cannot wedge the shared dispatcher for good.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteStallTimeout)) //lppm:allow droppederr -- best-effort stall guard; without deadline support a stalled peer is still caught by request teardown
		for _, rec := range tw.recs {
			if err := rw.Write(rec); err != nil {
				return err
			}
		}
		if err := rw.Flush(); err != nil {
			return err
		}
		if err := rc.Flush(); err != nil {
			return err
		}
		if s.clock != nil || traced {
			end := obs.Stamp()
			s.clock.Observe(obs.StageWrite, pickup, end)
			if traced {
				s.tracer.ChildAt(tw.span, "write", pickup).EndAt(end)
			}
		}
	}
	// Clear the deadline for the trailer write.
	_ = rc.SetWriteDeadline(time.Time{}) //lppm:allow droppederr -- best-effort clear; pairs with the best-effort set above
	return nil
}

// handleProtect serves POST /v1/protect: a unary batch through the current
// serving deployment. The endpoint is stateless — per-user randomness is
// derived by name from the configured seed, so identical requests protect
// identically, and a request equals the batch file path under that seed.
func (s *Server) handleProtect(w http.ResponseWriter, r *http.Request) {
	if !s.admitUnary(w, r) {
		return
	}
	perUser := make(map[string][]trace.Record)
	var order []string
	n := 0
	errTooLarge := fmt.Errorf("server: batch exceeds %d records", s.cfg.MaxBatchRecords)
	scanErr := trace.ScanRecords(r.Body, wireFormat, func(rec trace.Record) error {
		if n >= s.cfg.MaxBatchRecords {
			return errTooLarge
		}
		n++
		if _, ok := perUser[rec.User]; !ok {
			order = append(order, rec.User)
		}
		perUser[rec.User] = append(perUser[rec.User], rec)
		return nil
	})
	if errors.Is(scanErr, errTooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, scanErr.Error())
		return
	}
	if scanErr != nil {
		httpError(w, http.StatusBadRequest, scanErr.Error())
		return
	}
	ds := trace.NewDataset()
	for _, u := range order {
		t, err := trace.NewTrace(u, perUser[u])
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		ds.Add(t)
	}
	out, err := s.gw.ServingDeployment().Protect(ds, rng.New(s.cfg.Seed))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", ndjsonContentType)
	rw, err := trace.NewRecordWriter(w, wireFormat)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	for _, t := range out.Traces() {
		for _, rec := range t.Records {
			if err := rw.Write(rec); err != nil {
				return // sink died; nothing useful left to report
			}
		}
	}
	_ = rw.Flush() //lppm:allow droppederr -- unary response tail: the client observes the truncation; the handler has no channel left to report it on
}

// handleReconfigure serves POST /v1/reconfigure: a manual hot-swap. The
// request's params are merged over the serving mechanism's defaults (the
// same semantics as building a deployment from explicit values) and
// validated before Gateway.Swap makes them live at window boundaries.
func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	if !s.admitUnary(w, r) {
		return
	}
	var req reconfigureRequest
	if err := decodeJSONBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	mech := s.gw.ServingDeployment().Mechanism
	dep, err := core.NewDeployment(mech, lppm.Params(req.Params))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for u, p := range req.Overrides {
		if err := dep.Override(u, lppm.Params(p)); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if err := s.gw.Swap(dep); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reconfigureResponse{Generation: s.gw.Generation()})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.allowTenant(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleDeployment serves GET /v1/deployment.
func (s *Server) handleDeployment(w http.ResponseWriter, r *http.Request) {
	if !s.allowTenant(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.gw.Deployment())
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while draining
// so load balancers stop routing before the drain completes. When the
// process resumed from a journal, the body carries the
// recovery report (users restored, generation, segments folded).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	resp := healthResponse{Status: "ok", Recovery: s.cfg.Recovery}
	if draining {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResume serves GET /v1/resume?user=U: the journal's progress
// counters for one user. A client reconnecting after a crash (its own or
// the server's) trims its send queue to DurableIn, resends only from In —
// records a live server has absorbed must not be re-sent, or the
// mechanism would draw fresh randomness for them — and fetches the
// protected output it never received via /v1/replay. Answers 404 when
// the gateway runs journal-less: resume-by-counter is exactly the
// capability the journal adds.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if !s.admitUnary(w, r) {
		return
	}
	jw := s.gw.Journal()
	if jw == nil {
		httpError(w, http.StatusNotFound, "server: no journal configured")
		return
	}
	user := r.URL.Query().Get("user")
	if user == "" {
		httpError(w, http.StatusBadRequest, "server: missing user parameter")
		return
	}
	// The journal is write-behind; wait for the pump so the counters
	// cover every window emitted before this request.
	if err := s.gw.JournalBarrier(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := resumeResponse{User: user}
	if us := jw.UserResume(user); us != nil {
		resp.Known = true
		resp.Generation = us.Generation
		resp.In = us.In
		resp.DurableIn = us.DurableIn
		resp.Out = us.Out
		resp.Windows = us.Windows
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplay serves GET /v1/replay?user=U&from=N: the retained protected
// records with absolute output index >= N, as NDJSON in emission order —
// the delivery gap of a client that crashed (or lost its connection) after
// the journal made a window durable but before the bytes arrived. The
// ring is bounded (Options.RetainWindows), so a gap older than the ring
// answers 410: the journal can prove the records existed but no longer
// holds them.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if !s.admitUnary(w, r) {
		return
	}
	jw := s.gw.Journal()
	if jw == nil {
		httpError(w, http.StatusNotFound, "server: no journal configured")
		return
	}
	q := r.URL.Query()
	user := q.Get("user")
	if user == "" {
		httpError(w, http.StatusBadRequest, "server: missing user parameter")
		return
	}
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("server: bad from parameter: %v", err))
		return
	}
	// As in handleResume: the ring must cover every emitted window before
	// the gap is computed, or an in-flight window could be skipped.
	if err := s.gw.JournalBarrier(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	us := jw.UserResume(user)
	if us == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("server: no checkpoint for user %q", user))
		return
	}
	recs, ok := us.ReplayFrom(from)
	if !ok {
		httpError(w, http.StatusGone,
			fmt.Sprintf("server: retained windows for %q no longer reach back to %d", user, from))
		return
	}
	w.Header().Set("Content-Type", ndjsonContentType)
	rw, err := trace.NewRecordWriter(w, wireFormat)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	for _, rec := range recs {
		if err := rw.Write(rec); err != nil {
			return // sink died; nothing useful left to report
		}
	}
	_ = rw.Flush() //lppm:allow droppederr -- unary response tail: the client observes the truncation; the handler has no channel left to report it on
}
