package server_test

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trace"
)

// fleetRecords generates a synthetic fleet and returns its records merged
// in global time order — the arrival order both paths ingest.
func fleetRecords(t *testing.T, drivers int, duration time.Duration) []trace.Record {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.NumDrivers = drivers
	cfg.Duration = duration
	fleet, err := synth.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for _, tr := range fleet.Dataset.Traces() {
		recs = append(recs, tr.Records...)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	return recs
}

// encodePerUser canonicalizes per-user output as the exact wire bytes.
func encodePerUser(t *testing.T, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw, err := trace.NewRecordWriter(&buf, trace.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := rw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFileVsLoopbackEquivalence is the subsystem's acceptance bar: for a
// fixed seed and trace, the protected output through POST /v1/stream must
// be bit-identical to the existing file path (a gateway fed by
// trace.ScanRecords, drained by Close). Determinism rests on three legs:
// per-user randomness is derived by name from the root seed (arrival
// interleaving and shard count are irrelevant), per-user windowing depends
// only on that user's record sequence (both paths deliver the same
// sequence), and the tail flush protects the same pending records whether
// FlushUser (socket) or the drain (file) forces it. The comparison is on
// encoded wire bytes per user — the same JSONL codec both boundaries use.
func TestFileVsLoopbackEquivalence(t *testing.T) {
	recs := fleetRecords(t, 6, 2*time.Hour)
	if len(recs) < 300 {
		t.Fatalf("fleet too small: %d records", len(recs))
	}
	mkCfg := func() service.Config {
		cfg := baseGatewayConfig(42)
		cfg.FlushEvery = 16 // tail windows stay partial for most users
		return cfg
	}

	// File path: the gateway exactly as cmd/lppm-serve drives it — ingest
	// in input order, drain on Close.
	fileGW, err := service.New(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	fileDone := make(chan map[string][]trace.Record)
	go func() {
		got := make(map[string][]trace.Record)
		for wnd := range fileGW.Output() {
			for _, rec := range wnd.Records {
				got[rec.User] = append(got[rec.User], rec)
			}
		}
		fileDone <- got
	}()
	if err := fileGW.IngestAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := fileGW.Close(); err != nil {
		t.Fatal(err)
	}
	fileOut := <-fileDone

	// Loopback path: same seed and serving configuration, records over a
	// real HTTP connection.
	env := newEnv(t, mkCfg(), nil)
	loopOut := streamAll(t, env.cl, recs)

	if len(fileOut) != len(loopOut) {
		t.Fatalf("file path served %d users, loopback %d", len(fileOut), len(loopOut))
	}
	for u, want := range fileOut {
		got, ok := loopOut[u]
		if !ok {
			t.Fatalf("user %s missing from loopback output", u)
		}
		wb := encodePerUser(t, want)
		gb := encodePerUser(t, got)
		if !bytes.Equal(wb, gb) {
			i := 0
			for i < len(want) && i < len(got) && want[i] == got[i] {
				i++
			}
			t.Fatalf("user %s: protected output diverges between file and loopback at record %d (of %d vs %d)",
				u, i, len(want), len(got))
		}
	}

	st, err := env.cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway.Dropped != 0 || st.Gateway.Ingested != uint64(len(recs)) {
		t.Errorf("loopback gateway stats %+v", st.Gateway)
	}
}
