package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lppm"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/service"
	"repro/internal/trace"
)

var (
	srvT0   = time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	srvBase = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// makeRecords builds nUsers interleaved streams of perUser records each in
// global time order — live-traffic shape.
func makeRecords(nUsers, perUser int) []trace.Record {
	recs := make([]trace.Record, 0, nUsers*perUser)
	for i := 0; i < perUser; i++ {
		for u := 0; u < nUsers; u++ {
			recs = append(recs, trace.Record{
				User:  fmt.Sprintf("u%02d", u),
				Time:  srvT0.Add(time.Duration(i) * time.Minute),
				Point: srvBase.Offset(float64(i)*50+float64(u)*10, float64(u)*100),
			})
		}
	}
	return recs
}

// testEnv is one running stack: gateway → server → httptest listener →
// client.
type testEnv struct {
	gw  *service.Gateway
	srv *server.Server
	ts  *httptest.Server
	cl  *client.Client
}

// newEnv builds the stack. mutate, when non-nil, adjusts the server config
// before construction. The environment is torn down with the test.
func newEnv(t *testing.T, gwCfg service.Config, mutate func(*server.Config)) *testEnv {
	t.Helper()
	gw, err := service.New(context.Background(), gwCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Gateway: gw, Seed: gwCfg.Seed}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	env := &testEnv{gw: gw, srv: srv, ts: ts, cl: client.New(ts.URL)}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		ts.Close()
	})
	return env
}

// startServer mounts a prebuilt server on a test listener and returns a
// client for it; teardown drains the server with the test.
func startServer(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		ts.Close()
	})
	return client.New(ts.URL)
}

// streamAll sends every record on one stream and collects the full
// protected response, per user in arrival order.
func streamAll(t *testing.T, cl *client.Client, recs []trace.Record) map[string][]trace.Record {
	t.Helper()
	st, err := cl.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]trace.Record)
	done := make(chan error, 1)
	go func() {
		for {
			rec, err := st.Recv()
			if err == io.EOF {
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
			got[rec.User] = append(got[rec.User], rec)
		}
	}()
	for _, rec := range recs {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return got
}

func baseGatewayConfig(seed int64) service.Config {
	return service.Config{
		Mechanism:  lppm.NewGeoIndistinguishability(),
		Params:     lppm.Params{lppm.EpsilonParam: 0.01},
		Shards:     3,
		FlushEvery: 8,
		StageSize:  4,
		Seed:       seed,
	}
}

// TestStreamRoundTrip: every record sent over /v1/stream comes back
// protected, per user in time order, including the partial tail window the
// end-of-stream flush must force out.
func TestStreamRoundTrip(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(7), nil)
	recs := makeRecords(5, 21) // 21 % 8 != 0: tail windows are partial
	got := streamAll(t, env.cl, recs)
	if len(got) != 5 {
		t.Fatalf("received output for %d users, want 5", len(got))
	}
	for u, rs := range got {
		if len(rs) != 21 {
			t.Errorf("user %s: %d records, want 21", u, len(rs))
		}
		if !sort.SliceIsSorted(rs, func(i, j int) bool { return !rs[j].Time.Before(rs[i].Time) }) {
			t.Errorf("user %s output not in time order", u)
		}
	}
	st, err := env.cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway.Ingested != 105 || st.Gateway.Emitted != 105 || st.Gateway.Dropped != 0 {
		t.Errorf("gateway stats %+v", st.Gateway)
	}
	if st.Server.StreamsTotal != 1 || st.Server.ActiveStreams != 0 {
		t.Errorf("server stats %+v", st.Server)
	}
}

// TestStreamSequentialConnectionsReuseUsers: a user released by one
// finished connection can stream again on a later one, and the per-user
// random stream continues (output differs from the first connection's).
func TestStreamSequentialConnectionsReuseUsers(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(11), nil)
	recs := makeRecords(2, 8)
	first := streamAll(t, env.cl, recs)
	second := streamAll(t, env.cl, recs)
	if len(first["u00"]) != 8 || len(second["u00"]) != 8 {
		t.Fatalf("counts: first %d second %d, want 8 and 8", len(first["u00"]), len(second["u00"]))
	}
	same := 0
	for i := range first["u00"] {
		if first["u00"][i] == second["u00"][i] {
			same++
		}
	}
	if same == len(first["u00"]) {
		t.Error("second connection replayed the first's randomness; the user stream must continue")
	}
}

// TestUnaryProtectMatchesBatch: /v1/protect is the batch file path over
// the wire — same seed, same deployment, bit-identical records.
func TestUnaryProtectMatchesBatch(t *testing.T) {
	gwCfg := baseGatewayConfig(21)
	env := newEnv(t, gwCfg, nil)
	recs := makeRecords(4, 9)
	got, err := env.cl.Protect(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}

	perUser := make(map[string][]trace.Record)
	for _, rec := range recs {
		perUser[rec.User] = append(perUser[rec.User], rec)
	}
	ds := trace.NewDataset()
	for u, rs := range perUser {
		tr, err := trace.NewTrace(u, rs)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(tr)
	}
	dep, err := core.NewDeployment(gwCfg.Mechanism, gwCfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dep.Protect(ds, rng.New(gwCfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	var flat []trace.Record
	for _, tr := range want.Traces() {
		flat = append(flat, tr.Records...)
	}
	if len(got) != len(flat) {
		t.Fatalf("protect returned %d records, want %d", len(got), len(flat))
	}
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("record %d diverged from the batch path: %v vs %v", i, got[i], flat[i])
		}
	}
}

// TestDeploymentAndManualReconfigure: /v1/deployment reflects the serving
// assignment, /v1/reconfigure hot-swaps it mid-stream without losing a
// record, and bad assignments are rejected with the old one left serving.
func TestDeploymentAndManualReconfigure(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(31), nil)
	ctx := context.Background()

	dep, err := env.cl.Deployment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Generation != 0 || dep.Mechanism != "geoi" || dep.Params["epsilon"] != 0.01 {
		t.Errorf("initial deployment %+v", dep)
	}

	// Hot-swap while a stream is live.
	st, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(2, 16)
	half := len(recs) / 2
	var recvN atomic.Int64
	done := make(chan error, 1)
	go func() {
		for {
			_, err := st.Recv()
			if err == io.EOF {
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
			recvN.Add(1)
		}
	}()
	for _, rec := range recs[:half] {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := env.cl.Reconfigure(ctx, map[string]float64{"epsilon": 0.5},
		map[string]map[string]float64{"u00": {"epsilon": 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Errorf("reconfigure returned generation %d, want 1", gen)
	}
	for _, rec := range recs[half:] {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := recvN.Load(); n != int64(len(recs)) {
		t.Errorf("received %d records across the swap, want %d", n, len(recs))
	}

	dep, err = env.cl.Deployment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Generation != 1 || dep.Params["epsilon"] != 0.5 || dep.Overrides["u00"]["epsilon"] != 0.9 {
		t.Errorf("post-swap deployment %+v", dep)
	}
	stats, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gateway.Dropped != 0 || stats.Gateway.Swaps != 1 {
		t.Errorf("post-swap gateway stats %+v", stats.Gateway)
	}

	// Invalid assignments must be rejected and leave the old one serving.
	if _, err := env.cl.Reconfigure(ctx, map[string]float64{"epsilonn": 0.1}, nil); err == nil {
		t.Error("misspelled parameter accepted")
	}
	var apiErr *client.APIError
	if _, err := env.cl.Reconfigure(ctx, map[string]float64{"epsilon": -4}, nil); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("out-of-range parameter: got %v, want 400", err)
	}
	if dep, err = env.cl.Deployment(ctx); err != nil || dep.Generation != 1 {
		t.Errorf("rejected reconfigure moved the deployment: %+v, %v", dep, err)
	}
}

// TestAdmissionMaxStreams: the concurrent-stream cap answers 503 and a
// finished stream frees its slot.
func TestAdmissionMaxStreams(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(41), func(c *server.Config) { c.MaxStreams = 1 })
	ctx := context.Background()
	st, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := env.cl.Stream(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("second stream: got %v, want 503", err)
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("empty stream must end with EOF, got %v", err)
	}
	// The slot is released once the first handler returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st2, err := env.cl.Stream(ctx)
		if err == nil {
			st2.CloseSend()
			for {
				if _, err := st2.Recv(); err != nil {
					break
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.StreamsRejected == 0 {
		t.Error("rejection not counted")
	}
}

// TestAdmissionRateLimit: per-tenant token buckets answer 429 — and only
// for the exhausted tenant.
func TestAdmissionRateLimit(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(43), func(c *server.Config) {
		c.RatePerSec = 0.001 // refill ~1 token / 1000 s: effectively burst-only
		c.Burst = 2
	})
	ctx := context.Background()
	limited := client.New(env.ts.URL, client.WithTenant("tenant-a"))
	for i := 0; i < 2; i++ {
		if _, err := limited.Stats(ctx); err != nil {
			t.Fatalf("request %d within burst refused: %v", i, err)
		}
	}
	var apiErr *client.APIError
	if _, err := limited.Stats(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("past-burst request: got %v, want 429", err)
	}
	other := client.New(env.ts.URL, client.WithTenant("tenant-b"))
	if _, err := other.Stats(ctx); err != nil {
		t.Errorf("other tenant throttled too: %v", err)
	}
	st, err := other.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.RateLimited == 0 {
		t.Error("rate-limit rejection not counted")
	}
}

// TestStreamUserConflict: a user already streaming on one connection is
// refused on another, which still receives (and keeps) its own users'
// output.
func TestStreamUserConflict(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(47), nil)
	ctx := context.Background()
	st1, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Send(trace.Record{User: "shared", Time: srvT0, Point: srvBase}); err != nil {
		t.Fatal(err)
	}
	st2, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Own user first, then the conflicting one.
	if err := st2.Send(trace.Record{User: "mine", Time: srvT0, Point: srvBase}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Send(trace.Record{User: "shared", Time: srvT0.Add(time.Minute), Point: srvBase}); err != nil {
		t.Fatal(err)
	}
	st2.CloseSend()
	gotMine := 0
	var streamErr error
	for {
		rec, err := st2.Recv()
		if err != nil {
			if err != io.EOF {
				streamErr = err
			}
			break
		}
		if rec.User == "mine" {
			gotMine++
		}
	}
	if streamErr == nil || !strings.Contains(streamErr.Error(), "already streaming") {
		t.Errorf("conflicting stream ended with %v, want an ownership error", streamErr)
	}
	if gotMine != 1 {
		t.Errorf("conflicting connection received %d of its own records, want 1", gotMine)
	}
	// The first connection still owns the user and finishes normally.
	if err := st1.CloseSend(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		rec, err := st1.Recv()
		if err != nil {
			if err != io.EOF {
				t.Fatalf("first stream ended with %v", err)
			}
			break
		}
		if rec.User == "shared" {
			got++
		}
	}
	if got != 1 {
		t.Errorf("owner received %d records, want 1", got)
	}
}

// TestStreamMalformedInput: bad bytes on the wire end the stream with an
// error in the trailer — never a hang, never a panic (the fuzz targets in
// internal/trace cover the codec itself).
func TestStreamMalformedInput(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(53), nil)
	resp, err := http.Post(env.ts.URL+"/v1/stream", "application/x-ndjson",
		strings.NewReader("{\"user\":\"u\",\"ts\":1,\"lat\":1,\"lng\":2}\nnot json at all\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if msg := resp.Trailer.Get("X-Stream-Error"); msg == "" {
		t.Error("malformed input produced no trailer error")
	}
}

// TestGracefulDrainDeliversTail is the drain contract: records pending in
// partial windows when the server drains are flushed exactly once and
// delivered to the still-connected client before its response ends.
func TestGracefulDrainDeliversTail(t *testing.T) {
	gwCfg := baseGatewayConfig(59)
	gwCfg.FlushEvery = 100 // nothing flushes until the drain
	env := newEnv(t, gwCfg, nil)
	ctx := context.Background()
	st, err := env.cl.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(2, 3)
	for _, rec := range recs {
		if err := st.Send(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until everything is ingested, then drain with the client idle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := env.cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Gateway.Ingested == uint64(len(recs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records never ingested: %+v", stats.Gateway)
		}
		time.Sleep(2 * time.Millisecond)
	}
	drainDone := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		drainDone <- env.srv.Drain(dctx)
	}()
	got := 0
	var endErr error
	for {
		_, err := st.Recv()
		if err != nil {
			if err != io.EOF {
				endErr = err
			}
			break
		}
		got++
	}
	if got != len(recs) {
		t.Errorf("drain delivered %d records, want %d", got, len(recs))
	}
	if endErr == nil || !strings.Contains(endErr.Error(), "draining") {
		t.Errorf("drained stream ended with %v, want a draining notice", endErr)
	}
	if err := <-drainDone; err != nil {
		t.Errorf("drain returned %v", err)
	}
	// Post-drain: health 503, new streams refused, gateway flushed
	// everything exactly once.
	if err := env.cl.Health(ctx); err == nil {
		t.Error("healthz still ok after drain")
	}
	var apiErr *client.APIError
	if _, err := env.cl.Stream(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("post-drain stream: got %v, want 503", err)
	}
	stats, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gateway.Emitted != uint64(len(recs)) || stats.Gateway.Dropped != 0 {
		t.Errorf("post-drain gateway stats %+v", stats.Gateway)
	}
	if !stats.Server.Draining {
		t.Error("stats do not report draining")
	}
}

// TestConcurrentStreamsPartitionUsers: many connections, disjoint users,
// all output attributed to the right connection — the multiplexing
// contract under concurrency.
func TestConcurrentStreamsPartitionUsers(t *testing.T) {
	env := newEnv(t, baseGatewayConfig(61), nil)
	const conns = 4
	const perUser = 19
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			users := []string{fmt.Sprintf("c%d-a", ci), fmt.Sprintf("c%d-b", ci)}
			var recs []trace.Record
			for i := 0; i < perUser; i++ {
				for _, u := range users {
					recs = append(recs, trace.Record{
						User:  u,
						Time:  srvT0.Add(time.Duration(i) * time.Minute),
						Point: srvBase.Offset(float64(i)*30, float64(ci)*200),
					})
				}
			}
			st, err := env.cl.Stream(context.Background())
			if err != nil {
				errs <- err
				return
			}
			got := make(map[string]int)
			done := make(chan error, 1)
			go func() {
				for {
					rec, err := st.Recv()
					if err == io.EOF {
						done <- nil
						return
					}
					if err != nil {
						done <- err
						return
					}
					got[rec.User]++
				}
			}()
			for _, rec := range recs {
				if err := st.Send(rec); err != nil {
					errs <- err
					return
				}
			}
			if err := st.CloseSend(); err != nil {
				errs <- err
				return
			}
			if err := <-done; err != nil {
				errs <- err
				return
			}
			for _, u := range users {
				if got[u] != perUser {
					errs <- fmt.Errorf("conn %d: user %s got %d records, want %d", ci, u, got[u], perUser)
					return
				}
			}
			if len(got) != len(users) {
				errs <- fmt.Errorf("conn %d: received records for %d users, want %d", ci, len(got), len(users))
				return
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestStalledReaderDoesNotWedgeServer: a client that sends records but
// never reads its response must not freeze the shared dispatcher — after
// the write-stall deadline its connection is abandoned, its windows are
// dropped, and other connections keep streaming.
func TestStalledReaderDoesNotWedgeServer(t *testing.T) {
	gwCfg := baseGatewayConfig(67)
	gwCfg.FlushEvery = 1 // every record is a window: pressure builds fast
	gwCfg.StageSize = 1
	env := newEnv(t, gwCfg, func(c *server.Config) {
		c.WindowBuffer = 1
		c.WriteStallTimeout = 200 * time.Millisecond
	})

	// A raw stream whose response is never read: kernel buffers fill, the
	// writer stalls, the deadline abandons the connection.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		rw, err := trace.NewRecordWriter(pw, trace.FormatJSONL)
		if err != nil {
			return
		}
		// A long user id fattens every request AND response record, so
		// the unread response (~16 MB) overflows the loopback socket
		// buffers and genuinely stalls the writer.
		staller := "staller-" + strings.Repeat("x", 2048)
		for i := 0; i < 8000; i++ {
			rec := trace.Record{
				User:  staller,
				Time:  srvT0.Add(time.Duration(i) * time.Second),
				Point: srvBase,
			}
			// Errors expected once the server abandons the connection.
			if rw.Write(rec) != nil || rw.Flush() != nil {
				return
			}
		}
		pw.Close()
	}()

	// Meanwhile a well-behaved stream must keep round-tripping.
	deadline := time.Now().Add(20 * time.Second)
	recs := makeRecords(1, 5)
	for i := range recs {
		recs[i].User = "polite"
	}
	for {
		got := streamAll(t, env.cl, recs)
		if len(got["polite"]) == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("well-behaved stream starved behind the stalled one")
		}
	}
	// The stalled connection's fate is visible in the counters: dropped
	// windows (dead client) — possibly orphaned ones flushed after its
	// users were released.
	ctx := context.Background()
	for {
		st, err := env.cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Server.DroppedWindows > 0 || st.Server.OrphanWindows > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled connection never abandoned: %+v", st.Server)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
