package trace

import (
	"bytes"
	"strings"
	"testing"
)

func roundTripDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	d.Add(mkTrace(t, "cab-001", 5))
	d.Add(mkTrace(t, "cab-002", 3))
	return d
}

func TestCSVRoundTrip(t *testing.T) {
	d := roundTripDataset(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, back)
}

func TestCSVDeterministicOutput(t *testing.T) {
	d := roundTripDataset(t)
	var a, b bytes.Buffer
	if err := WriteCSV(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("CSV output must be deterministic")
	}
	if !strings.HasPrefix(a.String(), "user,timestamp,lat,lng\n") {
		t.Errorf("unexpected header: %q", a.String()[:40])
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d\n"},
		{"bad timestamp", "user,timestamp,lat,lng\nu,xx,1,2\n"},
		{"bad lat", "user,timestamp,lat,lng\nu,0,xx,2\n"},
		{"bad lng", "user,timestamp,lat,lng\nu,0,1,xx\n"},
		{"out of range", "user,timestamp,lat,lng\nu,0,91,2\n"},
		{"empty user", "user,timestamp,lat,lng\n,0,1,2\n"},
		{"wrong arity", "user,timestamp,lat,lng\nu,0,1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadCSV(%q) should error", tt.in)
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := roundTripDataset(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, back)
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "{not json}\n"},
		{"empty user", `{"user":"","ts":0,"lat":1,"lng":2}` + "\n"},
		{"bad coords", `{"user":"u","ts":0,"lat":123,"lng":2}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadJSONL(%q) should error", tt.in)
			}
		})
	}
}

func TestReadJSONLEmptyIsEmptyDataset(t *testing.T) {
	d, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 0 {
		t.Errorf("NumUsers = %d", d.NumUsers())
	}
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() {
		t.Fatalf("users = %d, want %d", got.NumUsers(), want.NumUsers())
	}
	for _, u := range want.Users() {
		wt, gt := want.Trace(u), got.Trace(u)
		if gt == nil {
			t.Fatalf("user %s missing", u)
		}
		if gt.Len() != wt.Len() {
			t.Fatalf("user %s: len %d, want %d", u, gt.Len(), wt.Len())
		}
		for i := range wt.Records {
			wr, gr := wt.Records[i], gt.Records[i]
			if !wr.Time.Equal(gr.Time) {
				t.Fatalf("user %s record %d: time %v, want %v", u, i, gr.Time, wr.Time)
			}
			// Coordinates survive with 6-decimal precision (~0.1 m).
			if dLat := wr.Point.Lat - gr.Point.Lat; dLat > 1e-6 || dLat < -1e-6 {
				t.Fatalf("user %s record %d: lat %v, want %v", u, i, gr.Point.Lat, wr.Point.Lat)
			}
			if dLng := wr.Point.Lng - gr.Point.Lng; dLng > 1e-6 || dLng < -1e-6 {
				t.Fatalf("user %s record %d: lng %v, want %v", u, i, gr.Point.Lng, wr.Point.Lng)
			}
		}
	}
}
