package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// geoJSON document structure (RFC 7946), kept minimal: one LineString
// feature per user plus optional Point features. Coordinates are
// [longitude, latitude], per the spec.
type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

type geoJSONGeometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// WriteGeoJSON renders the dataset as an RFC 7946 FeatureCollection with
// one LineString per user (ordered by user id), for inspection in any map
// tool. Traces with a single record render as a Point; empty traces are
// skipped.
func WriteGeoJSON(w io.Writer, d *Dataset) error {
	if d == nil {
		return fmt.Errorf("trace: nil dataset")
	}
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for _, t := range d.Traces() {
		if t.Len() == 0 {
			continue
		}
		props := map[string]any{
			"user":    t.User,
			"records": t.Len(),
			"start":   t.Records[0].Time.UTC(),
			"end":     t.Records[len(t.Records)-1].Time.UTC(),
		}
		var geom geoJSONGeometry
		if t.Len() == 1 {
			p := t.Records[0].Point
			geom = geoJSONGeometry{Type: "Point", Coordinates: []float64{p.Lng, p.Lat}}
		} else {
			coords := make([][]float64, t.Len())
			for i, rec := range t.Records {
				coords[i] = []float64{rec.Point.Lng, rec.Point.Lat}
			}
			geom = geoJSONGeometry{Type: "LineString", Coordinates: coords}
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type:       "Feature",
			Properties: props,
			Geometry:   geom,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}
