package trace

import (
	"testing"
	"time"

	"repro/internal/geo"
)

var (
	t0     = time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	basePt = geo.Point{Lat: 37.7749, Lng: -122.4194}
)

// mkTrace builds a test trace with records every minute at increasing east
// offsets.
func mkTrace(t *testing.T, user string, n int) *Trace {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			User:  user,
			Time:  t0.Add(time.Duration(i) * time.Minute),
			Point: basePt.Offset(float64(i)*50, 0),
		}
	}
	tr, err := NewTrace(user, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTraceSortsRecords(t *testing.T) {
	recs := []Record{
		{User: "u", Time: t0.Add(2 * time.Minute), Point: basePt},
		{User: "u", Time: t0, Point: basePt},
		{User: "u", Time: t0.Add(time.Minute), Point: basePt},
	}
	tr, err := NewTrace("u", recs)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Sorted() {
		t.Error("records should be sorted")
	}
	if !tr.Records[0].Time.Equal(t0) {
		t.Errorf("first record time = %v", tr.Records[0].Time)
	}
	// Input slice must not be mutated.
	if !recs[0].Time.Equal(t0.Add(2 * time.Minute)) {
		t.Error("NewTrace mutated its input")
	}
}

func TestNewTraceRejectsForeignRecords(t *testing.T) {
	recs := []Record{{User: "alice", Time: t0, Point: basePt}}
	if _, err := NewTrace("bob", recs); err == nil {
		t.Error("foreign record should be rejected")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := mkTrace(t, "u", 5)
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Duration(); got != 4*time.Minute {
		t.Errorf("Duration = %v", got)
	}
	if pts := tr.Points(); len(pts) != 5 || pts[0] != basePt {
		t.Errorf("Points = %v", pts)
	}
	empty := &Trace{User: "e"}
	if empty.Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestTraceClone(t *testing.T) {
	tr := mkTrace(t, "u", 3)
	cl := tr.Clone()
	cl.Records[0].Point = geo.Point{Lat: 1, Lng: 1}
	if tr.Records[0].Point == cl.Records[0].Point {
		t.Error("Clone must be deep")
	}
}

func TestTraceTimeWindow(t *testing.T) {
	tr := mkTrace(t, "u", 10)
	w := tr.TimeWindow(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if w.Len() != 3 {
		t.Errorf("window len = %d, want 3", w.Len())
	}
	if !w.Records[0].Time.Equal(t0.Add(2 * time.Minute)) {
		t.Error("window start should be inclusive")
	}
}

func TestTraceResample(t *testing.T) {
	tr := mkTrace(t, "u", 10) // 1-minute cadence
	rs := tr.Resample(3 * time.Minute)
	if rs.Len() != 4 { // minutes 0, 3, 6, 9
		t.Errorf("resampled len = %d, want 4", rs.Len())
	}
	if got := tr.Resample(0); got.Len() != tr.Len() {
		t.Error("non-positive period should be a clone")
	}
	if got := tr.Resample(time.Second); got.Len() != tr.Len() {
		t.Error("period below cadence should keep everything")
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset()
	if d.NumUsers() != 0 || d.NumRecords() != 0 {
		t.Error("new dataset should be empty")
	}
	d.Add(mkTrace(t, "bob", 3))
	d.Add(mkTrace(t, "alice", 2))
	if d.NumUsers() != 2 || d.NumRecords() != 5 {
		t.Errorf("users=%d records=%d", d.NumUsers(), d.NumRecords())
	}
	users := d.Users()
	if users[0] != "alice" || users[1] != "bob" {
		t.Errorf("Users() = %v, want sorted", users)
	}
	if tr := d.Trace("bob"); tr == nil || tr.Len() != 3 {
		t.Error("Trace(bob) wrong")
	}
	if d.Trace("nobody") != nil {
		t.Error("missing user should be nil")
	}
	ts := d.Traces()
	if len(ts) != 2 || ts[0].User != "alice" {
		t.Errorf("Traces() order wrong")
	}
}

func TestFromTraces(t *testing.T) {
	a := mkTrace(t, "a", 1)
	if _, err := FromTraces([]*Trace{a, a}); err == nil {
		t.Error("duplicate users should error")
	}
	d, err := FromTraces([]*Trace{a, mkTrace(t, "b", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 2 {
		t.Errorf("NumUsers = %d", d.NumUsers())
	}
}

func TestDatasetCloneIndependent(t *testing.T) {
	d := NewDataset()
	d.Add(mkTrace(t, "u", 2))
	c := d.Clone()
	c.Trace("u").Records[0].Point = geo.Point{Lat: 1, Lng: 1}
	if d.Trace("u").Records[0].Point == c.Trace("u").Records[0].Point {
		t.Error("Clone must deep-copy traces")
	}
}

func TestDatasetBBox(t *testing.T) {
	d := NewDataset()
	if _, ok := d.BBox(); ok {
		t.Error("empty dataset should have no bbox")
	}
	d.Add(mkTrace(t, "u", 5)) // 0..200 m east offsets
	box, ok := d.BBox()
	if !ok {
		t.Fatal("bbox should exist")
	}
	if w := box.WidthMeters(); w < 190 || w > 210 {
		t.Errorf("bbox width = %v, want ~200", w)
	}
}

func TestDatasetFilterMap(t *testing.T) {
	d := NewDataset()
	d.Add(mkTrace(t, "short", 2))
	d.Add(mkTrace(t, "long", 20))
	f := d.Filter(func(tr *Trace) bool { return tr.Len() >= 10 })
	if f.NumUsers() != 1 || f.Trace("long") == nil {
		t.Error("Filter wrong")
	}
	m := d.Map(func(tr *Trace) *Trace {
		if tr.User == "short" {
			return nil
		}
		return tr.Resample(5 * time.Minute)
	})
	if m.NumUsers() != 1 {
		t.Error("Map should drop nil results")
	}
	if m.Trace("long").Len() != 4 {
		t.Errorf("mapped trace len = %d", m.Trace("long").Len())
	}
}

func TestRecordString(t *testing.T) {
	r := Record{User: "u", Time: t0, Point: basePt}
	if r.String() == "" {
		t.Error("String should be non-empty")
	}
}
