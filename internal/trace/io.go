package trace

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// csvHeader is the canonical column layout: user, unix seconds, lat, lng —
// the same shape as the cabspotting dumps the paper's evaluation consumed.
var csvHeader = []string{"user", "timestamp", "lat", "lng"}

// WriteCSV writes the dataset in canonical CSV form, users in deterministic
// order, each user's records in time order.
func WriteCSV(w io.Writer, d *Dataset) error {
	return writeRecords(w, d, FormatCSV)
}

// writeRecords streams a dataset through a RecordWriter — the batch writers
// are the streaming writer plus deterministic iteration.
func writeRecords(w io.Writer, d *Dataset, format Format) error {
	rw, err := NewRecordWriter(w, format)
	if err != nil {
		return err
	}
	for _, t := range d.Traces() {
		for _, r := range t.Records {
			if err := rw.Write(r); err != nil {
				return err
			}
		}
	}
	return rw.Flush()
}

// ReadCSV parses a dataset from canonical CSV form. The header row is
// required; records may appear in any order.
func ReadCSV(r io.Reader) (*Dataset, error) {
	return readRecords(r, FormatCSV)
}

// readRecords accumulates a streaming scan into a dataset — the batch
// readers are the scanner plus a per-user grouping.
func readRecords(r io.Reader, format Format) (*Dataset, error) {
	perUser := make(map[string][]Record)
	if err := ScanRecords(r, format, func(rec Record) error {
		perUser[rec.User] = append(perUser[rec.User], rec)
		return nil
	}); err != nil {
		return nil, err
	}
	d := NewDataset()
	for user, recs := range perUser {
		t, err := NewTrace(user, recs)
		if err != nil {
			return nil, err
		}
		d.Add(t)
	}
	return d, nil
}

func parseCSVRow(row []string) (Record, error) {
	if row[0] == "" {
		return Record{}, fmt.Errorf("empty user id")
	}
	ts, err := strconv.ParseInt(row[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp %q: %w", row[1], err)
	}
	lat, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad latitude %q: %w", row[2], err)
	}
	lng, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad longitude %q: %w", row[3], err)
	}
	p := geo.Point{Lat: lat, Lng: lng}
	if !p.Valid() {
		return Record{}, fmt.Errorf("invalid coordinates %v", p)
	}
	return Record{User: row[0], Time: time.Unix(ts, 0).UTC(), Point: p}, nil
}

// jsonRecord is the JSON-lines wire form of a Record.
type jsonRecord struct {
	User string  `json:"user"`
	Unix int64   `json:"ts"`
	Lat  float64 `json:"lat"`
	Lng  float64 `json:"lng"`
}

// record converts the wire form into a Record, validating it.
func (jr jsonRecord) record() (Record, error) {
	if jr.User == "" {
		return Record{}, fmt.Errorf("empty user")
	}
	p := geo.Point{Lat: jr.Lat, Lng: jr.Lng}
	if !p.Valid() {
		return Record{}, fmt.Errorf("invalid coordinates %v", p)
	}
	return Record{User: jr.User, Time: time.Unix(jr.Unix, 0).UTC(), Point: p}, nil
}

// WriteJSONL writes the dataset as one JSON object per line.
func WriteJSONL(w io.Writer, d *Dataset) error {
	return writeRecords(w, d, FormatJSONL)
}

// ReadJSONL parses a dataset from JSON-lines form.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	return readRecords(r, FormatJSONL)
}
