package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// csvHeader is the canonical column layout: user, unix seconds, lat, lng —
// the same shape as the cabspotting dumps the paper's evaluation consumed.
var csvHeader = []string{"user", "timestamp", "lat", "lng"}

// WriteCSV writes the dataset in canonical CSV form, users in deterministic
// order, each user's records in time order.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, t := range d.Traces() {
		for _, r := range t.Records {
			row := []string{
				r.User,
				strconv.FormatInt(r.Time.Unix(), 10),
				strconv.FormatFloat(r.Point.Lat, 'f', 6, 64),
				strconv.FormatFloat(r.Point.Lng, 'f', 6, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write record: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset from canonical CSV form. The header row is
// required; records may appear in any order.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}

	perUser := make(map[string][]Record)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read line %d: %w", line, err)
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		perUser[rec.User] = append(perUser[rec.User], rec)
	}

	d := NewDataset()
	for user, recs := range perUser {
		t, err := NewTrace(user, recs)
		if err != nil {
			return nil, err
		}
		d.Add(t)
	}
	return d, nil
}

func parseCSVRow(row []string) (Record, error) {
	if row[0] == "" {
		return Record{}, fmt.Errorf("empty user id")
	}
	ts, err := strconv.ParseInt(row[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp %q: %w", row[1], err)
	}
	lat, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad latitude %q: %w", row[2], err)
	}
	lng, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad longitude %q: %w", row[3], err)
	}
	p := geo.Point{Lat: lat, Lng: lng}
	if !p.Valid() {
		return Record{}, fmt.Errorf("invalid coordinates %v", p)
	}
	return Record{User: row[0], Time: time.Unix(ts, 0).UTC(), Point: p}, nil
}

// jsonRecord is the JSON-lines wire form of a Record.
type jsonRecord struct {
	User string  `json:"user"`
	Unix int64   `json:"ts"`
	Lat  float64 `json:"lat"`
	Lng  float64 `json:"lng"`
}

// WriteJSONL writes the dataset as one JSON object per line.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range d.Traces() {
		for _, r := range t.Records {
			jr := jsonRecord{User: r.User, Unix: r.Time.Unix(), Lat: r.Point.Lat, Lng: r.Point.Lng}
			if err := enc.Encode(jr); err != nil {
				return fmt.Errorf("trace: encode jsonl: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush jsonl: %w", err)
	}
	return nil
}

// ReadJSONL parses a dataset from JSON-lines form.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(r)
	perUser := make(map[string][]Record)
	for line := 1; ; line++ {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		if jr.User == "" {
			return nil, fmt.Errorf("trace: jsonl line %d: empty user", line)
		}
		p := geo.Point{Lat: jr.Lat, Lng: jr.Lng}
		if !p.Valid() {
			return nil, fmt.Errorf("trace: jsonl line %d: invalid coordinates %v", line, p)
		}
		perUser[jr.User] = append(perUser[jr.User],
			Record{User: jr.User, Time: time.Unix(jr.Unix, 0).UTC(), Point: p})
	}
	d := NewDataset()
	for user, recs := range perUser {
		t, err := NewTrace(user, recs)
		if err != nil {
			return nil, err
		}
		d.Add(t)
	}
	return d, nil
}
