package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Format names a record wire format understood by the streaming scanner and
// writer.
type Format string

// The supported wire formats: the canonical CSV layout (user, unix seconds,
// lat, lng — header required) and one JSON object per line.
const (
	FormatCSV   Format = "csv"
	FormatJSONL Format = "jsonl"
)

// ParseFormat maps a user-supplied name to a Format.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatCSV:
		return FormatCSV, nil
	case FormatJSONL:
		return FormatJSONL, nil
	}
	return "", fmt.Errorf("trace: unknown format %q (want %q or %q)", s, FormatCSV, FormatJSONL)
}

// ScanRecords parses records from r one at a time, invoking fn for each in
// input order without materializing a Dataset — the streaming complement of
// ReadCSV/ReadJSONL for inputs too large (or too live) to batch. An error
// from fn aborts the scan and is returned unchanged.
func ScanRecords(r io.Reader, format Format, fn func(Record) error) error {
	switch format {
	case FormatCSV:
		return scanCSV(r, fn)
	case FormatJSONL:
		return scanJSONL(r, fn)
	}
	return fmt.Errorf("trace: unknown format %q", format)
}

func scanCSV(r io.Reader, fn func(Record) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: read line %d: %w", line, err)
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func scanJSONL(r io.Reader, fn func(Record) error) error {
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		rec, err := jr.record()
		if err != nil {
			return fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// RecordWriter emits records one at a time in a wire format — the streaming
// complement of WriteCSV/WriteJSONL. Call Flush when done.
type RecordWriter struct {
	format Format
	bw     *bufio.Writer
	cw     *csv.Writer
	enc    *json.Encoder
	wrote  bool
}

// NewRecordWriter wraps w for the given format.
func NewRecordWriter(w io.Writer, format Format) (*RecordWriter, error) {
	rw := &RecordWriter{format: format}
	switch format {
	case FormatCSV:
		rw.cw = csv.NewWriter(w)
	case FormatJSONL:
		rw.bw = bufio.NewWriter(w)
		rw.enc = json.NewEncoder(rw.bw)
	default:
		return nil, fmt.Errorf("trace: unknown format %q", format)
	}
	return rw, nil
}

// Write emits one record (preceded by the header for CSV).
func (rw *RecordWriter) Write(rec Record) error {
	switch rw.format {
	case FormatCSV:
		if !rw.wrote {
			if err := rw.cw.Write(csvHeader); err != nil {
				return fmt.Errorf("trace: write header: %w", err)
			}
		}
		rw.wrote = true
		row := []string{
			rec.User,
			strconv.FormatInt(rec.Time.Unix(), 10),
			strconv.FormatFloat(rec.Point.Lat, 'f', 6, 64),
			strconv.FormatFloat(rec.Point.Lng, 'f', 6, 64),
		}
		if err := rw.cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
		return nil
	default: // jsonl; constructor rejected anything else
		rw.wrote = true
		jr := jsonRecord{User: rec.User, Unix: rec.Time.Unix(), Lat: rec.Point.Lat, Lng: rec.Point.Lng}
		if err := rw.enc.Encode(jr); err != nil {
			return fmt.Errorf("trace: encode jsonl: %w", err)
		}
		return nil
	}
}

// Flush drains buffered output to the underlying writer. A CSV stream that
// saw no records still gets its header, so the output round-trips through
// ReadCSV as an empty dataset just like WriteCSV's.
func (rw *RecordWriter) Flush() error {
	switch rw.format {
	case FormatCSV:
		if !rw.wrote {
			rw.wrote = true
			if err := rw.cw.Write(csvHeader); err != nil {
				return fmt.Errorf("trace: write header: %w", err)
			}
		}
		rw.cw.Flush()
		if err := rw.cw.Error(); err != nil {
			return fmt.Errorf("trace: flush csv: %w", err)
		}
		return nil
	default:
		if err := rw.bw.Flush(); err != nil {
			return fmt.Errorf("trace: flush jsonl: %w", err)
		}
		return nil
	}
}
