package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestComputePropertiesBasic(t *testing.T) {
	tr := mkTrace(t, "u", 61) // 60 minutes, 50 m/min east
	p := ComputeProperties(tr, 500)
	if p.User != "u" || p.NumRecords != 61 {
		t.Errorf("identity fields: %+v", p)
	}
	if math.Abs(p.DurationHours-1) > 1e-9 {
		t.Errorf("DurationHours = %v, want 1", p.DurationHours)
	}
	if math.Abs(p.PathKm-3.0) > 0.01 { // 60 × 50 m = 3 km
		t.Errorf("PathKm = %v, want ~3", p.PathKm)
	}
	if math.Abs(p.MeanSpeedKmh-3.0) > 0.05 {
		t.Errorf("MeanSpeedKmh = %v, want ~3", p.MeanSpeedKmh)
	}
	if math.Abs(p.SamplingPeriodSec-60) > 1e-9 {
		t.Errorf("SamplingPeriodSec = %v, want 60", p.SamplingPeriodSec)
	}
	if p.AreaKm2 != 0 { // purely east-west trace has zero bbox area
		t.Errorf("AreaKm2 = %v, want 0 for a 1-D trace", p.AreaKm2)
	}

	// A 2-D trace must report a positive area: 1 km × 1 km square.
	square := []Record{
		{User: "q", Time: t0, Point: basePt},
		{User: "q", Time: t0.Add(time.Minute), Point: basePt.Offset(1000, 0)},
		{User: "q", Time: t0.Add(2 * time.Minute), Point: basePt.Offset(1000, 1000)},
	}
	qt, err := NewTrace("q", square)
	if err != nil {
		t.Fatal(err)
	}
	pq := ComputeProperties(qt, 500)
	if math.Abs(pq.AreaKm2-1) > 0.02 {
		t.Errorf("square AreaKm2 = %v, want ~1", pq.AreaKm2)
	}
}

func TestComputePropertiesDegenerate(t *testing.T) {
	empty := &Trace{User: "e"}
	p := ComputeProperties(empty, 500)
	if p.NumRecords != 0 || p.PathKm != 0 || p.CellEntropy != 0 {
		t.Errorf("empty props = %+v", p)
	}

	single, err := NewTrace("s", []Record{{User: "s", Time: t0, Point: basePt}})
	if err != nil {
		t.Fatal(err)
	}
	p = ComputeProperties(single, 500)
	if p.NumRecords != 1 || p.SamplingPeriodSec != 0 || p.MeanSpeedKmh != 0 {
		t.Errorf("single props = %+v", p)
	}
}

func TestCellEntropyDiscriminates(t *testing.T) {
	// Stationary user: zero entropy. Wanderer across many cells: high.
	stay := make([]Record, 20)
	for i := range stay {
		stay[i] = Record{User: "s", Time: t0.Add(time.Duration(i) * time.Minute), Point: basePt}
	}
	st, err := NewTrace("s", stay)
	if err != nil {
		t.Fatal(err)
	}
	move := make([]Record, 20)
	for i := range move {
		move[i] = Record{
			User: "m", Time: t0.Add(time.Duration(i) * time.Minute),
			Point: basePt.Offset(float64(i)*600, 0),
		}
	}
	mv, err := NewTrace("m", move)
	if err != nil {
		t.Fatal(err)
	}
	ps := ComputeProperties(st, 500)
	pm := ComputeProperties(mv, 500)
	if ps.CellEntropy != 0 {
		t.Errorf("stationary entropy = %v, want 0", ps.CellEntropy)
	}
	if pm.CellEntropy < 0.9 {
		t.Errorf("wanderer entropy = %v, want near 1", pm.CellEntropy)
	}
}

func TestPropertyVectorMatchesNames(t *testing.T) {
	p := UserProperties{
		NumRecords: 1, DurationHours: 2, PathKm: 3, AreaKm2: 4,
		MeanSpeedKmh: 5, SamplingPeriodSec: 6, CellEntropy: 7,
	}
	v := p.PropertyVector()
	names := PropertyNames()
	if len(v) != len(names) {
		t.Fatalf("vector len %d != names len %d", len(v), len(names))
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7} {
		if v[i] != want {
			t.Errorf("vector[%d] = %v, want %v", i, v[i], want)
		}
	}
}

func TestDatasetProperties(t *testing.T) {
	d := NewDataset()
	d.Add(mkTrace(t, "b", 10))
	d.Add(mkTrace(t, "a", 5))
	props := DatasetProperties(d, 500)
	if len(props) != 2 || props[0].User != "a" || props[1].User != "b" {
		t.Errorf("props order wrong: %+v", props)
	}
}

func TestMedianSamplingPeriod(t *testing.T) {
	d := NewDataset()
	if got := MedianSamplingPeriod(d); got != 0 {
		t.Errorf("empty dataset period = %v", got)
	}
	d.Add(mkTrace(t, "u", 10))
	if got := MedianSamplingPeriod(d); got != time.Minute {
		t.Errorf("period = %v, want 1m", got)
	}
	single, err := NewTrace("s", []Record{{User: "s", Time: t0, Point: basePt}})
	if err != nil {
		t.Fatal(err)
	}
	d.Add(single) // must be ignored, not crash
	if got := MedianSamplingPeriod(d); got != time.Minute {
		t.Errorf("period with degenerate user = %v", got)
	}
}

func TestGeoPathSanity(t *testing.T) {
	// Guard against regressions in the offset cadence used by mkTrace.
	tr := mkTrace(t, "u", 2)
	d := geo.Haversine(tr.Records[0].Point, tr.Records[1].Point)
	if math.Abs(d-50) > 0.5 {
		t.Errorf("consecutive record distance = %v, want ~50", d)
	}
}
