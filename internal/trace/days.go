package trace

import (
	"fmt"
	"time"
)

// SplitByDay partitions the trace into per-calendar-day traces (UTC days),
// in chronological order. Days without records are absent. Multi-day
// datasets are analyzed per day when the experiment's unit is "a day of
// mobility" (as the paper's taxi dataset is).
func (t *Trace) SplitByDay() []*Trace {
	if len(t.Records) == 0 {
		return nil
	}
	var out []*Trace
	var cur *Trace
	var curDay time.Time
	for _, rec := range t.Records {
		day := rec.Time.UTC().Truncate(24 * time.Hour)
		if cur == nil || !day.Equal(curDay) {
			cur = &Trace{User: t.User}
			curDay = day
			out = append(out, cur)
		}
		cur.Records = append(cur.Records, rec)
	}
	return out
}

// GapStats summarizes the sampling discontinuities of a trace: gaps are
// consecutive-record intervals exceeding the threshold. Real GPS data
// (tunnels, parking garages, powered-off devices) is full of them, and
// they matter to POI extraction — a "stay" spanning a gap may be an
// artifact.
type GapStats struct {
	// Gaps is the number of intervals exceeding the threshold.
	Gaps int
	// Longest is the largest interval observed (0 for traces with < 2
	// records).
	Longest time.Duration
	// Total is the summed duration of all gaps.
	Total time.Duration
	// CoverageFraction is 1 − Total/Duration: the share of the trace's
	// span that is actually sampled at or below the threshold cadence.
	CoverageFraction float64
}

// Gaps scans the trace for sampling gaps longer than threshold, which must
// be positive.
func (t *Trace) Gaps(threshold time.Duration) (GapStats, error) {
	if threshold <= 0 {
		return GapStats{}, fmt.Errorf("trace: gap threshold must be positive, got %v", threshold)
	}
	stats := GapStats{CoverageFraction: 1}
	if len(t.Records) < 2 {
		return stats, nil
	}
	for i := 1; i < len(t.Records); i++ {
		dt := t.Records[i].Time.Sub(t.Records[i-1].Time)
		if dt > stats.Longest {
			stats.Longest = dt
		}
		if dt > threshold {
			stats.Gaps++
			stats.Total += dt
		}
	}
	if span := t.Duration(); span > 0 {
		stats.CoverageFraction = 1 - float64(stats.Total)/float64(span)
	}
	return stats, nil
}

// InjectGaps returns a copy of the trace with records removed inside n
// randomly-placed windows of the given length — the synthetic counterpart
// of real-world signal loss, used by robustness tests and failure-injection
// benches. The pick function supplies randomness as a fraction in [0, 1)
// (pass r.Float64 from an rng.Source); windows may overlap.
func (t *Trace) InjectGaps(n int, length time.Duration, pick func() float64) *Trace {
	if n <= 0 || length <= 0 || len(t.Records) == 0 {
		return t.Clone()
	}
	span := t.Duration()
	start := t.Records[0].Time
	type window struct{ from, to time.Time }
	windows := make([]window, n)
	for i := range windows {
		off := time.Duration(pick() * float64(span))
		windows[i] = window{from: start.Add(off), to: start.Add(off).Add(length)}
	}
	out := &Trace{User: t.User}
	for _, rec := range t.Records {
		drop := false
		for _, w := range windows {
			if !rec.Time.Before(w.from) && rec.Time.Before(w.to) {
				drop = true
				break
			}
		}
		if !drop {
			out.Records = append(out.Records, rec)
		}
	}
	return out
}
