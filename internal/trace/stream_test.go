package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func streamTestDataset(t *testing.T) *Dataset {
	t.Helper()
	t0 := time.Date(2008, 5, 17, 12, 0, 0, 0, time.UTC)
	base := geo.Point{Lat: 37.7749, Lng: -122.4194}
	d := NewDataset()
	for _, u := range []string{"a", "b"} {
		recs := make([]Record, 4)
		for i := range recs {
			recs[i] = Record{User: u, Time: t0.Add(time.Duration(i) * time.Minute), Point: base.Offset(float64(i)*100, 0)}
		}
		tr, err := NewTrace(u, recs)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(tr)
	}
	return d
}

// TestScanRoundTrip checks ScanRecords against both batch writers: every
// record written comes back, in order, for both formats.
func TestScanRoundTrip(t *testing.T) {
	d := streamTestDataset(t)
	for _, format := range []Format{FormatCSV, FormatJSONL} {
		var buf bytes.Buffer
		var err error
		if format == FormatCSV {
			err = WriteCSV(&buf, d)
		} else {
			err = WriteJSONL(&buf, d)
		}
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := ScanRecords(&buf, format, func(r Record) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(got) != d.NumRecords() {
			t.Fatalf("%s: scanned %d records, want %d", format, len(got), d.NumRecords())
		}
		i := 0
		for _, tr := range d.Traces() {
			for _, want := range tr.Records {
				if got[i].User != want.User || !got[i].Time.Equal(want.Time) {
					t.Fatalf("%s record %d: got %v, want %v", format, i, got[i], want)
				}
				i++
			}
		}
	}
}

// TestRecordWriterRoundTrip checks the streaming writer against the batch
// readers.
func TestRecordWriterRoundTrip(t *testing.T) {
	d := streamTestDataset(t)
	for _, format := range []Format{FormatCSV, FormatJSONL} {
		var buf bytes.Buffer
		rw, err := NewRecordWriter(&buf, format)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range d.Traces() {
			for _, rec := range tr.Records {
				if err := rw.Write(rec); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		var back *Dataset
		if format == FormatCSV {
			back, err = ReadCSV(&buf)
		} else {
			back, err = ReadJSONL(&buf)
		}
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if back.NumRecords() != d.NumRecords() || back.NumUsers() != d.NumUsers() {
			t.Errorf("%s: round trip %d records / %d users, want %d / %d",
				format, back.NumRecords(), back.NumUsers(), d.NumRecords(), d.NumUsers())
		}
	}
}

// TestRecordWriterEmptyCSVHasHeader checks a record-less CSV stream still
// round-trips: Flush emits the header, matching WriteCSV on an empty
// dataset.
func TestRecordWriterEmptyCSVHasHeader(t *testing.T) {
	var buf bytes.Buffer
	rw, err := NewRecordWriter(&buf, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("empty stream output does not round-trip: %v", err)
	}
	if d.NumRecords() != 0 {
		t.Errorf("round-tripped %d records, want 0", d.NumRecords())
	}
}

func TestScanErrorsPropagate(t *testing.T) {
	sentinel := errors.New("stop")
	input := "{\"user\":\"a\",\"ts\":0,\"lat\":1,\"lng\":2}\n"
	err := ScanRecords(strings.NewReader(input), FormatJSONL, func(Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("fn error not propagated: %v", err)
	}
	if err := ScanRecords(strings.NewReader("not json\n"), FormatJSONL, nil); err == nil {
		t.Error("malformed jsonl must error")
	}
	if err := ScanRecords(strings.NewReader("wrong,header,row,x\n"), FormatCSV, nil); err == nil {
		t.Error("bad csv header must error")
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := NewRecordWriter(&bytes.Buffer{}, Format("xml")); err == nil {
		t.Error("unknown writer format must error")
	}
}
