package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

func multiDayTrace(t *testing.T) *Trace {
	t.Helper()
	base := time.Date(2008, 5, 17, 22, 0, 0, 0, time.UTC)
	pt := geo.Point{Lat: 37.77, Lng: -122.42}
	var recs []Record
	// 4 hours of records spanning midnight: 2 h on day 1, 2 h on day 2,
	// then a burst on day 4 (day 3 empty).
	for i := 0; i < 24; i++ {
		recs = append(recs, Record{User: "u1", Time: base.Add(time.Duration(i) * 10 * time.Minute), Point: pt.Offset(float64(i)*50, 0)})
	}
	day4 := base.Add(50 * time.Hour)
	for i := 0; i < 5; i++ {
		recs = append(recs, Record{User: "u1", Time: day4.Add(time.Duration(i) * time.Minute), Point: pt})
	}
	tr, err := NewTrace("u1", recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSplitByDay(t *testing.T) {
	tr := multiDayTrace(t)
	days := tr.SplitByDay()
	if len(days) != 3 {
		t.Fatalf("split into %d days, want 3", len(days))
	}
	var total int
	for i, d := range days {
		if d.User != "u1" {
			t.Errorf("day %d has user %q", i, d.User)
		}
		if !d.Sorted() || d.Len() == 0 {
			t.Errorf("day %d malformed", i)
		}
		total += d.Len()
		// All records of a piece share one UTC day.
		day0 := d.Records[0].Time.UTC().Truncate(24 * time.Hour)
		for _, rec := range d.Records {
			if !rec.Time.UTC().Truncate(24 * time.Hour).Equal(day0) {
				t.Errorf("day %d mixes calendar days", i)
			}
		}
	}
	if total != tr.Len() {
		t.Errorf("split lost records: %d vs %d", total, tr.Len())
	}
	if got := (&Trace{User: "u"}).SplitByDay(); got != nil {
		t.Error("empty trace should split to nil")
	}
}

func TestGaps(t *testing.T) {
	tr := multiDayTrace(t)
	stats, err := tr.Gaps(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// One gap: the ~46 h jump to day 4.
	if stats.Gaps != 1 {
		t.Errorf("gaps = %d, want 1", stats.Gaps)
	}
	if stats.Longest < 45*time.Hour {
		t.Errorf("longest gap = %v, want > 45 h", stats.Longest)
	}
	if stats.CoverageFraction > 0.15 {
		t.Errorf("coverage = %v; the trace is mostly one long gap", stats.CoverageFraction)
	}
	if _, err := tr.Gaps(0); err == nil {
		t.Error("non-positive threshold should fail")
	}
	single := &Trace{User: "u", Records: tr.Records[:1]}
	s, err := single.Gaps(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gaps != 0 || s.CoverageFraction != 1 {
		t.Errorf("single-record stats = %+v", s)
	}
}

func TestInjectGaps(t *testing.T) {
	tr := multiDayTrace(t)
	// A window anchored at the trace start removes the first hour of
	// records (6 fixes at 10-minute cadence).
	out := tr.InjectGaps(1, time.Hour, func() float64 { return 0 })
	if got, want := out.Len(), tr.Len()-6; got != want {
		t.Errorf("gap injection kept %d records, want %d", got, want)
	}
	if !out.Sorted() {
		t.Error("injected trace must stay sorted")
	}
	// Random placement still yields a subset.
	r := rng.New(3)
	rnd := tr.InjectGaps(5, 2*time.Hour, r.Float64)
	if rnd.Len() > tr.Len() {
		t.Error("gap injection must never add records")
	}
	// No-ops.
	if got := tr.InjectGaps(0, time.Hour, r.Float64); got.Len() != tr.Len() {
		t.Error("n=0 must be a no-op clone")
	}
	if got := tr.InjectGaps(2, 0, r.Float64); got.Len() != tr.Len() {
		t.Error("zero length must be a no-op clone")
	}
}

func TestWriteGeoJSON(t *testing.T) {
	tr := multiDayTrace(t)
	single, err := NewTrace("u2", []Record{{User: "u2", Time: tr.Records[0].Time, Point: geo.Point{Lat: 37.7, Lng: -122.4}}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromTraces([]*Trace{tr, single})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Errorf("type = %v", doc["type"])
	}
	features, ok := doc["features"].([]any)
	if !ok || len(features) != 2 {
		t.Fatalf("features = %v", doc["features"])
	}
	out := buf.String()
	if !strings.Contains(out, "LineString") || !strings.Contains(out, `"Point"`) {
		t.Error("expected one LineString and one Point feature")
	}
	// Coordinate order is [lng, lat].
	if !strings.Contains(out, "[-122.4,37.7]") {
		t.Errorf("expected [lng, lat] coordinates, got %s", out[:200])
	}
	if err := WriteGeoJSON(&buf, nil); err == nil {
		t.Error("nil dataset should fail")
	}
}
