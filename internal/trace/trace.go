// Package trace models mobility data: timestamped location records, per-user
// traces and multi-user datasets, together with CSV/JSON-lines persistence,
// filtering and descriptive statistics. It is the substrate every LPPM and
// metric in this repository consumes.
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
)

// Record is one timestamped location observation of one user.
type Record struct {
	// User identifies the device/driver the record belongs to.
	User string
	// Time is the observation instant.
	Time time.Time
	// Point is the observed WGS-84 location.
	Point geo.Point
}

// String implements fmt.Stringer.
func (r Record) String() string {
	return fmt.Sprintf("%s@%s%s", r.User, r.Time.Format(time.RFC3339), r.Point)
}

// Trace is the chronologically ordered mobility trace of a single user.
type Trace struct {
	// User identifies whose trace this is.
	User string
	// Records are the observations in non-decreasing time order.
	Records []Record
}

// NewTrace builds a trace for the given user from records, sorting them by
// time. Records belonging to other users are rejected.
func NewTrace(user string, records []Record) (*Trace, error) {
	rs := make([]Record, len(records))
	copy(rs, records)
	for i, r := range rs {
		if r.User != user {
			return nil, fmt.Errorf("trace: record %d belongs to %q, not %q", i, r.User, user)
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Time.Before(rs[j].Time) })
	return &Trace{User: user, Records: rs}, nil
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Points returns the locations of all records in order.
func (t *Trace) Points() []geo.Point {
	pts := make([]geo.Point, len(t.Records))
	for i, r := range t.Records {
		pts[i] = r.Point
	}
	return pts
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time.Sub(t.Records[0].Time)
}

// Sorted reports whether records are in non-decreasing time order. NewTrace
// and the dataset loaders guarantee it; mutating Records directly can break
// it, and the invariant-checking tests use this.
func (t *Trace) Sorted() bool {
	for i := 1; i < len(t.Records); i++ {
		if t.Records[i].Time.Before(t.Records[i-1].Time) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	rs := make([]Record, len(t.Records))
	copy(rs, t.Records)
	return &Trace{User: t.User, Records: rs}
}

// TimeWindow returns a new trace restricted to records with from ≤ t < to.
func (t *Trace) TimeWindow(from, to time.Time) *Trace {
	var rs []Record
	for _, r := range t.Records {
		if !r.Time.Before(from) && r.Time.Before(to) {
			rs = append(rs, r)
		}
	}
	return &Trace{User: t.User, Records: rs}
}

// Resample returns a new trace keeping at most one record per period,
// always retaining the first record of each period bucket. It is both a
// dataset-reduction utility and the primitive behind the sampling LPPM.
func (t *Trace) Resample(period time.Duration) *Trace {
	if period <= 0 || len(t.Records) == 0 {
		return t.Clone()
	}
	var rs []Record
	var lastKept time.Time
	for i, r := range t.Records {
		if i == 0 || r.Time.Sub(lastKept) >= period {
			rs = append(rs, r)
			lastKept = r.Time
		}
	}
	return &Trace{User: t.User, Records: rs}
}

// Dataset is a collection of user traces, the unit LPPMs protect and
// metrics evaluate. Users returns deterministic ordering so that parallel
// evaluation reduces reproducibly.
type Dataset struct {
	traces map[string]*Trace
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{traces: make(map[string]*Trace)}
}

// FromTraces builds a dataset from traces; duplicate users are rejected.
func FromTraces(traces []*Trace) (*Dataset, error) {
	d := NewDataset()
	for _, t := range traces {
		if _, dup := d.traces[t.User]; dup {
			return nil, fmt.Errorf("trace: duplicate user %q", t.User)
		}
		d.traces[t.User] = t
	}
	return d, nil
}

// Add inserts or replaces the trace of a user.
func (d *Dataset) Add(t *Trace) { d.traces[t.User] = t }

// Trace returns the trace of the given user, or nil if absent.
func (d *Dataset) Trace(user string) *Trace { return d.traces[user] }

// NumUsers returns the number of users present.
func (d *Dataset) NumUsers() int { return len(d.traces) }

// NumRecords returns the total number of records across all users.
func (d *Dataset) NumRecords() int {
	var n int
	for _, t := range d.traces {
		n += t.Len()
	}
	return n
}

// Users returns the user identifiers in lexicographic order.
func (d *Dataset) Users() []string {
	users := make([]string, 0, len(d.traces))
	for u := range d.traces {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// Traces returns the traces ordered by user identifier.
func (d *Dataset) Traces() []*Trace {
	users := d.Users()
	ts := make([]*Trace, len(users))
	for i, u := range users {
		ts[i] = d.traces[u]
	}
	return ts
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := NewDataset()
	for _, t := range d.traces {
		c.Add(t.Clone())
	}
	return c
}

// BBox returns the bounding box of every record in the dataset; ok is false
// when the dataset is empty.
func (d *Dataset) BBox() (geo.BBox, bool) {
	var box geo.BBox
	found := false
	for _, t := range d.traces {
		for _, r := range t.Records {
			if !found {
				box = geo.BBox{MinLat: r.Point.Lat, MinLng: r.Point.Lng, MaxLat: r.Point.Lat, MaxLng: r.Point.Lng}
				found = true
			} else {
				box = box.Extend(r.Point)
			}
		}
	}
	return box, found
}

// Filter returns a new dataset keeping only traces for which keep returns
// true.
func (d *Dataset) Filter(keep func(*Trace) bool) *Dataset {
	out := NewDataset()
	for _, t := range d.traces {
		if keep(t) {
			out.Add(t)
		}
	}
	return out
}

// Map returns a new dataset where each trace has been transformed by fn.
// A nil result from fn drops the user. This is how LPPMs are applied
// dataset-wide.
func (d *Dataset) Map(fn func(*Trace) *Trace) *Dataset {
	out := NewDataset()
	for _, u := range d.Users() {
		if nt := fn(d.traces[u]); nt != nil {
			out.Add(nt)
		}
	}
	return out
}
