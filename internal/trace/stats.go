package trace

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/stat"
)

// UserProperties are per-user dataset properties d_i that may influence the
// privacy/utility model (framework step 1). The framework feeds these to the
// PCA-based property selection.
type UserProperties struct {
	User string
	// NumRecords is the trace length.
	NumRecords float64
	// DurationHours is the trace time span in hours.
	DurationHours float64
	// PathKm is the cumulative travelled distance in kilometers.
	PathKm float64
	// AreaKm2 approximates the covered area (bbox) in square kilometers.
	AreaKm2 float64
	// MeanSpeedKmh is PathKm over DurationHours (0 for degenerate traces).
	MeanSpeedKmh float64
	// SamplingPeriodSec is the median time between consecutive records.
	SamplingPeriodSec float64
	// CellEntropy is the normalized Shannon entropy of visits over grid
	// cells: a "uniqueness"-style property reflecting how concentrated
	// the user's activity is.
	CellEntropy float64
}

// PropertyNames lists the numeric property names in the order
// PropertyVector emits them.
func PropertyNames() []string {
	return []string{
		"num_records", "duration_hours", "path_km", "area_km2",
		"mean_speed_kmh", "sampling_period_sec", "cell_entropy",
	}
}

// PropertyVector returns the numeric properties in PropertyNames order.
func (p UserProperties) PropertyVector() []float64 {
	return []float64{
		p.NumRecords, p.DurationHours, p.PathKm, p.AreaKm2,
		p.MeanSpeedKmh, p.SamplingPeriodSec, p.CellEntropy,
	}
}

// ComputeProperties derives UserProperties from a trace, using cellSizeMeters
// to discretize space for the entropy property.
func ComputeProperties(t *Trace, cellSizeMeters float64) UserProperties {
	p := UserProperties{User: t.User, NumRecords: float64(t.Len())}
	if t.Len() == 0 {
		return p
	}
	pts := t.Points()
	p.DurationHours = t.Duration().Hours()
	p.PathKm = geo.PathLength(pts) / 1000

	if box, ok := geo.NewBBox(pts); ok {
		p.AreaKm2 = box.WidthMeters() * box.HeightMeters() / 1e6
	}
	if p.DurationHours > 0 {
		p.MeanSpeedKmh = p.PathKm / p.DurationHours
	}

	if t.Len() >= 2 {
		gaps := make([]float64, 0, t.Len()-1)
		for i := 1; i < t.Len(); i++ {
			gaps = append(gaps, t.Records[i].Time.Sub(t.Records[i-1].Time).Seconds())
		}
		p.SamplingPeriodSec = stat.Median(gaps)
	}

	grid := geo.NewGrid(pts[0], cellSizeMeters)
	counts := make(map[geo.Cell]int)
	for _, pt := range pts {
		counts[grid.CellOf(pt)]++
	}
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	// EntropyOfCounts sums float terms in slice order; collected from a
	// map, that order is randomized per run, so the last bits of
	// CellEntropy would drift across replays without this sort (found by
	// lppm-lint's maporder analyzer — the same class as the PR-3
	// heat-map JSD fix).
	sort.Ints(cs)
	if len(cs) > 1 {
		maxEntropy := stat.EntropyOfCounts(uniformCounts(len(cs)))
		if maxEntropy > 0 {
			p.CellEntropy = stat.EntropyOfCounts(cs) / maxEntropy
		}
	}
	return p
}

// uniformCounts returns n ones, the maximum-entropy reference distribution.
func uniformCounts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// DatasetProperties computes properties for every user in the dataset, in
// deterministic user order.
func DatasetProperties(d *Dataset, cellSizeMeters float64) []UserProperties {
	users := d.Users()
	out := make([]UserProperties, len(users))
	for i, u := range users {
		out[i] = ComputeProperties(d.Trace(u), cellSizeMeters)
	}
	return out
}

// MedianSamplingPeriod returns the median sampling period across all users
// with at least two records; zero when no user qualifies.
func MedianSamplingPeriod(d *Dataset) time.Duration {
	var periods []float64
	for _, t := range d.Traces() {
		if t.Len() < 2 {
			continue
		}
		p := ComputeProperties(t, 500).SamplingPeriodSec
		if p > 0 {
			periods = append(periods, p)
		}
	}
	if len(periods) == 0 {
		return 0
	}
	return time.Duration(stat.Median(periods) * float64(time.Second))
}
