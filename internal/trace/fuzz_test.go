package trace

import (
	"bytes"
	"testing"
)

// The streaming scanner is the trust boundary once records arrive over
// sockets (internal/server feeds request bodies straight into it):
// malformed input must return an error, never panic, and every record it
// does deliver must satisfy the package invariants (non-empty user, valid
// coordinates). The committed corpus under testdata/fuzz seeds both
// targets with well-formed records and the malformed shapes that have
// tripped codecs elsewhere: truncated lines, wrong field counts, non-UTF8,
// huge numbers, NaN/Inf spellings, and nested/concatenated JSON.

// checkRecord asserts the scanner's per-record invariants.
func checkRecord(t *testing.T, rec Record) {
	t.Helper()
	if rec.User == "" {
		t.Fatal("scanner delivered a record with an empty user id")
	}
	if !rec.Point.Valid() {
		t.Fatalf("scanner delivered an invalid point: %v", rec.Point)
	}
}

func FuzzScanRecordsJSONL(f *testing.F) {
	f.Add([]byte("{\"user\":\"u1\",\"ts\":1211025600,\"lat\":37.7749,\"lng\":-122.4194}\n"))
	f.Add([]byte("{\"user\":\"u1\",\"ts\":1,\"lat\":1,\"lng\":2}\n{\"user\":\"u2\",\"ts\":2,\"lat\":3,\"lng\":4}\n"))
	f.Add([]byte("{\"user\":\"\",\"ts\":1,\"lat\":1,\"lng\":2}\n"))
	f.Add([]byte("{\"user\":\"u\",\"ts\":1,\"lat\":91,\"lng\":2}\n"))
	f.Add([]byte("{\"user\":\"u\",\"ts\":1,\"lat\":1e309,\"lng\":2}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\"user\":\"u\",\"ts\":1,\"lat\":1,\"lng\":2"))
	f.Add([]byte("{}{}{}"))
	f.Add([]byte("[1,2,3]\n"))
	f.Add([]byte("{\"user\":\"\xff\xfe\",\"ts\":1,\"lat\":1,\"lng\":2}\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ScanRecords(bytes.NewReader(data), FormatJSONL, func(rec Record) error {
			checkRecord(t, rec)
			return nil
		})
	})
}

func FuzzScanRecordsCSV(f *testing.F) {
	f.Add([]byte("user,timestamp,lat,lng\nu1,1211025600,37.774900,-122.419400\n"))
	f.Add([]byte("user,timestamp,lat,lng\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,notatime,1,2\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,1,91,2\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,1,NaN,2\n"))
	f.Add([]byte("user,timestamp,lat,lng\n,1,1,2\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,1,1\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,1,1,2,3\n"))
	f.Add([]byte("wrong,header,entirely,here\nu1,1,1,2\n"))
	f.Add([]byte("user,timestamp\n"))
	f.Add([]byte("\"unclosed,quote\nu1,1,1,2\n"))
	f.Add([]byte("user,timestamp,lat,lng\nu1,9223372036854775808,1,2\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ScanRecords(bytes.NewReader(data), FormatCSV, func(rec Record) error {
			checkRecord(t, rec)
			return nil
		})
	})
}
